//! Record/replay determinism contract (DESIGN.md §16).
//!
//! * A recorded run re-executes to a **byte-identical** stats snapshot —
//!   the determinism claim of paper §3.5 as an executable check.
//! * A single mutated field in a stored trace is pinpointed by
//!   `dbox replay --diff` at its exact record index and field path.
//! * Resuming a playback from the nearest 5 s checkpoint ends in the
//!   same final states as playing back from t=0.
//! * The replay end bound is inclusive and exact to the nanosecond: a
//!   step at the final virtual instant executes (the round-trip
//!   off-by-one regression).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use digibox_cli::invoke;
use digibox_core::{Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_model::Value;
use digibox_net::{SimDuration, SimTime};
use digibox_registry::Repository;
use digibox_trace::store;
use digibox_trace::{RecordKind, ReplaySchedule, TraceRecord};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("dbox-replay-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(dir: &Path, args: &[&str]) -> digibox_cli::Outcome {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    invoke(dir, &args)
}

/// Build a session busy enough to produce a 10k+ record trace.
fn build_big_session(dir: &Path) {
    for name in ["O1", "O2", "O3", "O4"] {
        assert_eq!(run(dir, &["run", "Occupancy", name, "--managed"]).code, 0);
    }
    assert_eq!(run(dir, &["run", "Lamp", "L1"]).code, 0);
    assert_eq!(run(dir, &["run", "Room", "R1"]).code, 0);
    assert_eq!(run(dir, &["attach", "O1", "R1"]).code, 0);
    assert_eq!(run(dir, &["attach", "L1", "R1"]).code, 0);
    assert_eq!(run(dir, &["sim", "600"]).code, 0);
}

#[test]
fn ten_k_record_run_replays_to_identical_stats_digest() {
    let dir = tmpdir("10k");
    build_big_session(&dir);

    let out = run(&dir, &["record", "big"]);
    assert_eq!(out.code, 0, "{}", out.stdout);

    // The run is genuinely large: 10k+ records in the stored trace.
    let repo = Repository::load_from_dir(&dir.join(".dbox").join("registry")).unwrap();
    let manifest = store::manifest(&repo, "big").unwrap();
    assert!(
        manifest.records >= 10_000,
        "expected a 10k+ record trace, got {}",
        manifest.records
    );
    assert!(manifest.chunks.len() >= 40, "chunked storage: {}", manifest.chunks.len());

    // Verified re-execution: trace matches record-by-record AND the
    // stats snapshot is byte-for-byte the recorded one.
    let stats_out = dir.join("replayed_stats.json");
    let out = run(&dir, &["replay", "big", "--stats-out", stats_out.to_str().unwrap()]);
    assert_eq!(out.code, 0, "{}", out.stdout);
    assert!(out.stdout.contains("matches recorded"), "{}", out.stdout);

    // The --stats-out file equals `dbox stats --format json` exactly, so
    // CI can `cmp` the two (the recorded extras hold the same bytes).
    let replayed = std::fs::read_to_string(&stats_out).unwrap();
    let live = run(&dir, &["stats", "--format", "json"]).stdout;
    assert_eq!(replayed, live, "replayed stats must be byte-identical");
    assert_eq!(
        replayed.trim_end(),
        manifest.extras["stats"],
        "stored stats must match too"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn one_field_mutation_is_pinpointed_by_diff() {
    let dir = tmpdir("mutate");
    build_big_session(&dir);
    assert_eq!(run(&dir, &["record", "big"]).code, 0);

    let repo_dir = dir.join(".dbox").join("registry");
    let mut repo = Repository::load_from_dir(&repo_dir).unwrap();
    let (manifest, mut records) = store::load(&repo, "big").unwrap();

    // Mutate one field of one model_change record deep in the trace.
    let victim = records
        .iter()
        .position(|r| {
            r.seq > manifest.records / 2
                && matches!(&r.kind, RecordKind::ModelChange { fields: Value::Map(m), .. } if !m.is_empty())
        })
        .expect("a model_change record past the midpoint");
    let expected_path;
    match &mut records[victim].kind {
        RecordKind::ModelChange { fields: Value::Map(m), .. } => {
            let key = m.keys().next().unwrap().clone();
            expected_path = key.clone();
            m.insert(key, Value::Str("tampered".into()));
        }
        _ => unreachable!(),
    }
    store::save(&mut repo, "tampered", &records, BTreeMap::new()).unwrap();
    repo.save_to_dir(&repo_dir).unwrap();

    // Library level: the stored diff bisects to the exact record.
    let report = store::diff_stored(&repo, "big", "tampered").unwrap().expect("diverges");
    assert_eq!(report.index, victim, "diff must pinpoint the mutated record");
    assert!(
        report.what.starts_with("model field"),
        "diff names the field: {}",
        report.what
    );
    assert!(
        report.what.contains(expected_path.split('.').next().unwrap()),
        "diff names the mutated path {expected_path:?}: {}",
        report.what
    );

    // CLI level: `--diff` renders the same divergence and exits 2.
    let out = run(&dir, &["replay", "--diff", "big", "tampered"]);
    assert_eq!(out.code, 2, "{}", out.stdout);
    assert!(
        out.stdout.contains(&format!("diverge at record {victim}")),
        "{}",
        out.stdout
    );
    assert!(out.stdout.contains("model field"), "{}", out.stdout);

    // Identical refs still exit 0.
    let out = run(&dir, &["replay", "--diff", "big", "big"]);
    assert_eq!(out.code, 0, "{}", out.stdout);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Extract the `  <name>: <fields>` lines a playback prints.
fn state_lines(stdout: &str) -> Vec<&str> {
    stdout.lines().filter(|l| l.starts_with("  ")).collect()
}

#[test]
fn replay_from_checkpoint_equals_replay_from_zero() {
    let dir = tmpdir("checkpoint");
    build_big_session(&dir);
    assert_eq!(run(&dir, &["record", "big"]).code, 0);

    // `--speed 1` selects state playback from t=0; `--from-checkpoint`
    // resumes from the nearest 5 s boundary. Same recorded timeline, so
    // the final per-digi states must agree exactly.
    let from_zero = run(&dir, &["replay", "big", "--speed", "1"]);
    assert_eq!(from_zero.code, 0, "{}", from_zero.stdout);
    let resumed = run(&dir, &["replay", "big", "--from-checkpoint"]);
    assert_eq!(resumed.code, 0, "{}", resumed.stdout);
    assert!(resumed.stdout.contains("resumed"), "{}", resumed.stdout);

    assert_eq!(
        state_lines(&from_zero.stdout),
        state_lines(&resumed.stdout),
        "checkpoint resume must end in the same states as replay from zero\nzero:\n{}\nresumed:\n{}",
        from_zero.stdout,
        resumed.stdout
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_end_bound_is_inclusive_to_the_nanosecond() {
    // The regression: the CLI used to run the replay clock to a
    // millisecond-truncated span, so a step at the final virtual instant
    // (with sub-millisecond nanos) was scheduled but never executed.
    let mut testbed = Testbed::laptop(
        full_catalog(),
        TestbedConfig { seed: 7, ..Default::default() },
    );
    testbed.run_with("Lamp", "L1", BTreeMap::new(), false).unwrap();
    testbed.run_for(SimDuration::from_millis(500));

    let final_instant = SimTime::from_nanos(2_000_000_001); // 2s + 1ns
    let mut on = BTreeMap::new();
    on.insert("power".to_string(), Value::Str("replayed".into()));
    let mk = |seq: u64, ts: SimTime, fields: Value| TraceRecord {
        seq,
        ts,
        source: "L1".into(),
        kind: RecordKind::ModelChange { patch: digibox_model::Patch::new(), fields },
    };
    let records = vec![
        mk(0, SimTime::from_nanos(1_000_000_000), Value::Map(BTreeMap::new())),
        mk(1, final_instant, Value::Map(on.clone())),
    ];
    let schedule = ReplaySchedule::from_records(&records);
    assert_eq!(schedule.duration(), final_instant);
    // `until` at exactly the final instant keeps the final step.
    assert_eq!(schedule.until(final_instant).len(), 2);

    testbed.replay(&schedule).unwrap();
    // Exact-nanos span: the step at 2.000000001s is AT the deadline and
    // the kernel's run_until is inclusive, so it must fire. Truncating
    // the span to milliseconds (the old bound) stops at 2.000000000s
    // and silently drops it.
    testbed.run_for(SimDuration::from_nanos(final_instant.as_nanos()));
    let model = testbed.check("L1").unwrap();
    assert_eq!(
        model.fields().get("power").cloned(),
        Some(Value::Str("replayed".into())),
        "final-instant replay step must execute"
    );
}
