//! E7 — reproducibility (paper §3.4–3.5 / §4 IaC): commit a setup, push it,
//! pull it elsewhere, recreate it, and verify the recreated testbed is
//! equivalent — and that seeded re-execution is bit-identical.

use digibox_integration::{laptop, no_params};
use digibox_core::Testbed;
use digibox_model::Value;
use digibox_net::SimDuration;
use digibox_registry::{sha256, Repository};

/// Build the smart-building setup on a testbed.
fn build_setup(tb: &mut Testbed) {
    tb.run_with("Occupancy", "O1", no_params(), true).unwrap();
    tb.run_with("Underdesk", "D1", no_params(), true).unwrap();
    tb.run("Lamp", "L1").unwrap();
    tb.run_with("Room", "MeetingRoom", no_params(), true).unwrap();
    tb.run("Building", "ConfCenter").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.attach("O1", "MeetingRoom").unwrap();
    tb.attach("D1", "MeetingRoom").unwrap();
    tb.attach("L1", "MeetingRoom").unwrap();
    tb.attach("MeetingRoom", "ConfCenter").unwrap();
}

/// A content digest of the whole testbed state (every digi's fields).
fn state_digest(tb: &mut Testbed) -> String {
    let mut blob = String::new();
    for name in tb.digi_names() {
        let model = tb.check(&name).unwrap();
        blob.push_str(&name);
        blob.push('=');
        blob.push_str(&serde_json::to_string(&model.fields().to_json()).unwrap());
        blob.push('\n');
    }
    sha256(blob.as_bytes()).to_string()
}

#[test]
fn commit_push_pull_recreate_produces_equivalent_setup() {
    // developer A builds and shares
    let mut tb_a = laptop(42);
    build_setup(&mut tb_a);
    let mut local = Repository::new();
    tb_a.commit(&mut local, "smart-building", "artifact eval", "smart-building").unwrap();
    let mut hub = Repository::new();
    local.push(&mut hub, "smart-building").unwrap();

    // developer B pulls and recreates
    let mut repo_b = Repository::new();
    repo_b.pull(&hub, "smart-building").unwrap();
    let head = repo_b.resolve("smart-building").unwrap();
    let commit = repo_b.load_commit(&head).unwrap();
    let manifest = repo_b.load_setup(&commit).unwrap();
    // every referenced type package resolves from B's catalog
    for digest in commit.packages.values() {
        let pkg = repo_b.load_package(digest).unwrap();
        assert!(
            digibox_devices::full_catalog().contains_kind(&pkg.kind),
            "pulled package {} not in local catalog",
            pkg.kind
        );
    }
    let mut tb_b = laptop(manifest.seed);
    tb_b.recreate(&manifest).unwrap();

    // structural equivalence: same digis, same kinds, same attachments
    assert_eq!(tb_a.digi_names(), tb_b.digi_names());
    for name in tb_a.digi_names() {
        let a = tb_a.check(&name).unwrap();
        let b = tb_b.check(&name).unwrap();
        assert_eq!(a.meta.kind, b.meta.kind, "{name} kind differs");
        assert_eq!(a.meta.managed, b.meta.managed, "{name} managed differs");
        let mut att_a = a.meta.attach.clone();
        let mut att_b = b.meta.attach.clone();
        att_a.sort();
        att_b.sort();
        assert_eq!(att_a, att_b, "{name} attachments differ");
    }
}

#[test]
fn seeded_execution_is_bit_identical() {
    // the reproducibility claim behind artifact evaluation: two testbeds
    // built from the same manifest + seed and run for the same virtual
    // time end in the same state, digest-for-digest
    let run = || {
        let mut tb = laptop(1234);
        build_setup(&mut tb);
        tb.run_for(SimDuration::from_secs(30));
        state_digest(&mut tb)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed + same workload must give identical state digests");

    let mut tb = laptop(4321);
    build_setup(&mut tb);
    tb.run_for(SimDuration::from_secs(30));
    assert_ne!(a, state_digest(&mut tb), "different seed should diverge");
}

#[test]
fn manifest_dml_is_stable_and_versionable() {
    // the IaC file is deterministic text (same setup → same bytes), so
    // diffs in version control are meaningful
    let manifest = |seed| {
        let mut tb = laptop(seed);
        build_setup(&mut tb);
        tb.snapshot("smart-building").unwrap().to_dml()
    };
    assert_eq!(manifest(42), manifest(42));
    // and parses back losslessly
    let mut tb = laptop(42);
    build_setup(&mut tb);
    let m = tb.snapshot("smart-building").unwrap();
    let back = digibox_registry::SetupManifest::from_dml(&m.to_dml()).unwrap();
    assert_eq!(m, back);
}

#[test]
fn commit_history_tracks_setup_evolution() {
    let mut tb = laptop(1);
    tb.run("Lamp", "L1").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    let mut repo = Repository::new();
    tb.commit(&mut repo, "home", "v1: one lamp", "home").unwrap();
    tb.run("Fan", "F1").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.commit(&mut repo, "home", "v2: add fan", "home").unwrap();

    let log = repo.log("home").unwrap();
    assert_eq!(log.len(), 2);
    assert_eq!(log[0].1.message, "v2: add fan");
    let old_setup = repo.load_setup(&log[1].1).unwrap();
    assert_eq!(old_setup.instances.len(), 1, "history preserves the old setup");
    let new_setup = repo.load_setup(&log[0].1).unwrap();
    assert_eq!(new_setup.instances.len(), 2);
}

#[test]
fn recreated_setup_behaves_like_the_original() {
    // beyond structure: a recreated testbed *runs* — scenes coordinate
    let mut tb_a = laptop(7);
    build_setup(&mut tb_a);
    let mut repo = Repository::new();
    tb_a.commit(&mut repo, "s", "x", "s").unwrap();
    let head = repo.resolve("s").unwrap();
    let manifest = repo.load_setup(&repo.load_commit(&head).unwrap()).unwrap();

    let mut tb_b = laptop(manifest.seed);
    tb_b.recreate(&manifest).unwrap();
    tb_b.run_for(SimDuration::from_secs(10));
    // the room still enforces sensor consistency in the recreated testbed
    let presence = tb_b
        .check("MeetingRoom")
        .unwrap()
        .lookup(&"human_presence".into())
        .and_then(Value::as_bool)
        .unwrap();
    let triggered = tb_b
        .check("O1")
        .unwrap()
        .lookup(&"triggered".into())
        .and_then(Value::as_bool)
        .unwrap();
    assert_eq!(presence, triggered);
}
