//! E3 — Table 1 coverage: every `dbox` API verb exercised end-to-end
//! through the CLI layer (the same code path the binary runs).

use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbox-e3-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dbox(dir: &Path, args: &[&str]) -> (i32, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let out = digibox_cli::invoke(dir, &args);
    (out.code, out.stdout)
}

/// The complete Table 1 workflow, in order, against one workspace.
#[test]
fn table1_full_workflow() {
    let home = tmpdir("home");
    let remote = tmpdir("remote");
    let away = tmpdir("away");

    // dbox run type name — a mock and a scene
    let (code, out) = dbox(&home, &["run", "Occupancy", "O1", "--managed"]);
    assert_eq!(code, 0, "{out}");
    let (code, _) = dbox(&home, &["run", "Lamp", "L1"]);
    assert_eq!(code, 0);
    let (code, _) = dbox(&home, &["run", "Room", "MeetingRoom"]);
    assert_eq!(code, 0);

    // dbox attach name name
    let (code, _) = dbox(&home, &["attach", "O1", "MeetingRoom"]);
    assert_eq!(code, 0);
    let (code, _) = dbox(&home, &["attach", "L1", "MeetingRoom"]);
    assert_eq!(code, 0);

    // dbox watch name — model changes appear in the console
    let (code, out) = dbox(&home, &["watch", "MeetingRoom", "5"]);
    assert_eq!(code, 0);
    assert!(out.contains("meetingroom"), "watch output:\n{out}");

    // interacting with mocks: dbox edit
    let (code, _) = dbox(&home, &["edit", "L1", "power=on", "intensity=0.4"]);
    assert_eq!(code, 0);

    // dbox check name — model state in the console
    let (code, out) = dbox(&home, &["check", "L1"]);
    assert_eq!(code, 0);
    assert!(out.contains("intent: on") || out.contains("intent: \"on\""), "{out}");

    // dbox commit type name — create/update a shareable setup
    let (code, out) = dbox(&home, &["commit", "smart-building", "-m", "walkthrough"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("committed"));

    // dbox push — upload to the scene repository
    let (code, out) = dbox(&home, &["push", "smart-building", "--to", remote.to_str().unwrap()]);
    assert_eq!(code, 0, "{out}");

    // dbox pull — another developer recreates the setup
    let (code, out) = dbox(&away, &["pull", "smart-building", "--from", remote.to_str().unwrap()]);
    assert_eq!(code, 0, "{out}");
    let (_, listing) = dbox(&away, &["list"]);
    for name in ["O1", "L1", "MeetingRoom"] {
        assert!(listing.contains(name), "pulled setup missing {name}:\n{listing}");
    }

    // dbox replay name — export a trace here, replay it there
    let trace = home.join("run.dbxt");
    let (code, _) = dbox(&home, &["export-trace", trace.to_str().unwrap()]);
    assert_eq!(code, 0);
    let (code, out) = dbox(&away, &["replay", trace.to_str().unwrap()]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("replayed"));

    // dbox stop name
    let (code, _) = dbox(&home, &["stop", "O1"]);
    assert_eq!(code, 0);
    let (code, _) = dbox(&home, &["check", "O1"]);
    assert_eq!(code, 1, "stopped digi must be gone");

    for d in [home, remote, away] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

/// Errors are reported, not panicked.
#[test]
fn table1_error_paths() {
    let dir = tmpdir("errors");
    // unknown type
    let (code, out) = dbox(&dir, &["run", "Nonexistent", "X"]);
    assert_eq!(code, 1);
    assert!(out.contains("error"));
    // unknown digi
    let (code, _) = dbox(&dir, &["check", "ghost"]);
    assert_eq!(code, 1);
    let (code, _) = dbox(&dir, &["stop", "ghost"]);
    assert_eq!(code, 1);
    // attach to a non-scene
    dbox(&dir, &["run", "Lamp", "L1"]);
    dbox(&dir, &["run", "Fan", "F1"]);
    let (code, out) = dbox(&dir, &["attach", "F1", "L1"]);
    assert_eq!(code, 1);
    assert!(out.contains("not a scene"), "{out}");
    // duplicate name
    let (code, _) = dbox(&dir, &["run", "Lamp", "L1"]);
    assert_eq!(code, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `check` and `list` are read-only: they do not grow the journal.
#[test]
fn reads_do_not_mutate_session() {
    let dir = tmpdir("readonly");
    dbox(&dir, &["run", "Fan", "F1"]);
    let before = std::fs::read_to_string(digibox_cli::Session::state_path(&dir)).unwrap();
    dbox(&dir, &["check", "F1"]);
    dbox(&dir, &["list"]);
    dbox(&dir, &["log"]);
    let after = std::fs::read_to_string(digibox_cli::Session::state_path(&dir)).unwrap();
    assert_eq!(before, after);
    let _ = std::fs::remove_dir_all(&dir);
}
