//! The parallel sweep engine end-to-end: the same campaign run at
//! `--jobs 1`, `--jobs 2`, and `--jobs all` must produce a byte-identical
//! scorecard (per-worker kernels keep each seed's event order exactly as
//! the single-threaded run; merging is in canonical seed order), and a
//! seed whose build panics must surface as a per-seed error without
//! aborting the rest of the sweep.

use digibox_core::campaign::Campaign;
use digibox_core::properties::DigiCondition;
use digibox_core::{Condition, SceneProperty, Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_net::chaos::{FaultKind, FaultPlan, FaultSpec};
use digibox_net::SimDuration;

/// A two-node room ensemble with the paper's lamp-follows-vacancy
/// property (same shape as tests/chaos.rs, shorter plan below).
fn room_testbed(seed: u64) -> digibox_core::Result<Testbed> {
    let config = TestbedConfig {
        seed,
        broker_session_timeout: Some(SimDuration::from_secs(2)),
        ..Default::default()
    };
    let mut tb = Testbed::ec2(2, full_catalog(), config);
    tb.run_with("Occupancy", "O1", Default::default(), true)?;
    tb.run_with("Room", "R1", Default::default(), false)?;
    tb.run_with("Lamp", "L1", Default::default(), false)?;
    tb.run_for(SimDuration::from_secs(1));
    tb.attach("O1", "R1")?;
    tb.attach("L1", "R1")?;
    tb.add_property(SceneProperty::leads_to(
        "lamp-follows-vacancy",
        vec![DigiCondition::new("O1", Condition::eq("triggered", false))],
        vec![DigiCondition::new("L1", Condition::eq("power.status", "off"))],
        SimDuration::from_secs(5),
    ));
    tb.run_for(SimDuration::from_secs(2));
    Ok(tb)
}

fn short_plan() -> FaultPlan {
    FaultPlan::new("sweep-det", 12_000, 2_000).with(FaultSpec {
        at_ms: 3_000,
        duration_ms: 2_000,
        jitter_ms: 1_000,
        kind: FaultKind::CrashDigi { digi: "L1".into() },
    })
}

#[test]
fn scorecard_is_byte_identical_across_jobs_counts() {
    let campaign = Campaign::new(short_plan()).unwrap();
    let seeds: Vec<u64> = (1..=6).collect();

    let serial = campaign.run_jobs(&seeds, 1, room_testbed).unwrap();
    let two = campaign.run_jobs(&seeds, 2, room_testbed).unwrap();
    let all = campaign.run_jobs(&seeds, 0, room_testbed).unwrap();

    assert!(serial.errors.is_empty(), "{:?}", serial.errors);
    assert_eq!(serial.per_seed.len(), seeds.len());
    assert_eq!(serial.to_json(), two.to_json(), "jobs=2 scorecard diverged");
    assert_eq!(serial.to_json(), all.to_json(), "jobs=all scorecard diverged");
    assert_eq!(serial.digest(), two.digest());
    assert_eq!(serial.digest(), all.digest());
}

#[test]
fn panicking_seed_is_reported_without_aborting_the_sweep() {
    let campaign = Campaign::new(short_plan()).unwrap();
    let seeds = [1, 13, 2];
    let build = |seed: u64| {
        if seed == 13 {
            panic!("boom at seed 13");
        }
        room_testbed(seed)
    };

    let serial = campaign.run_jobs(&seeds, 1, build).unwrap();
    let parallel = campaign.run_jobs(&seeds, 2, build).unwrap();

    // the healthy seeds completed, in canonical order
    let ran: Vec<u64> = serial.per_seed.iter().map(|s| s.seed).collect();
    assert_eq!(ran, vec![1, 2]);

    // the panic became a per-seed error, not an abort
    assert_eq!(serial.errors.len(), 1);
    assert_eq!(serial.errors[0].seed, 13);
    assert!(
        serial.errors[0].error.contains("boom at seed 13"),
        "panic payload should be preserved: {:?}",
        serial.errors[0].error
    );

    // and the failure report is itself deterministic across jobs counts
    assert_eq!(serial.to_json(), parallel.to_json());
    assert_eq!(serial.digest(), parallel.digest());
}
