//! Determinism regression for the substrate hot-path overhaul: the
//! hierarchical timer wheel, broker route cache, and interned
//! topics/paths must not perturb event order. A 200-mock building scene
//! run twice under one seed must produce byte-identical traces and model
//! states; a different seed must not.

use digibox_integration::{laptop, no_params};
use digibox_net::SimDuration;
use digibox_registry::sha256;

const SENSORS: usize = 200;
const ROOMS: usize = 10;

/// Build the scene, run it for 30 virtual seconds, and digest everything
/// observable: the full trace archive and every digi's final model state.
fn scene_digests(seed: u64) -> (String, String) {
    let mut tb = laptop(seed);
    tb.run_with("Building", "HQ", no_params(), true).unwrap();
    for r in 0..ROOMS {
        tb.run_with("Room", &format!("R{r}"), no_params(), true).unwrap();
    }
    for s in 0..SENSORS {
        // unmanaged: the mocks' own event loops drive the kernel's
        // periodic-timer path (the wheel's hot case)
        tb.run_with("Occupancy", &format!("O{s}"), no_params(), false).unwrap();
    }
    tb.run_for(SimDuration::from_secs(2));
    for r in 0..ROOMS {
        tb.attach(&format!("R{r}"), "HQ").unwrap();
    }
    for s in 0..SENSORS {
        tb.attach(&format!("O{s}"), &format!("R{}", s % ROOMS)).unwrap();
    }
    tb.run_for(SimDuration::from_secs(30));

    let trace_digest = sha256(&digibox_trace::archive::write(&tb.log().records())).to_string();

    // Model states, serialized in a fixed (name) order.
    let mut states = String::new();
    let mut names = vec!["HQ".to_string()];
    names.extend((0..ROOMS).map(|r| format!("R{r}")));
    names.extend((0..SENSORS).map(|s| format!("O{s}")));
    for name in names {
        let model = tb.check(&name).unwrap();
        states.push_str(&name);
        states.push('=');
        states.push_str(&serde_json::to_string(model.fields()).unwrap());
        states.push('\n');
    }
    let state_digest = sha256(states.as_bytes()).to_string();
    (trace_digest, state_digest)
}

#[test]
fn same_seed_is_bit_identical_at_200_mocks() {
    let (trace_a, state_a) = scene_digests(42);
    let (trace_b, state_b) = scene_digests(42);
    assert_eq!(trace_a, trace_b, "trace diverged between identical runs");
    assert_eq!(state_a, state_b, "model states diverged between identical runs");
}

#[test]
fn different_seed_diverges() {
    let (trace_a, _) = scene_digests(42);
    let (trace_c, _) = scene_digests(43);
    assert_ne!(trace_c, trace_a, "different seeds must produce different traces");
}
