//! Determinism regression for the substrate hot-path overhaul: the
//! hierarchical timer wheel, broker route cache, and interned
//! topics/paths must not perturb event order. A 200-mock building scene
//! run twice under one seed must produce byte-identical traces and model
//! states; a different seed must not.
//!
//! The pooled tests extend the same contract to the arena/columnar
//! storage layer: a 10k-digi pooled testbed must digest byte-identically
//! across runs (tick groups, batched deliveries, and column mirrors must
//! not perturb observable order), and across jobs=1 vs jobs=N sweeps
//! (column ids are interned per worker thread in arbitrary order, so the
//! snapshot path must canonicalize before anything is digested).

use digibox_integration::{laptop, no_params};
use digibox_net::SimDuration;
use digibox_registry::sha256;

const SENSORS: usize = 200;
const ROOMS: usize = 10;

/// Build the scene, run it for 30 virtual seconds, and digest everything
/// observable: the full trace archive and every digi's final model state.
fn scene_digests(seed: u64) -> (String, String) {
    let mut tb = laptop(seed);
    tb.run_with("Building", "HQ", no_params(), true).unwrap();
    for r in 0..ROOMS {
        tb.run_with("Room", &format!("R{r}"), no_params(), true).unwrap();
    }
    for s in 0..SENSORS {
        // unmanaged: the mocks' own event loops drive the kernel's
        // periodic-timer path (the wheel's hot case)
        tb.run_with("Occupancy", &format!("O{s}"), no_params(), false).unwrap();
    }
    tb.run_for(SimDuration::from_secs(2));
    for r in 0..ROOMS {
        tb.attach(&format!("R{r}"), "HQ").unwrap();
    }
    for s in 0..SENSORS {
        tb.attach(&format!("O{s}"), &format!("R{}", s % ROOMS)).unwrap();
    }
    tb.run_for(SimDuration::from_secs(30));

    let trace_digest = sha256(&digibox_trace::archive::write(&tb.log().records())).to_string();

    // Model states, serialized in a fixed (name) order.
    let mut states = String::new();
    let mut names = vec!["HQ".to_string()];
    names.extend((0..ROOMS).map(|r| format!("R{r}")));
    names.extend((0..SENSORS).map(|s| format!("O{s}")));
    for name in names {
        let model = tb.check(&name).unwrap();
        states.push_str(&name);
        states.push('=');
        states.push_str(&serde_json::to_string(model.fields()).unwrap());
        states.push('\n');
    }
    let state_digest = sha256(states.as_bytes()).to_string();
    (trace_digest, state_digest)
}

#[test]
fn same_seed_is_bit_identical_at_200_mocks() {
    let (trace_a, state_a) = scene_digests(42);
    let (trace_b, state_b) = scene_digests(42);
    assert_eq!(trace_a, trace_b, "trace diverged between identical runs");
    assert_eq!(state_a, state_b, "model states diverged between identical runs");
}

#[test]
fn different_seed_diverges() {
    let (trace_a, _) = scene_digests(42);
    let (trace_c, _) = scene_digests(43);
    assert_ne!(trace_c, trace_a, "different seeds must produce different traces");
}

/// Build a pooled testbed (`digis` Occupancy mocks in one arena pool),
/// run it, and digest the trace plus every pooled digi's fields read
/// back through the column snapshot path, in fixed name order.
fn pooled_digests(seed: u64, digis: usize, secs: u64) -> (String, String) {
    let mut tb = laptop(seed);
    let names: Vec<String> = (0..digis).map(|i| format!("P{i}")).collect();
    let (pool, _) = tb.run_pool("Occupancy", &names, no_params(), false).unwrap();
    tb.run_for(SimDuration::from_secs(secs));

    let trace_digest = sha256(&digibox_trace::archive::write(&tb.log().records())).to_string();

    let p = pool.borrow();
    let mut states = String::new();
    for name in &names {
        let fields = p.snapshot_fields(name).expect("pooled digi snapshots");
        states.push_str(name);
        states.push('=');
        states.push_str(&serde_json::to_string(&fields).unwrap());
        states.push('\n');
    }
    let state_digest = sha256(states.as_bytes()).to_string();
    (trace_digest, state_digest)
}

#[test]
fn pooled_10k_is_bit_identical_across_runs() {
    let (trace_a, state_a) = pooled_digests(42, 10_000, 5);
    let (trace_b, state_b) = pooled_digests(42, 10_000, 5);
    assert_eq!(trace_a, trace_b, "10k-digi pooled trace diverged between identical runs");
    assert_eq!(state_a, state_b, "10k-digi column snapshots diverged between identical runs");
}

#[test]
fn pooled_sweep_digests_match_at_any_jobs_count() {
    // Per-thread column-id interning must never leak into digests: the
    // same seeds swept serially and work-stealing across threads (each
    // worker interning columns in a different order) must merge to
    // byte-identical digest vectors.
    let seeds: Vec<u64> = (1..=4).collect();
    let run = |seed: u64| -> Result<(String, String), String> { Ok(pooled_digests(seed, 500, 10)) };
    let serial = digibox_core::sweep::sweep(&seeds, 1, run);
    let parallel = digibox_core::sweep::sweep(&seeds, 0, run);
    let unwrap_all = |o: digibox_core::SweepOutcome<(String, String)>| -> Vec<(u64, (String, String))> {
        o.runs.into_iter().map(|r| (r.seed, r.result.expect("pooled run succeeds"))).collect()
    };
    assert_eq!(
        unwrap_all(serial),
        unwrap_all(parallel),
        "jobs=1 and jobs=N pooled sweeps must digest identically"
    );
}
