//! Fault injection (paper §6: "hardware intricacies such as device
//! actuation delays, faults/failures, and network connectivity"): crashes,
//! restarts, node failures, lossy links, actuation failures.

use std::collections::BTreeMap;

use digibox_integration::{laptop, no_params};
use digibox_broker::QoS;
use digibox_core::{Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_model::Value;
use digibox_net::{LinkSpec, SimDuration};

#[test]
fn crashed_mock_fires_last_will_and_restarts() {
    // broker keep-alive replaces the old busy-loop (edit 12 times until
    // the dead endpoint exhausts transport retries): with a session
    // timeout set, the broker probes the silent session on its own.
    let mut tb = Testbed::laptop(
        full_catalog(),
        TestbedConfig {
            seed: 1,
            broker_session_timeout: Some(SimDuration::from_secs(2)),
            ..Default::default()
        },
    );
    tb.run("Lamp", "L1").unwrap();
    tb.run_for(SimDuration::from_secs(1));

    // a watcher app subscribed to last-wills
    let node = tb.broker_addr().node;
    let watcher = tb.app_with_mqtt(node, "watcher");
    watcher.borrow_mut().subscribe(tb.sim(), &[("digibox/lwt/+", QoS::AtMostOnce)]);
    tb.run_for(SimDuration::from_millis(100));

    tb.kill("L1").unwrap();
    // timeout (2 s) + the probe's retransmits exhausting (~55×RTO) + margin
    tb.run_for(SimDuration::from_secs(8));

    let events = watcher.borrow_mut().poll_all();
    let lwt_seen = events.iter().any(|e| match e {
        digibox_core::AppEvent::Message { topic, .. } => topic == "digibox/lwt/L1",
        _ => false,
    });
    assert!(lwt_seen, "broker should publish the last-will of the crashed digi");
    assert!(
        tb.broker().borrow().stats().sessions_expired >= 1,
        "keep-alive should have reaped the dead session"
    );

    // and the control plane restarted it (restart policy Always)
    assert!(tb.check("L1").is_ok(), "digi restarted after crash");
    let restarts = tb.log().view().source("L1").tag("lifecycle").collect();
    assert!(
        restarts.iter().any(|r| matches!(
            &r.kind,
            digibox_trace::RecordKind::Lifecycle { action, .. } if action == "restarted"
        )),
        "restart should be logged"
    );
}

#[test]
fn scene_reconverges_after_child_restart() {
    let mut tb = laptop(2);
    tb.run_with("Occupancy", "O1", no_params(), true).unwrap();
    tb.run_with("Room", "R1", no_params(), false).unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.attach("O1", "R1").unwrap();
    tb.run_for(SimDuration::from_secs(5));

    tb.kill("O1").unwrap();
    tb.run_for(SimDuration::from_secs(5));
    // O1 is back, and the supervisor re-attached it to R1 on its own —
    // no operator intervention needed
    assert!(tb.check("O1").is_ok());
    assert!(
        tb.check("R1").unwrap().meta.attach.contains(&"O1".to_string()),
        "restarted child should be re-attached to its scene automatically"
    );
    tb.run_for(SimDuration::from_secs(10));
    let presence = tb
        .check("R1")
        .unwrap()
        .lookup(&"human_presence".into())
        .and_then(Value::as_bool)
        .unwrap();
    let triggered = tb
        .check("O1")
        .unwrap()
        .lookup(&"triggered".into())
        .and_then(Value::as_bool)
        .unwrap();
    assert_eq!(presence, triggered, "restarted sensor must re-sync with its room");
}

#[test]
fn lossy_network_does_not_break_coordination() {
    // inject loss on the loopback: every digi↔broker message risks a drop;
    // the reliable transport must hide it
    let mut tb = laptop(3);
    tb.sim().topology_mut().set_loopback(LinkSpec {
        base_delay: SimDuration::from_micros(25),
        jitter: SimDuration::from_micros(500),
        loss: 0.10,
        bandwidth_bps: 0,
    });
    tb.run_with("Occupancy", "O1", no_params(), true).unwrap();
    tb.run_with("Occupancy", "O2", no_params(), true).unwrap();
    tb.run("Room", "R1").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.attach("O1", "R1").unwrap();
    tb.attach("O2", "R1").unwrap();
    tb.run_for(SimDuration::from_secs(30));

    // loss actually happened...
    assert!(tb.sim().stats().datagrams_lost > 0, "loss model should have dropped packets");
    // ...but the ensemble still converged
    let presence = tb
        .check("R1")
        .unwrap()
        .lookup(&"human_presence".into())
        .and_then(Value::as_bool)
        .unwrap();
    for s in ["O1", "O2"] {
        let t = tb.check(s).unwrap().lookup(&"triggered".into()).and_then(Value::as_bool).unwrap();
        assert_eq!(t, presence, "{s} out of sync despite reliable transport");
    }
}

#[test]
fn actuation_failure_is_observable() {
    // a flaky lock (fail_prob=1.0) never actuates; the model records it
    let mut tb = laptop(4);
    let mut params: BTreeMap<String, Value> = BTreeMap::new();
    params.insert("fail_prob".into(), Value::Float(1.0));
    tb.run_with("DoorLock", "D1", params, false).unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.edit("D1", digibox_model::vmap! { "locked" => true }).unwrap();
    tb.run_for(SimDuration::from_secs(2));
    let model = tb.check("D1").unwrap();
    assert_eq!(model.status(&"locked".into()).unwrap().as_bool(), Some(false));
    assert_eq!(
        model.lookup(&"last_actuation".into()).unwrap().as_str(),
        Some("failed"),
        "the app can observe the failed actuation"
    );
}

#[test]
fn cluster_scale_survives_node_count_one() {
    // degenerate topology: everything on one node still works (the
    // laptop IS the cluster — the paper's premise)
    let mut tb = Testbed::ec2(1, full_catalog(), TestbedConfig { seed: 5, ..Default::default() });
    for i in 0..20 {
        tb.run_with("Occupancy", &format!("O{i}"), no_params(), true).unwrap();
    }
    tb.run("Room", "R1").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    for i in 0..20 {
        tb.attach(&format!("O{i}"), "R1").unwrap();
    }
    tb.run_for(SimDuration::from_secs(10));
    let presence = tb
        .check("R1")
        .unwrap()
        .lookup(&"human_presence".into())
        .and_then(Value::as_bool)
        .unwrap();
    for i in 0..20 {
        let t = tb
            .check(&format!("O{i}"))
            .unwrap()
            .lookup(&"triggered".into())
            .and_then(Value::as_bool)
            .unwrap();
        assert_eq!(t, presence);
    }
}
