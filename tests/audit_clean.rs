//! Self-audit regression: `dbox audit` must run clean over the seven
//! simulation crates — zero unsuppressed findings, zero stale
//! suppressions, zero legacy annotations. This is the determinism gate
//! that used to be `scripts/lint_determinism.sh`; keeping it as a test
//! means a hazard (or a rotting `// det-ok` excuse) fails `cargo test`
//! before it ever reaches CI.

use std::path::{Path, PathBuf};

use digibox_analysis::audit::{audit_paths, AuditOptions, DEFAULT_CRATES};

/// The workspace root: cwd under the offline harness, two levels up under
/// `cargo test` (which runs from `crates/integration`).
fn repo_root() -> PathBuf {
    for candidate in [".", "../.."] {
        if Path::new(candidate).join("crates/core/src/lib.rs").exists() {
            return PathBuf::from(candidate);
        }
    }
    panic!("workspace root not found from {:?}", std::env::current_dir());
}

#[test]
fn simulation_crates_audit_clean() {
    let root = repo_root();
    let paths: Vec<PathBuf> = DEFAULT_CRATES.iter().map(|c| root.join(c)).collect();
    let report = audit_paths(&paths, &AuditOptions::default()).expect("audit walks the tree");
    assert!(report.files >= 50, "walked only {} files — path set wrong?", report.files);
    assert!(
        report.is_clean(),
        "determinism audit found hazards:\n{}",
        report.render_pretty()
    );
    // the one excused hash-order iteration (registry object store) stays
    // excused through its checked det-ok annotation, not by accident
    assert!(report.suppressed >= 1, "expected the registry det-ok(DH0002) suppression");
}

#[test]
fn audit_report_is_byte_stable() {
    let root = repo_root();
    let paths: Vec<PathBuf> = DEFAULT_CRATES.iter().map(|c| root.join(c)).collect();
    let a = audit_paths(&paths, &AuditOptions::default()).unwrap().to_json();
    let b = audit_paths(&paths, &AuditOptions::default()).unwrap().to_json();
    assert_eq!(a, b, "two runs over the same tree must render identically");
}

#[test]
fn obs_crate_is_also_clean() {
    // crates/obs sits outside the kernel envelope (so outside the default
    // set), but it feeds digests and snapshots — hold it to the same bar.
    let report =
        audit_paths(&[repo_root().join("crates/obs")], &AuditOptions::default()).unwrap();
    assert!(report.is_clean(), "{}", report.render_pretty());
}
