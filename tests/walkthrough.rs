//! The paper's end-to-end walkthrough as one integration test: scenes from
//! the device library, an application from `digibox-apps`, properties,
//! logging — everything the Fig. 1 workflow touches, across every crate.

use digibox_apps::SmartBuildingApp;
use digibox_core::properties::DigiCondition;
use digibox_core::{Condition, SceneProperty};
use digibox_integration::{laptop, no_params};
use digibox_model::Value;
use digibox_net::SimDuration;

#[test]
fn fig1_workflow_with_application() {
    let mut tb = laptop(2026);

    // ② write/reuse scenes: pull types from the built-in library
    for s in ["O1", "O2"] {
        tb.run_with("Occupancy", s, no_params(), true).unwrap();
    }
    tb.run_with("Underdesk", "D1", no_params(), true).unwrap();
    tb.run("Lamp", "L1").unwrap();
    tb.run_with("Room", "MeetingRoom", no_params(), false).unwrap();
    tb.run_for(SimDuration::from_secs(1));
    for s in ["O1", "O2", "D1", "L1"] {
        tb.attach(s, "MeetingRoom").unwrap();
    }

    // scene property: desks may not be occupied in an empty room
    tb.add_property(SceneProperty::never(
        "no-desk-in-empty-room",
        vec![
            DigiCondition::new("D1", Condition::eq("triggered", true)),
            DigiCondition::new("O1", Condition::eq("triggered", false)),
        ],
    ));

    // ④ run the application against the scene
    let mut app = SmartBuildingApp::new(&mut tb, 5);
    app.add_room("MeetingRoom", &["O1", "O2"], &["D1"], Some("L1"));

    for _ in 0..120 {
        tb.run_for(SimDuration::from_millis(500));
        app.step(&mut tb);
    }

    // the app tracked occupancy and controlled the lamp
    let (occupied, _) = app.occupancy("MeetingRoom").unwrap();
    let lamp_status = tb
        .check("L1")
        .unwrap()
        .status(&"power".into())
        .unwrap()
        .as_str()
        .map(str::to_string)
        .unwrap();
    // after the last step the lamp follows the occupancy the app saw most
    // recently — allow one transition of slack by checking the command
    // count instead of exact equality
    assert!(app.lamp_commands() > 0, "app should have driven the lamp");
    let _ = (occupied, lamp_status);

    // ⑤ debug/analyze with the logs: the scene maintained the invariant
    assert!(
        tb.violations().is_empty(),
        "scene-centric simulation must not produce impossible states: {:?}",
        tb.violations().iter().map(|v| v.paper_line()).collect::<Vec<_>>()
    );

    // the app saw a coherent ensemble throughout
    assert_eq!(app.sensors_consistent("MeetingRoom"), Some(true));

    // the trace captured the full conversation
    let log = tb.log();
    assert!(log.view().source("MeetingRoom").tag("event").count() > 5, "scene generated events");
    assert!(log.view().source("L1").tag("model").count() > 0, "lamp state changes logged");
    assert!(log.view().tag("message").count() > 10, "messages logged");
}

#[test]
fn device_mobility_changes_aggregation() {
    // §5 urban sensing through the public API only
    let mut tb = laptop(8);
    tb.run_with("AirQuality", "Phone", no_params(), true).unwrap();
    tb.run_with("StreetBlock", "Busy", no_params(), true).unwrap();
    tb.run_with("StreetBlock", "Quiet", no_params(), true).unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.digi("Busy").unwrap().borrow_mut().force_fields(
        tb.sim(),
        digibox_model::vmap! { "pedestrians" => 300, "noise_db" => 75.0, "streetlights_on" => false },
    );
    tb.digi("Quiet").unwrap().borrow_mut().force_fields(
        tb.sim(),
        digibox_model::vmap! { "pedestrians" => 0, "noise_db" => 35.0, "streetlights_on" => false },
    );
    tb.attach("Phone", "Quiet").unwrap();
    tb.run_for(SimDuration::from_secs(3));
    let quiet = tb
        .check("Phone")
        .unwrap()
        .lookup(&"pm25_ugm3".into())
        .and_then(Value::as_float)
        .unwrap();
    tb.detach("Phone", "Quiet").unwrap();
    tb.attach("Phone", "Busy").unwrap();
    tb.run_for(SimDuration::from_secs(3));
    let busy = tb
        .check("Phone")
        .unwrap()
        .lookup(&"pm25_ugm3".into())
        .and_then(Value::as_float)
        .unwrap();
    assert!(busy > quiet, "re-attached sensor must pick up the new scene's environment");
}
