//! The space-parallel island engine end-to-end (DESIGN.md §15): one
//! 10k-digi campaign partitioned into island kernels must produce
//! byte-identical stats snapshots and checkpoint hashes whether it runs
//! on 1 worker thread, 4, or one per core — the `--islands` knob is a
//! wall-clock knob, never a semantics knob. Also: a panicking island
//! fails the run by name without poisoning the process, and a fault
//! window healing between barriers cannot reorder delivery relative to
//! a committed lookahead horizon.

use digibox_core::islands::{self, IslandEnv, IslandSpec, IslandsConfig};
use digibox_core::{Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_net::chaos::{FaultKind, FaultWindow};
use digibox_net::{SimDuration, SimTime};

/// An island-scoped testbed on the shared cluster topology: owns node
/// `env.island`, every foreign node cordoned at construction.
fn island_testbed(env: &IslandEnv) -> digibox_core::Result<Testbed> {
    Ok(Testbed::new(
        env.topology.clone(),
        full_catalog(),
        TestbedConfig { seed: env.seed, home_node: Some(env.island as u32), ..Default::default() },
    ))
}

/// Four islands, each hosting a 2500-digi occupancy pool — 10k digis in
/// one logical simulation, one kernel per island.
fn pooled_specs() -> Vec<IslandSpec> {
    (0..4)
        .map(|i| {
            IslandSpec::new(format!("pool-{i}"), move |env: &IslandEnv| {
                let mut tb = island_testbed(env)?;
                let names: Vec<String> = (0..2500).map(|d| format!("P{i}x{d}")).collect();
                tb.run_pool("Occupancy", &names, Default::default(), false)?;
                tb.run_for(SimDuration::from_secs(1));
                Ok(tb)
            })
        })
        .collect()
}

/// One full run at the given worker count, reduced to the per-island
/// digest tuple: final clock, digi count, obs snapshot JSON, and the
/// checkpoint hashes (taken after a fresh `checkpoint_all`).
fn digests(workers: usize, faults: &[FaultWindow]) -> (Vec<String>, u64, u64) {
    let config = IslandsConfig { workers, ..IslandsConfig::default() };
    let run = islands::run(
        7,
        pooled_specs(),
        &config,
        SimDuration::from_secs(5),
        faults,
        |island, tb, t0| {
            tb.checkpoint_all();
            let hashes: Vec<String> = tb
                .checkpoint_digests()
                .into_iter()
                .map(|(name, digest)| format!("{name}={digest}"))
                .collect();
            format!(
                "island={island} t0={} now={} digis={} stats={} checkpoints=[{}]",
                t0.as_nanos(),
                tb.now().as_nanos(),
                tb.digi_count(),
                tb.obs_snapshot().to_json(),
                hashes.join(",")
            )
        },
    )
    .expect("island run succeeds");
    (run.results, run.epochs, run.cross_datagrams)
}

#[test]
fn ten_thousand_digis_digest_identically_across_worker_counts() {
    let (serial, epochs1, cross1) = digests(1, &[]);
    let (four, epochs4, cross4) = digests(4, &[]);
    let (all, epochs_all, cross_all) = digests(0, &[]);

    assert_eq!(serial.len(), 4);
    assert!(serial.iter().all(|d| d.contains("digis=2500")), "{serial:?}");
    assert_eq!(serial, four, "workers=4 diverged from workers=1");
    assert_eq!(serial, all, "workers=all diverged from workers=1");
    assert_eq!((epochs1, cross1), (epochs4, cross4));
    assert_eq!((epochs1, cross1), (epochs_all, cross_all));
    // the uplink beacons guarantee cross-island traffic actually flowed,
    // so the equality above exercises the canonical merge, not silence
    assert!(cross1 > 0, "expected cross-island datagrams, got none");
}

#[test]
fn mid_window_heal_cannot_slip_past_a_committed_horizon() {
    // A degrade window whose heal edge (2.35s) falls between the 5 ms
    // lookahead barriers and away from any uplink period multiple: the
    // engine must fence the barrier loop at both edges, recompute the
    // lookahead horizon, and keep delivery order identical on every
    // worker count. Before edge-fencing, a heal mid-epoch shrank link
    // delays retroactively and let a datagram arrive "before" a horizon
    // the serial run had already committed — which this catches as a
    // digest mismatch.
    let window = |start_ms: u64, end_ms: u64, kind: FaultKind| FaultWindow {
        index: 0,
        start: SimTime::ZERO + SimDuration::from_millis(start_ms),
        end: SimTime::ZERO + SimDuration::from_millis(end_ms),
        kind,
    };
    let faults = vec![
        window(1_200, 2_350, FaultKind::Degrade { loss: 0.0, extra_delay_ms: 40, extra_jitter_ms: 3 }),
        window(3_100, 4_750, FaultKind::Partition { left: vec![0], right: vec![1, 2, 3] }),
    ];

    let (serial, epochs_faulted, _) = digests(1, &faults);
    let (parallel, _, _) = digests(4, &faults);
    let (baseline, epochs_calm, _) = digests(1, &[]);

    assert_eq!(serial, parallel, "chaos windows broke worker invariance");
    // the fault edges are fences, so the faulted run takes extra epochs
    assert!(
        epochs_faulted > epochs_calm,
        "fault edges must fence the barrier loop ({epochs_faulted} vs {epochs_calm})"
    );
    // and the faults actually perturbed the simulation relative to calm
    assert_ne!(serial, baseline, "fault windows had no observable effect");
}

#[test]
fn panicking_island_fails_the_run_by_name_without_poisoning_others() {
    let mut specs = pooled_specs();
    specs[2] = IslandSpec::new("doomed", |env: &IslandEnv| {
        if env.island == 2 {
            panic!("island kernel exploded");
        }
        island_testbed(env)
    });

    let err = islands::run(
        7,
        specs,
        &IslandsConfig { workers: 4, ..IslandsConfig::default() },
        SimDuration::from_secs(2),
        &[],
        |_, tb, _| tb.now().as_nanos(),
    )
    .expect_err("a panicking island must fail the run");
    assert!(err.contains("island 2 (doomed)"), "error must name the island: {err}");
    assert!(err.contains("island kernel exploded"), "panic payload lost: {err}");

    // the engine unwound cleanly: the same process can immediately run a
    // healthy campaign and still digest deterministically
    let (a, _, _) = digests(1, &[]);
    let (b, _, _) = digests(4, &[]);
    assert_eq!(a, b, "a prior island panic must not poison later runs");
}
