//! `dbox lint` over the shipped library and over fixture ensembles.
//!
//! This test deliberately avoids materializing a testbed: the analyzer
//! works on manifests + catalog programs alone, which is exactly the point
//! of linting *before* the kernel runs (and it keeps the test runnable
//! under the offline serde stubs).

use std::collections::BTreeMap;

use digibox_analysis::{lint_catalog, lint_ensemble, Ensemble, LintCode, Options, Severity};
use digibox_core::properties::DigiCondition;
use digibox_core::{Condition, SceneProperty};
use digibox_devices::full_catalog;
use digibox_net::SimDuration;
use digibox_registry::{InstanceDecl, SetupManifest};

fn decl(name: &str, kind: &str, managed: bool) -> InstanceDecl {
    InstanceDecl {
        name: name.into(),
        kind: kind.into(),
        version: "v1".into(),
        managed,
        params: BTreeMap::new(),
    }
}

/// The whole built-in library is lint-clean: every mock and scene writes
/// only fields the relevant schema declares.
#[test]
fn builtin_library_is_lint_clean() {
    let report = lint_catalog(&full_catalog(), &Options::default());
    assert!(report.is_clean(), "library regressed:\n{}", report.render_pretty());
}

/// Every registered kind can be probed; probing is deterministic.
#[test]
fn probing_covers_and_is_deterministic() {
    let catalog = full_catalog();
    let a = digibox_analysis::profile_catalog(&catalog);
    let b = digibox_analysis::profile_catalog(&catalog);
    assert_eq!(a.len(), catalog.len());
    for (kind, pa) in &a {
        let pb = &b[kind];
        assert_eq!(pa.on_loop.writes, pb.on_loop.writes, "{kind} probe not deterministic");
        assert_eq!(pa.on_model.att_writes, pb.on_model.att_writes);
    }
    // spot-check: the paper's fig. 5 room coordinates occupancy sensors
    assert!(a["Room"].att_writes().any(|(k, p)| k == "Occupancy" && p == "triggered"));
}

/// The paper-walkthrough ensemble lints down to a single note: the lamp
/// attachment is application-driven, which static analysis cannot see.
#[test]
fn walkthrough_ensemble_lints_to_one_note() {
    let mut m = SetupManifest::new("meeting-room", 42);
    m.instances.push(decl("O1", "Occupancy", true));
    m.instances.push(decl("O2", "Occupancy", true));
    m.instances.push(decl("D1", "Underdesk", true));
    m.instances.push(decl("L1", "Lamp", false));
    m.instances.push(decl("MeetingRoom", "Room", false));
    for child in ["O1", "O2", "D1", "L1"] {
        m.attachments.push((child.into(), "MeetingRoom".into()));
    }
    let ensemble = Ensemble::new(m).with_properties(vec![SceneProperty::never(
        "lamp-off-when-empty",
        vec![
            DigiCondition::new("L1", Condition::eq("power.status", "on")),
            DigiCondition::new("O1", Condition::eq("triggered", false)),
        ],
    )]);
    let report = lint_ensemble(&full_catalog(), &ensemble, &Options::default());
    assert!(!report.has_errors(), "{}", report.render_pretty());
    assert_eq!(report.warnings(), 0, "{}", report.render_pretty());
    assert_eq!(report.infos(), 1, "{}", report.render_pretty());
    assert_eq!(report.diagnostics[0].code, LintCode::InertAttachment);
    assert_eq!(report.diagnostics[0].severity, Severity::Info);
}

/// A manifest that trips every graph/kind code at once; lint reports all
/// of them (it does not stop at the first, unlike `validate`).
#[test]
fn broken_graph_reports_every_code() {
    let mut m = SetupManifest::new("broken", 1);
    m.instances.push(decl("a/b", "Lamp", false)); // DL0004
    m.instances.push(decl("F1", "Fna", false)); // DL0005
    m.instances.push(decl("X", "Lamp", false));
    m.instances.push(decl("X", "Fan", false)); // DL0008
    m.instances.push(decl("L2", "Lamp", false));
    m.instances.push(decl("O1", "Occupancy", false));
    m.instances.push(decl("R1", "Room", false));
    m.instances.push(decl("R2", "Room", false));
    m.attachments.push(("ghost".into(), "R1".into())); // DL0007
    m.attachments.push(("O1".into(), "R1".into()));
    m.attachments.push(("O1".into(), "R2".into())); // DL0010
    m.attachments.push(("L2".into(), "X".into())); // DL0009 (Lamp parent)
    m.attachments.push(("R1".into(), "R2".into()));
    m.attachments.push(("R2".into(), "R1".into())); // DL0006
    let report = lint_ensemble(&full_catalog(), &Ensemble::new(m), &Options::default());
    let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code.as_str()).collect();
    for expected in ["DL0004", "DL0005", "DL0006", "DL0007", "DL0008", "DL0009", "DL0010"] {
        assert!(codes.contains(&expected), "missing {expected} in {codes:?}");
    }
    assert!(report.has_errors());
}

/// Write-conflict detection on real library programs: an unmanaged
/// Temperature under a Room fights the room's thermal coordination.
#[test]
fn unmanaged_temperature_under_room_conflicts() {
    let mut m = SetupManifest::new("conflict", 1);
    m.instances.push(decl("T1", "Temperature", false));
    m.instances.push(decl("R1", "Room", false));
    m.attachments.push(("T1".into(), "R1".into()));
    let report = lint_ensemble(&full_catalog(), &Ensemble::new(m), &Options::default());
    let conflict = report
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::WriteConflict)
        .unwrap_or_else(|| panic!("expected DL0001:\n{}", report.render_pretty()));
    assert_eq!(conflict.span.digi.as_deref(), Some("T1"));
    assert!(conflict.message.contains("managed=true"));

    // the walkthrough idiom — managed child — is clean
    let mut m = SetupManifest::new("ok", 1);
    m.instances.push(decl("T1", "Temperature", true));
    m.instances.push(decl("R1", "Room", false));
    m.attachments.push(("T1".into(), "R1".into()));
    let report = lint_ensemble(&full_catalog(), &Ensemble::new(m), &Options::default());
    assert!(report.is_clean(), "{}", report.render_pretty());
}

/// Property vacuity over a real ensemble: unknown digi, missing path,
/// contradiction, unreachable conclusion.
#[test]
fn property_codes_fire() {
    let mut m = SetupManifest::new("props", 1);
    m.instances.push(decl("O1", "Occupancy", true));
    m.instances.push(decl("R1", "Room", false));
    m.attachments.push(("O1".into(), "R1".into()));
    let properties = vec![
        SceneProperty::never(
            "ghost-digi",
            vec![DigiCondition::new("L9", Condition::eq("power.status", "on"))], // DL0011
        ),
        SceneProperty::never(
            "typo-path",
            vec![DigiCondition::new("O1", Condition::eq("trigered", true))], // DL0012
        ),
        SceneProperty::always(
            "empty-band",
            vec![
                DigiCondition::new("R1", Condition::gt("temp_c", 30.0)),
                DigiCondition::new("R1", Condition::lt("temp_c", 10.0)), // DL0013
            ],
        ),
        SceneProperty::leads_to(
            "never-concludes",
            vec![DigiCondition::new("O1", Condition::eq("triggered", true))],
            vec![DigiCondition::new("R1", Condition::gt("ambient_c", 30.0))], // DL0014
            SimDuration::from_secs(2),
        ),
    ];
    let ensemble = Ensemble::new(m).with_properties(properties);
    let report = lint_ensemble(&full_catalog(), &ensemble, &Options::default());
    let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code.as_str()).collect();
    for expected in ["DL0011", "DL0012", "DL0013", "DL0014"] {
        assert!(codes.contains(&expected), "missing {expected} in {codes:?}");
    }
    assert_eq!(report.diagnostics.len(), 4, "{}", report.render_pretty());
}

/// Suppression: per-digi `lint_allow` params and the JSON output contract.
#[test]
fn suppression_and_json_output() {
    let mut m = SetupManifest::new("suppress", 1);
    let mut lamp = decl("L1", "Lamp", false);
    lamp.params.insert("lint_allow".into(), digibox_model::Value::Str("DL0002".into()));
    m.instances.push(lamp);
    m.instances.push(decl("R1", "Room", false));
    m.attachments.push(("L1".into(), "R1".into()));
    let report = lint_ensemble(&full_catalog(), &Ensemble::new(m), &Options::default());
    assert!(report.is_clean(), "{}", report.render_pretty());
    assert_eq!(report.suppressed, 1);

    // JSON is valid and carries the counts
    let json = report.to_json();
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("lint JSON parses");
    assert_eq!(parsed["suppressed"].as_i64(), Some(1));
    assert_eq!(parsed["errors"].as_i64(), Some(0));
    assert!(parsed["findings"].as_array().is_some_and(|a| a.is_empty()));
}
