//! Determinism regression for the observability layer (`digibox_obs`):
//!
//! * the stats snapshot — canonical JSON and folded stacks — must be
//!   byte-identical across two runs of the same scene and seed;
//! * turning metrics **off** must change nothing observable: the trace
//!   digest and model states are bit-identical to a metrics-on run,
//!   because recording never touches the kernel's event order or any RNG.

use digibox_core::{Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_integration::no_params;
use digibox_net::SimDuration;
use digibox_registry::sha256;

const SENSORS: usize = 30;
const ROOMS: usize = 3;

/// Build and run the scene, then return (trace digest, stats JSON,
/// folded stacks). `metrics` toggles the obs layer for the whole run.
fn scene(seed: u64, metrics: bool) -> (String, String, String) {
    let mut tb = Testbed::laptop(
        full_catalog(),
        TestbedConfig { seed, metrics, ..Default::default() },
    );
    tb.run_with("Building", "HQ", no_params(), true).unwrap();
    for r in 0..ROOMS {
        tb.run_with("Room", &format!("R{r}"), no_params(), true).unwrap();
    }
    for s in 0..SENSORS {
        tb.run_with("Occupancy", &format!("O{s}"), no_params(), false).unwrap();
    }
    tb.run_for(SimDuration::from_secs(2));
    for r in 0..ROOMS {
        tb.attach(&format!("R{r}"), "HQ").unwrap();
    }
    for s in 0..SENSORS {
        tb.attach(&format!("O{s}"), &format!("R{}", s % ROOMS)).unwrap();
    }
    tb.run_for(SimDuration::from_secs(20));

    let trace_digest = sha256(&digibox_trace::archive::write(&tb.log().records())).to_string();
    let snap = tb.obs_snapshot();
    (trace_digest, snap.to_json(), snap.folded())
}

#[test]
fn stats_json_is_byte_identical_across_runs() {
    let (_, json_a, folded_a) = scene(42, true);
    let (_, json_b, folded_b) = scene(42, true);
    assert_eq!(json_a, json_b, "stats JSON diverged between identical runs");
    assert_eq!(folded_a, folded_b, "folded stacks diverged between identical runs");
    assert!(json_a.contains("\"kernel.events\":"), "{json_a}");
    assert!(json_a.contains("\"broker.publishes\":"), "{json_a}");
    assert!(json_a.contains("\"digi.on_loop\":"), "{json_a}");
    assert!(json_a.contains("\"checkpoint.passes\":"), "{json_a}");
}

#[test]
fn folded_stacks_are_valid_flamegraph_input() {
    let (_, _, folded) = scene(42, true);
    assert!(!folded.is_empty(), "a running scene must record spans");
    for line in folded.lines() {
        // `path;of;frames <count>` — exactly one space, positive weight.
        let (path, count) = line.rsplit_once(' ').expect("line has a weight");
        assert!(!path.is_empty() && !path.ends_with(';'), "bad path {line:?}");
        assert!(count.parse::<u64>().expect("weight is a number") > 0, "{line:?}");
    }
    // Handler frames nest under the kernel dispatch spans.
    assert!(folded.contains("digi.on_loop"), "{folded}");
    assert!(folded.lines().any(|l| l.starts_with("kernel.")), "{folded}");
}

#[test]
fn metrics_off_changes_no_behavior() {
    let (trace_on, _, _) = scene(42, true);
    let (trace_off, json_off, folded_off) = scene(42, false);
    assert_eq!(
        trace_on, trace_off,
        "disabling metrics must not perturb the simulation"
    );
    // An off-run snapshot is empty — nothing was recorded.
    assert!(!json_off.contains("\"kernel.events\":"), "{json_off}");
    assert!(folded_off.is_empty(), "{folded_off}");
}
