//! Documentation regression: `docs/CLI.md` must cover the CLI that
//! actually ships. Every verb and every long flag in `dbox --help`
//! (exported as [`digibox_cli::usage`]) has to appear in the reference —
//! so the doc cannot silently drift when a verb is added or renamed.

use std::path::Path;

fn cli_reference() -> String {
    // cwd is the repo root under the offline harness and
    // `crates/integration` under cargo — probe both.
    for candidate in ["docs/CLI.md", "../../docs/CLI.md"] {
        if Path::new(candidate).exists() {
            return std::fs::read_to_string(candidate).expect("docs/CLI.md is readable");
        }
    }
    panic!("docs/CLI.md not found from {:?}", std::env::current_dir());
}

/// Verbs from the usage text: the token after "dbox " on each usage line.
fn usage_verbs() -> Vec<String> {
    let mut verbs: Vec<String> = digibox_cli::usage()
        .lines()
        .filter_map(|l| l.trim_start().strip_prefix("dbox "))
        .filter_map(|rest| rest.split_whitespace().next())
        .map(String::from)
        .collect();
    verbs.sort();
    verbs.dedup();
    verbs
}

#[test]
fn every_usage_verb_is_documented() {
    let doc = cli_reference();
    let verbs = usage_verbs();
    assert!(verbs.len() >= 20, "usage text lists the full verb set: {verbs:?}");
    for verb in &verbs {
        assert!(
            doc.contains(&format!("`dbox {verb}")),
            "docs/CLI.md has no section or example for `dbox {verb}`"
        );
    }
}

#[test]
fn every_usage_flag_is_documented() {
    let doc = cli_reference();
    let mut flags: Vec<&str> = digibox_cli::usage()
        .split_whitespace()
        .filter(|w| w.starts_with("--"))
        .map(|w| w.trim_matches(|c: char| !c.is_alphanumeric() && c != '-'))
        .collect();
    flags.sort();
    flags.dedup();
    assert!(!flags.is_empty());
    for flag in flags {
        assert!(doc.contains(flag), "docs/CLI.md does not mention {flag}");
    }
}

#[test]
fn documented_verbs_exist() {
    // The reverse direction: every `### dbox <verb>` heading in the doc
    // must be a real verb, so removed commands get scrubbed from the doc.
    let doc = cli_reference();
    let verbs = usage_verbs();
    for line in doc.lines() {
        let Some(rest) = line.strip_prefix("### `dbox ") else { continue };
        let verb = rest.split(|c: char| c == ' ' || c == '`').next().unwrap_or_default();
        assert!(
            verbs.contains(&verb.to_string()),
            "docs/CLI.md documents unknown verb {verb:?}"
        );
    }
}

#[test]
fn exit_codes_are_documented() {
    let doc = cli_reference();
    for needle in ["exit code", "0", "1", "2"] {
        assert!(doc.contains(needle), "docs/CLI.md must describe exit codes ({needle})");
    }
}
