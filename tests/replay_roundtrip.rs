//! E5 — trace replay (paper §3.5): record a run, archive it, replay it on
//! a fresh testbed, and verify the replayed model-state sequence matches
//! the original exactly.

use digibox_integration::{laptop, no_params};
use digibox_net::SimDuration;
use digibox_trace::{archive, diff_traces, RecordKind, ReplaySchedule, TraceRecord};

/// Build the paper's walkthrough testbed and let it run.
fn record_run(seed: u64) -> (Vec<TraceRecord>, Vec<u8>) {
    let mut tb = laptop(seed);
    tb.run_with("Occupancy", "O1", no_params(), true).unwrap();
    tb.run("Lamp", "L1").unwrap();
    tb.run("Room", "MeetingRoom").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.attach("O1", "MeetingRoom").unwrap();
    tb.attach("L1", "MeetingRoom").unwrap();
    tb.run_for(SimDuration::from_secs(10));
    let records = tb.log().records();
    let bytes = archive::write(&records);
    (records, bytes)
}

#[test]
fn replay_reproduces_model_state_sequence() {
    let (original, bytes) = record_run(77);

    // recipient: same setup, replay the shared archive
    let mut tb = laptop(999); // different seed on purpose: replay must not depend on it
    tb.run_with("Occupancy", "O1", no_params(), true).unwrap();
    tb.run_with("Lamp", "L1", no_params(), true).unwrap();
    tb.run_with("Room", "MeetingRoom", no_params(), true).unwrap();
    tb.run_for(SimDuration::from_secs(1));
    let records = archive::read(&bytes).unwrap();
    let schedule = ReplaySchedule::from_records(&records);
    assert!(!schedule.is_empty());
    let replay_from = tb.log().records().len();
    tb.replay(&schedule).unwrap();
    tb.run_for(SimDuration::from_nanos(schedule.duration().as_nanos() + 1_000_000_000));

    // every digi ends in exactly the recorded final state
    for (name, fields) in schedule.final_states() {
        let model = tb.check(&name).unwrap();
        assert_eq!(
            model.fields(),
            &fields,
            "{name} diverged from the recorded final state"
        );
    }

    // and the *sequence* of replayed model changes matches the original's
    // model-change sequence (same sources, same snapshots, in order)
    let replayed: Vec<TraceRecord> = tb.log().records()[replay_from..]
        .iter()
        .filter(|r| matches!(r.kind, RecordKind::ModelChange { .. }))
        .cloned()
        .collect();
    let original_changes: Vec<TraceRecord> = original
        .iter()
        .filter(|r| matches!(r.kind, RecordKind::ModelChange { .. }))
        .cloned()
        .collect();
    // Compare snapshots per source in order (replay applies snapshots, so
    // patch fields may differ, but the state sequence may not).
    let states = |rs: &[TraceRecord]| -> Vec<(String, digibox_model::Value)> {
        rs.iter()
            .filter_map(|r| match &r.kind {
                RecordKind::ModelChange { fields, .. } => Some((r.source.clone(), fields.clone())),
                _ => None,
            })
            .collect()
    };
    let mut got = states(&replayed);
    let want = states(&original_changes);
    // The replay may coalesce identical consecutive snapshots, and it
    // skips the leading snapshots that equal the recipient's fresh default
    // state (forcing a model to the state it is already in publishes
    // nothing). So the replayed sequence must be a *suffix* of the
    // original, missing at most one initial publication per digi.
    got.dedup();
    let mut want_dedup = want.clone();
    want_dedup.dedup();
    assert!(!got.is_empty(), "replay produced no model changes");
    assert!(
        want_dedup.ends_with(&got),
        "replayed state sequence diverged:\n got: {got:?}\nwant: {want_dedup:?}"
    );
    let digis = schedule.sources().len();
    assert!(
        got.len() + digis >= want_dedup.len(),
        "replay skipped more than the initial states: {} + {digis} < {}",
        got.len(),
        want_dedup.len()
    );
}

#[test]
fn archive_shares_losslessly() {
    let (original, bytes) = record_run(11);
    let back = archive::read(&bytes).unwrap();
    assert_eq!(original, back);
    assert_eq!(diff_traces(&original, &back), None);
}

#[test]
fn recorded_runs_are_seed_reproducible() {
    // the same seed records the same trace — the foundation replay rests on
    let (a, _) = record_run(5);
    let (b, _) = record_run(5);
    assert_eq!(diff_traces(&a, &b), None, "same seed must give identical traces");
    let (c, _) = record_run(6);
    assert!(diff_traces(&a, &c).is_some(), "different seeds must differ");
}

#[test]
fn replay_speed_is_bounded_by_trace_duration() {
    let (_, bytes) = record_run(3);
    let records = archive::read(&bytes).unwrap();
    let schedule = ReplaySchedule::from_records(&records);
    let mut tb = laptop(1);
    tb.run_with("Occupancy", "O1", no_params(), true).unwrap();
    tb.run_with("Lamp", "L1", no_params(), true).unwrap();
    tb.run_with("Room", "MeetingRoom", no_params(), true).unwrap();
    tb.run_for(SimDuration::from_secs(1));
    let wall = std::time::Instant::now();
    tb.replay(&schedule).unwrap();
    tb.run_for(SimDuration::from_nanos(schedule.duration().as_nanos() + 1_000_000));
    // an 11-virtual-second replay executes in well under a second of wall
    // time: replay is for debugging, not re-simulation
    assert!(wall.elapsed().as_secs() < 5, "replay too slow: {:?}", wall.elapsed());
}
