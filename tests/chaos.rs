//! Chaos campaigns end-to-end: seeded fault plans against a real
//! ensemble, checkpointed recovery, and the degradation-aware scorecard
//! (paper §6 — faults/failures and network connectivity on a laptop).

use digibox_core::campaign::Campaign;
use digibox_core::properties::DigiCondition;
use digibox_core::{Condition, SceneProperty, Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_model::Value;
use digibox_net::chaos::{FaultKind, FaultPlan, FaultSpec};
use digibox_net::SimDuration;
use digibox_trace::RecordKind;

/// A two-node room ensemble with the paper's lamp-follows-vacancy
/// property — the fixture every campaign in this file runs against.
fn room_testbed(seed: u64) -> digibox_core::Result<Testbed> {
    let config = TestbedConfig {
        seed,
        broker_session_timeout: Some(SimDuration::from_secs(2)),
        ..Default::default()
    };
    let mut tb = Testbed::ec2(2, full_catalog(), config);
    tb.run_with("Occupancy", "O1", Default::default(), true)?;
    tb.run_with("Room", "R1", Default::default(), false)?;
    tb.run_with("Lamp", "L1", Default::default(), false)?;
    tb.run_for(SimDuration::from_secs(1));
    tb.attach("O1", "R1")?;
    tb.attach("L1", "R1")?;
    tb.add_property(SceneProperty::leads_to(
        "lamp-follows-vacancy",
        vec![DigiCondition::new("O1", Condition::eq("triggered", false))],
        vec![DigiCondition::new("L1", Condition::eq("power.status", "off"))],
        SimDuration::from_secs(5),
    ));
    tb.run_for(SimDuration::from_secs(2));
    Ok(tb)
}

fn mixed_plan() -> FaultPlan {
    FaultPlan::new("mixed", 40_000, 5_000)
        .with(FaultSpec {
            at_ms: 5_000,
            duration_ms: 3_000,
            jitter_ms: 2_000,
            kind: FaultKind::CrashDigi { digi: "O1".into() },
        })
        .with(FaultSpec {
            at_ms: 15_000,
            duration_ms: 5_000,
            jitter_ms: 1_000,
            kind: FaultKind::Partition { left: vec![0], right: vec![1] },
        })
        .with(FaultSpec {
            at_ms: 28_000,
            duration_ms: 5_000,
            jitter_ms: 2_000,
            kind: FaultKind::Degrade { loss: 0.15, extra_delay_ms: 10, extra_jitter_ms: 5 },
        })
}

#[test]
fn scorecard_digest_is_deterministic() {
    let campaign = Campaign::new(mixed_plan()).unwrap();
    let a = campaign.run(&[1, 2], room_testbed).unwrap();
    let b = campaign.run(&[1, 2], room_testbed).unwrap();
    assert_eq!(a.digest(), b.digest(), "same plan + seeds must give an identical scorecard");
    assert_eq!(a.to_json(), b.to_json());

    // a different seed takes a different trajectory (jittered windows,
    // different crash timing) — the digest must reflect that
    let c = campaign.run(&[3], room_testbed).unwrap();
    assert_ne!(a.digest(), c.digest());
}

#[test]
fn restart_restores_checkpointed_model() {
    let mut tb = room_testbed(7).unwrap();
    // drive the lamp on, then cross a checkpoint boundary (every 5 s by
    // default) so the "on" state lands in a snapshot
    tb.edit("L1", digibox_model::vmap! { "power" => "on" }).unwrap();
    tb.run_for(SimDuration::from_secs(6));
    let before = tb.check("L1").unwrap();
    assert_eq!(
        before.lookup(&"power.status".into()).and_then(Value::as_str),
        Some("on"),
        "lamp should be on before the crash"
    );

    tb.kill("L1").unwrap();
    tb.run_for(SimDuration::from_secs(3));

    // the supervisor restarted it from the checkpoint, not cold
    let restored_from_checkpoint = tb.log().records().iter().any(|r| {
        r.source == "L1"
            && matches!(
                &r.kind,
                RecordKind::Lifecycle { action, detail }
                    if action == "restarted" && detail == "from checkpoint"
            )
    });
    assert!(restored_from_checkpoint, "restart should restore the last checkpoint");
    let after = tb.check("L1").unwrap();
    assert_eq!(
        after.lookup(&"power.status".into()).and_then(Value::as_str),
        Some("on"),
        "restarted lamp must resume from its checkpointed state"
    );
}

#[test]
fn library_campaign_is_clean_post_heal() {
    let campaign = Campaign::new(mixed_plan()).unwrap();
    let scorecard = campaign.run(&[1, 2], room_testbed).unwrap();

    // the faults really happened...
    let restarts: u64 =
        scorecard.per_seed.iter().flat_map(|s| s.restarts.values()).sum();
    assert!(restarts >= 2, "each seed should restart the crashed digi: {scorecard:?}");
    for s in &scorecard.per_seed {
        let worst =
            s.availability.values().cloned().fold(1.0_f64, f64::min);
        assert!(worst < 1.0, "the crashed digi should show downtime (seed {})", s.seed);
        assert!(s.checkpoints_taken > 0, "checkpoints should be taken (seed {})", s.seed);
    }

    // ...and yet after every window heals + convergence grace, the
    // ensemble settles: no hard failures
    assert_eq!(
        scorecard.post_heal_violations(),
        0,
        "post-heal violations:\n{}",
        scorecard.render()
    );
    assert!(scorecard.clean());
}
