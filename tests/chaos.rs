//! Chaos campaigns end-to-end: seeded fault plans against a real
//! ensemble, checkpointed recovery, and the degradation-aware scorecard
//! (paper §6 — faults/failures and network connectivity on a laptop).

use std::collections::BTreeMap;

use digibox_broker::QoS;
use digibox_core::campaign::Campaign;
use digibox_core::properties::DigiCondition;
use digibox_core::{AppEvent, Condition, SceneProperty, Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_model::Value;
use digibox_net::chaos::{FaultKind, FaultPlan, FaultSpec};
use digibox_net::SimDuration;
use digibox_trace::RecordKind;

/// A two-node room ensemble with the paper's lamp-follows-vacancy
/// property — the fixture every campaign in this file runs against.
fn room_testbed(seed: u64) -> digibox_core::Result<Testbed> {
    let config = TestbedConfig {
        seed,
        broker_session_timeout: Some(SimDuration::from_secs(2)),
        ..Default::default()
    };
    let mut tb = Testbed::ec2(2, full_catalog(), config);
    tb.run_with("Occupancy", "O1", Default::default(), true)?;
    tb.run_with("Room", "R1", Default::default(), false)?;
    tb.run_with("Lamp", "L1", Default::default(), false)?;
    tb.run_for(SimDuration::from_secs(1));
    tb.attach("O1", "R1")?;
    tb.attach("L1", "R1")?;
    tb.add_property(SceneProperty::leads_to(
        "lamp-follows-vacancy",
        vec![DigiCondition::new("O1", Condition::eq("triggered", false))],
        vec![DigiCondition::new("L1", Condition::eq("power.status", "off"))],
        SimDuration::from_secs(5),
    ));
    tb.run_for(SimDuration::from_secs(2));
    Ok(tb)
}

fn mixed_plan() -> FaultPlan {
    FaultPlan::new("mixed", 40_000, 5_000)
        .with(FaultSpec {
            at_ms: 5_000,
            duration_ms: 3_000,
            jitter_ms: 2_000,
            kind: FaultKind::CrashDigi { digi: "O1".into() },
        })
        .with(FaultSpec {
            at_ms: 15_000,
            duration_ms: 5_000,
            jitter_ms: 1_000,
            kind: FaultKind::Partition { left: vec![0], right: vec![1] },
        })
        .with(FaultSpec {
            at_ms: 28_000,
            duration_ms: 5_000,
            jitter_ms: 2_000,
            kind: FaultKind::Degrade { loss: 0.15, extra_delay_ms: 10, extra_jitter_ms: 5 },
        })
}

#[test]
fn scorecard_digest_is_deterministic() {
    let campaign = Campaign::new(mixed_plan()).unwrap();
    let a = campaign.run(&[1, 2], room_testbed).unwrap();
    let b = campaign.run(&[1, 2], room_testbed).unwrap();
    assert_eq!(a.digest(), b.digest(), "same plan + seeds must give an identical scorecard");
    assert_eq!(a.to_json(), b.to_json());

    // a different seed takes a different trajectory (jittered windows,
    // different crash timing) — the digest must reflect that
    let c = campaign.run(&[3], room_testbed).unwrap();
    assert_ne!(a.digest(), c.digest());
}

#[test]
fn restart_restores_checkpointed_model() {
    let mut tb = room_testbed(7).unwrap();
    // drive the lamp on, then cross a checkpoint boundary (every 5 s by
    // default) so the "on" state lands in a snapshot
    tb.edit("L1", digibox_model::vmap! { "power" => "on" }).unwrap();
    tb.run_for(SimDuration::from_secs(6));
    let before = tb.check("L1").unwrap();
    assert_eq!(
        before.lookup(&"power.status".into()).and_then(Value::as_str),
        Some("on"),
        "lamp should be on before the crash"
    );

    tb.kill("L1").unwrap();
    tb.run_for(SimDuration::from_secs(3));

    // the supervisor restarted it from the checkpoint, not cold
    let restored_from_checkpoint = tb.log().records().iter().any(|r| {
        r.source == "L1"
            && matches!(
                &r.kind,
                RecordKind::Lifecycle { action, detail }
                    if action == "restarted" && detail == "from checkpoint"
            )
    });
    assert!(restored_from_checkpoint, "restart should restore the last checkpoint");
    let after = tb.check("L1").unwrap();
    assert_eq!(
        after.lookup(&"power.status".into()).and_then(Value::as_str),
        Some("on"),
        "restarted lamp must resume from its checkpointed state"
    );
}

#[test]
fn broker_crash_mid_qos2_handshake_is_exactly_once() {
    let mut tb = Testbed::ec2(
        2,
        full_catalog(),
        TestbedConfig { seed: 11, ..Default::default() },
    );
    let node = tb.broker_addr().node;
    let sub = tb.app_with_persistent_mqtt(node, "sub");
    let publisher = tb.app_with_persistent_mqtt(node, "pub");
    tb.run_for(SimDuration::from_millis(200));
    sub.borrow_mut().subscribe(tb.sim(), &[("chaos/t", QoS::ExactlyOnce)]);
    tb.run_for(SimDuration::from_millis(200));

    // three messages delivered while the broker is healthy...
    for i in 0..3 {
        let payload = format!("m{i}").into_bytes();
        publisher.borrow_mut().publish(tb.sim(), "chaos/t", payload, QoS::ExactlyOnce);
    }
    tb.run_for(SimDuration::from_secs(2));

    // ...then two more whose four-way handshakes the crash interrupts:
    // 10 ms is enough for the PUBLISH legs to land but not for the
    // handshakes to finish, so the broker dies holding half-open state.
    for i in 3..5 {
        let payload = format!("m{i}").into_bytes();
        publisher.borrow_mut().publish(tb.sim(), "chaos/t", payload, QoS::ExactlyOnce);
    }
    tb.run_for(SimDuration::from_millis(10));
    tb.kill_broker(SimDuration::from_secs(3));
    assert!(tb.broker_down());

    // The subscriber is otherwise idle and would never notice the dead
    // broker; a heartbeat publish gives its transport traffic to time out
    // on, which triggers the persistent client's redial loop.
    sub.borrow_mut().publish(tb.sim(), "hb/sub", &b"ping"[..], QoS::AtLeastOnce);

    // Outage (3 s) + two retry-exhaustion cycles per client (~2.75 s
    // each: the first redial rides the stale transport stream) + the
    // resumed retransmits. 20 s is a comfortable envelope.
    tb.run_for(SimDuration::from_secs(20));
    assert!(!tb.broker_down(), "broker restarted by the scheduled rebind");

    let killed = tb.log().records().iter().any(|r| {
        r.source == "broker"
            && matches!(&r.kind, RecordKind::Lifecycle { action, .. } if action == "killed")
    });
    let restarted = tb.log().records().iter().any(|r| {
        r.source == "broker"
            && matches!(&r.kind, RecordKind::Lifecycle { action, .. } if action == "restarted")
    });
    assert!(killed, "broker kill should be logged");
    assert!(restarted, "broker restart should be logged");

    // Exactly once: every payload arrives, none twice — the interrupted
    // handshakes finish via DUP retransmit + packet-id dedup on the
    // sessions the fresh broker imported from the checkpoint store.
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for ev in sub.borrow_mut().poll_all() {
        if let AppEvent::Message { topic, payload } = ev {
            if topic == "chaos/t" {
                *counts.entry(String::from_utf8_lossy(&payload).into_owned()).or_default() += 1;
            }
        }
    }
    for i in 0..5 {
        let p = format!("m{i}");
        assert_eq!(
            counts.get(&p),
            Some(&1),
            "payload {p} must be delivered exactly once: {counts:?}"
        );
    }
    assert_eq!(counts.len(), 5, "no stray deliveries: {counts:?}");

    // both durable sessions resumed on the post-restart broker
    let broker = tb.broker();
    let stats = broker.borrow().stats().clone();
    assert!(
        stats.session_resumes >= 2,
        "both persistent clients should resume their sessions: {stats:?}"
    );
    assert_eq!(publisher.borrow().unacked_publishes(), 0, "all handshakes completed");
}

/// A campaign whose only fault is a broker-pod crash. Generous
/// convergence: after the rebind each client needs two retry-exhaustion
/// cycles (~5.5 s) before its redial lands, then the 5 s property
/// deadline on top.
fn broker_crash_plan() -> FaultPlan {
    FaultPlan::new("broker-crash", 45_000, 15_000).with(FaultSpec {
        at_ms: 5_000,
        duration_ms: 4_000,
        jitter_ms: 1_000,
        kind: FaultKind::CrashBroker,
    })
}

#[test]
fn broker_crash_campaign_is_clean_and_jobs_invariant() {
    let campaign = Campaign::new(broker_crash_plan()).unwrap();
    let a = campaign.run_jobs(&[1, 2], 1, room_testbed).unwrap();
    let b = campaign.run_jobs(&[1, 2], 2, room_testbed).unwrap();
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "scorecard must be byte-identical across --jobs"
    );
    assert_eq!(a.digest(), b.digest());

    assert!(a.errors.is_empty(), "no seed may fail: {a:?}");
    for s in &a.per_seed {
        assert!(
            s.metrics.get("control.broker_restarts").copied().unwrap_or(0) >= 1,
            "the broker crash must actually happen (seed {}): {:?}",
            s.seed,
            s.metrics
        );
    }

    // exactly-once under chaos: once the broker is back and the ensemble
    // has had its convergence grace, the scene satisfies its properties
    assert_eq!(
        a.post_heal_violations(),
        0,
        "post-heal violations:\n{}",
        a.render()
    );
    assert!(a.clean());
}

#[test]
fn library_campaign_is_clean_post_heal() {
    let campaign = Campaign::new(mixed_plan()).unwrap();
    let scorecard = campaign.run(&[1, 2], room_testbed).unwrap();

    // the faults really happened...
    let restarts: u64 =
        scorecard.per_seed.iter().flat_map(|s| s.restarts.values()).sum();
    assert!(restarts >= 2, "each seed should restart the crashed digi: {scorecard:?}");
    for s in &scorecard.per_seed {
        let worst =
            s.availability.values().cloned().fold(1.0_f64, f64::min);
        assert!(worst < 1.0, "the crashed digi should show downtime (seed {})", s.seed);
        assert!(s.checkpoints_taken > 0, "checkpoints should be taken (seed {})", s.seed);
    }

    // ...and yet after every window heals + convergence grace, the
    // ensemble settles: no hard failures
    assert_eq!(
        scorecard.post_heal_violations(),
        0,
        "post-heal violations:\n{}",
        scorecard.render()
    );
    assert!(scorecard.clean());
}
