//! Quickstart — the paper's Fig. 1 workflow in ~60 lines:
//!
//! 1. create a testbed, 2. `dbox run` a mock lamp, occupancy sensor and a
//! room scene, 3. attach them, 4. interact (`dbox edit`), 5. inspect
//! (`dbox check`) and read the trace.
//!
//! Run with: `cargo run --example quickstart`

use digibox_core::{Dbox, Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_model::vmap;
use digibox_net::SimDuration;

fn main() {
    // A testbed simulating the paper's local environment: one laptop node
    // running the broker and every digi as a microservice.
    let testbed = Testbed::laptop(full_catalog(), TestbedConfig::default());
    let mut dbox = Dbox::new(testbed);

    // dbox run Occupancy O1 / dbox run Lamp L1 / dbox run Room MeetingRoom
    dbox.run("Occupancy", "O1").unwrap();
    dbox.run("Lamp", "L1").unwrap();
    dbox.run("Room", "MeetingRoom").unwrap();

    // dbox attach O1 MeetingRoom; dbox attach L1 MeetingRoom
    dbox.attach("O1", "MeetingRoom").unwrap();
    dbox.attach("L1", "MeetingRoom").unwrap();

    // let the scene generate a few events
    dbox.testbed().run_for(SimDuration::from_secs(5));

    // dbox edit L1 — turn the lamp on at 70 % like a user would
    dbox.edit("L1", vmap! { "power" => "on", "intensity" => 0.7 }).unwrap();

    // dbox check L1 — print the model as the console would
    let (_, rendered) = dbox.check("L1").unwrap();
    println!("--- dbox check L1 ---\n{rendered}");

    let (room, _) = dbox.check("MeetingRoom").unwrap();
    println!("--- dbox check MeetingRoom ---\n{}", room.summary());

    // the trace captured everything (paper §3.5), in the paper's line format
    println!("--- last 10 trace lines ---");
    let records = dbox.testbed().log().records();
    for r in records.iter().rev().take(10).rev() {
        println!("{}", r.paper_line());
    }
    println!(
        "\ntestbed ran {} digis, trace holds {} records — all inside one process.",
        dbox.testbed().digi_count(),
        records.len()
    );
}
