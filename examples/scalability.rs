//! Scalability — the paper's §4 microbenchmarks, runnable as an example:
//!
//! * local: 50 occupancy sensors in 2 rooms on one laptop node; average
//!   REST GET latency (paper: < 20 ms);
//! * cloud: 1000 sensors, 100 rooms, 5 buildings on 2 m5.xlarge nodes
//!   (paper: < 60 ms, network delay included).
//!
//! Run with: `cargo run --release --example scalability`

use std::collections::BTreeMap;

use digibox_core::{Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_net::SimDuration;

/// Build `sensors` occupancy mocks spread over `rooms` room scenes (and
/// optionally buildings), then measure REST GETs from an app endpoint.
fn run(
    label: &str,
    mut tb: Testbed,
    sensors: usize,
    rooms: usize,
    buildings: usize,
    gets: usize,
) {
    let managed = BTreeMap::new;
    for b in 0..buildings {
        tb.run_with("Building", &format!("B{b}"), managed(), true).unwrap();
    }
    for r in 0..rooms {
        tb.run_with("Room", &format!("R{r}"), managed(), true).unwrap();
    }
    for s in 0..sensors {
        tb.run_with("Occupancy", &format!("O{s}"), managed(), true).unwrap();
    }
    tb.run_for(SimDuration::from_secs(2)); // containers start
    for r in 0..rooms {
        if buildings > 0 {
            tb.attach(&format!("R{r}"), &format!("B{}", r % buildings)).unwrap();
        }
    }
    for s in 0..sensors {
        tb.attach(&format!("O{s}"), &format!("R{}", s % rooms)).unwrap();
    }
    tb.run_for(SimDuration::from_secs(2));

    // the client runs on the first node, like the paper's curl/driver
    let client_node = tb.broker_addr().node;
    let app = tb.app(client_node);
    let targets: Vec<_> =
        (0..sensors).map(|s| tb.digi_addr(&format!("O{s}")).unwrap()).collect();
    let wall = std::time::Instant::now();
    for i in 0..gets {
        let target = targets[i % targets.len()];
        app.borrow_mut().get(tb.sim(), target, "/model");
        tb.run_for(SimDuration::from_millis(25));
    }
    tb.run_for(SimDuration::from_secs(1));
    let wall_elapsed = wall.elapsed();

    let app_ref = app.borrow();
    let h = app_ref.latencies();
    println!(
        "{label:<28} sensors={sensors:<5} rooms={rooms:<4} n={} mean={} p50={} p99={} max={}  (wall: {:.2?})",
        h.count(),
        h.mean(),
        h.p50(),
        h.p99(),
        h.max(),
        wall_elapsed,
    );
}

fn main() {
    println!("=== paper §4 microbenchmarks (simulated deployments) ===\n");
    let catalog = full_catalog;
    // E1 — local: MacBook-class laptop, 50 sensors / 2 rooms
    run(
        "E1 local (laptop)",
        Testbed::laptop(catalog(), TestbedConfig { seed: 1, logging: false, ..Default::default() }),
        50,
        2,
        0,
        200,
    );
    // E2 — cloud: 2× m5.xlarge, 1000 sensors / 100 rooms / 5 buildings
    run(
        "E2 cloud (2x m5.xlarge)",
        Testbed::ec2(2, catalog(), TestbedConfig { seed: 2, logging: false, ..Default::default() }),
        1000,
        100,
        5,
        300,
    );
    println!("\npaper reference points: local < 20 ms, cloud < 60 ms average GET latency");
}
