//! Supply chain — a cold-chain audit app (paper §1/§5): a shipment rides a
//! refrigerated truck across a multi-leg route; the app watches cargo
//! monitors for temperature excursions and produces an audit report.
//!
//! Run with: `cargo run --example supply_chain`

use std::collections::BTreeMap;

use digibox_apps::ColdChainApp;
use digibox_core::{Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_model::Value;
use digibox_net::SimDuration;

fn main() {
    let mut tb = Testbed::laptop(full_catalog(), TestbedConfig { seed: 11, ..Default::default() });

    // shipment = cargo monitor + GPS tracker, riding a truck on a route
    // The pallet's monitor and the tracker run *unmanaged*: their own
    // simulation loops (thermal pull toward ambient, movement along the
    // leg) keep running, while the scenes write the inputs (ambient
    // temperature from the truck, leg endpoints from the route).
    let mut pallet_params: BTreeMap<String, Value> = BTreeMap::new();
    pallet_params.insert("interval_ms".into(), Value::Int(500));
    pallet_params.insert("thermal_tau_s".into(), Value::Float(60.0));
    tb.run_with("CargoCondition", "Pallet1", pallet_params, false).unwrap();
    let mut gps_params: BTreeMap<String, Value> = BTreeMap::new();
    gps_params.insert("leg_secs".into(), Value::Float(30.0));
    tb.run_with("GpsTracker", "Tracker1", gps_params, false).unwrap();
    tb.run("ColdChainTruck", "Truck1").unwrap();
    let mut route_params: BTreeMap<String, Value> = BTreeMap::new();
    route_params.insert("legs".into(), Value::Int(3));
    tb.run_with("SupplyChainRoute", "Route-SFO-LAX", route_params, true).unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.attach("Pallet1", "Truck1").unwrap();
    tb.attach("Tracker1", "Route-SFO-LAX").unwrap();

    // the auditing application
    let mut app = ColdChainApp::new(&mut tb, 8.0);
    app.track("Pallet1");

    println!("=== cold-chain run (simulated 2 minutes) ===");
    for minute_half in 0..24 {
        tb.run_for(SimDuration::from_secs(5));
        app.step(&mut tb);
        if minute_half % 4 == 0 {
            let truck = tb.check("Truck1").unwrap();
            let state = truck.lookup(&"state".into()).and_then(Value::as_str).unwrap_or("?");
            let box_c =
                truck.lookup(&"box_c".into()).and_then(Value::as_float).unwrap_or(f64::NAN);
            let pallet = app.temperature("Pallet1").unwrap_or(f64::NAN);
            println!(
                "t={:>4}s truck={state:<10} box={box_c:>6.2}°C pallet={pallet:>6.2}°C compliant={}",
                (minute_half + 1) * 5,
                app.is_compliant("Pallet1"),
            );
        }
    }

    println!("\n=== audit report ===");
    let audit = app.audit();
    if audit.is_empty() {
        println!("no cold-chain excursions — shipment compliant");
    } else {
        for e in audit {
            println!(
                "EXCURSION shipment={} first_seen={} peak={:.2}°C",
                e.shipment, e.first_seen, e.peak_temp_c
            );
        }
    }

    // route progress
    let route = tb.check("Route-SFO-LAX").unwrap();
    println!(
        "route leg {}/{} delivered={}",
        route.lookup(&"leg".into()).and_then(Value::as_int).unwrap_or(0),
        route.lookup(&"legs_total".into()).and_then(Value::as_int).unwrap_or(0),
        route.lookup(&"delivered".into()).and_then(Value::as_bool).unwrap_or(false),
    );
}
