//! Smart building — the paper's §1 motivating application: a building app
//! monitors room occupancy across heterogeneous sensors, drives lighting,
//! and alerts on overcrowding; the building/room scenes provide the
//! correlated device behaviour the app is tested against.
//!
//! Run with: `cargo run --example smart_building`

use std::collections::BTreeMap;

use digibox_apps::SmartBuildingApp;
use digibox_core::properties::DigiCondition;
use digibox_core::{Condition, SceneProperty, Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_net::SimDuration;

fn main() {
    let mut tb = Testbed::laptop(full_catalog(), TestbedConfig::default());

    // --- scene setup (Fig. 6): a conference center with two rooms ---
    let managed = BTreeMap::new;
    for s in ["O1", "O2"] {
        tb.run_with("Occupancy", s, managed(), true).unwrap();
    }
    tb.run_with("Underdesk", "D1", managed(), true).unwrap();
    tb.run_with("Occupancy", "K-O1", managed(), true).unwrap();
    tb.run("Lamp", "L1").unwrap();
    tb.run_with("Room", "MeetingRoom", managed(), true).unwrap();
    tb.run_with("Kitchen", "Kitchen1", managed(), true).unwrap();
    tb.run("Building", "ConfCenter").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    for (child, parent) in [
        ("O1", "MeetingRoom"),
        ("O2", "MeetingRoom"),
        ("D1", "MeetingRoom"),
        ("L1", "MeetingRoom"),
        ("K-O1", "Kitchen1"),
        ("MeetingRoom", "ConfCenter"),
        ("Kitchen1", "ConfCenter"),
    ] {
        tb.attach(child, parent).unwrap();
    }

    // --- scene property (paper §3.3): lamp must go off within 5 s of the
    // room emptying ---
    tb.add_property(SceneProperty::leads_to(
        "lamp-follows-vacancy",
        vec![DigiCondition::new("O1", Condition::eq("triggered", false))],
        vec![DigiCondition::new("L1", Condition::eq("power.status", "off"))],
        SimDuration::from_secs(5),
    ));

    // --- the application under test ---
    let mut app = SmartBuildingApp::new(&mut tb, 3);
    app.add_room("MeetingRoom", &["O1", "O2"], &["D1"], Some("L1"));
    app.add_room("Kitchen1", &["K-O1"], &[], None);

    // run for a simulated minute, stepping the app every 500 ms
    for _ in 0..120 {
        tb.run_for(SimDuration::from_millis(500));
        app.step(&mut tb);
    }

    println!("=== smart-building app after 60 simulated seconds ===");
    for room in ["MeetingRoom", "Kitchen1"] {
        let (occupied, count) = app.occupancy(room).unwrap();
        println!("{room:<12} occupied={occupied:<5} estimated_occupants={count}");
    }
    println!("lamp commands issued: {}", app.lamp_commands());
    println!("alerts: {}", app.alerts().len());
    for a in app.alerts().iter().take(5) {
        println!("  {a:?}");
    }
    let violations = tb.violations();
    println!("scene-property violations detected by Digibox: {}", violations.len());
    for v in violations.iter().take(3) {
        println!("  {}", v.paper_line());
    }
    println!(
        "consistency check (scene-centric keeps sensors coherent): {:?}",
        app.sensors_consistent("MeetingRoom")
    );
}
