//! Fidelity ablation (paper, Fig. 7 / experiment E4): the same smart-
//! building application tested under device-centric vs scene-centric
//! simulation.
//!
//! Device-centric simulators generate each sensor independently, so the
//! app constantly observes *impossible* states (desk occupied, room empty)
//! and its occupancy estimate is garbage; the scene-centric testbed
//! produces coherent ensembles. The gap is the paper's core argument.
//!
//! Run with: `cargo run --example fidelity_ablation`

use std::collections::BTreeMap;

use digibox_apps::SmartBuildingApp;
use digibox_core::{FidelityMode, Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_net::SimDuration;

/// Run the app against a testbed at the given fidelity and measure how
/// often the room's sensor ensemble is consistent.
fn run_mode(fidelity: FidelityMode, seed: u64) -> (u32, u32) {
    let mut tb =
        Testbed::laptop(full_catalog(), TestbedConfig { seed, fidelity, ..Default::default() });
    let managed = BTreeMap::new;
    for s in ["O1", "O2", "D1"] {
        let kind = if s == "D1" { "Underdesk" } else { "Occupancy" };
        tb.run_with(kind, s, managed(), true).unwrap();
    }
    tb.run_with("Room", "MeetingRoom", managed(), false).unwrap();
    tb.run_for(SimDuration::from_secs(1));
    for s in ["O1", "O2", "D1"] {
        tb.attach(s, "MeetingRoom").unwrap();
    }

    let mut app = SmartBuildingApp::new(&mut tb, 10);
    app.add_room("MeetingRoom", &["O1", "O2"], &["D1"], None);

    let mut consistent = 0u32;
    let mut samples = 0u32;
    for _ in 0..120 {
        tb.run_for(SimDuration::from_millis(500));
        app.step(&mut tb);
        if let Some(ok) = app.sensors_consistent("MeetingRoom") {
            samples += 1;
            consistent += u32::from(ok);
        }
    }
    (consistent, samples)
}

fn main() {
    println!("=== E4: fidelity ablation (paper Fig. 7) ===");
    println!("app-visible sensor-ensemble consistency over 60 simulated seconds\n");
    println!("{:<16} {:>12} {:>12} {:>14}", "mode", "consistent", "samples", "consistency");
    for (label, mode) in [
        ("device-centric", FidelityMode::DeviceCentric),
        ("scene-centric", FidelityMode::SceneCentric),
    ] {
        let mut total_c = 0;
        let mut total_s = 0;
        for seed in [1, 2, 3] {
            let (c, s) = run_mode(mode, seed);
            total_c += c;
            total_s += s;
        }
        println!(
            "{label:<16} {total_c:>12} {total_s:>12} {:>13.1}%",
            100.0 * total_c as f64 / total_s.max(1) as f64
        );
    }
    println!(
        "\nthe device-centric rows show the correlation bugs (impossible sensor\n\
         combinations) that the paper argues device simulators cannot avoid;\n\
         scene-centric simulation holds the ensemble invariant."
    );
}
