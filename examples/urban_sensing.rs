//! Urban sensing — mobile devices collect air-quality data as they move
//! through the city (paper §5); mobility is modeled by re-attaching mocks
//! between street-block scenes, and the app aggregates per block.
//!
//! Run with: `cargo run --example urban_sensing`

use std::collections::BTreeMap;

use digibox_apps::UrbanSensingApp;
use digibox_core::{Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_model::Value;
use digibox_net::SimDuration;

fn main() {
    let mut tb = Testbed::laptop(full_catalog(), TestbedConfig { seed: 5, ..Default::default() });

    // three blocks with very different traffic levels
    let blocks = ["Downtown", "Industrial", "Park"];
    let peak = [300i64, 150, 15];
    for (b, p) in blocks.iter().zip(peak) {
        let mut params: BTreeMap<String, Value> = BTreeMap::new();
        params.insert("peak_pedestrians".into(), Value::Int(p));
        params.insert("day_secs".into(), Value::Float(120.0)); // 2-minute days
        tb.run_with("StreetBlock", b, params, false).unwrap();
    }
    // five phone-borne sensors
    let phones: Vec<String> = (1..=5).map(|i| format!("Phone{i}")).collect();
    for p in &phones {
        let mut params: BTreeMap<String, Value> = BTreeMap::new();
        params.insert("interval_ms".into(), Value::Int(500));
        tb.run_with("AirQuality", p, params, true).unwrap();
    }
    tb.run_for(SimDuration::from_secs(1));

    let mut app = UrbanSensingApp::new(&mut tb);

    // phones start downtown
    for p in &phones {
        tb.attach(p, "Downtown").unwrap();
        app.assign(p, "Downtown");
    }

    // every 20 simulated seconds, phones move to the next block
    let mut current = 0usize;
    for step in 0..12 {
        tb.run_for(SimDuration::from_secs(5));
        app.step(&mut tb);
        if step % 4 == 3 {
            let next = (current + 1) % blocks.len();
            for p in &phones {
                tb.detach(p, blocks[current]).unwrap();
                tb.attach(p, blocks[next]).unwrap();
                app.assign(p, blocks[next]);
            }
            println!("phones moved {} → {}", blocks[current], blocks[next]);
            current = next;
        }
    }

    println!("\n=== city air-quality view (aggregated from mobile sensors) ===");
    for (block, stats) in app.city_view() {
        println!(
            "{block:<12} samples={:<4} mean PM2.5={:>6.2} µg/m³ max={:>6.2}",
            stats.samples, stats.mean_pm25, stats.max_pm25
        );
    }
    let hotspots = app.hotspots(12.0);
    println!("hotspots above 12 µg/m³: {hotspots:?}");
}
