//! Standalone record/replay check: a dependency-free miniature of the
//! trace store + replay subsystem (DESIGN.md §16), runnable with bare
//! `rustc -O` in registry-less environments.
//!
//! The real CI `replay-smoke` job drives `dbox record`/`dbox replay`
//! end-to-end; offline, the dbox binary cannot materialize testbeds
//! (the serde stub is typecheck-only), so this script re-runs the same
//! sequence — record, replay, compare digests, diff a mutated fixture —
//! against a miniature that shares the subsystem's load-bearing
//! invariants:
//!
//! 1. **Chunk dedup**: positional 256-record chunks with canonical
//!    encoding — extending a recorded trace stores only the new tail.
//! 2. **Bisection**: a one-field mutation is found at its exact record
//!    index by comparing chunk digests first, decoding only the first
//!    differing chunk.
//! 3. **Replay determinism**: replaying a recorded trace on the
//!    miniature event kernel reproduces the original state digest
//!    byte-for-byte, twice.
//! 4. **Inclusive end bound**: a record at the final virtual instant
//!    (sub-millisecond nanos) is executed by the exact-nanos inclusive
//!    bound and dropped by the old millisecond-truncated one — the
//!    `export-trace` → `replay` round-trip off-by-one, pinned.
//!
//! ```text
//! rustc --edition 2021 -O scripts/standalone_replay.rs -o /tmp/sreplay
//! /tmp/sreplay BENCH_replay.json
//! ```
//!
//! Exits non-zero if any invariant fails; `scripts/check_offline.sh`
//! relies on that.

use std::collections::BTreeMap;
use std::time::Instant;

const CHUNK_RECORDS: usize = 256;

/// One trace record: (seq, ts_nanos, source, field -> value).
#[derive(Clone, PartialEq)]
struct Record {
    seq: u64,
    ts: u64,
    source: String,
    fields: BTreeMap<String, i64>,
}

impl Record {
    /// Canonical encoding: BTreeMap iteration makes this byte-stable,
    /// the same property the real `Value::Map` serialization has.
    fn encode(&self) -> String {
        let kv: Vec<String> =
            self.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{}|{}|{}|{}", self.seq, self.ts, self.source, kv.join(","))
    }
}

/// FNV-1a 64 over a byte string — the miniature's content digest.
fn digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Content-addressed store: digest -> chunk bytes (the miniature of the
/// registry's object table).
#[derive(Default)]
struct Store {
    objects: BTreeMap<u64, String>,
    refs: BTreeMap<String, Vec<u64>>,
}

impl Store {
    /// Chunk + store; returns how many objects were new (dedup metric).
    fn record(&mut self, name: &str, records: &[Record]) -> usize {
        let mut new_objects = 0;
        let mut chunks = Vec::new();
        for chunk in records.chunks(CHUNK_RECORDS) {
            let body: Vec<String> = chunk.iter().map(Record::encode).collect();
            let bytes = body.join("\n");
            let d = digest(bytes.as_bytes());
            if self.objects.insert(d, bytes).is_none() {
                new_objects += 1;
            }
            chunks.push(d);
        }
        self.refs.insert(name.to_string(), chunks);
        new_objects
    }

    fn load(&self, name: &str) -> Vec<Record> {
        let mut out = Vec::new();
        for d in &self.refs[name] {
            for line in self.objects[d].lines() {
                let mut parts = line.splitn(4, '|');
                let seq = parts.next().unwrap().parse().unwrap();
                let ts = parts.next().unwrap().parse().unwrap();
                let source = parts.next().unwrap().to_string();
                let fields = parts
                    .next()
                    .unwrap()
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|kv| {
                        let (k, v) = kv.split_once('=').unwrap();
                        (k.to_string(), v.parse().unwrap())
                    })
                    .collect();
                out.push(Record { seq, ts, source, fields });
            }
        }
        out
    }

    /// Bisect: first divergent chunk via digests, then the exact record
    /// inside it — without decoding the shared prefix.
    fn diff(&self, a: &str, b: &str) -> Option<usize> {
        let (ca, cb) = (&self.refs[a], &self.refs[b]);
        let chunk = (0..ca.len().max(cb.len()))
            .find(|&i| ca.get(i) != cb.get(i))?;
        let decode = |chunks: &[u64], i: usize| -> Vec<String> {
            chunks
                .get(i)
                .map(|d| self.objects[d].lines().map(String::from).collect())
                .unwrap_or_default()
        };
        let (la, lb) = (decode(ca, chunk), decode(cb, chunk));
        let within = (0..la.len().max(lb.len()))
            .find(|&i| la.get(i) != lb.get(i))
            .unwrap_or(la.len().min(lb.len()));
        Some(chunk * CHUNK_RECORDS + within)
    }
}

/// Miniature deterministic kernel: sorted (ts, seq) steps, executed up
/// to a deadline. `inclusive` models the kernel's real `run_until`
/// contract; `false` models the off-by-one bound.
fn replay(records: &[Record], deadline: u64, inclusive: bool) -> u64 {
    let mut state: BTreeMap<String, BTreeMap<String, i64>> = BTreeMap::new();
    for r in records {
        let in_window = if inclusive { r.ts <= deadline } else { r.ts < deadline };
        if in_window {
            state.insert(r.source.clone(), r.fields.clone());
        }
    }
    let mut encoded = String::new();
    for (source, fields) in &state {
        encoded.push_str(source);
        for (k, v) in fields {
            encoded.push_str(&format!("{k}={v};"));
        }
    }
    digest(encoded.as_bytes())
}

/// A deterministic seeded run: the miniature of a managed-digi session.
fn generate(seed: u64, n: usize) -> Vec<Record> {
    let mut rng = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    (0..n)
        .map(|i| {
            let mut fields = BTreeMap::new();
            fields.insert("level".to_string(), (next() % 100) as i64);
            fields.insert("count".to_string(), i as i64);
            Record {
                seq: i as u64,
                // ~10ms cadence with sub-millisecond jitter, so the
                // final instant has non-zero sub-ms nanos.
                ts: (i as u64) * 10_000_000 + next() % 1_000_000,
                source: format!("digi{}", i % 7),
                fields,
            }
        })
        .collect()
}

fn main() {
    let out_path =
        std::env::args().nth(1).unwrap_or_else(|| "BENCH_replay.json".into());
    let t0 = Instant::now();
    let mut failures = Vec::new();

    // 1. Chunk dedup: a 5-chunk run, then the same run extended.
    let mut store = Store::default();
    let run = generate(42, 5 * CHUNK_RECORDS);
    let base_objects = store.record("smoke", &run);
    let mut longer = run.clone();
    longer.extend(generate(43, CHUNK_RECORDS).into_iter().enumerate().map(
        |(i, mut r)| {
            r.seq = (run.len() + i) as u64;
            r.ts = run.last().unwrap().ts + 10_000_000 * (i as u64 + 1);
            r
        },
    ));
    let tail_objects = store.record("longer", &longer);
    if base_objects != 5 || tail_objects != 1 {
        failures.push(format!(
            "dedup: expected 5 base + 1 tail objects, got {base_objects} + {tail_objects}"
        ));
    }

    // 2. Bisection pinpoints a single-field mutation.
    let victim = 3 * CHUNK_RECORDS + 17;
    let mut tampered = run.clone();
    tampered[victim].fields.insert("level".to_string(), -1);
    store.record("tampered", &tampered);
    match store.diff("smoke", "tampered") {
        Some(idx) if idx == victim => {}
        other => failures.push(format!("bisect: expected Some({victim}), got {other:?}")),
    }
    if store.diff("smoke", "smoke").is_some() {
        failures.push("bisect: identical traces must not diverge".into());
    }
    match store.diff("smoke", "longer") {
        Some(idx) if idx == run.len() => {}
        other => failures.push(format!(
            "bisect: prefix extension should diverge at {}, got {other:?}",
            run.len()
        )),
    }

    // 3. Replay determinism: record -> load -> replay twice, byte-equal.
    let loaded = store.load("smoke");
    if loaded != run {
        failures.push("store: load must round-trip the recorded records".into());
    }
    let span = run.last().unwrap().ts;
    let a = replay(&loaded, span, true);
    let b = replay(&store.load("smoke"), span, true);
    if a != b {
        failures.push(format!("replay: digests differ across runs ({a:#x} vs {b:#x})"));
    }

    // 4. Inclusive end bound: the final record has sub-ms nanos; the
    // exact inclusive bound keeps it, the truncated one drops it.
    let exact = replay(&loaded, span, true);
    let truncated_deadline = span / 1_000_000 * 1_000_000; // floor to ms
    let truncated = replay(&loaded, truncated_deadline, true);
    let exclusive = replay(&loaded, span, false);
    if exact == truncated {
        failures.push("bound: ms-truncated deadline must visibly drop the final record".into());
    }
    if exact == exclusive {
        failures.push("bound: exclusive deadline must visibly drop the final record".into());
    }

    let elapsed = t0.elapsed().as_secs_f64();
    let report = format!(
        "{{\"check\":\"standalone_replay\",\"records\":{},\"chunks\":{},\"victim\":{},\"digest\":\"{:#x}\",\"elapsed_s\":{:.4},\"failures\":{}}}\n",
        run.len(),
        store.refs["smoke"].len(),
        victim,
        a,
        elapsed,
        failures.len()
    );
    let _ = std::fs::write(&out_path, &report);
    print!("{report}");
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
