//! Standalone E13 scale measurement: per-digi-timer substrate vs
//! arena/columnar substrate at 10k / 100k / 1M digis, compiled directly
//! with `rustc -O` so the `max_digis_per_sec` row exists even where cargo
//! has no registry access (the fallback path of `scripts/bench_smoke.sh`).
//!
//! ```text
//! rustc --edition 2021 -O scripts/standalone_scale.rs -o /tmp/ssc
//! /tmp/ssc BENCH_scale.json            # full 10k/100k/1M sweep
//! /tmp/ssc /tmp/out.json --quick       # 10k only (check_offline.sh)
//! ```
//!
//! Each side is a faithful miniature of one storage design, driving the
//! same per-digi update sequence so the checksums must agree:
//!
//! * **baseline** — the pre-arena shape: one timer entry per digi in a
//!   `BinaryHeap` event queue, an `Addr -> service` `HashMap` probed on
//!   every dispatch, and per-digi field trees (`BTreeMap<String, i64>`)
//!   updated through string-keyed lookups.
//! * **arena** — the current shape: a slot ring with ONE entry per
//!   (slot, pool) tick group, a dense `Vec` service table, digi state in
//!   contiguous arena slabs, and model fields in struct-of-arrays
//!   columns written by direct index during a batched slot run.
//!
//! The update sequence (and therefore the checksum) is identical by
//! construction; only the storage and dispatch machinery differ, so the
//! events/sec ratio isolates exactly what the PR changed. The arena side
//! is also run twice and must checksum identically — the determinism
//! witness check_offline.sh gates on.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::time::Instant;

/// Digis per consolidated pool — mirrors the testbed's 10k-digi pool
/// pods (one tick-group timer entry per pool per period).
const POOL: usize = 10_000;
/// Virtual tick period (ns) — one slot ring revolution.
const PERIOD_NS: u64 = 1_000_000_000;
/// Target update count per (scale, design) run; rounds shrink as the
/// digi count grows so every row costs about the same wall time.
const TARGET_EVENTS: u64 = 4_000_000;

fn rounds_for(digis: usize) -> u64 {
    (TARGET_EVENTS / digis as u64).max(4)
}

/// The per-digi update both designs must apply identically: a cheap
/// deterministic mix of the digi's previous value and id.
#[inline]
fn step(prev: i64, digi: u32) -> i64 {
    prev.wrapping_mul(6364136223846793005).wrapping_add(digi as i64 | 1)
}

/// Baseline: N timer entries, hashed service lookup, tree models.
/// Returns (wall seconds, events fired, checksum, peak queue depth).
fn run_baseline(digis: usize, rounds: u64) -> (f64, u64, i64, usize) {
    let mut queue: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::with_capacity(digis);
    let mut services: HashMap<u32, usize> = HashMap::with_capacity(digis);
    let mut models: Vec<BTreeMap<String, i64>> = Vec::with_capacity(digis);
    let field = "sensor.reading".to_string();
    for d in 0..digis as u32 {
        services.insert(d, d as usize);
        let mut tree = BTreeMap::new();
        tree.insert(field.clone(), 0i64);
        models.push(tree);
    }
    let horizon = PERIOD_NS * rounds;
    let t = Instant::now();
    let mut seq = 0u64;
    for d in 0..digis as u32 {
        queue.push(Reverse((PERIOD_NS, seq, d)));
        seq += 1;
    }
    let peak_depth = queue.len();
    let mut fired = 0u64;
    while let Some(Reverse((at, _, d))) = queue.pop() {
        if at > horizon {
            break;
        }
        fired += 1;
        // per-dispatch hash probe (the old `services: HashMap<Addr, _>`)
        let svc = *services.get(&d).expect("digi bound");
        // string-keyed tree update (the old per-digi field tree)
        let slot = models[svc].get_mut(field.as_str()).expect("field exists");
        *slot = step(*slot, d);
        if at < horizon {
            queue.push(Reverse((at + PERIOD_NS, seq, d)));
            seq += 1;
        }
    }
    let wall = t.elapsed().as_secs_f64();
    let mut checksum = 0i64;
    for m in &models {
        checksum = checksum.wrapping_add(*m.get(field.as_str()).expect("field exists"));
    }
    (wall, fired, checksum, peak_depth)
}

/// One arena slab cell: generation + the digi's id (the "cell"); field
/// state lives in the column, not here.
#[derive(Clone, Copy)]
struct Cell {
    generation: u32,
    digi: u32,
}

/// Arena side: slot ring with one entry per (slot, pool) group, dense
/// service table, contiguous cells, columnar field storage.
/// Returns (wall seconds, events fired, checksum, peak queue depth).
fn run_arena(digis: usize, rounds: u64) -> (f64, u64, i64, usize) {
    let pools = digis.div_ceil(POOL);
    // dense service table: pool index -> member id range (no hashing)
    let members: Vec<(u32, u32)> = (0..pools)
        .map(|p| {
            let lo = (p * POOL) as u32;
            (lo, ((p + 1) * POOL).min(digis) as u32)
        })
        .collect();
    // arena slabs: contiguous cells, id == slot index
    let arena: Vec<Cell> = (0..digis as u32).map(|d| Cell { generation: 1, digi: d }).collect();
    // one struct-of-arrays column for the single field
    let mut column: Vec<i64> = vec![0i64; digis];
    // slot ring: one revolution per period, one entry per (slot, pool)
    let slots = 64usize;
    let mut ring: Vec<Vec<u32>> = vec![Vec::new(); slots];
    let t = Instant::now();
    for p in 0..pools as u32 {
        ring[0].push(p);
    }
    let peak_depth = pools; // queue holds one entry per pool, not per digi
    let mut fired = 0u64;
    for round in 0..rounds {
        let slot = (round as usize) % slots;
        let due = std::mem::take(&mut ring[slot]);
        for p in due {
            // batched slot run: tick every member through the columns
            let (lo, hi) = members[p as usize];
            for id in lo..hi {
                let cell = arena[id as usize];
                debug_assert_eq!(cell.generation, 1);
                let v = &mut column[id as usize];
                *v = step(*v, cell.digi);
                fired += 1;
            }
            // re-arm the group once (not once per member)
            ring[(slot + 1) % slots].push(p);
        }
    }
    let wall = t.elapsed().as_secs_f64();
    let checksum = column.iter().fold(0i64, |acc, v| acc.wrapping_add(*v));
    (wall, fired, checksum, peak_depth)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args.get(1).cloned().unwrap_or_else(|| "BENCH_scale.json".into());
    let quick = args.iter().any(|a| a == "--quick");
    let scales: &[usize] =
        if quick { &[10_000] } else { &[10_000, 100_000, 1_000_000] };

    let mut rows = String::new();
    let mut baseline_10k_eps = 0f64;
    let mut arena_100k_eps = 0f64;
    for (i, &digis) in scales.iter().enumerate() {
        let rounds = rounds_for(digis);
        let (base_s, base_fired, base_sum, base_depth) = run_baseline(digis, rounds);
        let (arena_s, arena_fired, arena_sum, arena_depth) = run_arena(digis, rounds);
        // identical update sequence -> identical counts and checksums
        assert_eq!(base_fired, arena_fired, "designs disagree on fired count at {digis}");
        assert_eq!(base_sum, arena_sum, "designs disagree on checksum at {digis}");
        // determinism witness: the arena side reruns byte-identically
        let (_, refired, resum, _) = run_arena(digis, rounds);
        assert_eq!((refired, resum), (arena_fired, arena_sum), "arena rerun diverged at {digis}");

        let base_eps = base_fired as f64 / base_s;
        let arena_eps = arena_fired as f64 / arena_s;
        // "how many digis could tick in real time": events/sec over the
        // per-digi tick rate (one tick per digi per simulated second)
        let max_digis_per_sec = arena_eps;
        if digis == 10_000 {
            baseline_10k_eps = base_eps;
        }
        if digis == 100_000 {
            arena_100k_eps = arena_eps;
        }
        let speedup = arena_eps / base_eps;
        eprintln!(
            "[standalone] E13 scale: digis={digis} rounds={rounds} \
             baseline={base_eps:.0}ev/s arena={arena_eps:.0}ev/s speedup={speedup:.2}x \
             queue_depth {base_depth}->{arena_depth}"
        );
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            r#"    {{ "digis": {digis}, "rounds": {rounds}, "events": {base_fired},
      "baseline": {{ "wall_clock_s": {base_s}, "events_per_sec": {base_eps}, "peak_queue_depth": {base_depth} }},
      "arena": {{ "wall_clock_s": {arena_s}, "events_per_sec": {arena_eps}, "peak_queue_depth": {arena_depth} }},
      "max_digis_per_sec": {max_digis_per_sec}, "speedup": {speedup} }}"#,
        ));
    }

    // The acceptance gate: the 100k-digi arena testbed sustains >= 5x the
    // events/sec of the 10k-digi per-digi-timer baseline.
    let gate = if quick {
        "skipped (--quick runs 10k only)".to_string()
    } else {
        let ratio = arena_100k_eps / baseline_10k_eps;
        eprintln!(
            "[standalone] E13 gate: arena@100k / baseline@10k = {ratio:.2}x (need >= 5)"
        );
        assert!(
            ratio >= 5.0,
            "arena@100k must beat baseline@10k by >=5x, got {ratio:.2}x"
        );
        format!("{ratio:.2}x >= 5x (arena@100k vs per-digi-timer baseline@10k)")
    };

    let doc = format!(
        r#"{{
  "bench": "max_digis_per_sec scaling (E13)",
  "harness": "standalone rustc harness (std::time::Instant); simulated-testbed rows require the cargo bench_smoke bin",
  "designs": {{
    "baseline": "per-digi heap timers + HashMap service lookup + BTreeMap field trees",
    "arena": "per-(slot,pool) tick groups + dense service table + arena slabs + model columns"
  }},
  "pool_size": {POOL},
  "rows": [
{rows}
  ],
  "gate": "{gate}"
}}
"#,
    );
    std::fs::write(&out_path, doc).expect("write report");
    eprintln!("[standalone] wrote {out_path}");
}
