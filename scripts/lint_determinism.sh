#!/usr/bin/env bash
# Determinism lint for the simulation crates — thin wrapper over the real
# analyzer, `dbox audit` (crates/analysis/src/audit/).
#
# The simulation must be bit-reproducible from the seed (paper §3.5:
# recreating a setup replays to identical state). This used to be a grep
# with an honor-system `// det-ok:` waiver; it is now a token-level static
# analyzer with stable DH codes, spans, and a *checked* suppression
# grammar (`// det-ok(DHxxxx): reason`) — see DESIGN.md §13.
#
# Run from anywhere. Exit 0 = clean, 2 = findings, 1 = operational
# failure (the audit verb's own contract, passed through).
set -euo pipefail
cd "$(dirname "$0")/.."

# Reuse an already-built binary when one exists (CI builds first); fall
# back to cargo, then to the offline-harness build.
if [ -x target/release/dbox ]; then
  DBOX=(target/release/dbox)
elif [ -x target/debug/dbox ]; then
  DBOX=(target/debug/dbox)
elif command -v cargo >/dev/null 2>&1 && cargo build -q -p digibox-cli 2>/dev/null; then
  DBOX=(target/debug/dbox)
elif [ -x target/offline/dbox ]; then
  DBOX=(target/offline/dbox)
else
  echo "lint_determinism: no dbox binary; run 'cargo build -p digibox-cli' or scripts/check_offline.sh first" >&2
  exit 1
fi

"${DBOX[@]}" audit "$@"
