#!/usr/bin/env bash
# Determinism lint for the simulation crates.
#
# The simulation must be bit-reproducible from the seed (paper §3.5:
# recreating a setup replays to identical state), so the crates that run
# inside the virtual kernel must not consult wall-clock time, OS
# randomness, or hash-order iteration:
#
#   * SystemTime::now / Instant::now / thread_rng / rand::random are
#     banned outright — virtual time comes from the kernel, randomness
#     from the seeded Prng;
#   * HashMap/HashSet are allowed for keyed lookup only. A file opts in
#     by annotating its `use std::collections::...` line with
#     `// det-ok: <why>`; the clippy job's iter_over_hash_type lint
#     catches actual iteration that grep cannot.
#
# Run from anywhere; exits non-zero with one line per offence.
set -euo pipefail
cd "$(dirname "$0")/.."

CRATES=(crates/core crates/net crates/broker crates/model crates/devices
  crates/orchestrator crates/registry)
fail=0

# absolute bans — no annotation makes these deterministic
banned='SystemTime::now|Instant::now|thread_rng|rand::random'
while IFS= read -r hit; do
  echo "DETERMINISM: banned construct: $hit" >&2
  fail=1
done < <(grep -RnE "$banned" "${CRATES[@]}" --include='*.rs' | grep -v 'det-ok:' || true)

# hash collections — the importing file must carry a det-ok justification
while IFS= read -r file; do
  if ! grep -qE 'Hash(Map|Set).*// det-ok:' "$file"; then
    echo "DETERMINISM: Hash(Map|Set) without det-ok justification in $file" >&2
    fail=1
  fi
done < <(grep -RlE 'Hash(Map|Set)' "${CRATES[@]}" --include='*.rs' || true)

if [ "$fail" -ne 0 ]; then
  echo "determinism lint FAILED" >&2
  exit 1
fi
echo "determinism lint OK"
