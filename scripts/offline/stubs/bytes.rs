//! Offline stand-in for `bytes` (see serde_derive.rs for why). Unlike the
//! serde stubs this one is fully functional — the codecs in
//! `digibox-net`/`digibox-broker` run correctly under it — just without the
//! real crate's zero-copy machinery (`Bytes` here clones on slice).

#![allow(dead_code)]

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    pub fn from_static(b: &'static [u8]) -> Bytes {
        Bytes::from_vec(b.to_vec())
    }

    pub fn copy_from_slice(b: &[u8]) -> Bytes {
        Bytes::from_vec(b.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Bytes {
        Bytes::from_static(b)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

#[derive(Default, Clone, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(n: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(n) }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }

    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.buf.split_off(at);
        BytesMut { buf: std::mem::replace(&mut self.buf, rest) }
    }

    pub fn reserve(&mut self, n: usize) {
        self.buf.reserve(n);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, n: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        let v = self.chunk()[..n].to_vec();
        self.advance(n);
        Bytes::from(v)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len());
        self.start += n;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.buf.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.buf
    }
    fn advance(&mut self, n: usize) {
        self.buf.drain(..n);
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

pub trait BufMut {
    fn put_slice(&mut self, s: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}
