//! Offline stand-in for `parking_lot` (see serde_derive.rs for why): the
//! std lock with parking_lot's panic-free, non-poisoning API shape.

#![allow(dead_code)]

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(t: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(t))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.lock().fmt(f)
    }
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(t: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(t))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
