//! Offline stand-in for `serde` (see serde_derive.rs for why).
//!
//! Traits carry the real method signatures so every workspace `impl` and
//! bound typechecks. A hidden "fragment" back-channel makes the *manual*
//! impls in the tree (`digibox_model::Path`) actually functional under the
//! stub `serde_json`: serializers finish with a rendered JSON string,
//! deserializers hand the raw JSON text to the impl.

#![allow(dead_code)]

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;

    /// Back-channel: compact JSON rendering, when this impl supports it.
    #[doc(hidden)]
    fn __fragment(&self) -> Option<String> {
        None
    }
}

pub trait Serializer: Sized {
    type Ok;
    type Error;

    /// Back-channel: accept a fully rendered JSON fragment.
    #[doc(hidden)]
    fn __finish_with(self, fragment: String) -> Result<Self::Ok, Self::Error>;
}

pub trait Deserialize<'de>: Sized {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;

    /// Back-channel: build from raw JSON text, when this impl supports it.
    #[doc(hidden)]
    fn __from_text(_text: &str) -> Option<Self> {
        None
    }
}

pub trait Deserializer<'de>: Sized {
    type Error;

    /// Back-channel: surrender the raw JSON text being deserialized.
    #[doc(hidden)]
    fn __take_text(&mut self) -> Option<String> {
        None
    }

    #[doc(hidden)]
    fn __error(msg: String) -> Self::Error;
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer,
    {
        (**self).serialize(serializer)
    }
    fn __fragment(&self) -> Option<String> {
        (**self).__fragment()
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer,
    {
        (**self).serialize(serializer)
    }
    fn __fragment(&self) -> Option<String> {
        (**self).__fragment()
    }
}

impl Serialize for String {
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer,
    {
        serializer.__finish_with(escape_json(self))
    }
    fn __fragment(&self) -> Option<String> {
        Some(escape_json(self))
    }
}

impl Serialize for str {
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer,
    {
        serializer.__finish_with(escape_json(self))
    }
    fn __fragment(&self) -> Option<String> {
        Some(escape_json(self))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer,
    {
        match self.__fragment() {
            Some(f) => serializer.__finish_with(f),
            None => panic!("offline stub: slice element type lacks a JSON fragment"),
        }
    }
    fn __fragment(&self) -> Option<String> {
        let mut parts = Vec::with_capacity(self.len());
        for item in self {
            parts.push(item.__fragment()?);
        }
        Some(format!("[{}]", parts.join(",")))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer,
    {
        self.as_slice().serialize(serializer)
    }
    fn __fragment(&self) -> Option<String> {
        self.as_slice().__fragment()
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D>(mut deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>,
    {
        let text = deserializer
            .__take_text()
            .ok_or_else(|| D::__error("offline stub: no JSON text".into()))?;
        Self::__from_text(&text).ok_or_else(|| D::__error(format!("expected string: {text}")))
    }
    fn __from_text(text: &str) -> Option<Self> {
        crate::__json::parse_string(text)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D>(mut deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>,
    {
        let text = deserializer
            .__take_text()
            .ok_or_else(|| D::__error("offline stub: no JSON text".into()))?;
        Self::__from_text(&text).ok_or_else(|| D::__error(format!("expected array: {text}")))
    }
    fn __from_text(text: &str) -> Option<Self> {
        let items = crate::__json::split_array(text)?;
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            out.push(T::__from_text(&item)?);
        }
        Some(out)
    }
}

macro_rules! display_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
            where
                S: Serializer,
            {
                serializer.__finish_with(self.to_string())
            }
            fn __fragment(&self) -> Option<String> {
                Some(self.to_string())
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D>(mut deserializer: D) -> Result<Self, D::Error>
            where
                D: Deserializer<'de>,
            {
                let text = deserializer
                    .__take_text()
                    .ok_or_else(|| D::__error("offline stub: no JSON text".into()))?;
                Self::__from_text(&text)
                    .ok_or_else(|| D::__error(format!("bad literal: {text}")))
            }
            fn __from_text(text: &str) -> Option<Self> {
                text.trim().parse().ok()
            }
        }
    )*};
}

display_serialize!(bool, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer,
    {
        match self.__fragment() {
            Some(f) => serializer.__finish_with(f),
            None => panic!("offline stub: Option inner type lacks a JSON fragment"),
        }
    }
    fn __fragment(&self) -> Option<String> {
        match self {
            None => Some("null".to_string()),
            Some(v) => v.__fragment(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D>(mut deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>,
    {
        let text = deserializer
            .__take_text()
            .ok_or_else(|| D::__error("offline stub: no JSON text".into()))?;
        Self::__from_text(&text).ok_or_else(|| D::__error(format!("bad option: {text}")))
    }
    fn __from_text(text: &str) -> Option<Self> {
        if text.trim() == "null" {
            Some(None)
        } else {
            T::__from_text(text).map(Some)
        }
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer,
    {
        match self.__fragment() {
            Some(f) => serializer.__finish_with(f),
            None => panic!("offline stub: map entry types lack JSON fragments"),
        }
    }
    fn __fragment(&self) -> Option<String> {
        let mut parts = Vec::with_capacity(self.len());
        for (k, v) in self {
            parts.push(format!("{}:{}", k.__fragment()?, v.__fragment()?));
        }
        Some(format!("{{{}}}", parts.join(",")))
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D>(mut deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>,
    {
        let text = deserializer
            .__take_text()
            .ok_or_else(|| D::__error("offline stub: no JSON text".into()))?;
        Self::__from_text(&text).ok_or_else(|| D::__error(format!("bad map: {text}")))
    }
    fn __from_text(text: &str) -> Option<Self> {
        let entries = crate::__json::split_object(text)?;
        let mut out = std::collections::BTreeMap::new();
        for (k, v) in entries {
            out.insert(K::__from_text(&k)?, V::__from_text(&v)?);
        }
        Some(out)
    }
}

/// Minimal JSON text utilities for the back-channel impls.
#[doc(hidden)]
pub mod __json {
    /// Parse a JSON string literal into its value.
    pub fn parse_string(text: &str) -> Option<String> {
        let t = text.trim();
        let inner = t.strip_prefix('"')?.strip_suffix('"')?;
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{8}'),
                'f' => out.push('\u{c}'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            }
        }
        Some(out)
    }

    /// Split a JSON object's raw text into raw (key, value) texts.
    pub fn split_object(text: &str) -> Option<Vec<(String, String)>> {
        let t = text.trim();
        let inner = t.strip_prefix('{')?.strip_suffix('}')?.trim();
        // Reuse the array splitter on the comma level, then split each
        // entry at its first top-level colon.
        let entries = split_array(&format!("[{inner}]"))?;
        if inner.is_empty() {
            return Some(Vec::new());
        }
        let mut out = Vec::with_capacity(entries.len());
        for entry in entries {
            let mut in_str = false;
            let mut esc = false;
            let mut colon = None;
            for (i, c) in entry.char_indices() {
                if esc {
                    esc = false;
                    continue;
                }
                match c {
                    '\\' if in_str => esc = true,
                    '"' => in_str = !in_str,
                    ':' if !in_str => {
                        colon = Some(i);
                        break;
                    }
                    _ => {}
                }
            }
            let colon = colon?;
            out.push((
                entry[..colon].trim().to_string(),
                entry[colon + 1..].trim().to_string(),
            ));
        }
        Some(out)
    }

    /// Split a JSON array's raw text into raw element texts.
    pub fn split_array(text: &str) -> Option<Vec<String>> {
        let t = text.trim();
        let inner = t.strip_prefix('[')?.strip_suffix(']')?.trim();
        if inner.is_empty() {
            return Some(Vec::new());
        }
        let mut items = Vec::new();
        let mut depth = 0usize;
        let mut in_str = false;
        let mut esc = false;
        let mut start = 0usize;
        for (i, c) in inner.char_indices() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '[' | '{' if !in_str => depth += 1,
                ']' | '}' if !in_str => depth = depth.checked_sub(1)?,
                ',' if !in_str && depth == 0 => {
                    items.push(inner[start..i].trim().to_string());
                    start = i + 1;
                }
                _ => {}
            }
        }
        items.push(inner[start..].trim().to_string());
        Some(items)
    }
}
