//! Offline stub for `proptest` — typecheck-only.
//!
//! The `proptest!` macro expands to *nothing*, so property-based tests
//! are compiled out under the offline harness (their bodies reference
//! strategy combinators a stub cannot execute). Plain `#[test]` fns in
//! the same module still compile and run; CI runs the real property
//! tests with the real crate.

pub mod prelude {
    pub use crate::proptest;

    pub struct ProptestConfig;

    impl ProptestConfig {
        pub fn with_cases(_cases: u32) -> ProptestConfig {
            ProptestConfig
        }
    }

    pub fn any<T>() {}
}

pub mod collection {
    pub fn vec<S, R>(_strategy: S, _range: R) {}
}

#[macro_export]
macro_rules! proptest {
    ($($tokens:tt)*) => {};
}
