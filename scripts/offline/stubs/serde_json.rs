//! Offline stand-in for `serde_json` (see serde_derive.rs for why).
//!
//! `Value` is fully functional: a real recursive-descent JSON parser and a
//! compact printer, so `Value`-level round-trips (and manual serde impls
//! like `digibox_model::Path`) behave correctly under
//! `scripts/check_offline.sh`. *Derived* types typecheck but panic if
//! (de)serialized at runtime — tests that exercise those are skipped by the
//! script.

#![allow(dead_code)]

use std::collections::BTreeMap;
use std::fmt;

pub type Map<K, V> = BTreeMap<K, V>;

#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

#[derive(Debug, Clone, PartialEq)]
pub struct Number(N);

#[derive(Debug, Clone, PartialEq)]
enum N {
    Int(i64),
    UInt(u64),
    Float(f64),
}

impl Number {
    pub fn from_f64(f: f64) -> Option<Number> {
        f.is_finite().then_some(Number(N::Float(f)))
    }
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::Int(i) => Some(i),
            N::UInt(u) => i64::try_from(u).ok(),
            N::Float(_) => None,
        }
    }
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::Int(i) => u64::try_from(i).ok(),
            N::UInt(u) => Some(u),
            N::Float(_) => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            N::Int(i) => Some(i as f64),
            N::UInt(u) => Some(u as f64),
            N::Float(f) => Some(f),
        }
    }
    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }
    pub fn is_f64(&self) -> bool {
        matches!(self.0, N::Float(_))
    }
}

impl From<i64> for Number {
    fn from(i: i64) -> Number {
        Number(N::Int(i))
    }
}
impl From<i32> for Number {
    fn from(i: i32) -> Number {
        Number(N::Int(i as i64))
    }
}
impl From<u64> for Number {
    fn from(u: u64) -> Number {
        Number(N::UInt(u))
    }
}
impl From<u32> for Number {
    fn from(u: u32) -> Number {
        Number(N::UInt(u as u64))
    }
}
impl From<usize> for Number {
    fn from(u: usize) -> Number {
        Number(N::UInt(u as u64))
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::Int(i) => write!(f, "{i}"),
            N::UInt(u) => write!(f, "{u}"),
            N::Float(x) => {
                if x == x.trunc() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.get(key)
    }

    fn render(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => out.push_str(&escape(s)),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render(out);
                }
                out.push(']');
            }
            Value::Object(o) => {
                out.push('{');
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(k));
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render(&mut s);
        write!(f, "{s}")
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---- parser -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(&format!("expected `{word}`"))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u escape".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                _ => return self.err("unterminated string"),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error(e.to_string()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number(N::Int(i))));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number(N::UInt(u))));
            }
        }
        let f = text.parse::<f64>().map_err(|e| Error(e.to_string()))?;
        Ok(Value::Number(Number(N::Float(f))))
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

// ---- serde plumbing -----------------------------------------------------

impl serde::Serialize for Value {
    fn serialize<S>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error>
    where
        S: serde::Serializer,
    {
        serializer.__finish_with(self.to_string())
    }
    fn __fragment(&self) -> Option<String> {
        Some(self.to_string())
    }
}

impl<'de> serde::Deserialize<'de> for Value {
    fn deserialize<D>(mut deserializer: D) -> std::result::Result<Self, D::Error>
    where
        D: serde::Deserializer<'de>,
    {
        let text = deserializer
            .__take_text()
            .ok_or_else(|| D::__error("offline stub: no JSON text".into()))?;
        parse_value(&text).map_err(|e| D::__error(e.0))
    }
    fn __from_text(text: &str) -> Option<Self> {
        parse_value(text).ok()
    }
}

struct Collector;

impl serde::Serializer for Collector {
    type Ok = String;
    type Error = Error;
    fn __finish_with(self, fragment: String) -> Result<String> {
        Ok(fragment)
    }
}

struct TextDeserializer(Option<String>);

impl<'de> serde::Deserializer<'de> for TextDeserializer {
    type Error = Error;
    fn __take_text(&mut self) -> Option<String> {
        self.0.take()
    }
    fn __error(msg: String) -> Error {
        Error(msg)
    }
}

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    value.serialize(Collector)
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    to_string(value)
}

pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

pub fn to_vec_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_vec(value)
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(s: &'a str) -> Result<T> {
    T::deserialize(TextDeserializer(Some(s.to_string())))
}

pub fn from_slice<'a, T: serde::Deserialize<'a>>(bytes: &'a [u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    T::deserialize(TextDeserializer(Some(s.to_string())))
}

pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    parse_value(&to_string(&value)?)
}
