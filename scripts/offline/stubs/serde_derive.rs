//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The build container has no cargo registry, so `scripts/check_offline.sh`
//! compiles the workspace against these stubs with bare `rustc`. The derive
//! emits trait impls whose bodies panic: enough to typecheck every
//! `#[derive(Serialize, Deserialize)]` in the tree (attributes included),
//! not enough to actually serialize derived types. Manual impls (e.g.
//! `digibox_model::Path`) still work because the stub `serde`/`serde_json`
//! carry a functional back-channel for JSON text.
//!
//! Never used by the real cargo build.

extern crate proc_macro;

use proc_macro::{TokenStream, TokenTree};

/// Pull the type name out of a `struct`/`enum` item token stream.
fn type_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return s;
                }
                if s == "struct" || s == "enum" {
                    saw_kw = true;
                }
            }
            _ => {}
        }
    }
    panic!("offline serde_derive stub: could not find type name");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl serde::Serialize for {name} {{\n\
            fn serialize<S>(&self, _s: S) -> std::result::Result<S::Ok, S::Error>\n\
            where S: serde::Serializer {{\n\
                panic!(\"offline stub: derived Serialize for {name} is typecheck-only\")\n\
            }}\n\
        }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
            fn deserialize<D>(_d: D) -> std::result::Result<Self, D::Error>\n\
            where D: serde::Deserializer<'de> {{\n\
                panic!(\"offline stub: derived Deserialize for {name} is typecheck-only\")\n\
            }}\n\
        }}"
    )
    .parse()
    .unwrap()
}
