//! Standalone substrate hot-path measurement: compiles the live wheel and
//! trie modules plus the frozen baselines directly with `rustc -O`, so the
//! old-vs-new comparison runs even where cargo has no registry access
//! (the fallback path of `scripts/bench_smoke.sh`).
//!
//! ```text
//! rustc --edition 2021 -O scripts/standalone_hotpath.rs -o /tmp/shp
//! /tmp/shp BENCH_substrate.json
//! ```
//!
//! The included modules are std-only by design; this file is also a
//! compile-time check that they stay that way.

#[path = "../crates/net/src/wheel.rs"]
mod wheel;
#[path = "../crates/broker/src/topic.rs"]
mod topic;
#[path = "../crates/bench/src/baseline.rs"]
mod baseline;

use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

use baseline::{OldEventQueue, OldTopicTrie};
use topic::TopicTrie;
use wheel::EventWheel;

const TIMERS: u64 = 1024;
const ROUNDS: u64 = 64;
const PERIOD_NS: u64 = 10_000_000;
const STANDING: u64 = 2048;
const REPS: usize = 9;

fn best_of<F: FnMut() -> u64>(mut f: F) -> (f64, u64) {
    let mut best = f64::MAX;
    let mut sink = 0;
    for _ in 0..REPS {
        let t = Instant::now();
        sink = f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, sink)
}

fn periodic_old() -> u64 {
    let mut q = OldEventQueue::new();
    let mut seq = 0u64;
    let horizon = PERIOD_NS * ROUNDS;
    for s in 0..STANDING {
        q.push(horizon + 1 + s * 1_000_000, seq, u64::MAX - s);
        seq += 1;
    }
    for t in 0..TIMERS {
        q.push(1 + t * (PERIOD_NS / TIMERS), seq, t);
        seq += 1;
    }
    let mut fired = 0u64;
    while let Some((at, _, t)) = q.pop() {
        if at > horizon {
            break;
        }
        fired += 1;
        if at < horizon {
            q.push(at + PERIOD_NS, seq, t);
            seq += 1;
        }
    }
    fired
}

fn periodic_new() -> u64 {
    let mut q = EventWheel::new();
    let mut seq = 0u64;
    let horizon = PERIOD_NS * ROUNDS;
    for s in 0..STANDING {
        q.push(horizon + 1 + s * 1_000_000, seq, u64::MAX - s);
        seq += 1;
    }
    for t in 0..TIMERS {
        q.push(1 + t * (PERIOD_NS / TIMERS), seq, t);
        seq += 1;
    }
    let mut fired = 0u64;
    while let Some((at, _, t)) = q.pop() {
        if at > horizon {
            break;
        }
        fired += 1;
        if at < horizon {
            q.push(at + PERIOD_NS, seq, t);
            seq += 1;
        }
    }
    fired
}

fn filters(n: usize) -> Vec<String> {
    let mut f: Vec<String> = (0..n).map(|i| format!("digibox/mock/O{i}/status")).collect();
    f.push("digibox/mock/+/status".into());
    f.push("digibox/#".into());
    f
}

fn routing_old(trie: &OldTopicTrie<u32>, topics: &[String], publishes: usize) -> u64 {
    let mut routed = 0u64;
    for i in 0..publishes {
        let mut routes: Vec<u32> =
            trie.lookup(&topics[i % topics.len()]).into_iter().copied().collect();
        routes.sort_unstable();
        routes.dedup();
        routed += routes.len() as u64;
    }
    routed
}

fn routing_new(trie: &TopicTrie<u32>, topics: &[String], publishes: usize) -> u64 {
    let mut cache: HashMap<String, Rc<[u32]>> = HashMap::new();
    let mut routed = 0u64;
    for i in 0..publishes {
        let topic = &topics[i % topics.len()];
        let routes = match cache.get(topic) {
            Some(r) => Rc::clone(r),
            None => {
                let mut r: Vec<u32> = trie.lookup(topic).into_iter().copied().collect();
                r.sort_unstable();
                r.dedup();
                let r: Rc<[u32]> = r.into();
                cache.insert(topic.clone(), Rc::clone(&r));
                r
            }
        };
        routed += routes.len() as u64;
    }
    routed
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_substrate.json".into());

    let (heap_s, heap_fired) = best_of(periodic_old);
    let (wheel_s, wheel_fired) = best_of(periodic_new);
    assert_eq!(heap_fired, wheel_fired, "old and new queues disagree on fired count");
    let timer_speedup = heap_s / wheel_s;
    eprintln!(
        "[standalone] periodic_timer  old={:.3}ms new={:.3}ms speedup={timer_speedup:.2}x",
        heap_s * 1e3,
        wheel_s * 1e3
    );

    let fs = filters(512);
    let mut old_trie = OldTopicTrie::new();
    let mut new_trie = TopicTrie::new();
    for (i, f) in fs.iter().enumerate() {
        old_trie.insert(f, i as u32);
        new_trie.insert(f, i as u32);
    }
    let topics: Vec<String> = (0..8).map(|i| format!("digibox/mock/O{i}/status")).collect();
    let (old_s, old_routed) = best_of(|| routing_old(&old_trie, &topics, 4096));
    let (new_s, new_routed) = best_of(|| routing_new(&new_trie, &topics, 4096));
    assert_eq!(old_routed, new_routed, "old and new routing disagree");
    let routing_speedup = old_s / new_s;
    eprintln!(
        "[standalone] publish_routing old={:.3}ms new={:.3}ms speedup={routing_speedup:.2}x",
        old_s * 1e3,
        new_s * 1e3
    );

    let doc = format!(
        r#"{{
  "bench": "substrate_hotpath smoke",
  "harness": "standalone rustc harness (std::time::Instant, best of {REPS}); e1/e6 rows require the cargo bench_smoke bin",
  "micro": {{
    "periodic_timer": {{
      "timers": {TIMERS},
      "rounds": {ROUNDS},
      "period_ns": {PERIOD_NS},
      "standing": {STANDING},
      "old_binary_heap_ms": {heap_ms},
      "new_timer_wheel_ms": {wheel_ms},
      "speedup": {timer_speedup}
    }},
    "publish_routing": {{
      "subscriptions": {subs},
      "hot_topics": {hot},
      "publishes": 4096,
      "old_uncached_ms": {old_ms},
      "new_cached_interned_ms": {new_ms},
      "speedup": {routing_speedup}
    }}
  }}
}}
"#,
        heap_ms = heap_s * 1e3,
        wheel_ms = wheel_s * 1e3,
        subs = fs.len(),
        hot = topics.len(),
        old_ms = old_s * 1e3,
        new_ms = new_s * 1e3,
    );
    std::fs::write(&out_path, doc).expect("write report");
    eprintln!("[standalone] wrote {out_path}");
}
