//! Standalone sweep-engine measurement: compiles `core::sweep` directly
//! with `rustc -O` and times a 32-seed CPU-bound sweep at jobs=1 vs
//! jobs=all, so the scaling row exists even where cargo has no registry
//! access (the fallback path of `scripts/bench_smoke.sh`).
//!
//! ```text
//! rustc --edition 2021 -O scripts/standalone_sweep.rs -o /tmp/ssw
//! /tmp/ssw BENCH_sweep.json
//! ```
//!
//! The engine is std-only by design; this file is also a compile-time
//! check that it stays that way. The per-seed workload is a deterministic
//! xorshift mix (no simulation — that needs the cargo bench_smoke bin),
//! so the merged run vector and its digest must be identical for any
//! jobs count.

#[allow(dead_code)]
#[path = "../crates/core/src/sweep.rs"]
mod sweep;

use std::time::Instant;

const SEEDS: u64 = 32;
const ITERS: u64 = 6_000_000;

/// Deterministic per-seed workload: xorshift64* mixed down to one value.
fn workload(seed: u64) -> u64 {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut acc = 0u64;
    for _ in 0..ITERS {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc = acc.wrapping_add(x.wrapping_mul(0x2545_F491_4F6C_DD1D));
    }
    acc
}

/// FNV-1a over the merged (seed, value) stream — the determinism witness.
fn digest(runs: &[(u64, u64)]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (seed, value) in runs {
        for b in seed.to_le_bytes().iter().chain(value.to_le_bytes().iter()) {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

fn run_at(seeds: &[u64], jobs: usize) -> (Vec<(u64, u64)>, f64, usize, u64) {
    let t = Instant::now();
    let outcome = sweep::sweep(seeds, jobs, |seed| Ok(workload(seed)));
    let wall = t.elapsed().as_secs_f64();
    let runs: Vec<(u64, u64)> = outcome
        .runs
        .iter()
        .map(|r| (r.seed, *r.result.as_ref().expect("workload is infallible")))
        .collect();
    (runs, wall, outcome.jobs, outcome.steals)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_sweep.json".into());
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let seeds: Vec<u64> = (1..=SEEDS).collect();

    let (serial, serial_s, _, _) = run_at(&seeds, 1);
    let (parallel, parallel_s, jobs_n, steals) = run_at(&seeds, 0);

    assert_eq!(serial, parallel, "jobs=1 and jobs={jobs_n} merged runs diverged");
    let d1 = digest(&serial);
    let dn = digest(&parallel);
    let digest_match = d1 == dn;
    assert!(digest_match);
    let speedup = serial_s / parallel_s;
    eprintln!(
        "[standalone] sweep scaling: cores={cores} jobs1={serial_s:.2}s \
         jobsN={parallel_s:.2}s speedup={speedup:.2}x steals={steals} digest_match={digest_match}"
    );

    let doc = format!(
        r#"{{
  "bench": "sweep scaling (E11)",
  "harness": "standalone rustc harness (std::time::Instant); simulated-campaign rows require the cargo bench_smoke bin",
  "cores": {cores},
  "seeds": {SEEDS},
  "workload": {{ "kind": "xorshift64* mix", "iters_per_seed": {ITERS} }},
  "jobs1": {{ "jobs": 1, "wall_clock_s": {serial_s}, "digest": "{d1:016x}" }},
  "jobsN": {{ "jobs": {jobs_n}, "wall_clock_s": {parallel_s}, "digest": "{dn:016x}", "steals": {steals} }},
  "speedup": {speedup},
  "digest_match": {digest_match}
}}
"#,
    );
    std::fs::write(&out_path, doc).expect("write report");
    eprintln!("[standalone] wrote {out_path}");
}
