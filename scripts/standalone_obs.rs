//! Standalone observability-layer measurement: compiles `digibox_obs`
//! directly with `rustc -O` (the crate is dependency-free by design, and
//! this file is a compile-time check that it stays that way) and measures
//! the recording hot path — counter increments, histogram observations
//! and span enter/exit — with the layer enabled vs disabled, plus a
//! determinism check: two identical recording sequences must snapshot to
//! byte-identical canonical JSON and folded stacks.
//!
//! ```text
//! rustc --edition 2021 -O scripts/standalone_obs.rs -o /tmp/sobs
//! /tmp/sobs BENCH_obs.json
//! ```
//!
//! Exits non-zero if the determinism check fails; the fallback path of
//! `scripts/bench_smoke.sh` and `scripts/check_offline.sh` rely on that.

#[path = "../crates/obs/src/lib.rs"]
mod obs;

use std::time::Instant;

const OPS: u64 = 1_000_000;
const REPS: usize = 5;

/// One recording workload: the mix a kernel step produces — a counter
/// bump, a queue-depth observation, and a two-frame span.
fn workload() -> u64 {
    let events = obs::counter("kernel.events");
    let depth = obs::histogram("kernel.queue_depth");
    let f_timer = obs::frame("kernel.timer");
    let f_loop = obs::frame("digi.on_loop");
    let mut sink = 0u64;
    for i in 0..OPS {
        obs::inc(events);
        obs::observe(depth, i % 64);
        obs::clock(i);
        let _outer = obs::enter(f_timer);
        let _inner = obs::enter(f_loop);
        sink = sink.wrapping_add(i);
    }
    sink
}

fn best_of<F: FnMut() -> u64>(mut f: F) -> (f64, u64) {
    let mut best = f64::MAX;
    let mut sink = 0;
    for _ in 0..REPS {
        let t = Instant::now();
        sink = f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, sink)
}

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_obs.json".into());

    // Determinism: identical sequences snapshot to identical bytes.
    let digis = obs::gauge("testbed.digis");
    obs::set_enabled(true);
    obs::reset();
    obs::set(digis, 42);
    workload();
    let snap_a = obs::snapshot();
    obs::reset();
    obs::set(digis, 42);
    workload();
    let snap_b = obs::snapshot();
    let deterministic = snap_a.to_json() == snap_b.to_json()
        && snap_a.folded() == snap_b.folded()
        && snap_a.render() == snap_b.render();
    if !deterministic {
        eprintln!("[standalone_obs] FAIL: identical runs produced different snapshots");
        std::process::exit(1);
    }
    if snap_a.counter("kernel.events") != OPS {
        eprintln!("[standalone_obs] FAIL: counter lost increments");
        std::process::exit(1);
    }

    // Hot-path cost, enabled vs disabled.
    obs::set_enabled(true);
    obs::reset();
    let (on_s, on_sink) = best_of(workload);
    obs::set_enabled(false);
    let (off_s, off_sink) = best_of(workload);
    assert_eq!(on_sink, off_sink);
    let on_ns = on_s * 1e9 / OPS as f64;
    let off_ns = off_s * 1e9 / OPS as f64;
    eprintln!(
        "[standalone_obs] record path: enabled={on_ns:.1}ns/op disabled={off_ns:.1}ns/op \
         deterministic={deterministic}"
    );

    let doc = format!(
        "{{\n  \"bench\": \"observability record path (standalone)\",\n  \
         \"harness\": \"scripts/standalone_obs.rs (rustc -O, best of {REPS})\",\n  \
         \"ops\": {OPS},\n  \
         \"enabled_ns_per_op\": {on_ns:.3},\n  \
         \"disabled_ns_per_op\": {off_ns:.3},\n  \
         \"deterministic\": {deterministic}\n}}\n"
    );
    std::fs::write(&out, doc).expect("write report");
    eprintln!("[standalone_obs] wrote {out}");
}
