#!/usr/bin/env bash
# Offline typecheck + unit-test harness.
#
# Some build environments have no cargo registry access, so `cargo build`
# cannot resolve even the handful of external crates this workspace uses.
# This script compiles every workspace crate with bare `rustc` against
# functional stubs of those crates (scripts/offline/stubs/) and runs the
# unit tests that don't depend on derived-serde round-trips (the stub derive
# is typecheck-only; see the stub headers).
#
# It is a pre-flight check for registry-less environments, NOT a replacement
# for the real `cargo build --release && cargo test -q` that CI runs.
#
# Excluded: crates/bench (needs crossbeam + criterion, out of stub scope).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=target/offline
STUBS=scripts/offline/stubs
mkdir -p "$OUT"

EDITION=2021
# Unit-test names to skip at runtime (substring match, passed as --skip):
# they exercise derived-serde round-trips, which the offline stubs cannot
# execute. CI runs them for real.
declare -A RUN_SKIPS=(
  [digibox_model]="--skip serde_roundtrip"
  [digibox_net]=""
  [digibox_broker]=""
  # store tests persist archives through derived-serde manifests
  [digibox_trace]="--skip archive --skip share --skip serde_roundtrip --skip store"
  [digibox_orchestrator]="--skip control:: --skip serde_roundtrip"
  [digibox_registry]="--skip dml --skip package --skip manifest --skip repo --skip serde"
  # islands::tests::engine materializes testbeds (control plane stores
  # node specs via derived serde) — compile-only offline, CI runs them.
  [digibox_core]="--skip package --skip cell:: --skip serde_roundtrip --skip islands::tests::engine"
  [digibox_devices]="--skip package"
  [digibox_analysis]=""
  [digibox_apps]=""
  # Every cli unit test materializes a Testbed (derived serde at runtime):
  # compile-only offline except the `lintcheck` module, which is cell-free.
  [digibox_cli]="--skip tests::"
)

lib_of() {
  if [ -f "$OUT/lib$1.so" ]; then
    echo "$OUT/lib$1.so"
  else
    echo "$OUT/lib$1.rlib"
  fi
}

# build <crate_name> <src> [deps...]
build() {
  local name=$1 src=$2
  shift 2
  local externs=()
  local dep
  for dep in "$@"; do
    externs+=(--extern "$dep=$(lib_of "$dep")")
  done
  echo "  lib  $name"
  rustc --edition "$EDITION" --crate-type rlib --crate-name "$name" "$src" \
    -L "$OUT" "${externs[@]}" --out-dir "$OUT"
}

# build_docs <crate_name> <src> [deps...] — like build, but a public item
# without rustdoc is a hard error. Used for the crates that declare
# #![warn(missing_docs)] so doc coverage cannot silently regress.
build_docs() {
  local name=$1 src=$2
  shift 2
  local externs=()
  local dep
  for dep in "$@"; do
    externs+=(--extern "$dep=$(lib_of "$dep")")
  done
  echo "  lib  $name (docs enforced)"
  rustc --edition "$EDITION" --crate-type rlib --crate-name "$name" "$src" \
    -L "$OUT" "${externs[@]}" -D missing-docs --out-dir "$OUT"
}

# buildtest <crate_name> <src> [deps...] — compile unit tests, then run them.
buildtest() {
  local name=$1 src=$2
  shift 2
  local externs=()
  local dep
  for dep in "$@"; do
    externs+=(--extern "$dep=$(lib_of "$dep")")
  done
  echo "  test $name"
  rustc --edition "$EDITION" --test --crate-name "$name" "$src" \
    -L "$OUT" "${externs[@]}" -o "$OUT/test_$name"
  # shellcheck disable=SC2086
  "$OUT/test_$name" -q ${RUN_SKIPS[$name]-}
}

echo "== stubs"
echo "  proc-macro serde_derive"
rustc --edition "$EDITION" --crate-type proc-macro --crate-name serde_derive \
  "$STUBS/serde_derive.rs" --out-dir "$OUT" 2> >(grep -v "proc macro crates" >&2 || true)
build serde "$STUBS/serde.rs" serde_derive
build serde_json "$STUBS/serde_json.rs" serde
build bytes "$STUBS/bytes.rs"
build parking_lot "$STUBS/parking_lot.rs"
build proptest "$STUBS/proptest.rs"

echo "== workspace libs + unit tests"
build digibox_model crates/model/src/lib.rs serde serde_json
buildtest digibox_model crates/model/src/lib.rs serde serde_json

build digibox_obs crates/obs/src/lib.rs
buildtest digibox_obs crates/obs/src/lib.rs

build_docs digibox_net crates/net/src/lib.rs serde bytes digibox_obs
buildtest digibox_net crates/net/src/lib.rs serde bytes digibox_obs

build_docs digibox_broker crates/broker/src/lib.rs bytes digibox_net digibox_obs
# the proptest stub compiles property tests out; plain broker unit tests run.
buildtest digibox_broker crates/broker/src/lib.rs bytes digibox_net digibox_obs proptest

# registry builds before trace: the trace store (chunked trace/<name>
# refs) persists through the registry's content-addressed repository.
build digibox_registry crates/registry/src/lib.rs serde serde_json digibox_model
buildtest digibox_registry crates/registry/src/lib.rs serde serde_json digibox_model

build_docs digibox_trace crates/trace/src/lib.rs serde serde_json parking_lot digibox_net digibox_model digibox_registry
buildtest digibox_trace crates/trace/src/lib.rs serde serde_json parking_lot digibox_net digibox_model digibox_registry

build digibox_orchestrator crates/orchestrator/src/lib.rs serde serde_json digibox_model digibox_net
buildtest digibox_orchestrator crates/orchestrator/src/lib.rs serde serde_json digibox_model digibox_net

CORE_DEPS=(serde serde_json bytes digibox_model digibox_net digibox_broker
  digibox_trace digibox_orchestrator digibox_registry digibox_obs)
build_docs digibox_core crates/core/src/lib.rs "${CORE_DEPS[@]}"

build digibox_devices crates/devices/src/lib.rs serde_json digibox_model digibox_net digibox_core
buildtest digibox_devices crates/devices/src/lib.rs serde_json digibox_model digibox_net digibox_core

# core's unit tests use digibox_devices and proptest (dev-dependencies),
# so they come after. The proptest stub compiles property tests out.
buildtest digibox_core crates/core/src/lib.rs "${CORE_DEPS[@]}" digibox_devices proptest

if [ -d crates/analysis ]; then
  ANALYSIS_DEPS=(serde serde_json digibox_model digibox_net digibox_broker
    digibox_core digibox_registry)
  build digibox_analysis crates/analysis/src/lib.rs "${ANALYSIS_DEPS[@]}"
  # the audit lexer has a property test; the proptest stub compiles it out
  buildtest digibox_analysis crates/analysis/src/lib.rs "${ANALYSIS_DEPS[@]}" digibox_devices proptest
fi

APPS_DEPS=(serde_json bytes digibox_model digibox_net digibox_broker digibox_core
  digibox_devices digibox_trace digibox_registry)
build digibox_apps crates/apps/src/lib.rs "${APPS_DEPS[@]}"
buildtest digibox_apps crates/apps/src/lib.rs "${APPS_DEPS[@]}"

CLI_DEPS=(serde serde_json digibox_model digibox_net digibox_broker digibox_core
  digibox_devices digibox_registry digibox_trace digibox_obs)
if [ -d crates/analysis ]; then
  CLI_DEPS+=(digibox_analysis)
fi
build digibox_cli crates/cli/src/lib.rs "${CLI_DEPS[@]}"
buildtest digibox_cli crates/cli/src/lib.rs "${CLI_DEPS[@]}"

echo "== dbox binary + determinism self-audit"
CLI_EXTERNS=(--extern digibox_cli="$OUT/libdigibox_cli.rlib")
for dep in "${CLI_DEPS[@]}"; do
  CLI_EXTERNS+=(--extern "$dep=$(lib_of "$dep")")
done
rustc --edition "$EDITION" --crate-name dbox crates/cli/src/main.rs \
  -L "$OUT" "${CLI_EXTERNS[@]}" -o "$OUT/dbox"
echo "  bin  dbox"
if [ -d crates/analysis ]; then
  "$OUT/dbox" audit
  echo "  run  dbox audit (simulation crates are determinism-clean)"
fi
# fuzz-smoke: the codec fuzzer over fixed seeds — must complete without a
# decode panic, and being seeded its output is the same on every run.
"$OUT/dbox" fuzz --seeds 1,2,3,4,5 --iters 10000 >/dev/null
echo "  run  dbox fuzz (5 seeds x 10k iterations, codec panic-free)"

INTEG_DEPS=(serde_json digibox_model digibox_net digibox_broker digibox_core
  digibox_devices digibox_apps digibox_trace digibox_registry digibox_cli digibox_obs)
build digibox_integration crates/integration/src/lib.rs "${INTEG_DEPS[@]}"

echo "== integration tests (compile all; run the serde-free ones)"
INTEG_EXTERNS=(--extern digibox_integration="$OUT/libdigibox_integration.rlib")
for dep in "${INTEG_DEPS[@]}"; do
  INTEG_EXTERNS+=(--extern "$dep=$(lib_of "$dep")")
done
if [ -d crates/analysis ]; then
  INTEG_EXTERNS+=(--extern digibox_analysis="$OUT/libdigibox_analysis.rlib")
fi
for t in tests/*.rs; do
  name=$(basename "$t" .rs)
  echo "  test $name"
  rustc --edition "$EDITION" --test --crate-name "$name" "$t" \
    -L "$OUT" "${INTEG_EXTERNS[@]}" -o "$OUT/itest_$name"
done
# Anything that starts digi cells publishes models through derived serde,
# which the stubs cannot execute — so integration tests are compile-only
# offline, except the ones on this allowlist (pure static analysis, no
# cells). CI runs the full suite with the real crates.
RUN_ALLOW="lint_library cli_docs audit_clean"
for t in tests/*.rs; do
  name=$(basename "$t" .rs)
  case " $RUN_ALLOW " in
    *" $name "*) echo "  run  $name" && "$OUT/itest_$name" -q ;;
    *) echo "  skip $name (needs real serde at runtime)" ;;
  esac
done

echo "== standalone sweep engine (std-only check + jobs determinism)"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
rustc --edition "$EDITION" -O scripts/standalone_sweep.rs -o "$TMP/standalone_sweep"
"$TMP/standalone_sweep" "$TMP/BENCH_sweep.json" >/dev/null 2>&1 \
  || { echo "standalone sweep determinism check failed" >&2; exit 1; }
echo "  run  standalone_sweep (jobs=1 vs jobs=all digests match)"

echo "== standalone obs layer (dep-free check + snapshot determinism)"
rustc --edition "$EDITION" -O scripts/standalone_obs.rs -o "$TMP/standalone_obs"
"$TMP/standalone_obs" "$TMP/BENCH_obs.json" >/dev/null 2>&1 \
  || { echo "standalone obs determinism check failed" >&2; exit 1; }
echo "  run  standalone_obs (identical runs snapshot identically)"

echo "== standalone scale harness (E13 checksum parity + arena determinism)"
rustc --edition "$EDITION" -O scripts/standalone_scale.rs -o "$TMP/standalone_scale"
"$TMP/standalone_scale" "$TMP/BENCH_scale.json" --quick >/dev/null 2>&1 \
  || { echo "standalone scale parity check failed" >&2; exit 1; }
echo "  run  standalone_scale (baseline and arena substrates agree at 10k digis)"

echo "== standalone island engine (E14 barrier protocol + worker determinism)"
rustc --edition "$EDITION" -O scripts/standalone_islands.rs -o "$TMP/standalone_islands"
"$TMP/standalone_islands" "$TMP/BENCH_islands.json" --quick >/dev/null 2>&1 \
  || { echo "standalone islands determinism check failed" >&2; exit 1; }
echo "  run  standalone_islands (workers=1 vs workers=all digests match)"

echo "== standalone record/replay (chunk dedup + bisect + inclusive bound)"
# CI's replay-smoke job drives `dbox record`/`dbox replay` end-to-end;
# offline the stub serde cannot run a testbed, so the same sequence —
# record, replay, compare digests, diff a mutated fixture — runs against
# the dependency-free miniature instead.
rustc --edition "$EDITION" -O scripts/standalone_replay.rs -o "$TMP/standalone_replay"
"$TMP/standalone_replay" "$TMP/BENCH_replay.json" >/dev/null 2>&1 \
  || { echo "standalone replay determinism check failed" >&2; exit 1; }
echo "  run  standalone_replay (record/replay digests match, mutation bisected)"

echo "offline check OK"
