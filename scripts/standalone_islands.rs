//! Standalone island-engine measurement: a dependency-free miniature of
//! `core::islands` (same conservative-lookahead barrier protocol, same
//! canonical cross-island merge) compiled with plain `rustc -O`, so the
//! E14 space-parallel scaling row exists even where cargo has no
//! registry access (the fallback path of `scripts/bench_smoke.sh`).
//!
//! ```text
//! rustc --edition 2021 -O scripts/standalone_islands.rs -o /tmp/sis
//! /tmp/sis BENCH_islands.json [--quick]
//! ```
//!
//! Eight islands each run a CPU-bound toy event kernel (binary-heap
//! wheel ordered by `(time, seq)`, xorshift workload per event) and
//! exchange datagrams whose delivery latency is at least the lookahead
//! floor. Workers advance islands epoch-by-epoch to a shared horizon
//! `min(t + lookahead, end)`; at each barrier the coordinator merges
//! every outbox in canonical `(arrival, src_island, src_seq)` order and
//! routes the arrivals. The per-island FNV digest over the processed
//! event stream must therefore be byte-identical at 1 worker and at one
//! worker per core — that digest match is the pass/fail criterion; the
//! speedup is honest wall-clock (≈1x on a single-core container).

use std::collections::BinaryHeap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Instant;

const ISLANDS: usize = 8;
/// Minimum cross-island delivery latency — the conservative lookahead.
const LOOKAHEAD: u64 = 5;
const SPAN: u64 = 1_500;
const WORK_ITERS: u64 = 12_000;

/// One pending event in an island's wheel. Ordered min-first by
/// `(time, seq)` (the `Ord` impl is inverted for `BinaryHeap`).
#[derive(PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u64,
    payload: u64,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A datagram crossing islands at a barrier.
#[derive(Clone)]
struct Datagram {
    at: u64,
    dst: usize,
    src_island: usize,
    src_seq: u64,
    payload: u64,
}

struct Island {
    index: usize,
    wheel: BinaryHeap<Event>,
    next_seq: u64,
    rng: u64,
    digest: u64,
    events: u64,
}

fn fnv(h: &mut u64, words: &[u64]) {
    for w in words {
        for b in w.to_le_bytes() {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
}

impl Island {
    fn new(index: usize, seed: u64) -> Island {
        let mut island = Island {
            index,
            wheel: BinaryHeap::new(),
            next_seq: 0,
            rng: seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            digest: 0xcbf2_9ce4_8422_2325,
            events: 0,
        };
        island.push(0, seed ^ index as u64);
        island
    }

    fn push(&mut self, time: u64, payload: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.wheel.push(Event { time, seq, payload });
    }

    fn rand(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }

    /// Run every event with `time <= horizon`; cross-island sends land in
    /// the returned outbox for the coordinator to merge at the barrier.
    fn run_to(&mut self, horizon: u64, work_iters: u64, outbox: &mut Vec<Datagram>) {
        while self.wheel.peek().map(|e| e.time <= horizon).unwrap_or(false) {
            let ev = self.wheel.pop().expect("peeked");
            // CPU-bound handler: the part worker threads parallelize
            let mut x = ev.payload | 1;
            let mut acc = 0u64;
            for _ in 0..work_iters {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                acc = acc.wrapping_add(x.wrapping_mul(0x2545_F491_4F6C_DD1D));
            }
            self.events += 1;
            fnv(&mut self.digest, &[self.index as u64, ev.time, ev.payload, acc]);
            // locally-sourced events keep the island busy and every 4th
            // one crosses to a deterministic peer; injected arrivals
            // (odd payloads, below) terminate so traffic stays bounded
            if ev.payload & 1 == 0 {
                let step = 1 + self.rand() % 3;
                self.push(ev.time + step, acc & !1);
                if self.events % 4 == 0 {
                    let dst = (self.index + 1 + (acc as usize % (ISLANDS - 1))) % ISLANDS;
                    let jitter = self.rand() % 3;
                    outbox.push(Datagram {
                        at: ev.time + LOOKAHEAD + 1 + jitter,
                        dst,
                        src_island: self.index,
                        src_seq: ev.seq,
                        payload: acc | 1,
                    });
                }
            }
        }
    }
}

enum Cmd {
    /// Advance owned islands to the horizon, delivering the arrivals
    /// routed to each (position-matched with the worker's island list).
    Epoch { horizon: u64, arrivals: Vec<Vec<Datagram>> },
    Finish,
}

enum Report {
    EpochDone { outboxes: Vec<(usize, Vec<Datagram>)> },
    Finished { digests: Vec<(usize, u64, u64)> },
}

fn worker_main(mut islands: Vec<Island>, rx: Receiver<Cmd>, tx: Sender<Report>, work_iters: u64) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Epoch { horizon, arrivals } => {
                let mut outboxes = Vec::with_capacity(islands.len());
                for (island, incoming) in islands.iter_mut().zip(arrivals) {
                    for dg in incoming {
                        island.push(dg.at, dg.payload);
                    }
                    let mut outbox = Vec::new();
                    island.run_to(horizon, work_iters, &mut outbox);
                    outboxes.push((island.index, outbox));
                }
                if tx.send(Report::EpochDone { outboxes }).is_err() {
                    return;
                }
            }
            Cmd::Finish => {
                let digests =
                    islands.iter().map(|i| (i.index, i.digest, i.events)).collect();
                let _ = tx.send(Report::Finished { digests });
                return;
            }
        }
    }
}

/// One full run at the given worker count. Returns the per-island
/// `(digest, events)` list in island order, the wall-clock seconds, the
/// epoch count, and the cross-datagram total.
fn run_at(workers: usize, work_iters: u64) -> (Vec<(u64, u64)>, f64, u64, u64) {
    let t = Instant::now();
    // round-robin assignment, exactly like core::islands
    let mut assignment: Vec<Vec<Island>> = (0..workers).map(|_| Vec::new()).collect();
    let mut owned: Vec<Vec<usize>> = (0..workers).map(|_| Vec::new()).collect();
    for i in 0..ISLANDS {
        assignment[i % workers].push(Island::new(i, 42));
        owned[i % workers].push(i);
    }

    let (digests, epochs, cross) = std::thread::scope(|scope| {
        let (res_tx, res_rx) = channel::<Report>();
        let mut cmd_txs: Vec<Sender<Cmd>> = Vec::with_capacity(workers);
        for islands in assignment {
            let (tx, rx) = channel::<Cmd>();
            cmd_txs.push(tx);
            let res_tx = res_tx.clone();
            scope.spawn(move || worker_main(islands, rx, res_tx, work_iters));
        }
        drop(res_tx);

        let mut clock = 0u64;
        let mut epochs = 0u64;
        let mut cross = 0u64;
        let mut pending: Vec<Datagram> = Vec::new();
        while clock < SPAN {
            let horizon = (clock + LOOKAHEAD).min(SPAN);
            // canonical merge: every worker-count interleaving collapses
            // to one order before anything is routed
            pending.sort_by_key(|d| (d.at, d.src_island, d.src_seq));
            let mut routed: Vec<Vec<Datagram>> = (0..ISLANDS).map(|_| Vec::new()).collect();
            for dg in pending.drain(..) {
                cross += 1;
                routed[dg.dst].push(dg);
            }
            for (w, tx) in cmd_txs.iter().enumerate() {
                let arrivals =
                    owned[w].iter().map(|&i| std::mem::take(&mut routed[i])).collect();
                tx.send(Cmd::Epoch { horizon, arrivals }).expect("worker alive");
            }
            for _ in 0..workers {
                match res_rx.recv().expect("worker alive") {
                    Report::EpochDone { outboxes } => {
                        for (_, outbox) in outboxes {
                            pending.extend(outbox);
                        }
                    }
                    Report::Finished { .. } => unreachable!("finish before epochs done"),
                }
            }
            clock = horizon;
            epochs += 1;
        }
        for tx in &cmd_txs {
            tx.send(Cmd::Finish).expect("worker alive");
        }
        let mut digests: Vec<(usize, u64, u64)> = Vec::with_capacity(ISLANDS);
        for _ in 0..workers {
            match res_rx.recv().expect("worker alive") {
                Report::Finished { digests: d } => digests.extend(d),
                Report::EpochDone { .. } => unreachable!("epoch after finish"),
            }
        }
        digests.sort_by_key(|d| d.0);
        (digests, epochs, cross)
    });

    let wall = t.elapsed().as_secs_f64();
    (digests.into_iter().map(|(_, digest, events)| (digest, events)).collect(), wall, epochs, cross)
}

fn main() {
    let mut out_path = "BENCH_islands.json".to_string();
    let mut work_iters = WORK_ITERS;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            work_iters = 200;
        } else {
            out_path = arg;
        }
    }
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let workers_n = cores.min(ISLANDS);

    let (serial, serial_s, epochs1, cross1) = run_at(1, work_iters);
    let (parallel, parallel_s, epochs_n, cross_n) = run_at(workers_n, work_iters);

    assert_eq!(serial, parallel, "workers=1 and workers={workers_n} island digests diverged");
    assert_eq!((epochs1, cross1), (epochs_n, cross_n), "barrier protocol diverged");
    assert!(cross1 > 0, "no cross-island traffic — the merge path went unexercised");
    let digest_match = serial == parallel;
    let mut combined = 0xcbf2_9ce4_8422_2325u64;
    for (digest, events) in &serial {
        fnv(&mut combined, &[*digest, *events]);
    }
    let events: u64 = serial.iter().map(|(_, e)| e).sum();
    let speedup = serial_s / parallel_s;
    eprintln!(
        "[standalone] islands scaling: cores={cores} islands={ISLANDS} epochs={epochs1} \
         events={events} cross={cross1} w1={serial_s:.2}s wN={parallel_s:.2}s \
         speedup={speedup:.2}x digest_match={digest_match}"
    );

    let doc = format!(
        r#"{{
  "bench": "islands_speedup (E14)",
  "harness": "standalone rustc harness (std::time::Instant); simulated-testbed rows require the cargo bench_smoke bin",
  "cores": {cores},
  "islands": {ISLANDS},
  "lookahead": {LOOKAHEAD},
  "span": {SPAN},
  "epochs": {epochs1},
  "events": {events},
  "cross_datagrams": {cross1},
  "workload": {{ "kind": "xorshift64* event handlers", "iters_per_event": {work_iters} }},
  "workers1": {{ "workers": 1, "wall_clock_s": {serial_s}, "digest": "{combined:016x}" }},
  "workersN": {{ "workers": {workers_n}, "wall_clock_s": {parallel_s}, "digest": "{combined:016x}" }},
  "speedup": {speedup},
  "digest_match": {digest_match}
}}
"#,
    );
    std::fs::write(&out_path, doc).expect("write report");
    eprintln!("[standalone] wrote {out_path}");
}
