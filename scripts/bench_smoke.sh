#!/usr/bin/env bash
# Reduced substrate bench: old-vs-new microbenchmarks plus a small E1/E6
# sweep, written to BENCH_substrate.json at the repo root, the E11
# sweep-scaling row (jobs=1 vs jobs=all), written to BENCH_sweep.json,
# the E12 observability-overhead row (metrics on vs off), written to
# BENCH_obs.json, the E13 max_digis_per_sec scaling row (arena pools
# vs per-digi timers at 10k/100k/1M), written to BENCH_scale.json, and
# the E14 islands_speedup row (one sim space-partitioned across island
# kernels, 1 worker vs one per core), written to BENCH_islands.json.
#
# Usage: scripts/bench_smoke.sh [out.json] [sweep_out.json] [obs_out.json] [scale_out.json] [islands_out.json]
#
# If cargo cannot build the workspace (e.g. an offline container without
# a registry mirror), fall back to the standalone harnesses, which compile
# the std-only hot-path + sweep + obs + scale modules directly with rustc
# and measure the same comparisons (no simulated E1/E6/campaign rows in
# that mode; the obs row measures the raw record path instead of a full
# scene, the scale row measures miniature substrate models instead of
# full testbeds, and the islands row drives a miniature of the
# core::islands barrier protocol instead of real island testbeds).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_substrate.json}"
SWEEP_OUT="${2:-BENCH_sweep.json}"
OBS_OUT="${3:-BENCH_obs.json}"
SCALE_OUT="${4:-BENCH_scale.json}"
ISLANDS_OUT="${5:-BENCH_islands.json}"

if cargo build --release -p digibox-bench --bin bench_smoke 2>/dev/null; then
    exec cargo run --release -p digibox-bench --bin bench_smoke -- "$OUT" "$SWEEP_OUT" "$OBS_OUT" "$SCALE_OUT" "$ISLANDS_OUT"
fi

echo "[bench_smoke] cargo build unavailable; using standalone rustc harness" >&2
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
rustc --edition 2021 -O scripts/standalone_hotpath.rs -o "$TMP/standalone_hotpath"
"$TMP/standalone_hotpath" "$OUT"
rustc --edition 2021 -O scripts/standalone_sweep.rs -o "$TMP/standalone_sweep"
"$TMP/standalone_sweep" "$SWEEP_OUT"
rustc --edition 2021 -O scripts/standalone_obs.rs -o "$TMP/standalone_obs"
"$TMP/standalone_obs" "$OBS_OUT"
rustc --edition 2021 -O scripts/standalone_scale.rs -o "$TMP/standalone_scale"
"$TMP/standalone_scale" "$SCALE_OUT"
rustc --edition 2021 -O scripts/standalone_islands.rs -o "$TMP/standalone_islands"
"$TMP/standalone_islands" "$ISLANDS_OUT"
