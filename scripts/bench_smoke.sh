#!/usr/bin/env bash
# Reduced substrate bench: old-vs-new microbenchmarks plus a small E1/E6
# sweep, written to BENCH_substrate.json at the repo root.
#
# Usage: scripts/bench_smoke.sh [out.json]
#
# If cargo cannot build the workspace (e.g. an offline container without
# a registry mirror), fall back to the standalone harness, which compiles
# the std-only hot-path modules directly with rustc and measures the same
# micro comparisons (no E1/E6 rows in that mode).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_substrate.json}"

if cargo build --release -p digibox-bench --bin bench_smoke 2>/dev/null; then
    exec cargo run --release -p digibox-bench --bin bench_smoke -- "$OUT"
fi

echo "[bench_smoke] cargo build unavailable; using standalone rustc harness" >&2
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
rustc --edition 2021 -O scripts/standalone_hotpath.rs -o "$TMP/standalone_hotpath"
"$TMP/standalone_hotpath" "$OUT"
