//! The urban-sensing application (paper §5: mobile devices collect
//! environmental data, "aggregated across users to provide insights").

use std::collections::BTreeMap;

use digibox_broker::QoS;
use digibox_core::{topics, AppClient, AppEvent, Testbed};
use digibox_model::{Model, Value};
use digibox_net::{ServiceHandle, SimDuration};

/// Aggregated statistics for one street block.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockStats {
    pub samples: u64,
    pub mean_pm25: f64,
    pub max_pm25: f64,
}

/// Aggregates mobile air-quality readings per block. The app learns which
/// block a sensor is in from its *assignment map*, which the operator
/// updates as sensors re-attach (in a real deployment this comes from the
/// phone's GPS).
pub struct UrbanSensingApp {
    client: ServiceHandle<AppClient>,
    sensor_block: BTreeMap<String, String>,
    stats: BTreeMap<String, BlockStats>,
}

impl UrbanSensingApp {
    pub fn new(tb: &mut Testbed) -> UrbanSensingApp {
        let node = tb.broker_addr().node;
        let client = tb.app_with_mqtt(node, "app/urban-sensing");
        client
            .borrow_mut()
            .subscribe(tb.sim(), &[("digibox/digi/+/model", QoS::AtMostOnce)]);
        tb.run_for(SimDuration::from_millis(50));
        UrbanSensingApp { client, sensor_block: BTreeMap::new(), stats: BTreeMap::new() }
    }

    /// Record that `sensor` is currently in `block`.
    pub fn assign(&mut self, sensor: &str, block: &str) {
        self.sensor_block.insert(sensor.to_string(), block.to_string());
    }

    pub fn step(&mut self, _tb: &mut Testbed) {
        let events = self.client.borrow_mut().poll_all();
        for ev in events {
            let AppEvent::Message { topic, payload } = ev else {
                continue;
            };
            let Some(device) = topics::digi_of(&topic) else {
                continue;
            };
            let Some(block) = self.sensor_block.get(device).cloned() else {
                continue;
            };
            let Ok(model) = serde_json::from_slice::<Model>(&payload) else {
                continue;
            };
            let Some(pm) = model.fields().get("pm25_ugm3").and_then(Value::as_float) else {
                continue;
            };
            let s = self.stats.entry(block).or_default();
            // online mean
            s.samples += 1;
            s.mean_pm25 += (pm - s.mean_pm25) / s.samples as f64;
            s.max_pm25 = s.max_pm25.max(pm);
        }
    }

    pub fn block_stats(&self, block: &str) -> Option<&BlockStats> {
        self.stats.get(block)
    }

    /// The city view: per-block stats, sorted by block name.
    pub fn city_view(&self) -> Vec<(String, BlockStats)> {
        self.stats.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Blocks whose mean PM2.5 exceeds a threshold (the "insight").
    pub fn hotspots(&self, threshold: f64) -> Vec<String> {
        self.stats
            .iter()
            .filter(|(_, s)| s.mean_pm25 > threshold)
            .map(|(b, _)| b.clone())
            .collect()
    }
}
