//! # digibox-apps
//!
//! Three complete IoT applications written *against* Digibox testbeds, the
//! way the paper intends (§2: "developers build the application using IoT
//! frameworks while building scenes using Digibox to test the
//! functionalities and performance of the application"):
//!
//! * [`SmartBuildingApp`] — computes room occupancy from heterogeneous
//!   sensors, drives lighting, and alerts on overcrowding (the paper's §1
//!   motivating app).
//! * [`ColdChainApp`] — audits a refrigerated supply chain: watches cargo
//!   monitors for excursions and produces an audit report.
//! * [`UrbanSensingApp`] — aggregates mobile air-quality readings per
//!   street block into a city view.
//!
//! Each app is deliberately *app logic only*: it consumes device messages
//! (MQTT) and the REST device API; all scene logic lives in
//! `digibox-devices`. That separation is the paper's central design claim,
//! and it is what the fidelity-ablation experiment (E4) measures.

mod building;
mod coldchain;
mod urban;

pub use building::{BuildingAlert, SmartBuildingApp};
pub use coldchain::{ColdChainApp, ExcursionReport};
pub use urban::{BlockStats, UrbanSensingApp};
