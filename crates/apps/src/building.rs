//! The smart-building application from the paper's introduction: "monitor
//! room occupancy, alert building managers about overcrowding during a
//! pandemic, or predictively adjust lighting".

use std::collections::BTreeMap;

use digibox_broker::QoS;
use digibox_core::{topics, AppClient, AppEvent, Testbed};
use digibox_model::{Model, Value};
use digibox_net::{ServiceHandle, SimDuration};

/// An alert raised by the app.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildingAlert {
    /// More people in `room` than its configured limit.
    Overcrowded { room: String, count: i64, limit: i64 },
    /// A device stopped reporting (its last-will fired).
    DeviceOffline { device: String },
}

#[derive(Debug, Default, Clone)]
struct RoomState {
    /// room-level (ceiling) occupancy sensors
    ceiling: Vec<String>,
    /// per-desk occupancy sensors
    desks: Vec<String>,
    occupants: i64,
    occupied: bool,
}

/// App logic: estimates occupancy per room from sensor messages and reacts.
pub struct SmartBuildingApp {
    client: ServiceHandle<AppClient>,
    /// room → state; sensor→room routing is configured by the developer
    /// (apps know their deployment, not the scene internals).
    rooms: BTreeMap<String, RoomState>,
    sensor_to_room: BTreeMap<String, String>,
    lamp_of_room: BTreeMap<String, String>,
    /// latest raw sensor readings
    readings: BTreeMap<String, bool>,
    occupant_limit: i64,
    alerts: Vec<BuildingAlert>,
    lamp_commands: u64,
}

impl SmartBuildingApp {
    /// Create the app on the broker's node and subscribe to all digi
    /// models + last-wills.
    pub fn new(tb: &mut Testbed, occupant_limit: i64) -> SmartBuildingApp {
        let node = tb.broker_addr().node;
        let client = tb.app_with_mqtt(node, "app/smart-building");
        client.borrow_mut().subscribe(
            tb.sim(),
            &[("digibox/digi/+/model", QoS::AtMostOnce), ("digibox/lwt/+", QoS::AtMostOnce)],
        );
        tb.run_for(SimDuration::from_millis(50));
        SmartBuildingApp {
            client,
            rooms: BTreeMap::new(),
            sensor_to_room: BTreeMap::new(),
            lamp_of_room: BTreeMap::new(),
            readings: BTreeMap::new(),
            occupant_limit,
            alerts: Vec::new(),
            lamp_commands: 0,
        }
    }

    /// Declare a room with its ceiling sensors, desk sensors and
    /// (optional) lamp. The split matters: a desk may legally be empty in
    /// an occupied room, but never occupied in an empty one (paper §2).
    pub fn add_room(&mut self, room: &str, ceiling: &[&str], desks: &[&str], lamp: Option<&str>) {
        let state = RoomState {
            ceiling: ceiling.iter().map(|s| s.to_string()).collect(),
            desks: desks.iter().map(|s| s.to_string()).collect(),
            ..Default::default()
        };
        self.rooms.insert(room.to_string(), state);
        for s in ceiling.iter().chain(desks) {
            self.sensor_to_room.insert(s.to_string(), room.to_string());
        }
        if let Some(lamp) = lamp {
            self.lamp_of_room.insert(room.to_string(), lamp.to_string());
        }
    }

    /// Drain device messages and update estimates; issue lamp commands.
    /// Call between `run_for` steps.
    pub fn step(&mut self, tb: &mut Testbed) {
        let events = self.client.borrow_mut().poll_all();
        let mut dirty_rooms: Vec<String> = Vec::new();
        for ev in events {
            match ev {
                AppEvent::Message { topic, payload } => {
                    if let Some(device) = topic.strip_prefix("digibox/lwt/") {
                        self.alerts
                            .push(BuildingAlert::DeviceOffline { device: device.to_string() });
                        continue;
                    }
                    let Some(device) = topics::digi_of(&topic) else {
                        continue;
                    };
                    let Ok(model) = serde_json::from_slice::<Model>(&payload) else {
                        continue;
                    };
                    if let Some(t) =
                        model.fields().get("triggered").and_then(Value::as_bool)
                    {
                        self.readings.insert(device.to_string(), t);
                        if let Some(room) = self.sensor_to_room.get(device) {
                            dirty_rooms.push(room.clone());
                        }
                    }
                }
                AppEvent::MqttConnected
                | AppEvent::MqttBrokerLost
                | AppEvent::Response { .. }
                | AppEvent::RequestFailed { .. } => {}
            }
        }
        dirty_rooms.sort();
        dirty_rooms.dedup();
        for room in dirty_rooms {
            self.recompute_room(tb, &room);
        }
    }

    fn recompute_room(&mut self, tb: &mut Testbed, room: &str) {
        let Some(state) = self.rooms.get(room) else {
            return;
        };
        // occupancy estimate: desk sensors count people; the ceiling
        // sensor alone contributes presence (≥1 person)
        let desks_occupied: i64 = state
            .desks
            .iter()
            .filter(|s| self.readings.get(*s).copied().unwrap_or(false))
            .count() as i64;
        let ceiling_triggered = state
            .ceiling
            .iter()
            .any(|s| self.readings.get(s).copied().unwrap_or(false));
        let occupied = ceiling_triggered || desks_occupied > 0;
        let triggered = desks_occupied.max(i64::from(ceiling_triggered));
        let was_occupied = state.occupied;
        let state = self.rooms.get_mut(room).expect("room exists");
        state.occupants = triggered;
        state.occupied = occupied;
        if triggered > self.occupant_limit {
            self.alerts.push(BuildingAlert::Overcrowded {
                room: room.to_string(),
                count: triggered,
                limit: self.occupant_limit,
            });
        }
        // lighting: follow occupancy transitions
        if occupied != was_occupied {
            if let Some(lamp) = self.lamp_of_room.get(room).cloned() {
                let cmd = digibox_model::vmap! {
                    "power" => if occupied { "on" } else { "off" }
                };
                let payload = serde_json::to_vec(&cmd.to_json()).expect("values serialize");
                let topic = topics::intent(&lamp);
                self.client.borrow_mut().publish(tb.sim(), &topic, payload, QoS::AtLeastOnce);
                self.lamp_commands += 1;
            }
        }
    }

    /// Current occupancy estimate for a room.
    pub fn occupancy(&self, room: &str) -> Option<(bool, i64)> {
        self.rooms.get(room).map(|r| (r.occupied, r.occupants))
    }

    /// All alerts raised so far.
    pub fn alerts(&self) -> &[BuildingAlert] {
        &self.alerts
    }

    pub fn lamp_commands(&self) -> u64 {
        self.lamp_commands
    }

    /// Consistency check used by the fidelity experiment: the room's
    /// ensemble is consistent when (a) every ceiling sensor agrees with the
    /// others and (b) no desk is occupied while the ceiling sensors say the
    /// room is empty. Scene-centric simulation maintains this invariant;
    /// device-centric simulation (independent sensors) breaks it constantly
    /// — the "impossible states" the paper's §2 example describes.
    pub fn sensors_consistent(&self, room: &str) -> Option<bool> {
        let state = self.rooms.get(room)?;
        let ceiling: Vec<bool> = state
            .ceiling
            .iter()
            .filter_map(|s| self.readings.get(s).copied())
            .collect();
        let desks: Vec<bool> = state
            .desks
            .iter()
            .filter_map(|s| self.readings.get(s).copied())
            .collect();
        if ceiling.is_empty() || (ceiling.len() < 2 && desks.is_empty()) {
            return None;
        }
        let ceiling_agree = ceiling.iter().all(|v| *v) || ceiling.iter().all(|v| !*v);
        let room_occupied = ceiling.iter().any(|v| *v);
        let desks_legal = room_occupied || desks.iter().all(|v| !*v);
        Some(ceiling_agree && desks_legal)
    }
}
