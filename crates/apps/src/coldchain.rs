//! The supply-chain application (paper §1: "track cargo and inventory
//! conditions to audit, automate, and optimize operational logistics").

use std::collections::BTreeMap;

use digibox_broker::QoS;
use digibox_core::{topics, AppClient, AppEvent, Testbed};
use digibox_model::{Model, Value};
use digibox_net::{ServiceHandle, SimDuration, SimTime};

/// One excursion found in the audit.
#[derive(Debug, Clone, PartialEq)]
pub struct ExcursionReport {
    pub shipment: String,
    pub first_seen: SimTime,
    pub peak_temp_c: f64,
}

/// Watches cargo-condition monitors across shipments, alerts on cold-chain
/// excursions and keeps an audit trail.
pub struct ColdChainApp {
    client: ServiceHandle<AppClient>,
    /// shipment (cargo monitor name) → latest reading
    temps: BTreeMap<String, f64>,
    excursions: BTreeMap<String, ExcursionReport>,
    /// shipments we are responsible for
    shipments: Vec<String>,
    pub max_safe_c: f64,
}

impl ColdChainApp {
    pub fn new(tb: &mut Testbed, max_safe_c: f64) -> ColdChainApp {
        let node = tb.broker_addr().node;
        let client = tb.app_with_mqtt(node, "app/cold-chain");
        client
            .borrow_mut()
            .subscribe(tb.sim(), &[("digibox/digi/+/model", QoS::AtLeastOnce)]);
        tb.run_for(SimDuration::from_millis(50));
        ColdChainApp {
            client,
            temps: BTreeMap::new(),
            excursions: BTreeMap::new(),
            shipments: Vec::new(),
            max_safe_c,
        }
    }

    pub fn track(&mut self, shipment: &str) {
        self.shipments.push(shipment.to_string());
    }

    pub fn step(&mut self, tb: &mut Testbed) {
        let now = tb.now();
        let events = self.client.borrow_mut().poll_all();
        for ev in events {
            let AppEvent::Message { topic, payload } = ev else {
                continue;
            };
            let Some(device) = topics::digi_of(&topic) else {
                continue;
            };
            if !self.shipments.iter().any(|s| s == device) {
                continue;
            }
            let Ok(model) = serde_json::from_slice::<Model>(&payload) else {
                continue;
            };
            let Some(temp) = model.fields().get("temp_c").and_then(Value::as_float) else {
                continue;
            };
            self.temps.insert(device.to_string(), temp);
            if temp > self.max_safe_c {
                let entry =
                    self.excursions.entry(device.to_string()).or_insert(ExcursionReport {
                        shipment: device.to_string(),
                        first_seen: now,
                        peak_temp_c: temp,
                    });
                entry.peak_temp_c = entry.peak_temp_c.max(temp);
            }
        }
    }

    /// Latest temperature per tracked shipment.
    pub fn temperature(&self, shipment: &str) -> Option<f64> {
        self.temps.get(shipment).copied()
    }

    /// The audit report: every excursion seen, ordered by shipment.
    pub fn audit(&self) -> Vec<ExcursionReport> {
        self.excursions.values().cloned().collect()
    }

    pub fn is_compliant(&self, shipment: &str) -> bool {
        !self.excursions.contains_key(shipment)
    }
}
