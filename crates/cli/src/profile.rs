//! `dbox profile` — a virtual-time span profile in folded-stack form.
//!
//! Materializes the session and prints the observability layer's span
//! tree as `path;to;frame count` lines — the input format of standard
//! flamegraph tooling (`flamegraph.pl`, inferno, speedscope). Weights are
//! deterministic entry counts, not wall-clock samples: handlers execute
//! in zero virtual time, so "how often does this path run" is the
//! profile a simulated ensemble can answer reproducibly.

use crate::Session;

/// Execute `dbox profile` against a loaded session.
pub fn run(session: &Session, _args: &[String]) -> Result<String, String> {
    let mut dbox = session.materialize()?;
    let snap = dbox.testbed().obs_snapshot();
    let folded = snap.folded();
    if folded.is_empty() {
        return Ok("no spans recorded (run some digis first)\n".to_string());
    }
    Ok(folded)
}
