//! `dbox audit` — determinism/concurrency static analysis over the
//! simulation crates' own Rust sources.
//!
//! Same exit-code contract as `dbox lint` (intercepted in
//! [`crate::invoke`]):
//!
//! * `0` — clean, or only warnings;
//! * `2` — at least one error-severity finding, or a rejected `--allow`
//!   code (a typoed allow must not silently un-waive anything);
//! * `1` — operational failure (bad flags, unreadable path).

use std::path::Path;

use digibox_analysis::audit::{audit_paths, AuditOptions, DEFAULT_CRATES};
use digibox_analysis::{parse_allow_codes, HazardCode};

use crate::Outcome;

const AUDIT_USAGE: &str = "\
usage:
  dbox audit                    audit the seven simulation crates
  dbox audit <paths...>         audit specific files or directories
options:
  --format json                 canonical machine-readable report
  --allow DH0005                suppress codes for this run (validated)

hazard codes: DH0001 banned time/entropy API, DH0002 hash-order
iteration, DH0003 thread outside core::sweep/islands, DH0004 pointer identity
leak, DH0005 float accumulation (warning), DH0090 stale det-ok
suppression, DH0091 malformed det-ok annotation.
";

pub fn run(dir: &Path, args: &[String]) -> Outcome {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Outcome { stdout: AUDIT_USAGE.to_string(), code: 0 };
    }
    let mut json = false;
    let mut opts = AuditOptions::default();
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("pretty") => json = false,
                other => {
                    return Outcome {
                        stdout: format!("error: unknown --format {other:?}\n{AUDIT_USAGE}"),
                        code: 1,
                    }
                }
            },
            "--allow" => {
                let Some(codes) = it.next() else {
                    return Outcome {
                        stdout: format!("error: --allow needs codes\n{AUDIT_USAGE}"),
                        code: 1,
                    };
                };
                match parse_allow_codes(codes, HazardCode::all().map(HazardCode::as_str)) {
                    Ok(set) => opts.allow.extend(set),
                    Err(e) => return Outcome { stdout: format!("error: {e}\n"), code: 2 },
                }
            }
            flag if flag.starts_with('-') => {
                return Outcome {
                    stdout: format!("error: unknown argument {flag:?}\n{AUDIT_USAGE}"),
                    code: 1,
                }
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() {
        // default set, resolved against the invocation directory (CI runs
        // from the repo root)
        for c in DEFAULT_CRATES {
            paths.push(dir.join(c).to_string_lossy().into_owned());
        }
    }
    match audit_paths(&paths, &opts) {
        Ok(report) => {
            let stdout = if json { report.to_json() } else { report.render_pretty() };
            let code = if report.has_errors() { 2 } else { 0 };
            Outcome { stdout, code }
        }
        Err(e) => Outcome { stdout: format!("error: {e}\n"), code: 1 },
    }
}

#[cfg(test)]
mod auditcheck {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dbox-audit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_args(dir: &Path, args: &[&str]) -> Outcome {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(dir, &args)
    }

    #[test]
    fn seeded_violation_exits_2_with_span() {
        let dir = tmpdir("seeded");
        let bad = dir.join("bad.rs");
        std::fs::write(&bad, "fn now() -> u64 {\n    SystemTime::now().into()\n}\n").unwrap();
        let out = run_args(&dir, &[bad.to_str().unwrap()]);
        assert_eq!(out.code, 2, "{}", out.stdout);
        assert!(out.stdout.contains("DH0001"), "{}", out.stdout);
        assert!(out.stdout.contains("bad.rs:2:5"), "{}", out.stdout);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_format_is_canonical() {
        let dir = tmpdir("json");
        let bad = dir.join("bad.rs");
        std::fs::write(&bad, "let r = thread_rng();\n").unwrap();
        let out = run_args(&dir, &[bad.to_str().unwrap(), "--format", "json"]);
        assert_eq!(out.code, 2, "{}", out.stdout);
        assert!(out.stdout.contains("\"code\": \"DH0001\""), "{}", out.stdout);
        assert!(out.stdout.contains("\"errors\": 1"), "{}", out.stdout);
        assert!(out.stdout.ends_with('\n'));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn allow_waives_and_unknown_allow_exits_2() {
        let dir = tmpdir("allow");
        let bad = dir.join("warn.rs");
        std::fs::write(
            &bad,
            "let w: HashMap<u32, f64> = HashMap::new();\nlet t: f64 = w.values().sum();\n",
        )
        .unwrap();
        let out = run_args(&dir, &[bad.to_str().unwrap(), "--allow", "DH0005"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("1 allowed"), "{}", out.stdout);

        // typoed code: rejected loudly, not silently ignored
        let out = run_args(&dir, &[bad.to_str().unwrap(), "--allow", "DH005"]);
        assert_eq!(out.code, 2, "{}", out.stdout);
        assert!(out.stdout.contains("did you mean DH0005?"), "{}", out.stdout);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_file_exits_0_and_help_works() {
        let dir = tmpdir("clean");
        let good = dir.join("good.rs");
        std::fs::write(&good, "fn main() { println!(\"SystemTime::now in a string\"); }\n")
            .unwrap();
        let out = run_args(&dir, &[good.to_str().unwrap()]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("1 file(s), 0 error(s)"), "{}", out.stdout);
        let out = run_args(&dir, &["--help"]);
        assert_eq!(out.code, 0);
        assert!(out.stdout.starts_with("usage:"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_path_is_operational_failure() {
        let dir = tmpdir("missing");
        let out = run_args(&dir, &["no/such/dir"]);
        assert_eq!(out.code, 1, "{}", out.stdout);
        assert!(out.stdout.starts_with("error:"), "{}", out.stdout);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
