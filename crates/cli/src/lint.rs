//! `dbox lint` — static analysis over the current session (or a manifest
//! file, or the built-in library), before any simulation runs.
//!
//! Unlike the other verbs this one has its own exit-code contract, so it
//! is intercepted in [`crate::invoke`] rather than routed through
//! `invoke_inner`:
//!
//! * `0` — clean, or only warnings/notes;
//! * `2` — at least one error-severity finding, or a rejected `--allow`
//!   code (a typoed allow must not silently un-waive anything);
//! * `1` — operational failure (bad flags, unreadable file, broken
//!   session).

use std::path::Path;

use digibox_analysis::{lint_ensemble, lint_catalog, parse_allow_codes, Ensemble, LintCode, Options, Report};
use digibox_devices::full_catalog;
use digibox_registry::SetupManifest;

use crate::{Outcome, Session};

const LINT_USAGE: &str = "\
usage:
  dbox lint                     lint the current session's ensemble
  dbox lint --file <setup.dml>  lint a setup manifest file
  dbox lint --library           lint the built-in mock/scene library
options:
  --format json                 machine-readable findings
  --allow DL0002,DL0012         suppress codes for this run
";

pub fn run(dir: &Path, args: &[String]) -> Outcome {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Outcome { stdout: LINT_USAGE.to_string(), code: 0 };
    }
    match run_inner(dir, args) {
        Ok((report, json)) => {
            let stdout = if json { report.to_json() + "\n" } else { report.render_pretty() };
            let code = if report.has_errors() { 2 } else { 0 };
            Outcome { stdout, code }
        }
        Err((code, e)) => Outcome { stdout: format!("error: {e}\n"), code },
    }
}

/// Errors carry their exit code: `1` for operational failures, `2` for a
/// rejected `--allow` code.
fn run_inner(dir: &Path, args: &[String]) -> Result<(Report, bool), (i32, String)> {
    let fail = |msg: String| (1, msg);
    let mut json = false;
    let mut opts = Options::default();
    let mut library = false;
    let mut file: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("pretty") => json = false,
                other => return Err(fail(format!("unknown --format {other:?}\n{LINT_USAGE}"))),
            },
            "--allow" => {
                let codes =
                    it.next().ok_or_else(|| fail(format!("--allow needs codes\n{LINT_USAGE}")))?;
                // validated: a typoed code used to be silently ignored,
                // leaving its findings live while the user believed them
                // waived
                let set = parse_allow_codes(codes, LintCode::all().map(LintCode::as_str))
                    .map_err(|e| (2, e))?;
                opts.allow.extend(set);
            }
            "--library" => library = true,
            "--file" => {
                file = Some(
                    it.next().ok_or_else(|| fail(format!("--file needs a path\n{LINT_USAGE}")))?.clone(),
                );
            }
            other => return Err(fail(format!("unknown argument {other:?}\n{LINT_USAGE}"))),
        }
    }

    let catalog = full_catalog();
    let report = if library {
        lint_catalog(&catalog, &opts)
    } else if let Some(path) = file {
        let text = std::fs::read_to_string(&path).map_err(|e| fail(format!("{path}: {e}")))?;
        let manifest = SetupManifest::from_dml(&text).map_err(fail)?;
        lint_ensemble(&catalog, &Ensemble::new(manifest), &opts)
    } else {
        // lint whatever the session journal materializes to
        let session = Session::load(dir).map_err(fail)?;
        let mut dbox = session.materialize().map_err(fail)?;
        let manifest = dbox.testbed().describe("session");
        let properties = dbox.testbed().properties().to_vec();
        lint_ensemble(&catalog, &Ensemble::new(manifest).with_properties(properties), &opts)
    };
    Ok((report, json))
}

#[cfg(test)]
mod lintcheck {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dbox-lint-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn library_mode_is_clean() {
        let dir = tmpdir("lib");
        let out = run(&dir, &["--library".to_string()]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("0 error(s)"), "{}", out.stdout);
    }

    #[test]
    fn file_mode_reports_errors_with_exit_2() {
        let dir = tmpdir("file");
        let path = dir.join("bad.dml");
        let mut m = SetupManifest::new("bad", 1);
        m.instances.push(digibox_registry::InstanceDecl {
            name: "F1".into(),
            kind: "Fna".into(),
            version: "v1".into(),
            managed: false,
            params: Default::default(),
        });
        std::fs::write(&path, m.to_dml()).unwrap();
        let out = run(&dir, &["--file".to_string(), path.display().to_string()]);
        assert_eq!(out.code, 2, "{}", out.stdout);
        assert!(out.stdout.contains("DL0005"), "{}", out.stdout);
        assert!(out.stdout.contains("did you mean"), "{}", out.stdout);
    }

    #[test]
    fn json_format_and_allow() {
        let dir = tmpdir("json");
        let path = dir.join("bad.dml");
        let mut m = SetupManifest::new("bad", 1);
        m.instances.push(digibox_registry::InstanceDecl {
            name: "a/b".into(),
            kind: "Lamp".into(),
            version: "v1".into(),
            managed: false,
            params: Default::default(),
        });
        std::fs::write(&path, m.to_dml()).unwrap();
        let args: Vec<String> =
            ["--file", &path.display().to_string(), "--format", "json"].iter().map(|s| s.to_string()).collect();
        let out = run(&dir, &args);
        assert_eq!(out.code, 2, "{}", out.stdout);
        assert!(out.stdout.contains("\"code\": \"DL0004\""), "{}", out.stdout);
        // suppressing the only finding exits clean
        let args: Vec<String> = ["--file", &path.display().to_string(), "--allow", "DL0004"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = run(&dir, &args);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("1 suppressed"), "{}", out.stdout);
    }

    #[test]
    fn help_exits_zero() {
        let dir = tmpdir("help");
        let out = run(&dir, &["--help".to_string()]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.starts_with("usage:"), "{}", out.stdout);
    }

    #[test]
    fn unknown_allow_code_is_rejected_with_exit_2() {
        let dir = tmpdir("allow-reject");
        let args: Vec<String> =
            ["--library", "--allow", "DL0202"].iter().map(|s| s.to_string()).collect();
        let out = run(&dir, &args);
        assert_eq!(out.code, 2, "{}", out.stdout);
        assert!(out.stdout.contains("did you mean DL0002?"), "{}", out.stdout);
    }

    #[test]
    fn bad_flags_exit_1() {
        let dir = tmpdir("flags");
        let out = run(&dir, &["--nope".to_string()]);
        assert_eq!(out.code, 1);
        assert!(out.stdout.contains("usage:"), "{}", out.stdout);
    }
}
