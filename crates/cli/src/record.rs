//! `dbox record` — capture the session's run as a named, content-addressed
//! trace in the local registry.
//!
//! Recording is a *pure read*: the session is materialized (the same
//! deterministic replay every other read-only verb does), its trace and
//! stats are captured, and the objects land in `.dbox/registry` under the
//! ref `trace/<name>`. The session journal is untouched, so recording has
//! no observable effect on any later command — `dbox stats` prints the
//! same digest before and after.
//!
//! Alongside the chunked records, the trace manifest carries the *recipe*
//! needed for verified replay in its extras:
//!
//! * `session` — the full event-sourced session (seed + journal), so
//!   `dbox replay <name>` can re-execute the run from scratch anywhere;
//! * `setup` — the `SetupManifest` of the running digis, so state
//!   playback (`--speed`, `--from-checkpoint`) can recreate the testbed;
//! * `stats` / `stats_digest` — the run's canonical stats snapshot, the
//!   byte-for-byte target a verified replay must reproduce.

use std::collections::BTreeMap;
use std::path::Path;

use digibox_registry::{sha256, Repository};
use digibox_trace::store;

use crate::Session;

/// Execute `dbox record [<name>]` against the workspace at `dir`.
/// With a name: record. Without: list recorded traces.
pub fn run(dir: &Path, args: &[String]) -> Result<String, String> {
    let session = Session::load(dir)?;
    let repo_dir = dir.join(".dbox").join("registry");
    let mut repo = if repo_dir.join("refs.json").exists() {
        Repository::load_from_dir(&repo_dir).map_err(|e| e.to_string())?
    } else {
        Repository::new()
    };

    let Some(name) = args.first() else {
        let names = store::list(&repo);
        if names.is_empty() {
            return Ok("no recorded traces (try `dbox record <name>`)\n".into());
        }
        let mut out = String::new();
        for n in names {
            let m = store::manifest(&repo, &n).map_err(|e| e.to_string())?;
            out.push_str(&format!(
                "trace/{:<20} {:>8} records  {:>4} chunks  span {}\n",
                m.name,
                m.records,
                m.chunks.len(),
                digibox_net::SimDuration::from_nanos(m.span_nanos),
            ));
        }
        return Ok(out);
    };
    if name.starts_with('-') {
        return Err(format!("unknown flag {name:?} (usage: dbox record [<name>])"));
    }

    let mut dbox = session.materialize()?;
    let records = dbox.testbed().log().records();
    let stats_json = dbox.testbed().obs_snapshot().to_json();
    let setup = dbox
        .testbed()
        .snapshot(name)
        .map_err(|e| e.to_string())?;

    let mut extras = BTreeMap::new();
    extras.insert(
        "session".to_string(),
        serde_json::to_string(&session).map_err(|e| e.to_string())?,
    );
    extras.insert(
        "setup".to_string(),
        String::from_utf8(setup.to_bytes()).map_err(|e| e.to_string())?,
    );
    extras.insert("stats_digest".to_string(), sha256(stats_json.as_bytes()).to_string());
    extras.insert("stats".to_string(), stats_json);

    let before = repo.object_count();
    store::save(&mut repo, name, &records, extras).map_err(|e| e.to_string())?;
    let new_objects = repo.object_count() - before;
    let manifest = store::manifest(&repo, name).map_err(|e| e.to_string())?;
    repo.save_to_dir(&repo_dir).map_err(|e| e.to_string())?;

    Ok(format!(
        "recorded trace/{name}: {} records over {}, {} chunks ({new_objects} new objects), stats digest {}\n",
        manifest.records,
        digibox_net::SimDuration::from_nanos(manifest.span_nanos),
        manifest.chunks.len(),
        &manifest.extras["stats_digest"][..12],
    ))
}
