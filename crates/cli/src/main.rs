//! The `dbox` binary: parse argv, run one command against the workspace in
//! the current directory, print the outcome.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = std::env::current_dir().unwrap_or_else(|e| {
        eprintln!("error: cannot determine working directory: {e}");
        std::process::exit(1);
    });
    let outcome = digibox_cli::invoke(&dir, &args);
    print!("{}", outcome.stdout);
    std::process::exit(outcome.code);
}
