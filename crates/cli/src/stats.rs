//! `dbox stats` — the deterministic metrics snapshot.
//!
//! Materializes the session (a pure replay of the journal, §3.5's
//! reproducibility property) and freezes the observability registry:
//! every counter, gauge and histogram the kernel, broker, digis and
//! control plane recorded, timestamped only in virtual time. Because
//! materialization is deterministic, two invocations on the same session
//! print byte-identical output — the JSON form is canonical (sorted keys,
//! no whitespace) precisely so its digest is stable.

use crate::Session;

/// Execute `dbox stats [--format json|pretty]` against a loaded session.
pub fn run(session: &Session, args: &[String]) -> Result<String, String> {
    let format = match args.iter().position(|a| a == "--format") {
        Some(i) => args
            .get(i + 1)
            .map(String::as_str)
            .ok_or("usage: dbox stats [--format json|pretty]")?,
        None => "pretty",
    };
    let mut dbox = session.materialize()?;
    let snap = dbox.testbed().obs_snapshot();
    match format {
        "json" => Ok(format!("{}\n", snap.to_json())),
        "pretty" => {
            let json = snap.to_json();
            let digest = digibox_registry::sha256(json.as_bytes()).to_string();
            Ok(format!("{}stats digest {}\n", snap.render(), &digest[..12]))
        }
        other => Err(format!("unknown stats format {other:?} (json|pretty)")),
    }
}
