//! `dbox` — the Digibox CLI (paper, Table 1).
//!
//! | command | functionality |
//! |---|---|
//! | `dbox run <Type> <name>` / `dbox stop <name>` | run/stop a mock or scene |
//! | `dbox check <name>` / `dbox watch <name>` | display model (changes) |
//! | `dbox attach <name> <scene>` (`-d` to detach) | (de)attach |
//! | `dbox edit <name> k=v ...` | set intent fields |
//! | `dbox commit <setup> [-m msg]` | snapshot the setup into the repo |
//! | `dbox push <setup> --to DIR` / `dbox pull <setup> --from DIR` | share |
//! | `dbox replay <trace-file>` | replay a trace |
//! | plus: `sim`, `list`, `types`, `export-trace`, `log` |
//!
//! ## How state persists without a daemon
//!
//! The paper's CLI talks to a long-running Kubernetes cluster. This binary
//! is daemonless: the workspace directory holds an *event-sourced session*
//! — a journal of every state-changing command with its virtual timestamp.
//! Each invocation deterministically re-materializes the testbed by
//! replaying the journal (same seed ⇒ bit-identical state, the
//! reproducibility property of §3.5), applies the new command, and appends
//! it. Commit/push/pull use an on-disk content-addressed repository under
//! `.dbox/registry`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use digibox_core::{Dbox, Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_model::{dml, Value};
use digibox_net::SimDuration;
use digibox_registry::Repository;

mod audit;
mod chaos;
mod fuzz;
mod lint;
mod profile;
mod record;
mod replay;
mod stats;
mod sweep;

/// One state-changing command in the journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "cmd", rename_all = "snake_case")]
pub enum Command {
    Run { kind: String, name: String, managed: bool, params: BTreeMap<String, Value> },
    Stop { name: String },
    Attach { child: String, parent: String },
    Detach { child: String, parent: String },
    Edit { name: String, updates: Value },
    SetManaged { name: String, managed: bool },
    /// Pure time advancement (`dbox sim <secs>`).
    Advance,
}

/// A journal entry: the virtual time at which the command was applied.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entry {
    pub at_ms: u64,
    #[serde(flatten)]
    pub command: Command,
}

/// The persisted session.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Session {
    pub seed: u64,
    pub journal: Vec<Entry>,
    /// Total virtual time the session has advanced to.
    pub elapsed_ms: u64,
}

/// How much virtual time a state-changing command implicitly advances
/// (covers container start + message settling).
const COMMAND_SETTLE_MS: u64 = 500;

impl Session {
    pub fn new(seed: u64) -> Session {
        Session { seed, journal: Vec::new(), elapsed_ms: 0 }
    }

    pub fn state_path(dir: &Path) -> PathBuf {
        dir.join(".dbox").join("session.json")
    }

    pub fn load(dir: &Path) -> Result<Session, String> {
        let path = Session::state_path(dir);
        if !path.exists() {
            return Ok(Session::new(42));
        }
        let bytes = std::fs::read(&path).map_err(|e| e.to_string())?;
        serde_json::from_slice(&bytes).map_err(|e| e.to_string())
    }

    pub fn save(&self, dir: &Path) -> Result<(), String> {
        let path = Session::state_path(dir);
        std::fs::create_dir_all(path.parent().expect("state path has a parent"))
            .map_err(|e| e.to_string())?;
        let bytes = serde_json::to_vec_pretty(self).map_err(|e| e.to_string())?;
        std::fs::write(path, bytes).map_err(|e| e.to_string())
    }

    /// Deterministically re-materialize the testbed by replaying the
    /// journal on a fresh kernel.
    pub fn materialize(&self) -> Result<Dbox, String> {
        let tb = Testbed::laptop(
            full_catalog(),
            TestbedConfig { seed: self.seed, ..Default::default() },
        );
        let mut dbox = Dbox::new(tb);
        for entry in &self.journal {
            let now_ms = dbox.testbed().now().as_millis();
            if entry.at_ms > now_ms {
                dbox.testbed().run_for(SimDuration::from_millis(entry.at_ms - now_ms));
            }
            apply(&mut dbox, &entry.command).map_err(|e| format!("replaying journal: {e}"))?;
        }
        let now_ms = dbox.testbed().now().as_millis();
        if self.elapsed_ms > now_ms {
            dbox.testbed().run_for(SimDuration::from_millis(self.elapsed_ms - now_ms));
        }
        Ok(dbox)
    }

    /// Apply a new command on a materialized testbed and append it to the
    /// journal.
    pub fn execute(&mut self, dbox: &mut Dbox, command: Command) -> Result<(), String> {
        let at_ms = dbox.testbed().now().as_millis();
        apply(dbox, &command)?;
        self.journal.push(Entry { at_ms, command });
        self.elapsed_ms = dbox.testbed().now().as_millis().max(self.elapsed_ms);
        Ok(())
    }

    /// Advance virtual time (persisted).
    pub fn advance(&mut self, dbox: &mut Dbox, span: SimDuration) {
        let at_ms = dbox.testbed().now().as_millis();
        dbox.testbed().run_for(span);
        self.journal.push(Entry { at_ms, command: Command::Advance });
        self.elapsed_ms = dbox.testbed().now().as_millis();
    }
}

fn apply(dbox: &mut Dbox, command: &Command) -> Result<(), String> {
    let as_str = |e: digibox_core::TestbedError| e.to_string();
    match command {
        Command::Run { kind, name, managed, params } => {
            dbox.testbed().run_with(kind, name, params.clone(), *managed).map_err(as_str)?;
            dbox.testbed().run_for(SimDuration::from_millis(COMMAND_SETTLE_MS));
            Ok(())
        }
        Command::Stop { name } => dbox.stop(name).map_err(as_str),
        Command::Attach { child, parent } => dbox.attach(child, parent).map_err(as_str),
        Command::Detach { child, parent } => dbox.detach(child, parent).map_err(as_str),
        Command::Edit { name, updates } => dbox.edit(name, updates.clone()).map_err(as_str),
        Command::SetManaged { name, managed } => {
            dbox.testbed().set_managed(name, *managed).map_err(as_str)
        }
        Command::Advance => Ok(()),
    }
}

/// Parse `k=v` CLI arguments into a value map (DML scalar syntax for
/// values: `power=on intensity=0.7 managed=true`).
pub fn parse_kv_args(args: &[String]) -> Result<Value, String> {
    let mut map = BTreeMap::new();
    for arg in args {
        let (k, v) = arg
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got {arg:?}"))?;
        let doc = dml::parse(&format!("v: {v}\n")).map_err(|e| e.to_string())?;
        let value = doc.get("v").cloned().unwrap_or(Value::Null);
        map.insert(k.to_string(), value);
    }
    Ok(Value::Map(map))
}

/// The outcome of one CLI invocation (what `main` prints).
pub struct Outcome {
    pub stdout: String,
    pub code: i32,
}

impl Outcome {
    fn ok(stdout: String) -> Outcome {
        Outcome { stdout, code: 0 }
    }

    fn err(msg: String) -> Outcome {
        Outcome { stdout: format!("error: {msg}\n"), code: 1 }
    }
}

/// The `dbox --help` text, exported so documentation can be checked
/// against it (see `tests/cli_docs.rs`: every verb and flag in this text
/// must be covered by `docs/CLI.md`).
pub fn usage() -> &'static str {
    USAGE
}

/// Run one CLI invocation against the workspace at `dir`.
pub fn invoke(dir: &Path, args: &[String]) -> Outcome {
    // `lint`, `audit`, `chaos`, and `sweep` have their own exit-code
    // contracts (2 = findings / violations), so they bypass the Ok/Err
    // mapping below.
    if args.first().map(String::as_str) == Some("lint") {
        return lint::run(dir, &args[1..]);
    }
    if args.first().map(String::as_str) == Some("audit") {
        return audit::run(dir, &args[1..]);
    }
    if args.first().map(String::as_str) == Some("chaos") {
        return chaos::run(dir, &args[1..]);
    }
    if args.first().map(String::as_str) == Some("sweep") {
        return sweep::run(dir, &args[1..]);
    }
    // `replay` exits 2 when a replay or `--diff` detects divergence.
    if args.first().map(String::as_str) == Some("replay") {
        return replay::run(dir, &args[1..]);
    }
    match invoke_inner(dir, args) {
        Ok(out) => Outcome::ok(out),
        Err(e) => Outcome::err(e),
    }
}

const USAGE: &str = "\
dbox — scene-centric IoT prototyping (Digibox)

usage:
  dbox run <Type> <name> [--managed] [k=v ...]   run a mock or scene
  dbox stop <name>                               stop it
  dbox check <name>                              print its model
  dbox watch <name> [secs]                       advance time, print its changes
  dbox attach <child> <scene>                    attach to a scene
  dbox attach -d <child> <scene>                 detach
  dbox edit <name> k=v [k=v ...]                 set intent fields
  dbox sim <secs>                                advance virtual time
  dbox list                                      list running digis
  dbox types                                     list available types
  dbox commit <setup> [-m <msg>]                 commit setup to local repo
  dbox push <setup> --to <dir>                   push to a remote repo dir
  dbox pull <setup> --from <dir>                 pull + recreate a setup
  dbox lint [--library|--file <setup.dml>]       static-analyze the ensemble
  dbox audit [--format json] [--allow CODE] [paths...]  determinism audit of the simulation sources
  dbox chaos [--plan <plan.json>] [--seeds 1,2] [--islands N]  fault campaign + scorecard
  dbox sweep [--seeds 1..16] [--jobs N] [--pool T:P:N] [--islands N]  parallel seed sweep + report
  dbox fuzz [--seeds 1,2,3] [--iters N]          seeded MQTT codec fuzzer
  dbox stats [--format json|pretty]              deterministic metrics snapshot
  dbox profile                                   folded-stack span profile
  dbox log [name]                                print trace (paper format)
  dbox log --summary                             per-digi activity table
  dbox ps                                        pods and nodes (runtime view)
  dbox violations                                property violations so far
  dbox infer <name>                              infer a schema from the trace
  dbox export-trace <file>                       write trace archive
  dbox record [<name>]                           record the run as trace/<name> (no arg: list)
  dbox replay <ref|file> [--until <secs>] [--speed <x>] [--from-checkpoint] [--stats-out <file>]
                                                 re-execute and verify a recorded trace
  dbox replay --diff <a> <b>                     first diverging record between two traces
";

fn invoke_inner(dir: &Path, args: &[String]) -> Result<String, String> {
    let mut session = Session::load(dir)?;
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        "fuzz" => fuzz::run(&args[1..]),
        "stats" => stats::run(&session, &args[1..]),
        "profile" => profile::run(&session, &args[1..]),
        "run" => {
            let kind = args.get(1).ok_or("usage: dbox run <Type> <name>")?.clone();
            let name = args.get(2).ok_or("usage: dbox run <Type> <name>")?.clone();
            let rest = &args[3..];
            let managed = rest.iter().any(|a| a == "--managed");
            let kv: Vec<String> = rest.iter().filter(|a| a.contains('=')).cloned().collect();
            let params = parse_kv_args(&kv)?
                .as_map()
                .cloned()
                .unwrap_or_default();
            let mut dbox = session.materialize()?;
            session.execute(&mut dbox, Command::Run { kind: kind.clone(), name: name.clone(), managed, params })?;
            session.save(dir)?;
            Ok(format!("running {kind} {name}\n"))
        }
        "stop" => {
            let name = args.get(1).ok_or("usage: dbox stop <name>")?.clone();
            let mut dbox = session.materialize()?;
            session.execute(&mut dbox, Command::Stop { name: name.clone() })?;
            session.save(dir)?;
            Ok(format!("stopped {name}\n"))
        }
        "check" => {
            let name = args.get(1).ok_or("usage: dbox check <name>")?;
            let mut dbox = session.materialize()?;
            let (_, rendered) = dbox.check(name).map_err(|e| e.to_string())?;
            Ok(rendered)
        }
        "watch" => {
            let name = args.get(1).ok_or("usage: dbox watch <name> [secs]")?.clone();
            let secs: u64 = args.get(2).map(|s| s.parse().unwrap_or(5)).unwrap_or(5);
            let mut dbox = session.materialize()?;
            let mut handle = dbox.watch(&name).map_err(|e| e.to_string())?;
            session.advance(&mut dbox, SimDuration::from_secs(secs));
            let records = dbox.watch_poll(&name, &mut handle);
            session.save(dir)?;
            let mut out = String::new();
            for r in &records {
                out.push_str(&r.paper_line());
                out.push('\n');
            }
            out.push_str(&format!("({} records in {secs}s)\n", records.len()));
            Ok(out)
        }
        "attach" => {
            let detach = args.get(1).map(String::as_str) == Some("-d");
            let base = if detach { 2 } else { 1 };
            let child = args.get(base).ok_or("usage: dbox attach [-d] <child> <scene>")?.clone();
            let parent = args.get(base + 1).ok_or("usage: dbox attach [-d] <child> <scene>")?.clone();
            let mut dbox = session.materialize()?;
            let command = if detach {
                Command::Detach { child: child.clone(), parent: parent.clone() }
            } else {
                Command::Attach { child: child.clone(), parent: parent.clone() }
            };
            session.execute(&mut dbox, command)?;
            session.save(dir)?;
            Ok(format!("{} {child} {} {parent}\n", if detach { "detached" } else { "attached" }, if detach { "from" } else { "to" }))
        }
        "edit" => {
            let name = args.get(1).ok_or("usage: dbox edit <name> k=v ...")?.clone();
            let updates = parse_kv_args(&args[2..])?;
            let mut dbox = session.materialize()?;
            session.execute(&mut dbox, Command::Edit { name: name.clone(), updates })?;
            session.save(dir)?;
            Ok(format!("edited {name}\n"))
        }
        "sim" => {
            let secs: u64 = args
                .get(1)
                .ok_or("usage: dbox sim <secs>")?
                .parse()
                .map_err(|_| "secs must be a number")?;
            let mut dbox = session.materialize()?;
            session.advance(&mut dbox, SimDuration::from_secs(secs));
            session.save(dir)?;
            Ok(format!("advanced to t={}\n", dbox.testbed().now()))
        }
        "list" => {
            let mut dbox = session.materialize()?;
            let mut out = String::new();
            for name in dbox.testbed().digi_names() {
                let model = dbox.check(&name).map_err(|e| e.to_string())?.0;
                out.push_str(&format!(
                    "{name:<20} {:<14} managed={} rev={}\n",
                    model.meta.kind, model.meta.managed, model.revision()
                ));
            }
            if out.is_empty() {
                out = "no digis running (try `dbox run Lamp L1`)\n".into();
            }
            Ok(out)
        }
        "types" => {
            let catalog = full_catalog();
            let mut out = String::from("available types (mocks and scenes):\n");
            for kind in catalog.kinds() {
                let p = catalog.make(kind).map_err(|e| e.to_string())?;
                out.push_str(&format!(
                    "  {kind:<18} {:<7} {}\n",
                    if p.is_scene() { "scene" } else { "mock" },
                    p.program_id()
                ));
            }
            Ok(out)
        }
        "commit" => {
            let setup = args.get(1).ok_or("usage: dbox commit <setup> [-m msg]")?.clone();
            let message = args
                .iter()
                .position(|a| a == "-m")
                .and_then(|i| args.get(i + 1))
                .cloned()
                .unwrap_or_else(|| "dbox commit".into());
            let repo_dir = dir.join(".dbox").join("registry");
            let mut repo = if repo_dir.exists() {
                Repository::load_from_dir(&repo_dir).map_err(|e| e.to_string())?
            } else {
                Repository::new()
            };
            let mut dbox = session.materialize()?;
            let digest = dbox
                .testbed()
                .commit(&mut repo, &setup, &message, &setup)
                .map_err(|e| e.to_string())?;
            repo.save_to_dir(&repo_dir).map_err(|e| e.to_string())?;
            Ok(format!("committed {setup} @ {}\n", digest.short()))
        }
        "push" => {
            let setup = args.get(1).ok_or("usage: dbox push <setup> --to <dir>")?.clone();
            let to = args
                .iter()
                .position(|a| a == "--to")
                .and_then(|i| args.get(i + 1))
                .ok_or("usage: dbox push <setup> --to <dir>")?;
            let repo_dir = dir.join(".dbox").join("registry");
            let repo = Repository::load_from_dir(&repo_dir).map_err(|e| e.to_string())?;
            let remote_dir = PathBuf::from(to);
            let mut remote = if remote_dir.join("refs.json").exists() {
                Repository::load_from_dir(&remote_dir).map_err(|e| e.to_string())?
            } else {
                Repository::new()
            };
            let n = repo.push(&mut remote, &setup).map_err(|e| e.to_string())?;
            remote.save_to_dir(&remote_dir).map_err(|e| e.to_string())?;
            Ok(format!("pushed {setup}: {n} objects transferred\n"))
        }
        "pull" => {
            let setup = args.get(1).ok_or("usage: dbox pull <setup> --from <dir>")?.clone();
            let from = args
                .iter()
                .position(|a| a == "--from")
                .and_then(|i| args.get(i + 1))
                .ok_or("usage: dbox pull <setup> --from <dir>")?;
            let remote = Repository::load_from_dir(Path::new(from)).map_err(|e| e.to_string())?;
            let head = remote.resolve(&setup).map_err(|e| e.to_string())?;
            let commit = remote.load_commit(&head).map_err(|e| e.to_string())?;
            let manifest = remote.load_setup(&commit).map_err(|e| e.to_string())?;
            // recreate = replay the manifest as journal commands on a fresh
            // session (seeded from the manifest for reproducibility)
            let mut fresh = Session::new(manifest.seed);
            let mut dbox = fresh.materialize()?;
            for inst in &manifest.instances {
                fresh.execute(
                    &mut dbox,
                    Command::Run {
                        kind: inst.kind.clone(),
                        name: inst.name.clone(),
                        managed: inst.managed,
                        params: inst.params.clone(),
                    },
                )?;
            }
            for (child, parent) in &manifest.attachments {
                fresh.execute(
                    &mut dbox,
                    Command::Attach { child: child.clone(), parent: parent.clone() },
                )?;
            }
            fresh.save(dir)?;
            // keep the pulled objects locally too
            let repo_dir = dir.join(".dbox").join("registry");
            let mut local = if repo_dir.join("refs.json").exists() {
                Repository::load_from_dir(&repo_dir).map_err(|e| e.to_string())?
            } else {
                Repository::new()
            };
            local.pull(&remote, &setup).map_err(|e| e.to_string())?;
            local.save_to_dir(&repo_dir).map_err(|e| e.to_string())?;
            Ok(format!(
                "pulled {setup}: {} instances, {} attachments recreated\n",
                manifest.instances.len(),
                manifest.attachments.len()
            ))
        }
        "log" => {
            let mut dbox = session.materialize()?;
            let records = dbox.testbed().log().records();
            if args.get(1).map(String::as_str) == Some("--summary") {
                return Ok(digibox_trace::analysis::TraceSummary::analyze(&records).render());
            }
            let mut out = String::new();
            for r in records.iter().filter(|r| match args.get(1) {
                Some(name) => &r.source == name,
                None => true,
            }) {
                out.push_str(&r.paper_line());
                out.push('\n');
            }
            Ok(out)
        }
        "ps" => {
            let mut dbox = session.materialize()?;
            let (pods, cpu_used, cpu_cap) = dbox.testbed().cluster_utilization();
            let mut out = format!("{pods} pods, cpu {cpu_used}/{cpu_cap} millicores\n");
            for name in dbox.testbed().digi_names() {
                let phase = dbox
                    .testbed()
                    .pod_phase(&name)
                    .map(|p| format!("{p:?}"))
                    .unwrap_or_else(|| "?".into());
                out.push_str(&format!("{name:<20} {phase}\n"));
            }
            Ok(out)
        }
        "violations" => {
            let mut dbox = session.materialize()?;
            let violations = dbox.testbed().violations();
            if violations.is_empty() {
                return Ok("no property violations\n".into());
            }
            let mut out = String::new();
            for v in violations {
                out.push_str(&v.paper_line());
                out.push('\n');
            }
            Ok(out)
        }
        "infer" => {
            let name = args.get(1).ok_or("usage: dbox infer <name>")?;
            let mut dbox = session.materialize()?;
            let records = dbox.testbed().log().records();
            let samples = digibox_trace::analysis::model_samples(&records, name);
            if samples.is_empty() {
                return Err(format!("no model samples for {name:?} in the trace"));
            }
            let model = dbox.check(name).map_err(|e| e.to_string())?.0;
            let schema =
                digibox_model::infer_schema(&model.meta.kind, &model.meta.version, &samples);
            let json = serde_json::to_string_pretty(&schema).map_err(|e| e.to_string())?;
            Ok(format!("inferred from {} samples:\n{json}\n", samples.len()))
        }
        "export-trace" => {
            let file = args.get(1).ok_or("usage: dbox export-trace <file>")?;
            let mut dbox = session.materialize()?;
            let bytes = dbox.export_trace();
            std::fs::write(file, &bytes).map_err(|e| e.to_string())?;
            Ok(format!("wrote {} bytes to {file}\n", bytes.len()))
        }
        "record" => record::run(dir, &args[1..]),
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dbox-cli-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run(dir: &Path, args: &[&str]) -> Outcome {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        invoke(dir, &args)
    }

    #[test]
    fn parse_kv() {
        let v = parse_kv_args(&["power=on".into(), "level=0.7".into(), "n=3".into(), "b=true".into()])
            .unwrap();
        assert_eq!(v.get("power").unwrap().as_str(), Some("on"));
        assert_eq!(v.get("level").unwrap().as_float(), Some(0.7));
        assert_eq!(v.get("n").unwrap().as_int(), Some(3));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert!(parse_kv_args(&["no-equals".into()]).is_err());
    }

    #[test]
    fn run_check_edit_cycle() {
        let dir = tmpdir("cycle");
        let out = run(&dir, &["run", "Lamp", "L1"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        let out = run(&dir, &["edit", "L1", "power=on", "intensity=0.5"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        let out = run(&dir, &["check", "L1"]);
        assert_eq!(out.code, 0);
        assert!(out.stdout.contains("status: \"on\"") || out.stdout.contains("status: on"),
            "check output:\n{}", out.stdout);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn session_journal_is_deterministic() {
        let dir = tmpdir("determinism");
        run(&dir, &["run", "Occupancy", "O1"]);
        run(&dir, &["sim", "5"]);
        let a = run(&dir, &["check", "O1"]).stdout;
        // `check` does not mutate: materializing again gives the same state
        let b = run(&dir, &["check", "O1"]).stdout;
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn list_and_types() {
        let dir = tmpdir("list");
        let out = run(&dir, &["types"]);
        assert!(out.stdout.contains("Lamp"));
        assert!(out.stdout.contains("Room"));
        let out = run(&dir, &["list"]);
        assert!(out.stdout.contains("no digis"));
        run(&dir, &["run", "Fan", "F1"]);
        let out = run(&dir, &["list"]);
        assert!(out.stdout.contains("F1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_removes() {
        let dir = tmpdir("stop");
        run(&dir, &["run", "Fan", "F1"]);
        let out = run(&dir, &["stop", "F1"]);
        assert_eq!(out.code, 0);
        let out = run(&dir, &["check", "F1"]);
        assert_eq!(out.code, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn attach_and_watch() {
        let dir = tmpdir("attach");
        run(&dir, &["run", "Occupancy", "O1", "--managed"]);
        run(&dir, &["run", "Room", "R1"]);
        let out = run(&dir, &["attach", "O1", "R1"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        let out = run(&dir, &["watch", "R1", "5"]);
        assert_eq!(out.code, 0);
        assert!(out.stdout.contains("records in 5s"), "{}", out.stdout);
        // detach
        let out = run(&dir, &["attach", "-d", "O1", "R1"]);
        assert_eq!(out.code, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn commit_push_pull_roundtrip() {
        let home = tmpdir("push-home");
        let away = tmpdir("pull-away");
        let remote = tmpdir("remote-repo");
        run(&home, &["run", "Lamp", "L1"]);
        run(&home, &["run", "Room", "R1"]);
        run(&home, &["attach", "L1", "R1"]);
        let out = run(&home, &["commit", "my-setup", "-m", "first"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        let out = run(&home, &["push", "my-setup", "--to", remote.to_str().unwrap()]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        // a second developer pulls and has the same digis
        let out = run(&away, &["pull", "my-setup", "--from", remote.to_str().unwrap()]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        let out = run(&away, &["list"]);
        assert!(out.stdout.contains("L1"), "{}", out.stdout);
        assert!(out.stdout.contains("R1"));
        let out = run(&away, &["check", "R1"]);
        assert!(out.stdout.contains("attach: [L1]"), "{}", out.stdout);
        for d in [home, away, remote] {
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    #[test]
    fn export_and_replay_trace() {
        let dir = tmpdir("trace");
        run(&dir, &["run", "Occupancy", "O1"]);
        run(&dir, &["sim", "5"]);
        let trace_file = dir.join("run.dbxt");
        let out = run(&dir, &["export-trace", trace_file.to_str().unwrap()]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        let out = run(&dir, &["replay", trace_file.to_str().unwrap()]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("replayed"), "{}", out.stdout);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_command_prints_usage() {
        let dir = tmpdir("unknown");
        let out = run(&dir, &["frobnicate"]);
        assert_eq!(out.code, 1);
        assert!(out.stdout.contains("usage"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_then_replay_ref_verifies() {
        let dir = tmpdir("record-replay");
        run(&dir, &["run", "Occupancy", "O1", "--managed"]);
        run(&dir, &["run", "Lamp", "L1"]);
        run(&dir, &["sim", "10"]);
        let out = run(&dir, &["record", "smoke"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("recorded trace/smoke"), "{}", out.stdout);
        // listing shows it
        let out = run(&dir, &["record"]);
        assert!(out.stdout.contains("trace/smoke"), "{}", out.stdout);
        // verified re-execution reproduces the trace and the stats digest
        let out = run(&dir, &["replay", "smoke"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("matches recorded"), "{}", out.stdout);
        // the `trace/<name>` spelling resolves too
        let out = run(&dir, &["replay", "trace/smoke"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recording_has_no_observable_effect() {
        let dir = tmpdir("record-pure");
        run(&dir, &["run", "Occupancy", "O1"]);
        run(&dir, &["sim", "5"]);
        let before = run(&dir, &["stats", "--format", "json"]).stdout;
        let out = run(&dir, &["record", "pure"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        let after = run(&dir, &["stats", "--format", "json"]).stdout;
        assert_eq!(before, after, "recording must not perturb the session");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_diff_modes() {
        let dir = tmpdir("replay-diff");
        run(&dir, &["run", "Occupancy", "O1", "--managed"]);
        run(&dir, &["sim", "10"]);
        run(&dir, &["record", "a"]);
        run(&dir, &["sim", "5"]);
        run(&dir, &["record", "b"]);
        // identical: exit 0
        let out = run(&dir, &["replay", "--diff", "a", "a"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("identical"), "{}", out.stdout);
        // a is a strict prefix of b: exit 2 with a rendered divergence
        let out = run(&dir, &["replay", "--diff", "a", "b"]);
        assert_eq!(out.code, 2, "{}", out.stdout);
        assert!(out.stdout.contains("diverge"), "{}", out.stdout);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_playback_with_speed_and_checkpoint() {
        let dir = tmpdir("replay-playback");
        run(&dir, &["run", "Occupancy", "O1", "--managed"]);
        run(&dir, &["sim", "12"]);
        run(&dir, &["record", "pb"]);
        let out = run(&dir, &["replay", "pb", "--speed", "2"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("played back trace/pb"), "{}", out.stdout);
        let out = run(&dir, &["replay", "pb", "--from-checkpoint"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("resumed"), "{}", out.stdout);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_until_truncates() {
        let dir = tmpdir("replay-until");
        run(&dir, &["run", "Occupancy", "O1", "--managed"]);
        run(&dir, &["sim", "10"]);
        run(&dir, &["record", "cut"]);
        let out = run(&dir, &["replay", "cut", "--until", "3"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("until"), "{}", out.stdout);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
