//! `dbox sweep` — run a scene ensemble once per seed across worker
//! threads and print a canonical per-seed report with a content digest.
//!
//! Where `dbox chaos` sweeps a *fault plan*, `sweep` sweeps the plain
//! ensemble: how do violations, traffic, and trace volume vary with the
//! seed? It rides the same `core::sweep` engine, so `--jobs N` changes
//! wall-clock only — the report (and its digest) is byte-identical to
//! `--jobs 1`.
//!
//! Exit-code contract (intercepted in [`crate::invoke`] like `lint` and
//! `chaos`):
//!
//! * `0` — every seed ran and no property violations were recorded;
//! * `2` — at least one seed recorded a violation;
//! * `1` — operational failure (bad flags, or a seed that failed to run).

use std::path::Path;

use digibox_core::islands::{self, IslandEnv, IslandSpec, IslandsConfig};
use digibox_core::properties::DigiCondition;
use digibox_core::sweep::sweep;
use digibox_core::{Condition, SceneProperty, Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_net::SimDuration;

use crate::Outcome;

const SWEEP_USAGE: &str = "\
usage:
  dbox sweep                          sweep the built-in demo ensemble
  dbox sweep --run Type:Name[:managed] ...   sweep a custom ensemble
options:
  --seeds 1,2,3 | --seeds 1..16       seeds (a..b is inclusive; default 1..8)
  --jobs N                            worker threads (0 = all cores, default 0);
                                      the report digest is identical for any N
  --secs S                            virtual seconds per seed (default 30)
  --run Type:Name[:managed]           add a digi (repeatable; default demo
                                      ensemble: Occupancy O1 + Room R1 + Lamp L1
                                      with the lamp-follows-vacancy property)
  --pool Type:Prefix:N                add N digis named Prefix0..Prefix<N-1>
                                      hosted in one arena pool (repeatable;
                                      the million-digi scaling path)
  --attach child:parent               attach after startup (repeatable)
  --islands N                         space-parallel mode (DESIGN.md §15): run
                                      the scene and every --pool as its own
                                      island kernel on N worker threads (0 =
                                      all cores); the report digest is
                                      identical for any N
  --format json|pretty                output format (default pretty)
  --out <file>                        also write the JSON report to a file
exit codes: 0 clean, 2 violations, 1 operational error
";

/// One digi to start: `Type:Name[:managed]`.
#[derive(Debug, Clone, PartialEq)]
struct RunSpec {
    kind: String,
    name: String,
    managed: bool,
}

/// One arena pool to start: `Type:Prefix:N` hosts `Prefix0..Prefix<N-1>`.
#[derive(Debug, Clone, PartialEq)]
struct PoolSpec {
    kind: String,
    prefix: String,
    count: usize,
}

/// Per-seed observations, all taken from the seed's own isolated testbed.
struct SeedRow {
    seed: u64,
    violations: u64,
    records: u64,
    publishes_in: u64,
    publishes_out: u64,
    /// Kernel events dispatched (`kernel.events` in the obs registry).
    kernel_events: u64,
    /// Digi handler executions (`digi.on_loop` + `digi.on_model`).
    handler_runs: u64,
    /// Same-instant deliveries the kernel coalesced into batches
    /// (`kernel.batched_deliveries`) — nonzero whenever pools run.
    batched_deliveries: u64,
}

/// The merged sweep report: canonical JSON + sha256 digest, mirroring the
/// chaos `Scorecard` contract (same bytes for any `--jobs`).
struct SweepCard {
    ensemble: String,
    secs: u64,
    per_seed: Vec<SeedRow>,
    errors: Vec<(u64, String)>,
}

impl SweepCard {
    fn violations(&self) -> u64 {
        self.per_seed.iter().map(|r| r.violations).sum()
    }

    fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + 96 * self.per_seed.len());
        out.push_str(&format!(
            "{{\"ensemble\":{},\"secs\":{},\"violations\":{},\"per_seed\":[",
            json_str(&self.ensemble),
            self.secs,
            self.violations()
        ));
        for (i, r) in self.per_seed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seed\":{},\"violations\":{},\"records\":{},\
                 \"publishes_in\":{},\"publishes_out\":{},\
                 \"kernel_events\":{},\"handler_runs\":{},\
                 \"batched_deliveries\":{}}}",
                r.seed,
                r.violations,
                r.records,
                r.publishes_in,
                r.publishes_out,
                r.kernel_events,
                r.handler_runs,
                r.batched_deliveries
            ));
        }
        out.push_str("],\"errors\":[");
        for (i, (seed, err)) in self.errors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"seed\":{seed},\"error\":{}}}", json_str(err)));
        }
        out.push_str("]}");
        out
    }

    fn digest(&self) -> String {
        digibox_registry::sha256(self.to_json().as_bytes()).to_string()
    }

    fn render(&self) -> String {
        let mut out = format!(
            "sweep {:?}: {} seed(s) × {}s — {}\n",
            self.ensemble,
            self.per_seed.len() + self.errors.len(),
            self.secs,
            if !self.errors.is_empty() {
                "SEED FAILURES"
            } else if self.violations() == 0 {
                "CLEAN"
            } else {
                "VIOLATIONS"
            }
        );
        for r in &self.per_seed {
            out.push_str(&format!(
                "  seed {:>3}: violations {}; records {}; publishes {}/{}; \
                 kernel events {}; handlers {}; batched {}\n",
                r.seed,
                r.violations,
                r.records,
                r.publishes_in,
                r.publishes_out,
                r.kernel_events,
                r.handler_runs,
                r.batched_deliveries
            ));
        }
        for (seed, err) in &self.errors {
            out.push_str(&format!("  seed {seed:>3}: FAILED — {err}\n"));
        }
        out.push_str(&format!("sweep digest {}\n", &self.digest()[..12]));
        out
    }
}

pub fn run(_dir: &Path, args: &[String]) -> Outcome {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Outcome { stdout: SWEEP_USAGE.to_string(), code: 0 };
    }
    match run_inner(args) {
        Ok(outcome) => outcome,
        Err(e) => Outcome { stdout: format!("error: {e}\n"), code: 1 },
    }
}

fn run_inner(args: &[String]) -> Result<Outcome, String> {
    let mut seeds: Vec<u64> = (1..=8).collect();
    let mut jobs: usize = 0;
    let mut secs: u64 = 30;
    let mut runs: Vec<RunSpec> = Vec::new();
    let mut pools: Vec<PoolSpec> = Vec::new();
    let mut attaches: Vec<(String, String)> = Vec::new();
    let mut islands: Option<usize> = None;
    let mut json = false;
    let mut out_file: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => {
                let list = it.next().ok_or(format!("--seeds needs a list\n{SWEEP_USAGE}"))?;
                seeds = parse_seeds(list)?;
            }
            "--jobs" => {
                let n = it.next().ok_or(format!("--jobs needs a number\n{SWEEP_USAGE}"))?;
                jobs = n.trim().parse::<usize>().map_err(|_| format!("bad --jobs {n:?}"))?;
            }
            "--secs" => {
                let n = it.next().ok_or(format!("--secs needs a number\n{SWEEP_USAGE}"))?;
                secs = n.trim().parse::<u64>().map_err(|_| format!("bad --secs {n:?}"))?;
            }
            "--run" => {
                let spec = it.next().ok_or(format!("--run needs Type:Name\n{SWEEP_USAGE}"))?;
                runs.push(parse_run_spec(spec)?);
            }
            "--pool" => {
                let spec = it.next().ok_or(format!("--pool needs Type:Prefix:N\n{SWEEP_USAGE}"))?;
                pools.push(parse_pool_spec(spec)?);
            }
            "--attach" => {
                let spec =
                    it.next().ok_or(format!("--attach needs child:parent\n{SWEEP_USAGE}"))?;
                let (c, p) = spec
                    .split_once(':')
                    .ok_or_else(|| format!("bad --attach {spec:?} (want child:parent)"))?;
                attaches.push((c.to_string(), p.to_string()));
            }
            "--islands" => {
                let n = it.next().ok_or(format!("--islands needs a number\n{SWEEP_USAGE}"))?;
                islands =
                    Some(n.trim().parse::<usize>().map_err(|_| format!("bad --islands {n:?}"))?);
            }
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("pretty") => json = false,
                other => return Err(format!("unknown --format {other:?}\n{SWEEP_USAGE}")),
            },
            "--out" => {
                out_file =
                    Some(it.next().ok_or(format!("--out needs a path\n{SWEEP_USAGE}"))?.clone());
            }
            other => return Err(format!("unknown argument {other:?}\n{SWEEP_USAGE}")),
        }
    }

    let demo = runs.is_empty() && pools.is_empty();
    if demo {
        runs = demo_ensemble();
        if attaches.is_empty() {
            attaches = vec![("O1".into(), "R1".into()), ("L1".into(), "R1".into())];
        }
    }
    let base = if demo { "demo" } else { "custom" };
    let ensemble =
        if islands.is_some() { format!("{base}+islands") } else { base.to_string() };

    // The whole sweep: every worker builds its own testbed/kernel from the
    // shared specs; merge order is canonical, so the digest is stable
    // across --jobs values. With --islands each seed additionally splits
    // into space-parallel island kernels — worker-count invariant too.
    let outcome = sweep(&seeds, jobs, |seed| {
        if let Some(workers) = islands {
            return island_sweep_row(seed, workers, secs, &runs, &pools, &attaches, demo);
        }
        let mut tb =
            build_testbed(seed, &runs, &pools, &attaches, demo).map_err(|e| e.to_string())?;
        tb.run_for(SimDuration::from_secs(secs));
        let violations = tb.violations().len() as u64;
        let records = tb.log().records().len() as u64;
        let (publishes_in, publishes_out) = {
            let b = tb.broker().borrow();
            (b.stats().publishes_in, b.stats().publishes_out)
        };
        let snap = tb.obs_snapshot();
        let kernel_events = snap.counter("kernel.events");
        let handler_runs = snap.counter("digi.on_loop") + snap.counter("digi.on_model");
        let batched_deliveries = snap.counter("kernel.batched_deliveries");
        Ok(SeedRow {
            seed,
            violations,
            records,
            publishes_in,
            publishes_out,
            kernel_events,
            handler_runs,
            batched_deliveries,
        })
    });

    let mut per_seed = Vec::new();
    let mut errors = Vec::new();
    for run in outcome.runs {
        match run.result {
            Ok(row) => per_seed.push(row),
            Err(e) => errors.push((run.seed, e.to_string())),
        }
    }
    let card = SweepCard { ensemble, secs, per_seed, errors };

    if let Some(path) = out_file {
        std::fs::write(&path, card.to_json()).map_err(|e| format!("{path}: {e}"))?;
    }
    let stdout = if json { card.to_json() + "\n" } else { card.render() };
    let code = if !card.errors.is_empty() {
        1
    } else if card.violations() == 0 {
        0
    } else {
        2
    };
    Ok(Outcome { stdout, code })
}

/// `1,2,3` or `a..b` (inclusive range).
fn parse_seeds(list: &str) -> Result<Vec<u64>, String> {
    let list = list.trim();
    if let Some((a, b)) = list.split_once("..") {
        let a: u64 = a.trim().parse().map_err(|_| format!("bad range start {a:?}"))?;
        let b: u64 = b.trim().parse().map_err(|_| format!("bad range end {b:?}"))?;
        if a > b {
            return Err(format!("empty seed range {a}..{b}"));
        }
        return Ok((a..=b).collect());
    }
    let seeds: Vec<u64> = list
        .split(',')
        .map(|s| s.trim().parse::<u64>().map_err(|_| format!("bad seed {s:?}")))
        .collect::<Result<_, _>>()?;
    if seeds.is_empty() {
        return Err(format!("--seeds list is empty\n{SWEEP_USAGE}"));
    }
    Ok(seeds)
}

fn parse_pool_spec(spec: &str) -> Result<PoolSpec, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [kind, prefix, count] = parts.as_slice() else {
        return Err(format!("bad --pool {spec:?} (want Type:Prefix:N)"));
    };
    if kind.is_empty() || prefix.is_empty() {
        return Err(format!("bad --pool {spec:?} (want Type:Prefix:N)"));
    }
    let count: usize =
        count.trim().parse().map_err(|_| format!("bad --pool count {count:?}"))?;
    if count == 0 {
        return Err(format!("bad --pool {spec:?} (N must be >= 1)"));
    }
    Ok(PoolSpec { kind: kind.to_string(), prefix: prefix.to_string(), count })
}

fn parse_run_spec(spec: &str) -> Result<RunSpec, String> {
    let mut parts = spec.split(':');
    let kind = parts.next().unwrap_or_default();
    let name = parts.next().unwrap_or_default();
    if kind.is_empty() || name.is_empty() {
        return Err(format!("bad --run {spec:?} (want Type:Name[:managed])"));
    }
    let managed = match parts.next() {
        None => false,
        Some("managed") => true,
        Some(other) => return Err(format!("bad --run modifier {other:?} (only 'managed')")),
    };
    if parts.next().is_some() {
        return Err(format!("bad --run {spec:?} (too many ':')"));
    }
    Ok(RunSpec { kind: kind.to_string(), name: name.to_string(), managed })
}

/// The demo ensemble mirrors `dbox chaos`: a managed occupancy sensor
/// driving a room with a lamp, plus the paper's lamp-follows-vacancy
/// property so the sweep has something to check.
fn demo_ensemble() -> Vec<RunSpec> {
    vec![
        RunSpec { kind: "Occupancy".into(), name: "O1".into(), managed: true },
        RunSpec { kind: "Room".into(), name: "R1".into(), managed: false },
        RunSpec { kind: "Lamp".into(), name: "L1".into(), managed: false },
    ]
}

/// An island-scoped testbed on the shared cluster: owns node
/// `env.island`, every foreign node cordoned (see `core::islands`).
fn island_testbed(env: &IslandEnv) -> digibox_core::Result<Testbed> {
    Ok(Testbed::new(
        env.topology.clone(),
        full_catalog(),
        TestbedConfig {
            seed: env.seed,
            home_node: Some(env.island as u32),
            ..Default::default()
        },
    ))
}

/// One seed in space-parallel mode: island 0 hosts the scene (`--run`
/// digis, attaches, demo property), every `--pool` gets its own island
/// kernel, and the per-island rows are summed. The worker count changes
/// wall-clock only — cross-island traffic is merged canonically, so the
/// row (and the sweep digest) is byte-identical for any `--islands N`.
fn island_sweep_row(
    seed: u64,
    workers: usize,
    secs: u64,
    runs: &[RunSpec],
    pools: &[PoolSpec],
    attaches: &[(String, String)],
    demo: bool,
) -> Result<SeedRow, String> {
    let mut specs: Vec<IslandSpec> = Vec::new();
    {
        let runs = runs.to_vec();
        let attaches = attaches.to_vec();
        specs.push(IslandSpec::new("scene", move |env: &IslandEnv| {
            let mut tb = island_testbed(env)?;
            for spec in &runs {
                tb.run_with(&spec.kind, &spec.name, Default::default(), spec.managed)?;
            }
            tb.run_for(SimDuration::from_secs(1));
            for (child, parent) in &attaches {
                tb.attach(child, parent)?;
            }
            if demo {
                tb.add_property(SceneProperty::leads_to(
                    "lamp-follows-vacancy",
                    vec![DigiCondition::new("O1", Condition::eq("triggered", false))],
                    vec![DigiCondition::new("L1", Condition::eq("power.status", "off"))],
                    SimDuration::from_secs(5),
                ));
            }
            tb.run_for(SimDuration::from_secs(1));
            Ok(tb)
        }));
    }
    for pool in pools {
        let pool = pool.clone();
        specs.push(IslandSpec::new(format!("pool-{}", pool.prefix), move |env: &IslandEnv| {
            let mut tb = island_testbed(env)?;
            let names: Vec<String> =
                (0..pool.count).map(|i| format!("{}{i}", pool.prefix)).collect();
            tb.run_pool(&pool.kind, &names, Default::default(), false)?;
            // Same settle cadence as the single-kernel path.
            tb.run_for(SimDuration::from_secs(1));
            tb.run_for(SimDuration::from_secs(1));
            Ok(tb)
        }));
    }
    let config = IslandsConfig { workers, ..IslandsConfig::default() };
    let run = islands::run(
        seed,
        specs,
        &config,
        SimDuration::from_secs(secs),
        &[],
        |_, tb, _t0| {
            let violations = tb.violations().len() as u64;
            let records = tb.log().records().len() as u64;
            let (publishes_in, publishes_out) = {
                let b = tb.broker().borrow();
                (b.stats().publishes_in, b.stats().publishes_out)
            };
            let snap = tb.obs_snapshot();
            [
                violations,
                records,
                publishes_in,
                publishes_out,
                snap.counter("kernel.events"),
                snap.counter("digi.on_loop") + snap.counter("digi.on_model"),
                snap.counter("kernel.batched_deliveries"),
            ]
        },
    )?;
    let mut row = SeedRow {
        seed,
        violations: 0,
        records: 0,
        publishes_in: 0,
        publishes_out: 0,
        kernel_events: 0,
        handler_runs: 0,
        batched_deliveries: 0,
    };
    for [v, r, pi, po, ke, hr, bd] in run.results {
        row.violations += v;
        row.records += r;
        row.publishes_in += pi;
        row.publishes_out += po;
        row.kernel_events += ke;
        row.handler_runs += hr;
        row.batched_deliveries += bd;
    }
    Ok(row)
}

fn build_testbed(
    seed: u64,
    runs: &[RunSpec],
    pools: &[PoolSpec],
    attaches: &[(String, String)],
    demo: bool,
) -> digibox_core::Result<Testbed> {
    let mut tb =
        Testbed::laptop(full_catalog(), TestbedConfig { seed, ..Default::default() });
    for spec in runs {
        tb.run_with(&spec.kind, &spec.name, Default::default(), spec.managed)?;
    }
    for spec in pools {
        let names: Vec<String> =
            (0..spec.count).map(|i| format!("{}{i}", spec.prefix)).collect();
        tb.run_pool(&spec.kind, &names, Default::default(), false)?;
    }
    tb.run_for(SimDuration::from_secs(1));
    for (child, parent) in attaches {
        tb.attach(child, parent)?;
    }
    if demo {
        tb.add_property(SceneProperty::leads_to(
            "lamp-follows-vacancy",
            vec![DigiCondition::new("O1", Condition::eq("triggered", false))],
            vec![DigiCondition::new("L1", Condition::eq("power.status", "off"))],
            SimDuration::from_secs(5),
        ));
    }
    tb.run_for(SimDuration::from_secs(1));
    Ok(tb)
}

/// Minimal JSON string escaping (quotes, backslash, control chars) —
/// keeps the report canonical without a serde round-trip.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// Pure flag-handling tests (no simulation) — these run under the offline
// harness too.
#[cfg(test)]
mod sweepcheck {
    use super::*;

    fn run_args(args: &[&str]) -> Outcome {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(Path::new("."), &args)
    }

    #[test]
    fn help_exits_zero() {
        let out = run_args(&["--help"]);
        assert_eq!(out.code, 0);
        assert!(out.stdout.starts_with("usage:"), "{}", out.stdout);
    }

    #[test]
    fn bad_flags_exit_1() {
        for bad in [
            vec!["--nope"],
            vec!["--seeds", "one"],
            vec!["--seeds", "9..3"],
            vec!["--jobs", "many"],
            vec!["--secs", "soon"],
            vec!["--run", "NoName"],
            vec!["--run", "Lamp:L1:bogus"],
            vec!["--pool", "NoPrefix"],
            vec!["--pool", "Occupancy:P:zero"],
            vec!["--pool", "Occupancy:P:0"],
            vec!["--attach", "orphan"],
            vec!["--islands", "lots"],
            vec!["--format", "xml"],
        ] {
            let out = run_args(&bad);
            assert_eq!(out.code, 1, "args {bad:?} gave: {}", out.stdout);
            assert!(out.stdout.starts_with("error:"), "{}", out.stdout);
        }
    }

    #[test]
    fn seed_parsing() {
        assert_eq!(parse_seeds("1,2,3").unwrap(), vec![1, 2, 3]);
        assert_eq!(parse_seeds(" 7 ").unwrap(), vec![7]);
        assert_eq!(parse_seeds("1..4").unwrap(), vec![1, 2, 3, 4], "a..b is inclusive");
        assert_eq!(parse_seeds("16..16").unwrap(), vec![16]);
        assert!(parse_seeds("4..1").is_err());
        assert!(parse_seeds("a..b").is_err());
    }

    #[test]
    fn run_spec_parsing() {
        assert_eq!(
            parse_run_spec("Lamp:L1").unwrap(),
            RunSpec { kind: "Lamp".into(), name: "L1".into(), managed: false }
        );
        assert_eq!(
            parse_run_spec("Occupancy:O1:managed").unwrap(),
            RunSpec { kind: "Occupancy".into(), name: "O1".into(), managed: true }
        );
        assert!(parse_run_spec("Lamp").is_err());
        assert!(parse_run_spec(":L1").is_err());
    }

    #[test]
    fn pool_spec_parsing() {
        assert_eq!(
            parse_pool_spec("Occupancy:P:100").unwrap(),
            PoolSpec { kind: "Occupancy".into(), prefix: "P".into(), count: 100 }
        );
        assert!(parse_pool_spec("Occupancy:P").is_err());
        assert!(parse_pool_spec("Occupancy:P:100:extra").is_err());
        assert!(parse_pool_spec(":P:100").is_err());
        assert!(parse_pool_spec("Occupancy::100").is_err());
        assert!(parse_pool_spec("Occupancy:P:0").is_err());
    }

    #[test]
    fn card_json_is_canonical() {
        let card = SweepCard {
            ensemble: "demo".into(),
            secs: 30,
            per_seed: vec![SeedRow {
                seed: 1,
                violations: 0,
                records: 42,
                publishes_in: 7,
                publishes_out: 9,
                kernel_events: 120,
                handler_runs: 33,
                batched_deliveries: 5,
            }],
            errors: vec![(13, "panicked: boom".into())],
        };
        let j = card.to_json();
        assert_eq!(
            j,
            "{\"ensemble\":\"demo\",\"secs\":30,\"violations\":0,\"per_seed\":[\
             {\"seed\":1,\"violations\":0,\"records\":42,\"publishes_in\":7,\
             \"publishes_out\":9,\"kernel_events\":120,\"handler_runs\":33,\
             \"batched_deliveries\":5}],\
             \"errors\":[{\"seed\":13,\"error\":\"panicked: boom\"}]}"
        );
        assert_eq!(card.digest(), card.digest());
        assert_eq!(card.digest().len(), 64);
        assert!(card.render().contains("seed  13: FAILED — panicked: boom"));
    }
}

// Sweep-executing tests (materialize full testbeds; skipped by the offline
// harness alongside the other `tests::` CLI tests).
#[cfg(test)]
mod tests {
    use super::*;

    fn run_args(args: &[&str]) -> Outcome {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(Path::new("."), &args)
    }

    #[test]
    fn demo_sweep_digest_is_jobs_invariant() {
        let base = ["--seeds", "1..4", "--secs", "10", "--format", "json"];
        let one = {
            let mut a = base.to_vec();
            a.extend(["--jobs", "1"]);
            run_args(&a)
        };
        let many = {
            let mut a = base.to_vec();
            a.extend(["--jobs", "4"]);
            run_args(&a)
        };
        assert!(one.code == 0 || one.code == 2, "{}", one.stdout);
        assert_eq!(one.stdout, many.stdout, "--jobs must not change the report");
    }

    #[test]
    fn custom_ensemble_sweeps() {
        let out = run_args(&[
            "--seeds", "1,2",
            "--secs", "5",
            "--run", "Fan:F1",
            "--run", "Room:R1",
            "--attach", "F1:R1",
            "--format", "json",
        ]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("\"ensemble\":\"custom\""), "{}", out.stdout);
    }

    #[test]
    fn pooled_ensemble_sweeps_with_jobs_invariant_digest() {
        let base = [
            "--seeds", "1,2",
            "--secs", "5",
            "--pool", "Occupancy:P:50",
            "--format", "json",
        ];
        let one = {
            let mut a = base.to_vec();
            a.extend(["--jobs", "1"]);
            run_args(&a)
        };
        let many = {
            let mut a = base.to_vec();
            a.extend(["--jobs", "2"]);
            run_args(&a)
        };
        assert_eq!(one.code, 0, "{}", one.stdout);
        assert!(one.stdout.contains("\"ensemble\":\"custom\""), "{}", one.stdout);
        assert_eq!(one.stdout, many.stdout, "--jobs must not change the pooled report");
    }

    #[test]
    fn island_sweep_digest_is_worker_invariant() {
        let base = [
            "--seeds", "1,2",
            "--secs", "5",
            "--pool", "Occupancy:P:20",
            "--format", "json",
        ];
        let one = {
            let mut a = base.to_vec();
            a.extend(["--islands", "1"]);
            run_args(&a)
        };
        let many = {
            let mut a = base.to_vec();
            a.extend(["--islands", "4"]);
            run_args(&a)
        };
        assert!(one.code == 0 || one.code == 2, "{}", one.stdout);
        assert!(one.stdout.contains("\"ensemble\":\"custom+islands\""), "{}", one.stdout);
        assert_eq!(one.stdout, many.stdout, "--islands must not change the report");
    }

    #[test]
    fn unknown_digi_type_is_a_seed_failure() {
        let out = run_args(&["--seeds", "1,2", "--secs", "1", "--run", "Nonexistent:X1"]);
        assert_eq!(out.code, 1, "{}", out.stdout);
        assert!(out.stdout.contains("FAILED"), "{}", out.stdout);
        // ...but the sweep itself completed: both seeds are reported
        assert!(out.stdout.contains("seed   1") && out.stdout.contains("seed   2"),
            "{}", out.stdout);
    }
}
