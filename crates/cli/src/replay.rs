//! `dbox replay` — re-execute or play back a recorded trace.
//!
//! Three modes, dispatched from the operand and flags:
//!
//! * **Verified re-execution** (`dbox replay <ref>`): the trace carries
//!   the session recipe (seed + journal) it was recorded from, so the
//!   whole run is re-executed from scratch on a fresh kernel and the
//!   freshly produced trace is diffed record-by-record against the
//!   recording. A full replay must also reproduce the recorded stats
//!   snapshot byte-for-byte — that digest equality *is* the determinism
//!   contract. Any divergence renders the first differing record and
//!   exits 2.
//! * **State playback** (`dbox replay <ref> --speed <x>` or
//!   `--from-checkpoint`): the recorded model states are forced onto a
//!   recreated testbed at their recorded times — time-travel surgery
//!   rather than re-execution, so timestamps can be rescaled and the run
//!   can resume from the nearest 5 s checkpoint instead of t=0.
//! * **Archive playback** (`dbox replay <file>`): the original
//!   `export-trace` round trip — plays a `.dbxt` archive onto the
//!   current session's testbed. The end bound is computed in exact
//!   nanoseconds: truncating to milliseconds drops records emitted at
//!   the final virtual instant (the classic round-trip off-by-one).
//!
//! `dbox replay --diff <a> <b>` compares two traces (registry refs or
//! archive files) and pinpoints the first diverging record; stored
//! traces are bisected chunk-by-chunk so identical prefixes are never
//! decoded. Exit code 2 signals divergence, mirroring `lint`/`audit`.

use std::collections::BTreeMap;
use std::path::Path;

use digibox_core::{CheckpointStore, Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_net::{SimDuration, SimTime};
use digibox_registry::{sha256, Repository, SetupManifest};
use digibox_trace::store;
use digibox_trace::{diff_report, ReplaySchedule, TraceRecord};

use crate::{Outcome, Session};

const REPLAY_USAGE: &str = "\
usage:
  dbox replay <ref|file> [--until <secs>] [--speed <x>] [--from-checkpoint] [--stats-out <file>]
  dbox replay --diff <a> <b>

  <ref|file>         a recorded trace ref (trace/<name> or just <name>) or a
                     .dbxt archive written by `dbox export-trace`
  --until <secs>     stop the replay at this virtual time (inclusive)
  --speed <x>        state playback at x speed (0.5 = half, 2 = double)
  --from-checkpoint  resume state playback from the nearest 5 s checkpoint
  --stats-out <file> write the replayed stats snapshot (canonical JSON)
  --diff <a> <b>     first diverging record between two traces (exit 2)
";

/// Checkpoints are aligned to this period (mirrors the testbed's
/// periodic snapshot cadence).
const CHECKPOINT_PERIOD: SimDuration = SimDuration::from_secs(5);

struct Flags {
    until: Option<SimTime>,
    speed_milli: Option<u64>,
    from_checkpoint: bool,
    stats_out: Option<String>,
    diff: bool,
    operands: Vec<String>,
}

/// Execute `dbox replay ...` against the workspace at `dir`.
///
/// Exit codes: 0 = replay verified / traces identical, 1 = operational
/// error, 2 = divergence detected.
pub fn run(dir: &Path, args: &[String]) -> Outcome {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Outcome { stdout: REPLAY_USAGE.to_string(), code: 0 };
    }
    match run_inner(dir, args) {
        Ok(out) => out,
        Err(e) => Outcome { stdout: format!("error: {e}\n"), code: 1 },
    }
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        until: None,
        speed_milli: None,
        from_checkpoint: false,
        stats_out: None,
        diff: false,
        operands: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--until" => {
                let v = args.get(i + 1).ok_or("--until needs a value (seconds)")?;
                flags.until = Some(SimTime::from_nanos(parse_decimal(v, 1_000_000_000)?));
                i += 2;
            }
            "--speed" => {
                let v = args.get(i + 1).ok_or("--speed needs a value (e.g. 0.5, 2)")?;
                let milli = parse_decimal(v, 1000)?;
                if milli == 0 {
                    return Err("--speed must be > 0".into());
                }
                flags.speed_milli = Some(milli);
                i += 2;
            }
            "--from-checkpoint" => {
                flags.from_checkpoint = true;
                i += 1;
            }
            "--stats-out" => {
                let v = args.get(i + 1).ok_or("--stats-out needs a file path")?;
                flags.stats_out = Some(v.clone());
                i += 2;
            }
            "--diff" => {
                flags.diff = true;
                i += 1;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown replay flag {other:?}\n\n{REPLAY_USAGE}"));
            }
            operand => {
                flags.operands.push(operand.to_string());
                i += 1;
            }
        }
    }
    Ok(flags)
}

/// Parse a non-negative decimal like `"2.5"` into integer units of
/// `1/scale` with no floating point (so `--until 2.5` is exactly
/// 2_500_000_000 ns — float rounding here would desynchronize the cut
/// from the recorded timestamps).
fn parse_decimal(s: &str, scale: u64) -> Result<u64, String> {
    let bad = || format!("expected a non-negative decimal number, got {s:?}");
    let (whole, frac) = match s.split_once('.') {
        Some((w, f)) => (w, f),
        None => (s, ""),
    };
    if whole.is_empty() && frac.is_empty() {
        return Err(bad());
    }
    let mut value: u64 = 0;
    if !whole.is_empty() {
        value = whole
            .parse::<u64>()
            .map_err(|_| bad())?
            .checked_mul(scale)
            .ok_or_else(bad)?;
    }
    if !frac.is_empty() {
        let mut unit = scale;
        for c in frac.chars() {
            let d = c.to_digit(10).ok_or_else(bad)? as u64;
            unit /= 10;
            value = value.checked_add(d * unit).ok_or_else(bad)?;
        }
    }
    Ok(value)
}

fn load_repo(dir: &Path) -> Result<Repository, String> {
    let repo_dir = dir.join(".dbox").join("registry");
    if repo_dir.join("refs.json").exists() {
        Repository::load_from_dir(&repo_dir).map_err(|e| e.to_string())
    } else {
        Ok(Repository::new())
    }
}

/// Resolve a trace operand: a path on disk wins, otherwise it is treated
/// as a registry ref.
fn load_operand(repo: &Repository, operand: &str) -> Result<Vec<TraceRecord>, String> {
    if Path::new(operand).exists() {
        let bytes = std::fs::read(operand).map_err(|e| e.to_string())?;
        digibox_trace::archive::read(&bytes).map_err(|e| format!("{operand}: {e}"))
    } else {
        store::load(repo, operand)
            .map(|(_, records)| records)
            .map_err(|e| format!("{operand}: {e}"))
    }
}

fn run_inner(dir: &Path, args: &[String]) -> Result<Outcome, String> {
    let flags = parse_flags(args)?;

    if flags.diff {
        return diff_mode(dir, &flags);
    }

    let [operand] = flags.operands.as_slice() else {
        return Err(format!("replay needs exactly one trace\n\n{REPLAY_USAGE}"));
    };
    if Path::new(operand).exists() {
        archive_mode(dir, operand, &flags)
    } else {
        let repo = load_repo(dir)?;
        let (manifest, records) =
            store::load(&repo, operand).map_err(|e| format!("{operand}: {e}"))?;
        if flags.speed_milli.is_some() || flags.from_checkpoint {
            playback_mode(&manifest, &records, &flags)
        } else {
            verified_mode(&manifest, &records, &flags)
        }
    }
}

/// `--diff <a> <b>`: first diverging record between two traces.
fn diff_mode(dir: &Path, flags: &Flags) -> Result<Outcome, String> {
    let [a, b] = flags.operands.as_slice() else {
        return Err(format!("--diff needs exactly two traces\n\n{REPLAY_USAGE}"));
    };
    let repo = load_repo(dir)?;
    let both_stored = !Path::new(a).exists() && !Path::new(b).exists();
    let report = if both_stored {
        // Stored traces bisect chunk-by-chunk: the shared prefix dedups
        // to identical chunk digests, so it is never even decoded.
        store::diff_stored(&repo, a, b).map_err(|e| e.to_string())?
    } else {
        let left = load_operand(&repo, a)?;
        let right = load_operand(&repo, b)?;
        diff_report(&left, &right)
    };
    match report {
        None => {
            let n = load_operand(&repo, a)?.len();
            Ok(Outcome { stdout: format!("traces are identical ({n} records)\n"), code: 0 })
        }
        Some(r) => Ok(Outcome { stdout: format!("{}\n", r.render()), code: 2 }),
    }
}

/// Verified re-execution: rebuild the run from the recorded session
/// recipe and require the fresh trace (and, on a full replay, the stats
/// snapshot) to match the recording exactly.
fn verified_mode(
    manifest: &store::TraceManifest,
    records: &[TraceRecord],
    flags: &Flags,
) -> Result<Outcome, String> {
    let recipe = manifest
        .extras
        .get("session")
        .ok_or("trace has no embedded session recipe (re-record with this dbox version)")?;
    let mut session: Session = serde_json::from_str(recipe).map_err(|e| e.to_string())?;

    let full_elapsed_ms = session.elapsed_ms;
    let mut truncated = false;
    if let Some(cut) = flags.until {
        let until_ms = cut.as_nanos() / 1_000_000;
        if until_ms < session.elapsed_ms {
            truncated = true;
            session.journal.retain(|e| e.at_ms <= until_ms);
            session.elapsed_ms = until_ms;
        }
    }

    let mut dbox = session.materialize()?;
    // On a truncated replay, both sides are compared up to the cut
    // itself (inclusive, exact nanos): journal commands settle past
    // their `at_ms`, so records past the cut can differ legitimately —
    // the original run still had its post-cut commands, the truncated
    // one doesn't. Everything at or before the cut must be identical.
    let (recorded, replayed): (Vec<TraceRecord>, Vec<TraceRecord>) = match flags.until {
        Some(cut) if truncated => (
            records.iter().filter(|r| r.ts <= cut).cloned().collect(),
            dbox.testbed().log().records().into_iter().filter(|r| r.ts <= cut).collect(),
        ),
        _ => (records.to_vec(), dbox.testbed().log().records()),
    };

    if let Some(report) = diff_report(&recorded, &replayed) {
        let mut out = format!("replay DIVERGED from trace/{}\n{}\n", manifest.name, report.render());
        out.push_str("determinism contract broken: the same recipe produced a different trace\n");
        return Ok(Outcome { stdout: out, code: 2 });
    }

    let stats_json = format!("{}\n", dbox.testbed().obs_snapshot().to_json());
    if let Some(path) = &flags.stats_out {
        std::fs::write(path, &stats_json).map_err(|e| e.to_string())?;
    }

    let mut out = format!(
        "replayed trace/{}: {} records verified",
        manifest.name,
        replayed.len()
    );
    if truncated {
        out.push_str(&format!(
            " (until {}, of {} recorded over {}ms)\n",
            flags.until.unwrap_or(SimTime::ZERO),
            manifest.records,
            full_elapsed_ms
        ));
        return Ok(Outcome { stdout: out, code: 0 });
    }
    // Full replay: the stats snapshot must be byte-for-byte identical.
    let replayed_stats = dbox.testbed().obs_snapshot().to_json();
    let digest = sha256(replayed_stats.as_bytes()).to_string();
    match manifest.extras.get("stats") {
        Some(recorded_stats) if *recorded_stats != replayed_stats => {
            out.push_str(&format!(
                "\nstats DIVERGED: replay digest {} != recorded {}\n",
                &digest[..12],
                manifest
                    .extras
                    .get("stats_digest")
                    .map(|d| &d[..12])
                    .unwrap_or("<missing>"),
            ));
            Ok(Outcome { stdout: out, code: 2 })
        }
        _ => {
            out.push_str(&format!(", stats digest {} (matches recorded)\n", &digest[..12]));
            Ok(Outcome { stdout: out, code: 0 })
        }
    }
}

/// State playback: recreate the recorded setup on a fresh testbed and
/// force the recorded states at (optionally rescaled) recorded times,
/// resuming from the nearest aligned checkpoint when asked.
fn playback_mode(
    manifest: &store::TraceManifest,
    records: &[TraceRecord],
    flags: &Flags,
) -> Result<Outcome, String> {
    let setup_bytes = manifest
        .extras
        .get("setup")
        .ok_or("trace has no embedded setup manifest (re-record with this dbox version)")?;
    let setup = SetupManifest::from_bytes(setup_bytes.as_bytes())?;

    let mut testbed = Testbed::laptop(
        full_catalog(),
        TestbedConfig { seed: setup.seed, ..Default::default() },
    );
    testbed.recreate(&setup).map_err(|e| e.to_string())?;

    let mut schedule = ReplaySchedule::from_records(records);
    if let Some(cut) = flags.until {
        schedule = schedule.until(cut);
    }

    let mut resumed = BTreeMap::new();
    let mut resume_note = String::new();
    if flags.from_checkpoint {
        // Resume from the nearest 5 s checkpoint at or before the end of
        // the (possibly already truncated) window: synthesize the
        // checkpoint states from the trace itself, force them at t=0,
        // and only play the steps after the checkpoint.
        let mark = CheckpointStore::aligned(schedule.duration(), CHECKPOINT_PERIOD);
        let mut cps = CheckpointStore::new();
        let n = cps.ingest_trace(records, mark);
        for name in schedule.sources() {
            if let Some(fields) = cps.restore(&name) {
                resumed.insert(name, fields);
            }
        }
        schedule = schedule.after(mark);
        resume_note = format!(
            " (resumed {n} states from checkpoint at {mark}, {} steps remain)",
            schedule.len()
        );
    }
    if let Some(milli) = flags.speed_milli {
        schedule = schedule
            .at_speed(milli)
            .ok_or("--speed must be > 0")?;
    }

    let span = schedule.duration();
    testbed
        .replay_from(&resumed, &schedule)
        .map_err(|e| e.to_string())?;
    // Inclusive, exact-nanos end bound: a step at exactly `span` must
    // fire (plus a settle second so forced states propagate as messages).
    testbed.run_for(SimDuration::from_nanos(span.as_nanos()) + SimDuration::from_secs(1));

    let mut out = format!(
        "played back trace/{}: {} steps over {} digis{resume_note}\n",
        manifest.name,
        schedule.len(),
        schedule.sources().len()
    );
    let mut names = schedule.sources();
    for name in resumed.keys() {
        if !names.contains(name) {
            names.push(name.clone());
        }
    }
    names.sort();
    for name in names {
        let model = testbed.check(&name).map_err(|e| e.to_string())?;
        out.push_str(&format!("  {name}: {}\n", model.fields()));
    }
    if let Some(path) = &flags.stats_out {
        let stats_json = format!("{}\n", testbed.obs_snapshot().to_json());
        std::fs::write(path, stats_json).map_err(|e| e.to_string())?;
    }
    Ok(Outcome { stdout: out, code: 0 })
}

/// Archive playback (`dbox replay <file>`): the export-trace round trip
/// on the current session's testbed.
fn archive_mode(dir: &Path, file: &str, flags: &Flags) -> Result<Outcome, String> {
    let session = Session::load(dir)?;
    let bytes = std::fs::read(file).map_err(|e| e.to_string())?;
    let mut dbox = session.materialize()?;
    if flags.speed_milli.is_some() {
        return Err(
            "--speed applies to recorded refs, not archives (record first: dbox record <name>)"
                .into(),
        );
    }
    let mut schedule = dbox.replay(&bytes).map_err(|e| e.to_string())?;
    // Exact-nanos inclusive end bound. The previous implementation
    // truncated to milliseconds, which dropped records emitted at the
    // final virtual instant of the recording. With `--until` the clock
    // stops exactly at the cut: steps queued past it never run (the
    // kernel's deadline is inclusive, so a step at precisely the cut
    // does).
    let span = match flags.until {
        Some(cut) => {
            schedule = schedule.until(cut);
            SimDuration::from_nanos(cut.as_nanos().min(schedule.duration().as_nanos()))
        }
        None => {
            SimDuration::from_nanos(schedule.duration().as_nanos()) + SimDuration::from_millis(100)
        }
    };
    dbox.testbed().run_for(span);
    let mut out = format!(
        "replayed {} steps over {} digis\n",
        schedule.len(),
        schedule.sources().len()
    );
    for (name, fields) in schedule.final_states() {
        out.push_str(&format!("  {name}: {fields}\n"));
    }
    if let Some(path) = &flags.stats_out {
        let stats_json = format!("{}\n", dbox.testbed().obs_snapshot().to_json());
        std::fs::write(path, stats_json).map_err(|e| e.to_string())?;
    }
    // NOTE: replay is exploratory — it does not append to the journal.
    Ok(Outcome { stdout: out, code: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_parsing_is_exact() {
        assert_eq!(parse_decimal("2.5", 1_000_000_000).unwrap(), 2_500_000_000);
        assert_eq!(parse_decimal("2", 1000).unwrap(), 2000);
        assert_eq!(parse_decimal("0.5", 1000).unwrap(), 500);
        assert_eq!(parse_decimal(".25", 1000).unwrap(), 250);
        assert_eq!(parse_decimal("30.000000001", 1_000_000_000).unwrap(), 30_000_000_001);
        assert!(parse_decimal("x", 1000).is_err());
        assert!(parse_decimal("", 1000).is_err());
        assert!(parse_decimal("1.x", 1000).is_err());
    }

    #[test]
    fn flag_parser_collects_operands() {
        let args: Vec<String> = ["--diff", "a", "b"].iter().map(|s| s.to_string()).collect();
        let f = parse_flags(&args).unwrap();
        assert!(f.diff);
        assert_eq!(f.operands, vec!["a", "b"]);

        let args: Vec<String> =
            ["smoke", "--until", "2.5", "--speed", "0.5", "--from-checkpoint"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f.until, Some(SimTime::from_nanos(2_500_000_000)));
        assert_eq!(f.speed_milli, Some(500));
        assert!(f.from_checkpoint);
        assert!(parse_flags(&["--bogus".to_string()]).is_err());
    }
}
