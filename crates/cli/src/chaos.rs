//! `dbox chaos` — execute a seeded fault campaign and print the
//! degradation-aware scorecard (paper §6: faults/failures and network
//! connectivity as prototyping dimensions).
//!
//! Like `dbox lint` this verb has its own exit-code contract and is
//! intercepted in [`crate::invoke`]:
//!
//! * `0` — campaign ran and the scorecard is clean (no post-heal
//!   violations; degradation *during* fault windows is tolerated);
//! * `2` — at least one violation after the convergence deadline;
//! * `1` — operational failure (bad flags, unreadable plan, broken
//!   setup).

use std::path::Path;

use digibox_core::campaign::Campaign;
use digibox_core::islands::{IslandEnv, IslandSpec};
use digibox_core::properties::DigiCondition;
use digibox_core::{Condition, SceneProperty, Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_net::chaos::{FaultKind, FaultPlan, FaultSpec};
use digibox_net::SimDuration;

use crate::Outcome;

const CHAOS_USAGE: &str = "\
usage:
  dbox chaos                      run the built-in demo campaign
  dbox chaos --plan <plan.json>   run a fault plan from a file
options:
  --seeds 1,2,3                   seeds to sweep (default 1,2,3)
  --jobs N                        worker threads (0 = all cores, default 1);
                                  the scorecard digest is identical for any N
  --islands N                     space-parallel mode (DESIGN.md §15): run the
                                  demo as two island scenes (O1/R1/L1 and
                                  O2/R2/L2) on N island worker threads (0 =
                                  all cores); fault windows land on barrier
                                  fences and the digest is identical for any N
  --format json|pretty            scorecard output format (default pretty)
  --out <file>                    also write the JSON scorecard to a file
  --print-plan                    print the effective plan as JSON and exit
exit codes: 0 clean, 2 post-heal violations, 1 operational error
";

pub fn run(_dir: &Path, args: &[String]) -> Outcome {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Outcome { stdout: CHAOS_USAGE.to_string(), code: 0 };
    }
    match run_inner(args) {
        Ok(outcome) => outcome,
        Err(e) => Outcome { stdout: format!("error: {e}\n"), code: 1 },
    }
}

fn run_inner(args: &[String]) -> Result<Outcome, String> {
    let mut seeds: Vec<u64> = vec![1, 2, 3];
    let mut jobs: usize = 1;
    let mut islands: Option<usize> = None;
    let mut json = false;
    let mut out_file: Option<String> = None;
    let mut plan_file: Option<String> = None;
    let mut print_plan = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--plan" => {
                plan_file =
                    Some(it.next().ok_or(format!("--plan needs a path\n{CHAOS_USAGE}"))?.clone());
            }
            "--seeds" => {
                let list = it.next().ok_or(format!("--seeds needs a list\n{CHAOS_USAGE}"))?;
                seeds = list
                    .split(',')
                    .map(|s| s.trim().parse::<u64>().map_err(|_| format!("bad seed {s:?}")))
                    .collect::<Result<_, _>>()?;
                if seeds.is_empty() {
                    return Err(format!("--seeds list is empty\n{CHAOS_USAGE}"));
                }
            }
            "--jobs" => {
                let n = it.next().ok_or(format!("--jobs needs a number\n{CHAOS_USAGE}"))?;
                jobs = n.trim().parse::<usize>().map_err(|_| format!("bad --jobs {n:?}"))?;
            }
            "--islands" => {
                let n = it.next().ok_or(format!("--islands needs a number\n{CHAOS_USAGE}"))?;
                islands =
                    Some(n.trim().parse::<usize>().map_err(|_| format!("bad --islands {n:?}"))?);
            }
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("pretty") => json = false,
                other => return Err(format!("unknown --format {other:?}\n{CHAOS_USAGE}")),
            },
            "--out" => {
                out_file =
                    Some(it.next().ok_or(format!("--out needs a path\n{CHAOS_USAGE}"))?.clone());
            }
            "--print-plan" => print_plan = true,
            other => return Err(format!("unknown argument {other:?}\n{CHAOS_USAGE}")),
        }
    }

    let plan = match plan_file {
        Some(path) => {
            let bytes = std::fs::read(&path).map_err(|e| format!("{path}: {e}"))?;
            serde_json::from_slice::<FaultPlan>(&bytes).map_err(|e| format!("{path}: {e}"))?
        }
        None => demo_plan(),
    };
    if print_plan {
        let rendered = serde_json::to_string_pretty(&plan).map_err(|e| e.to_string())?;
        return Ok(Outcome { stdout: rendered + "\n", code: 0 });
    }

    let campaign = Campaign::new(plan)?;
    let scorecard = match islands {
        Some(workers) => campaign.run_islands(&seeds, jobs, workers, demo_islands_specs),
        None => campaign.run_jobs(&seeds, jobs, demo_testbed),
    }
    .map_err(|e| e.to_string())?;
    if let Some(path) = out_file {
        std::fs::write(&path, scorecard.to_json()).map_err(|e| format!("{path}: {e}"))?;
    }
    let stdout = if json { scorecard.to_json() + "\n" } else { scorecard.render() };
    // Seeds that failed to even run are an operational error (1), which
    // outranks the property verdict (2/0).
    let code = if !scorecard.errors.is_empty() {
        1
    } else if scorecard.clean() {
        0
    } else {
        2
    };
    Ok(Outcome { stdout, code })
}

/// The built-in demo plan: crash the lamp, partition the two nodes, then
/// degrade every link — one window of each flavour, with start jitter so
/// each seed explores a different timing.
fn demo_plan() -> FaultPlan {
    FaultPlan::new("demo", 60_000, 5_000)
        .with(FaultSpec {
            at_ms: 5_000,
            duration_ms: 4_000,
            jitter_ms: 2_000,
            kind: FaultKind::CrashDigi { digi: "L1".into() },
        })
        .with(FaultSpec {
            at_ms: 20_000,
            duration_ms: 6_000,
            jitter_ms: 1_000,
            kind: FaultKind::Partition { left: vec![0], right: vec![1] },
        })
        .with(FaultSpec {
            at_ms: 35_000,
            duration_ms: 6_000,
            jitter_ms: 3_000,
            kind: FaultKind::Degrade { loss: 0.2, extra_delay_ms: 10, extra_jitter_ms: 5 },
        })
}

/// The demo setup every plan runs against: a two-node cluster with a room
/// scene driving an occupancy sensor and a lamp, plus the paper's
/// lamp-follows-vacancy property. Broker keep-alive is on so partitioned
/// sessions are reaped and can reconnect cleanly after the heal.
fn demo_testbed(seed: u64) -> digibox_core::Result<Testbed> {
    let config = TestbedConfig {
        seed,
        broker_session_timeout: Some(SimDuration::from_secs(2)),
        ..Default::default()
    };
    let mut tb = Testbed::ec2(2, full_catalog(), config);
    tb.run_with("Occupancy", "O1", Default::default(), true)?;
    tb.run_with("Room", "R1", Default::default(), false)?;
    tb.run_with("Lamp", "L1", Default::default(), false)?;
    tb.run_for(SimDuration::from_secs(1));
    tb.attach("O1", "R1")?;
    tb.attach("L1", "R1")?;
    tb.add_property(SceneProperty::leads_to(
        "lamp-follows-vacancy",
        vec![DigiCondition::new("O1", Condition::eq("triggered", false))],
        vec![DigiCondition::new("L1", Condition::eq("power.status", "off"))],
        SimDuration::from_secs(5),
    ));
    tb.run_for(SimDuration::from_secs(2));
    Ok(tb)
}

/// The space-parallel demo: the same room scene twice, one complete copy
/// per island (an MQTT scene cannot span islands — each island runs its
/// own broker replica), so the demo plan's faults exercise every flavour:
/// `CrashDigi L1` hits island 0's lamp, `Partition [0]|[1]` cuts the
/// cross-island beacons, and `Degrade` shapes every link on both islands.
/// Digi names are globally unique (`O1/R1/L1` vs `O2/R2/L2`) so the
/// merged scorecard maps stay collision-free.
fn demo_islands_specs(_seed: u64) -> Vec<IslandSpec> {
    (0..2u32)
        .map(|i| {
            IslandSpec::new(format!("scene-{i}"), move |env: &IslandEnv| {
                let config = TestbedConfig {
                    seed: env.seed,
                    broker_session_timeout: Some(SimDuration::from_secs(2)),
                    home_node: Some(env.island as u32),
                    ..Default::default()
                };
                let mut tb = Testbed::new(env.topology.clone(), full_catalog(), config);
                let n = env.island + 1;
                let (o, r, l) = (format!("O{n}"), format!("R{n}"), format!("L{n}"));
                tb.run_with("Occupancy", &o, Default::default(), true)?;
                tb.run_with("Room", &r, Default::default(), false)?;
                tb.run_with("Lamp", &l, Default::default(), false)?;
                tb.run_for(SimDuration::from_secs(1));
                tb.attach(&o, &r)?;
                tb.attach(&l, &r)?;
                tb.add_property(SceneProperty::leads_to(
                    &format!("lamp-follows-vacancy-{n}"),
                    vec![DigiCondition::new(&o, Condition::eq("triggered", false))],
                    vec![DigiCondition::new(&l, Condition::eq("power.status", "off"))],
                    SimDuration::from_secs(5),
                ));
                tb.run_for(SimDuration::from_secs(2));
                Ok(tb)
            })
        })
        .collect()
}

// Pure flag-handling tests (no simulation, no serde at runtime) — these
// run under the offline harness too.
#[cfg(test)]
mod chaoscheck {
    use super::*;

    fn run_args(args: &[&str]) -> Outcome {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(Path::new("."), &args)
    }

    #[test]
    fn help_exits_zero() {
        let out = run_args(&["--help"]);
        assert_eq!(out.code, 0);
        assert!(out.stdout.starts_with("usage:"), "{}", out.stdout);
    }

    #[test]
    fn bad_flags_exit_1() {
        let out = run_args(&["--nope"]);
        assert_eq!(out.code, 1);
        assert!(out.stdout.contains("usage:"), "{}", out.stdout);
        let out = run_args(&["--seeds", "one,two"]);
        assert_eq!(out.code, 1);
        assert!(out.stdout.contains("bad seed"), "{}", out.stdout);
        let out = run_args(&["--seeds"]);
        assert_eq!(out.code, 1);
        let out = run_args(&["--jobs", "many"]);
        assert_eq!(out.code, 1);
        assert!(out.stdout.contains("bad --jobs"), "{}", out.stdout);
        let out = run_args(&["--jobs"]);
        assert_eq!(out.code, 1);
        let out = run_args(&["--islands", "lots"]);
        assert_eq!(out.code, 1);
        assert!(out.stdout.contains("bad --islands"), "{}", out.stdout);
        let out = run_args(&["--islands"]);
        assert_eq!(out.code, 1);
    }

    #[test]
    fn unreadable_plan_exits_1() {
        let out = run_args(&["--plan", "/nonexistent/plan.json"]);
        assert_eq!(out.code, 1);
        assert!(out.stdout.contains("error:"), "{}", out.stdout);
    }

    #[test]
    fn demo_plan_validates() {
        assert!(demo_plan().validate().is_ok());
        assert_eq!(demo_plan().faults.len(), 3);
    }
}

// Campaign-executing tests (materialize a full testbed; skipped by the
// offline harness alongside the other `tests::` CLI tests).
#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dbox-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_args(args: &[&str]) -> Outcome {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(Path::new("."), &args)
    }

    #[test]
    fn print_plan_roundtrips() {
        let out = run_args(&["--print-plan"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        let back: FaultPlan = serde_json::from_str(&out.stdout).unwrap();
        assert_eq!(back, demo_plan());
    }

    #[test]
    fn demo_campaign_is_clean_and_writes_scorecard() {
        let dir = tmpdir("demo");
        let out_path = dir.join("scorecard.json");
        let out = run_args(&[
            "--seeds",
            "1",
            "--format",
            "json",
            "--out",
            out_path.to_str().unwrap(),
        ]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("\"clean\":true"), "{}", out.stdout);
        let written = std::fs::read_to_string(&out_path).unwrap();
        assert_eq!(written.trim(), out.stdout.trim());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jobs_flag_does_not_change_the_scorecard() {
        let a = run_args(&["--seeds", "1,2", "--jobs", "1", "--format", "json"]);
        let b = run_args(&["--seeds", "1,2", "--jobs", "4", "--format", "json"]);
        assert_eq!(a.code, 0, "{}", a.stdout);
        assert_eq!(a.stdout, b.stdout, "parallel scorecard must be byte-identical");
    }

    #[test]
    fn islands_flag_does_not_change_the_scorecard() {
        let a = run_args(&["--seeds", "1,2", "--islands", "1", "--format", "json"]);
        let b = run_args(&["--seeds", "1,2", "--islands", "4", "--format", "json"]);
        assert_eq!(a.code, 0, "{}", a.stdout);
        assert_eq!(a.stdout, b.stdout, "island scorecard must be byte-identical");
        // Both scenes' digis are present in the merged report.
        assert!(a.stdout.contains("\"O1\"") && a.stdout.contains("\"O2\""), "{}", a.stdout);
    }

    #[test]
    fn plan_file_overrides_demo() {
        let dir = tmpdir("plan-file");
        let path = dir.join("plan.json");
        let plan = FaultPlan::new("tiny", 5_000, 1_000).with(FaultSpec {
            at_ms: 1_000,
            duration_ms: 500,
            jitter_ms: 0,
            kind: FaultKind::CrashDigi { digi: "L1".into() },
        });
        std::fs::write(&path, serde_json::to_vec(&plan).unwrap()).unwrap();
        let out = run_args(&["--plan", path.to_str().unwrap(), "--seeds", "7"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("chaos plan \"tiny\""), "{}", out.stdout);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
