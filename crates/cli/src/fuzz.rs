//! `dbox fuzz` — run the seeded, structure-aware MQTT codec fuzzer
//! (`digibox_broker::fuzz`) and print its report.
//!
//! The run is a pure function of `(seed, iterations)`: the same flags
//! always print the same report, so CI can pin a fixed seed set without
//! flakes, and a failing seed is a one-line reproducer. A violated codec
//! invariant (decode panic, round-trip mismatch, re-encode instability)
//! panics with the seed and iteration in the message.

use digibox_broker::fuzz;

const FUZZ_USAGE: &str = "usage: dbox fuzz [--seeds 1,2,3] [--iters N]";

/// Default iteration count per seed — high enough to hit every packet
/// variant and mutation strategy many times, small enough for a CI smoke.
const DEFAULT_ITERS: u64 = 10_000;

pub fn run(args: &[String]) -> Result<String, String> {
    let mut seeds: Vec<u64> = vec![1, 2, 3];
    let mut iters = DEFAULT_ITERS;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => {
                let list = it.next().ok_or(format!("--seeds needs a list\n{FUZZ_USAGE}"))?;
                seeds = list
                    .split(',')
                    .map(|s| s.trim().parse::<u64>().map_err(|_| format!("bad seed {s:?}")))
                    .collect::<Result<_, _>>()?;
                if seeds.is_empty() {
                    return Err(format!("--seeds list is empty\n{FUZZ_USAGE}"));
                }
            }
            "--iters" => {
                let n = it.next().ok_or(format!("--iters needs a number\n{FUZZ_USAGE}"))?;
                iters = n.trim().parse::<u64>().map_err(|_| format!("bad --iters {n:?}"))?;
            }
            "--help" | "-h" => return Ok(format!("{FUZZ_USAGE}\n")),
            other => return Err(format!("unknown argument {other:?}\n{FUZZ_USAGE}")),
        }
    }
    let mut out = String::new();
    for seed in &seeds {
        out.push_str(&fuzz::run(*seed, iters).to_string());
    }
    out.push_str(&format!(
        "codec fuzz OK: {} seed(s) x {iters} iterations, no decode panics\n",
        seeds.len()
    ));
    Ok(out)
}

// Pure flag handling and short deterministic runs — no simulation, no
// serde at runtime, so these run under the offline harness too.
#[cfg(test)]
mod fuzzcheck {
    use super::*;

    fn run_args(args: &[&str]) -> Result<String, String> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&args)
    }

    #[test]
    fn default_run_is_deterministic() {
        let a = run_args(&["--iters", "500"]).unwrap();
        let b = run_args(&["--iters", "500"]).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("codec fuzz OK: 3 seed(s) x 500 iterations"), "{a}");
        assert!(a.contains("fuzz seed=1 iterations=500"), "{a}");
    }

    #[test]
    fn seeds_flag_selects_streams() {
        let out = run_args(&["--seeds", "9", "--iters", "200"]).unwrap();
        assert!(out.contains("fuzz seed=9 iterations=200"), "{out}");
        assert!(out.contains("1 seed(s)"), "{out}");
    }

    #[test]
    fn bad_flags_error() {
        assert!(run_args(&["--nope"]).is_err());
        assert!(run_args(&["--seeds", "one"]).is_err());
        assert!(run_args(&["--seeds"]).is_err());
        assert!(run_args(&["--iters", "many"]).is_err());
        assert!(run_args(&["--seeds", ""]).is_err());
    }

    #[test]
    fn help_prints_usage() {
        let out = run_args(&["--help"]).unwrap();
        assert!(out.starts_with("usage: dbox fuzz"), "{out}");
    }
}
