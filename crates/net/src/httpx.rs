//! An HTTP/1.1-subset codec for the REST device API (paper, Fig. 2:
//! applications talk to mocks over "REST/MQTT").
//!
//! Supports request lines, status lines, headers, and `Content-Length`
//! bodies — enough to express the device API (`GET /model/<name>`,
//! `POST /model/<name>/intent`, ...). Chunked encoding, pipelining and
//! connection management are out of scope: each request/response rides one
//! reliable transport message.

use std::collections::BTreeMap;
use std::fmt;

use bytes::{BufMut, Bytes, BytesMut};

/// HTTP request methods used by the device API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// `GET` — read a resource.
    Get,
    /// `PUT` — replace a resource.
    Put,
    /// `POST` — act on a resource (intents).
    Post,
    /// `DELETE` — remove a resource.
    Delete,
}

impl Method {
    /// The method's wire spelling (`"GET"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Put => "PUT",
            Method::Post => "POST",
            Method::Delete => "DELETE",
        }
    }

    /// Parse a wire spelling; `None` for unknown methods.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "PUT" => Some(Method::Put),
            "POST" => Some(Method::Post),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Codec errors.
#[derive(Debug, Clone, PartialEq)]
pub enum HttpError {
    /// The message head could not be parsed; the payload says what part.
    Malformed(&'static str),
    /// `content-length` disagreed with the actual body size.
    BodyLengthMismatch {
        /// Bytes promised by the `content-length` header.
        declared: usize,
        /// Bytes actually present after the head.
        actual: usize,
    },
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(what) => write!(f, "malformed http message: {what}"),
            HttpError::BodyLengthMismatch { declared, actual } => {
                write!(f, "content-length {declared} but body has {actual} bytes")
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request target, e.g. `/model/L1`.
    pub path: String,
    /// Headers, lower-cased keys; `content-length` is derived on encode.
    pub headers: BTreeMap<String, String>,
    /// Request body (may be empty).
    pub body: Bytes,
}

impl Request {
    /// A bodyless request.
    pub fn new(method: Method, path: &str) -> Request {
        Request { method, path: path.to_string(), headers: BTreeMap::new(), body: Bytes::new() }
    }

    /// Attach a body and its `content-type` (builder-style).
    pub fn with_body(mut self, content_type: &str, body: impl Into<Bytes>) -> Request {
        self.headers.insert("content-type".into(), content_type.into());
        self.body = body.into();
        self
    }

    /// Set a header (builder-style); keys are lower-cased.
    pub fn header(mut self, key: &str, value: &str) -> Request {
        self.headers.insert(key.to_ascii_lowercase(), value.to_string());
        self
    }

    /// Split the path into non-empty segments: `/model/L1` → `["model","L1"]`.
    pub fn path_segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// Serialize to wire bytes (`content-length` is always emitted).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(64 + self.body.len());
        b.put_slice(self.method.as_str().as_bytes());
        b.put_u8(b' ');
        b.put_slice(self.path.as_bytes());
        b.put_slice(b" HTTP/1.1\r\n");
        encode_headers(&self.headers, self.body.len(), &mut b);
        b.put_slice(&self.body);
        b.freeze()
    }

    /// Parse wire bytes produced by [`Request::encode`] (or compatible).
    pub fn decode(buf: &[u8]) -> Result<Request, HttpError> {
        let (head, body) = split_head(buf)?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
        let mut parts = request_line.split(' ');
        let method = parts
            .next()
            .and_then(Method::parse)
            .ok_or(HttpError::Malformed("bad method"))?;
        let path = parts.next().ok_or(HttpError::Malformed("missing path"))?.to_string();
        match parts.next() {
            Some("HTTP/1.1") | Some("HTTP/1.0") => {}
            _ => return Err(HttpError::Malformed("bad http version")),
        }
        let mut headers = decode_headers(lines)?;
        let body = check_body(&headers, body)?;
        headers.remove("content-length"); // derived on encode
        Ok(Request { method, path, headers, body })
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code (200, 404, ...).
    pub status: u16,
    /// Headers, lower-cased keys; `content-length` is derived on encode.
    pub headers: BTreeMap<String, String>,
    /// Response body (may be empty).
    pub body: Bytes,
}

impl Response {
    /// A bodyless response with the given status code.
    pub fn new(status: u16) -> Response {
        Response { status, headers: BTreeMap::new(), body: Bytes::new() }
    }

    /// `200 OK` with a JSON body.
    pub fn ok_json(body: impl Into<Bytes>) -> Response {
        Response::new(200).with_body("application/json", body)
    }

    /// `404 Not Found` with a plain-text message.
    pub fn not_found(msg: &str) -> Response {
        Response::new(404).with_body("text/plain", msg.as_bytes().to_vec())
    }

    /// `400 Bad Request` with a plain-text message.
    pub fn bad_request(msg: &str) -> Response {
        Response::new(400).with_body("text/plain", msg.as_bytes().to_vec())
    }

    /// `500 Internal Server Error` with a plain-text message.
    pub fn error(msg: &str) -> Response {
        Response::new(500).with_body("text/plain", msg.as_bytes().to_vec())
    }

    /// Attach a body and its `content-type` (builder-style).
    pub fn with_body(mut self, content_type: &str, body: impl Into<Bytes>) -> Response {
        self.headers.insert("content-type".into(), content_type.into());
        self.body = body.into();
        self
    }

    /// Whether the status is 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Canonical reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            409 => "Conflict",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialize to wire bytes (`content-length` is always emitted).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(64 + self.body.len());
        b.put_slice(format!("HTTP/1.1 {} {}\r\n", self.status, self.reason()).as_bytes());
        encode_headers(&self.headers, self.body.len(), &mut b);
        b.put_slice(&self.body);
        b.freeze()
    }

    /// Parse wire bytes produced by [`Response::encode`] (or compatible).
    pub fn decode(buf: &[u8]) -> Result<Response, HttpError> {
        let (head, body) = split_head(buf)?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
        let mut parts = status_line.splitn(3, ' ');
        match parts.next() {
            Some("HTTP/1.1") | Some("HTTP/1.0") => {}
            _ => return Err(HttpError::Malformed("bad http version")),
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(HttpError::Malformed("bad status code"))?;
        let mut headers = decode_headers(lines)?;
        let body = check_body(&headers, body)?;
        headers.remove("content-length"); // derived on encode
        Ok(Response { status, headers, body })
    }
}

fn encode_headers(headers: &BTreeMap<String, String>, body_len: usize, b: &mut BytesMut) {
    for (k, v) in headers {
        b.put_slice(k.as_bytes());
        b.put_slice(b": ");
        b.put_slice(v.as_bytes());
        b.put_slice(b"\r\n");
    }
    b.put_slice(format!("content-length: {body_len}\r\n\r\n").as_bytes());
}

fn split_head(buf: &[u8]) -> Result<(&str, &[u8]), HttpError> {
    let sep = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or(HttpError::Malformed("missing head/body separator"))?;
    let head =
        std::str::from_utf8(&buf[..sep]).map_err(|_| HttpError::Malformed("non-utf8 head"))?;
    Ok((head, &buf[sep + 4..]))
}

fn decode_headers<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<BTreeMap<String, String>, HttpError> {
    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line.split_once(':').ok_or(HttpError::Malformed("bad header line"))?;
        headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
    }
    Ok(headers)
}

fn check_body(headers: &BTreeMap<String, String>, body: &[u8]) -> Result<Bytes, HttpError> {
    let declared: usize = headers
        .get("content-length")
        .and_then(|v| v.parse().ok())
        .ok_or(HttpError::Malformed("missing content-length"))?;
    if declared != body.len() {
        return Err(HttpError::BodyLengthMismatch { declared, actual: body.len() });
    }
    Ok(Bytes::copy_from_slice(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::new(Method::Get, "/model/L1").header("x-trace", "abc");
        let back = Request::decode(&req.encode()).unwrap();
        assert_eq!(req, back);
        assert_eq!(back.path_segments(), ["model", "L1"]);
    }

    #[test]
    fn request_with_body_roundtrip() {
        let req = Request::new(Method::Post, "/model/L1/intent")
            .with_body("application/json", r#"{"power":"on"}"#.as_bytes().to_vec());
        let back = Request::decode(&req.encode()).unwrap();
        assert_eq!(back.body, Bytes::from_static(br#"{"power":"on"}"#));
        assert_eq!(back.headers["content-type"], "application/json");
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::ok_json(r#"{"ok":true}"#.as_bytes().to_vec());
        let back = Response::decode(&resp.encode()).unwrap();
        assert_eq!(resp, back);
        assert!(back.is_success());
    }

    #[test]
    fn error_statuses() {
        for (resp, code) in [
            (Response::not_found("x"), 404),
            (Response::bad_request("x"), 400),
            (Response::error("x"), 500),
        ] {
            let back = Response::decode(&resp.encode()).unwrap();
            assert_eq!(back.status, code);
            assert!(!back.is_success());
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(Request::decode(b"GET /x HTTP/1.1").is_err()); // no separator
        assert!(Request::decode(b"BREW /x HTTP/1.1\r\ncontent-length: 0\r\n\r\n").is_err());
        assert!(Request::decode(b"GET /x SPDY/9\r\ncontent-length: 0\r\n\r\n").is_err());
        assert!(Response::decode(b"HTTP/1.1 abc OK\r\ncontent-length: 0\r\n\r\n").is_err());
    }

    #[test]
    fn rejects_length_mismatch() {
        let err = Request::decode(b"GET /x HTTP/1.1\r\ncontent-length: 5\r\n\r\nabc").unwrap_err();
        assert_eq!(err, HttpError::BodyLengthMismatch { declared: 5, actual: 3 });
    }

    #[test]
    fn header_names_case_insensitive() {
        let back =
            Request::decode(b"GET /x HTTP/1.1\r\nX-Trace: T\r\nContent-Length: 0\r\n\r\n").unwrap();
        assert_eq!(back.headers["x-trace"], "T");
    }

    #[test]
    fn path_segments_ignore_empties() {
        let req = Request::new(Method::Get, "//model//L1/");
        assert_eq!(req.path_segments(), ["model", "L1"]);
    }
}
