//! The discrete-event simulation kernel: [`Sim`] owns the virtual clock,
//! the event queue, the topology, and every bound [`Service`]. Services
//! interact only through datagrams and timers, so one seed fixes the whole
//! execution — the property everything else (traces, sweeps, chaos
//! scorecards, the observability layer) is built on.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use digibox_obs as obs;

use crate::stats::NetStats;
use crate::wheel::EventWheel;
use crate::{Addr, Prng, SimDuration, SimTime, Topology};

/// A message in flight between two service endpoints.
#[derive(Debug, Clone)]
pub struct Datagram {
    /// Sender endpoint.
    pub src: Addr,
    /// Destination endpoint.
    pub dst: Addr,
    /// Opaque message bytes.
    pub payload: Bytes,
}

/// Opaque timer identity, chosen by the service that sets the timer.
pub type TimerToken = u64;

/// A datagram captured by an island-scoped kernel because its destination
/// lives on a foreign island (space-parallel execution, DESIGN.md §15).
///
/// The arrival time was already sampled from the *sending* island's link
/// RNG at send time, so handing the datagram to the destination island via
/// [`Sim::inject_remote`] reproduces exactly the delivery a single shared
/// kernel would have scheduled.
#[derive(Debug, Clone)]
pub struct RemoteDatagram {
    /// Sampled arrival time on the destination island's clock.
    pub at: SimTime,
    /// The in-flight message.
    pub datagram: Datagram,
}

/// A simulated process bound to an [`Addr`]: mocks, scenes, brokers, REST
/// servers and applications all implement `Service`.
///
/// Handlers receive `&mut Sim` and may send datagrams or set timers, but
/// never call other services directly — all interaction is via messages,
/// which is what keeps the simulation deterministic and lets the same code
/// run at laptop scale or cluster scale (paper §4).
pub trait Service {
    /// Called once when the service is bound.
    fn on_start(&mut self, _sim: &mut Sim) {}
    /// A datagram addressed to this service arrived.
    fn on_datagram(&mut self, sim: &mut Sim, dg: Datagram);
    /// A batch of same-instant datagrams addressed to this service.
    ///
    /// The kernel coalesces the maximal *consecutive* run of deliveries
    /// that share `(at, dst)` — exactly a prefix of the global `(at, seq)`
    /// order, so coalescing can never reorder observable events. The
    /// default forwards each datagram to [`Service::on_datagram`] in queue
    /// order; overriding is purely an optimization (a pool walks its arena
    /// once per batch instead of once per datagram).
    fn on_datagram_batch(&mut self, sim: &mut Sim, batch: &[Datagram]) {
        for dg in batch {
            self.on_datagram(sim, dg.clone());
        }
    }
    /// A timer set via [`Sim::set_timer`] fired.
    fn on_timer(&mut self, _sim: &mut Sim, _token: TimerToken) {}
}

/// Shared, inspectable handle to a concrete service (tests and the testbed
/// keep the typed `Rc` while the kernel holds it as `dyn Service`).
pub type ServiceHandle<T> = Rc<RefCell<T>>;

/// Kernel construction parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; every per-link/per-service stream splits from it.
    pub seed: u64,
    /// Safety valve: `run_*` stops after this many events (0 = unlimited).
    pub max_events: u64,
    /// Storm watchdog: flag [`Sim::storm_detected`] when more than this
    /// many events execute within one virtual millisecond (0 = disabled).
    /// A storm almost always means a coordination loop that never
    /// converges (e.g. a scene handler that re-randomizes its writes on
    /// every run) — the failure mode is "simulation runs forever", and the
    /// flag turns it into a checkable condition.
    pub storm_threshold: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { seed: 0xD161_B0B0, max_events: 0, storm_threshold: 250_000 }
    }
}

enum EventKind {
    Deliver(Datagram),
    Timer { addr: Addr, token: TimerToken },
    Call(Box<dyn FnOnce(&mut Sim)>),
}

/// Pre-interned observability handles for the dispatch hot path — interned
/// once at kernel construction so the per-event cost when metrics are on
/// is an index bump, and a single thread-local flag check when they are
/// off.
struct ObsKeys {
    events: obs::CounterId,
    deliver: obs::CounterId,
    timer: obs::CounterId,
    call: obs::CounterId,
    unreachable: obs::CounterId,
    batched: obs::CounterId,
    queue_depth: obs::HistogramId,
    batch_size: obs::HistogramId,
    f_deliver: obs::FrameId,
    f_deliver_batch: obs::FrameId,
    f_timer: obs::FrameId,
    f_call: obs::FrameId,
}

impl ObsKeys {
    fn new() -> ObsKeys {
        ObsKeys {
            events: obs::counter("kernel.events"),
            deliver: obs::counter("kernel.deliver"),
            timer: obs::counter("kernel.timer"),
            call: obs::counter("kernel.call"),
            unreachable: obs::counter("kernel.unreachable"),
            batched: obs::counter("kernel.batched_deliveries"),
            queue_depth: obs::histogram("kernel.queue_depth"),
            batch_size: obs::histogram("kernel.batch_size"),
            f_deliver: obs::frame("kernel.deliver"),
            f_deliver_batch: obs::frame("kernel.deliver_batch"),
            f_timer: obs::frame("kernel.timer"),
            f_call: obs::frame("kernel.call"),
        }
    }
}

/// The discrete-event kernel: virtual clock, event queue, topology, bound
/// services, and network statistics.
///
/// Events are ordered by `(time, insertion sequence)` — FIFO among
/// simultaneous events, which pins down execution order completely. The
/// queue is a hierarchical timer wheel with a heap overflow
/// ([`EventWheel`]): the dominant periodic-timer workload schedules and
/// fires in O(1) instead of the O(log n) a single binary heap costs, while
/// producing the exact same total order.
pub struct Sim {
    now: SimTime,
    seq: u64,
    events_processed: u64,
    queue: EventWheel<EventKind>,
    topology: Topology,
    /// Dense service table: `ports[node][port]` is `slot + 1` into `slots`
    /// (0 = unbound), so the dispatch hot path is two array indexes with no
    /// hashing. Slots are arena-assigned and recycled through `free_slots`.
    ports: Vec<Vec<u32>>,
    slots: Vec<Option<Rc<RefCell<dyn Service>>>>,
    free_slots: Vec<u32>,
    node_load: Vec<usize>,
    /// Reusable buffer for coalesced same-instant deliveries.
    batch_buf: Vec<Datagram>,
    /// Island scope (space-parallel mode): `island_local[node]` marks nodes
    /// this kernel owns. Empty = no scope, every node is local.
    island_local: Vec<bool>,
    /// Cross-island datagrams captured since the last
    /// [`Sim::take_remote_outbox`], in send order.
    remote_outbox: Vec<RemoteDatagram>,
    link_rng: Prng,
    root_rng: Prng,
    stats: NetStats,
    storm_bucket_ms: u64,
    storm_count: u64,
    storm_detected: bool,
    obs: ObsKeys,
    config: SimConfig,
}

impl Sim {
    /// A kernel over the given topology, clock at zero, nothing bound.
    pub fn new(topology: Topology, config: SimConfig) -> Sim {
        let root = Prng::new(config.seed);
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            events_processed: 0,
            queue: EventWheel::new(),
            topology,
            ports: Vec::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            node_load: Vec::new(),
            batch_buf: Vec::new(),
            island_local: Vec::new(),
            remote_outbox: Vec::new(),
            link_rng: root.split_str("links"),
            root_rng: root,
            stats: NetStats::default(),
            storm_bucket_ms: 0,
            storm_count: 0,
            storm_detected: false,
            obs: ObsKeys::new(),
            config,
        }
    }

    /// True once an event storm was observed (see
    /// [`SimConfig::storm_threshold`]).
    pub fn storm_detected(&self) -> bool {
        self.storm_detected
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable topology access (chaos campaigns edit links/nodes live).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Datagram counters accumulated so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Events dispatched since construction.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Derive a reproducible RNG stream for a named component.
    pub fn rng_for(&self, label: &str) -> Prng {
        self.root_rng.split_str(label)
    }

    /// Bind a service at `addr`. Replaces any previous binding (the old
    /// service stops receiving). Runs the service's `on_start` hook.
    pub fn bind<T: Service + 'static>(&mut self, addr: Addr, service: ServiceHandle<T>) {
        let node = addr.node.0 as usize;
        if self.ports.len() <= node {
            self.ports.resize_with(node + 1, Vec::new);
            self.node_load.resize(node + 1, 0);
        }
        let table = &mut self.ports[node];
        let port = addr.port as usize;
        if table.len() <= port {
            table.resize(port + 1, 0);
        }
        let dyn_svc: Rc<RefCell<dyn Service>> = service.clone();
        if table[port] == 0 {
            let slot = match self.free_slots.pop() {
                Some(s) => {
                    self.slots[s as usize] = Some(dyn_svc);
                    s
                }
                None => {
                    self.slots.push(Some(dyn_svc));
                    (self.slots.len() - 1) as u32
                }
            };
            table[port] = slot + 1;
            self.node_load[node] += 1;
        } else {
            self.slots[(table[port] - 1) as usize] = Some(dyn_svc);
        }
        service.borrow_mut().on_start(self);
    }

    /// Remove the binding at `addr`; in-flight datagrams to it are dropped
    /// on delivery (counted as unreachable). The slot returns to the arena
    /// free list for the next bind.
    pub fn unbind(&mut self, addr: Addr) {
        let node = addr.node.0 as usize;
        let Some(table) = self.ports.get_mut(node) else { return };
        let Some(entry) = table.get_mut(addr.port as usize) else { return };
        let e = *entry;
        if e == 0 {
            return;
        }
        *entry = 0;
        self.slots[(e - 1) as usize] = None;
        self.free_slots.push(e - 1);
        self.node_load[node] = self.node_load[node].saturating_sub(1);
    }

    /// Number of services currently bound on `node` — the load proxy used
    /// by load-proportional service-time models (a node crowded with mock
    /// containers serves each request more slowly, which is what makes the
    /// paper's 1000-mock deployment slower than the 50-mock one).
    pub fn node_load(&self, node: crate::NodeId) -> usize {
        self.node_load.get(node.0 as usize).copied().unwrap_or(0)
    }

    /// Whether any service is bound at `addr`.
    pub fn is_bound(&self, addr: Addr) -> bool {
        self.service_at(addr).is_some()
    }

    /// Hot-path lookup: two dense array indexes, no hashing.
    #[inline]
    fn service_at(&self, addr: Addr) -> Option<Rc<RefCell<dyn Service>>> {
        let entry = *self.ports.get(addr.node.0 as usize)?.get(addr.port as usize)?;
        if entry == 0 {
            return None;
        }
        self.slots[(entry - 1) as usize].clone()
    }

    /// Send a datagram. Delay and loss come from the topology's link model;
    /// the datagram is delivered (or dropped) asynchronously.
    pub fn send(&mut self, src: Addr, dst: Addr, payload: Bytes) {
        let size = payload.len();
        let link = self.topology.link(src.node, dst.node).clone();
        self.stats.sent(size);
        if link.loss > 0.0 && self.link_rng.chance(link.loss) {
            self.stats.lost(size);
            return;
        }
        let delay = link.sample_delay(size, &mut self.link_rng);
        let at = self.now + delay;
        let dg = Datagram { src, dst, payload };
        if !self.island_local.is_empty()
            && !self.island_local.get(dst.node.0 as usize).copied().unwrap_or(false)
        {
            // Space-parallel mode: the destination lives on a foreign
            // island. Loss and delay were sampled above from *this*
            // island's link RNG, so capturing instead of queueing changes
            // nothing observable — the coordinator merges the outbox into
            // the owning island's wheel at the next barrier.
            self.remote_outbox.push(RemoteDatagram { at, datagram: dg });
            return;
        }
        self.push(at, EventKind::Deliver(dg));
    }

    /// Restrict this kernel to an island: sends to nodes *not* in `local`
    /// are captured into the remote outbox instead of queued, and
    /// [`Sim::inject_remote`] merges foreign arrivals in. Passing every
    /// node (or never calling this) keeps classic single-kernel behavior.
    pub fn set_island_scope(&mut self, local: &[crate::NodeId]) {
        let max = local.iter().map(|n| n.0 as usize).max().map_or(0, |m| m + 1);
        self.island_local = vec![false; max];
        for n in local {
            self.island_local[n.0 as usize] = true;
        }
    }

    /// Drain the datagrams captured for foreign islands since the last
    /// call, in send order.
    pub fn take_remote_outbox(&mut self) -> Vec<RemoteDatagram> {
        std::mem::take(&mut self.remote_outbox)
    }

    /// Merge a foreign island's datagram into this kernel's wheel. The
    /// arrival time was sampled by the sender; it must not precede this
    /// island's committed horizon (`now`) — the conservative-lookahead
    /// barrier protocol guarantees that, and a violation here means the
    /// horizon computation is wrong, so it is a hard panic rather than a
    /// silent reordering.
    pub fn inject_remote(&mut self, remote: RemoteDatagram) {
        assert!(
            remote.at >= self.now,
            "lookahead violation: remote datagram for {:?} arrives at {} but island already committed {}",
            remote.datagram.dst,
            remote.at,
            self.now,
        );
        self.push(remote.at, EventKind::Deliver(remote.datagram));
    }

    /// Set a timer for the service at `addr`, firing after `delay` with the
    /// given token.
    pub fn set_timer(&mut self, addr: Addr, delay: SimDuration, token: TimerToken) {
        let at = self.now + delay;
        self.push(at, EventKind::Timer { addr, token });
    }

    /// Schedule an arbitrary closure at an absolute virtual time (test
    /// drivers, workload generators).
    pub fn call_at(&mut self, at: SimTime, f: impl FnOnce(&mut Sim) + 'static) {
        let at = at.max(self.now);
        self.push(at, EventKind::Call(Box::new(f)));
    }

    /// Schedule a closure after a relative delay.
    pub fn call_after(&mut self, delay: SimDuration, f: impl FnOnce(&mut Sim) + 'static) {
        self.push(self.now + delay, EventKind::Call(Box::new(f)));
    }

    fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at.as_nanos(), seq, kind);
    }

    /// Per-event accounting shared by `step`'s initial pop and the batch
    /// extension loop: event counter, obs hot-path metrics, storm watchdog.
    fn account_event(&mut self, at: SimTime) {
        self.events_processed += 1;
        if obs::enabled() {
            obs::clock(at.as_nanos());
            obs::inc(self.obs.events);
            obs::observe(self.obs.queue_depth, self.queue.len() as u64);
        }
        if self.config.storm_threshold > 0 {
            let bucket = at.as_millis();
            if bucket == self.storm_bucket_ms {
                self.storm_count += 1;
                if self.storm_count > self.config.storm_threshold {
                    self.storm_detected = true;
                }
            } else {
                self.storm_bucket_ms = bucket;
                self.storm_count = 1;
            }
        }
    }

    /// Deliver `dg` plus the maximal consecutive run of queued events that
    /// share its `(at, dst)`, as one batch. Because the run is exactly a
    /// prefix of the global `(at, seq)` order (any interleaved event to
    /// another destination has an intermediate `seq` and ends the run, and
    /// events pushed *during* handling always carry a later `seq`), the
    /// sequence of handler invocations is identical to the unbatched
    /// kernel's — batching is invisible to traces and digests.
    fn dispatch_deliveries(&mut self, at: SimTime, dg: Datagram) {
        obs::inc(self.obs.deliver);
        let dst = dg.dst;
        let Some(s) = self.service_at(dst) else {
            self.stats.unreachable(dg.payload.len());
            obs::inc(self.obs.unreachable);
            return;
        };
        self.stats.delivered(dg.payload.len());
        let at_ns = at.as_nanos();
        let mut batch = std::mem::take(&mut self.batch_buf);
        batch.clear();
        batch.push(dg);
        loop {
            if self.config.max_events > 0 && self.events_processed >= self.config.max_events {
                break;
            }
            let next = self.queue.pop_if(|eat, _seq, kind| {
                eat == at_ns && matches!(kind, EventKind::Deliver(d) if d.dst == dst)
            });
            let Some((_, _, EventKind::Deliver(d))) = next else { break };
            self.account_event(at);
            obs::inc(self.obs.deliver);
            self.stats.delivered(d.payload.len());
            batch.push(d);
        }
        if batch.len() == 1 {
            let _span = obs::enter(self.obs.f_deliver);
            let dg = batch.pop().expect("batch holds the popped event");
            s.borrow_mut().on_datagram(self, dg);
        } else {
            obs::inc(self.obs.batched);
            obs::observe(self.obs.batch_size, batch.len() as u64);
            let _span = obs::enter(self.obs.f_deliver_batch);
            s.borrow_mut().on_datagram_batch(self, &batch);
        }
        batch.clear();
        self.batch_buf = batch;
    }

    /// Process one event (a coalesced delivery run counts as one step but
    /// several events). Returns `false` when the queue is empty or the
    /// event budget is exhausted.
    pub fn step(&mut self) -> bool {
        if self.config.max_events > 0 && self.events_processed >= self.config.max_events {
            return false;
        }
        let Some((at, _seq, kind)) = self.queue.pop() else {
            return false;
        };
        let at = SimTime::from_nanos(at);
        debug_assert!(at >= self.now, "time must be monotonic");
        self.now = at;
        self.account_event(at);
        match kind {
            EventKind::Deliver(dg) => self.dispatch_deliveries(at, dg),
            EventKind::Timer { addr, token } => {
                obs::inc(self.obs.timer);
                let _span = obs::enter(self.obs.f_timer);
                if let Some(s) = self.service_at(addr) {
                    s.borrow_mut().on_timer(self, token);
                }
            }
            EventKind::Call(f) => {
                obs::inc(self.obs.call);
                let _span = obs::enter(self.obs.f_call);
                f(self);
            }
        }
        true
    }

    /// Run until the virtual clock reaches `deadline` (events at exactly
    /// `deadline` are processed) or the queue drains.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            match self.queue.peek() {
                Some((at, _seq)) if at <= deadline.as_nanos() => {
                    if !self.step() {
                        break;
                    }
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Run for a span of virtual time from now.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }

    /// Drain the queue completely (or until the event budget runs out).
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkSpec, NodeSpec, SimDuration};

    struct Echo {
        addr: Addr,
        received: Vec<(SimTime, Vec<u8>)>,
        echo_to: Option<Addr>,
        timers: Vec<TimerToken>,
    }

    impl Echo {
        fn new(addr: Addr) -> ServiceHandle<Echo> {
            Rc::new(RefCell::new(Echo { addr, received: Vec::new(), echo_to: None, timers: Vec::new() }))
        }
    }

    impl Service for Echo {
        fn on_datagram(&mut self, sim: &mut Sim, dg: Datagram) {
            self.received.push((sim.now(), dg.payload.to_vec()));
            if let Some(to) = self.echo_to {
                sim.send(self.addr, to, dg.payload);
            }
        }
        fn on_timer(&mut self, _sim: &mut Sim, token: TimerToken) {
            self.timers.push(token);
        }
    }

    fn two_node_sim() -> (Sim, Addr, Addr) {
        let mut topo = Topology::new();
        let n0 = topo.add_node(NodeSpec::laptop());
        let n1 = topo.add_node(NodeSpec::m5_xlarge(0));
        let sim = Sim::new(topo, SimConfig::default());
        (sim, Addr::new(n0, 1), Addr::new(n1, 1))
    }

    #[test]
    fn delivery_advances_clock_by_link_delay() {
        let (mut sim, a, b) = two_node_sim();
        let svc = Echo::new(b);
        sim.bind(b, svc.clone());
        sim.send(a, b, Bytes::from_static(b"hi"));
        sim.run_to_completion();
        let svc = svc.borrow();
        assert_eq!(svc.received.len(), 1);
        let (t, payload) = &svc.received[0];
        assert_eq!(payload, b"hi");
        // ec2 link: >= 250us base delay
        assert!(t.as_micros() >= 250, "delivered at {t}");
    }

    #[test]
    fn unbound_destination_counts_unreachable() {
        let (mut sim, a, b) = two_node_sim();
        sim.send(a, b, Bytes::from_static(b"x"));
        sim.run_to_completion();
        assert_eq!(sim.stats().datagrams_unreachable, 1);
        assert_eq!(sim.stats().datagrams_delivered, 0);
    }

    #[test]
    fn lossy_link_drops_roughly_at_rate() {
        let (mut sim, a, b) = two_node_sim();
        sim.topology_mut().set_link(a.node, b.node, LinkSpec::lossy_wireless(0.5));
        let svc = Echo::new(b);
        sim.bind(b, svc.clone());
        for _ in 0..1000 {
            sim.send(a, b, Bytes::from_static(b"p"));
        }
        sim.run_to_completion();
        let got = svc.borrow().received.len();
        assert!((350..650).contains(&got), "delivered {got}/1000 at loss 0.5");
        assert_eq!(sim.stats().datagrams_lost as usize, 1000 - got);
    }

    #[test]
    fn timers_fire_in_order() {
        let (mut sim, _a, b) = two_node_sim();
        let svc = Echo::new(b);
        sim.bind(b, svc.clone());
        sim.set_timer(b, SimDuration::from_millis(20), 2);
        sim.set_timer(b, SimDuration::from_millis(10), 1);
        sim.set_timer(b, SimDuration::from_millis(30), 3);
        sim.run_to_completion();
        assert_eq!(svc.borrow().timers, vec![1, 2, 3]);
        assert_eq!(sim.now().as_millis(), 30);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut sim, _a, b) = two_node_sim();
        let svc = Echo::new(b);
        sim.bind(b, svc.clone());
        sim.set_timer(b, SimDuration::from_millis(5), 1);
        sim.set_timer(b, SimDuration::from_millis(50), 2);
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(10));
        assert_eq!(svc.borrow().timers, vec![1]);
        assert_eq!(sim.now().as_millis(), 10);
        sim.run_to_completion();
        assert_eq!(svc.borrow().timers, vec![1, 2]);
    }

    #[test]
    fn ping_pong_via_echo() {
        let (mut sim, a, b) = two_node_sim();
        let sa = Echo::new(a);
        let sb = Echo::new(b);
        sb.borrow_mut().echo_to = Some(a);
        sim.bind(a, sa.clone());
        sim.bind(b, sb.clone());
        sim.send(a, b, Bytes::from_static(b"ping"));
        sim.run_to_completion();
        assert_eq!(sa.borrow().received.len(), 1);
        assert_eq!(sa.borrow().received[0].1, b"ping");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let (mut sim, a, b) = two_node_sim();
            let svc = Echo::new(b);
            sim.bind(b, svc.clone());
            for _ in 0..100 {
                sim.send(a, b, Bytes::from_static(b"x"));
            }
            sim.run_to_completion();
            let times: Vec<u64> =
                svc.borrow().received.iter().map(|(t, _)| t.as_nanos()).collect();
            times
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn max_events_budget_respected() {
        let mut topo = Topology::new();
        let n = topo.add_node(NodeSpec::laptop());
        let mut sim = Sim::new(topo, SimConfig { max_events: 5, ..Default::default() });
        let addr = Addr::new(n, 1);
        let svc = Echo::new(addr);
        svc.borrow_mut().echo_to = Some(addr); // infinite self-echo loop
        sim.bind(addr, svc);
        sim.send(addr, addr, Bytes::from_static(b"loop"));
        sim.run_to_completion();
        assert_eq!(sim.events_processed(), 5);
    }

    #[test]
    fn storm_watchdog_flags_hot_loops() {
        let mut topo = Topology::new();
        let n = topo.add_node(NodeSpec::laptop());
        // zero-latency loopback so the self-echo stays in one millisecond
        topo.set_loopback(LinkSpec {
            base_delay: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            loss: 0.0,
            bandwidth_bps: 0,
        });
        let mut sim = Sim::new(
            topo,
            SimConfig { storm_threshold: 10, max_events: 1000, ..Default::default() },
        );
        let addr = Addr::new(n, 1);
        let svc = Echo::new(addr);
        svc.borrow_mut().echo_to = Some(addr);
        sim.bind(addr, svc);
        sim.send(addr, addr, Bytes::from_static(b"hot"));
        sim.run_to_completion();
        assert!(sim.storm_detected(), "self-echo loop must trip the watchdog");
    }

    #[test]
    fn storm_watchdog_quiet_on_normal_traffic() {
        let (mut sim, a, b) = two_node_sim();
        let svc = Echo::new(b);
        sim.bind(b, svc);
        for _ in 0..100 {
            sim.send(a, b, Bytes::from_static(b"x"));
        }
        sim.run_to_completion();
        assert!(!sim.storm_detected());
    }

    #[test]
    fn far_future_timers_survive_the_wheel_overflow() {
        // Hours-away timers land in the scheduler's overflow heap; they
        // must still fire, in order, after the near-term work drains.
        let (mut sim, _a, b) = two_node_sim();
        let svc = Echo::new(b);
        sim.bind(b, svc.clone());
        sim.set_timer(b, SimDuration::from_secs(7200), 3);
        sim.set_timer(b, SimDuration::from_millis(1), 1);
        sim.set_timer(b, SimDuration::from_secs(3600), 2);
        sim.run_to_completion();
        assert_eq!(svc.borrow().timers, vec![1, 2, 3]);
        assert_eq!(sim.now().as_millis(), 7_200_000);
    }

    #[test]
    fn periodic_rearming_timers_interleave_deterministically() {
        // The dominant digi workload: many services re-arming fixed-interval
        // timers. Same-instant firings must follow insertion order exactly.
        struct Periodic {
            addr: Addr,
            fired: Rc<RefCell<Vec<(u64, TimerToken)>>>,
            remaining: u32,
        }
        impl Service for Periodic {
            fn on_datagram(&mut self, _sim: &mut Sim, _dg: Datagram) {}
            fn on_timer(&mut self, sim: &mut Sim, token: TimerToken) {
                self.fired.borrow_mut().push((sim.now().as_millis(), token));
                if self.remaining > 0 {
                    self.remaining -= 1;
                    sim.set_timer(self.addr, SimDuration::from_millis(10), token);
                }
            }
        }
        let mut topo = Topology::new();
        let n = topo.add_node(NodeSpec::laptop());
        let mut sim = Sim::new(topo, SimConfig::default());
        let fired = Rc::new(RefCell::new(Vec::new()));
        for i in 0..16u64 {
            let addr = Addr::new(n, 1 + i as u16);
            let svc = Rc::new(RefCell::new(Periodic {
                addr,
                fired: fired.clone(),
                remaining: 20,
            }));
            sim.bind(addr, svc);
            sim.set_timer(addr, SimDuration::from_millis(10), i);
        }
        sim.run_to_completion();
        let fired = fired.borrow();
        assert_eq!(fired.len(), 16 * 21);
        for (round, chunk) in fired.chunks(16).enumerate() {
            for (i, &(ms, token)) in chunk.iter().enumerate() {
                assert_eq!(ms, 10 * (round as u64 + 1));
                assert_eq!(token, i as u64, "FIFO order broken in round {round}");
            }
        }
    }

    #[test]
    fn same_instant_deliveries_coalesce_in_order() {
        struct Collect {
            singles: u32,
            batches: Vec<usize>,
            order: Vec<u8>,
        }
        impl Service for Collect {
            fn on_datagram(&mut self, _sim: &mut Sim, dg: Datagram) {
                self.singles += 1;
                self.order.push(dg.payload[0]);
            }
            fn on_datagram_batch(&mut self, _sim: &mut Sim, batch: &[Datagram]) {
                self.batches.push(batch.len());
                for dg in batch {
                    self.order.push(dg.payload[0]);
                }
            }
        }
        let mut topo = Topology::new();
        let n = topo.add_node(NodeSpec::laptop());
        topo.set_loopback(LinkSpec {
            base_delay: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            loss: 0.0,
            bandwidth_bps: 0,
        });
        let mut sim = Sim::new(topo, SimConfig::default());
        let addr = Addr::new(n, 1);
        let svc = Rc::new(RefCell::new(Collect {
            singles: 0,
            batches: Vec::new(),
            order: Vec::new(),
        }));
        sim.bind(addr, svc.clone());
        for i in 0..8u8 {
            sim.send(addr, addr, Bytes::copy_from_slice(&[i]));
        }
        sim.run_to_completion();
        let svc = svc.borrow();
        // All eight arrive at the same instant for one destination: one
        // batch, send order preserved, each event still accounted.
        assert_eq!(svc.order, (0..8).collect::<Vec<_>>());
        assert_eq!(svc.batches, vec![8]);
        assert_eq!(svc.singles, 0);
        assert_eq!(sim.events_processed(), 8);
        assert_eq!(sim.stats().datagrams_delivered, 8);
    }

    #[test]
    fn coalescing_stops_at_destination_change() {
        struct Log {
            tag: u8,
            events: Rc<RefCell<Vec<(u8, usize)>>>, // (service tag, run length)
        }
        impl Service for Log {
            fn on_datagram(&mut self, _sim: &mut Sim, _dg: Datagram) {
                self.events.borrow_mut().push((self.tag, 1));
            }
            fn on_datagram_batch(&mut self, _sim: &mut Sim, batch: &[Datagram]) {
                self.events.borrow_mut().push((self.tag, batch.len()));
            }
        }
        let mut topo = Topology::new();
        let n = topo.add_node(NodeSpec::laptop());
        topo.set_loopback(LinkSpec {
            base_delay: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            loss: 0.0,
            bandwidth_bps: 0,
        });
        let mut sim = Sim::new(topo, SimConfig::default());
        let (a, b) = (Addr::new(n, 1), Addr::new(n, 2));
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.bind(a, Rc::new(RefCell::new(Log { tag: 1, events: log.clone() })));
        sim.bind(b, Rc::new(RefCell::new(Log { tag: 2, events: log.clone() })));
        // a, a, b, a at one instant: the run to `a` ends at the first `b`.
        for dst in [a, a, b, a] {
            sim.send(a, dst, Bytes::from_static(b"x"));
        }
        sim.run_to_completion();
        assert_eq!(*log.borrow(), vec![(1, 2), (2, 1), (1, 1)]);
    }

    #[test]
    fn unbind_recycles_slots_and_tracks_load() {
        let (mut sim, _a, b) = two_node_sim();
        let p1 = Addr::new(b.node, 10);
        let p2 = Addr::new(b.node, 11);
        sim.bind(p1, Echo::new(p1));
        sim.bind(p2, Echo::new(p2));
        assert_eq!(sim.node_load(b.node), 2);
        assert!(sim.is_bound(p1));
        sim.unbind(p1);
        assert!(!sim.is_bound(p1));
        assert_eq!(sim.node_load(b.node), 1);
        // A fresh bind on a new port reuses the freed arena slot; the old
        // address stays unreachable.
        let p3 = Addr::new(b.node, 12);
        sim.bind(p3, Echo::new(p3));
        assert_eq!(sim.node_load(b.node), 2);
        assert!(sim.is_bound(p3));
        assert!(!sim.is_bound(p1));
        // Rebinding an occupied port replaces in place, not a second slot.
        sim.bind(p2, Echo::new(p2));
        assert_eq!(sim.node_load(b.node), 2);
    }

    #[test]
    fn island_scope_captures_cross_island_sends() {
        let (mut sim, a, b) = two_node_sim();
        sim.set_island_scope(&[a.node]);
        let local = Echo::new(a);
        sim.bind(a, local.clone());
        sim.send(a, b, Bytes::from_static(b"cross"));
        sim.send(a, a, Bytes::from_static(b"local"));
        sim.run_to_completion();
        // the local loopback send delivered; the cross send was captured
        assert_eq!(local.borrow().received.len(), 1);
        let outbox = sim.take_remote_outbox();
        assert_eq!(outbox.len(), 1);
        assert_eq!(outbox[0].datagram.dst, b);
        assert_eq!(&outbox[0].datagram.payload[..], b"cross");
        // ec2 cross link: arrival carries the sampled >= base delay
        assert!(outbox[0].at.as_micros() >= 250);
        // draining empties the outbox
        assert!(sim.take_remote_outbox().is_empty());
    }

    #[test]
    fn inject_remote_delivers_in_at_seq_order() {
        let (mut sim, a, b) = two_node_sim();
        sim.set_island_scope(&[b.node]);
        let svc = Echo::new(b);
        sim.bind(b, svc.clone());
        let at = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
        let dg = |p: &'static [u8]| Datagram { src: a, dst: b, payload: Bytes::from_static(p) };
        // injected out of time order: the wheel re-establishes (at, seq)
        sim.inject_remote(RemoteDatagram { at: at(20), datagram: dg(b"second") });
        sim.inject_remote(RemoteDatagram { at: at(10), datagram: dg(b"first") });
        sim.inject_remote(RemoteDatagram { at: at(20), datagram: dg(b"third") });
        sim.run_to_completion();
        let got: Vec<Vec<u8>> = svc.borrow().received.iter().map(|(_, p)| p.clone()).collect();
        assert_eq!(got, vec![b"first".to_vec(), b"second".to_vec(), b"third".to_vec()]);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn inject_remote_before_committed_horizon_panics() {
        let (mut sim, a, b) = two_node_sim();
        sim.set_island_scope(&[b.node]);
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(50));
        sim.inject_remote(RemoteDatagram {
            at: SimTime::ZERO + SimDuration::from_millis(10),
            datagram: Datagram { src: a, dst: b, payload: Bytes::from_static(b"late") },
        });
    }

    #[test]
    fn call_at_in_past_is_clamped_to_now() {
        let (mut sim, _a, b) = two_node_sim();
        sim.set_timer(b, SimDuration::from_millis(10), 1);
        sim.run_to_completion();
        let fired = Rc::new(RefCell::new(None));
        let fired2 = fired.clone();
        sim.call_at(SimTime::ZERO, move |s| {
            *fired2.borrow_mut() = Some(s.now());
        });
        sim.run_to_completion();
        assert_eq!(*fired.borrow(), Some(SimTime::ZERO + SimDuration::from_millis(10)));
    }
}
