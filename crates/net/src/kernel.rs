//! The discrete-event simulation kernel: [`Sim`] owns the virtual clock,
//! the event queue, the topology, and every bound [`Service`]. Services
//! interact only through datagrams and timers, so one seed fixes the whole
//! execution — the property everything else (traces, sweeps, chaos
//! scorecards, the observability layer) is built on.

use std::cell::RefCell;
use std::collections::HashMap; // det-ok: keyed lookup only, never iterated
use std::rc::Rc;

use bytes::Bytes;
use digibox_obs as obs;

use crate::stats::NetStats;
use crate::wheel::EventWheel;
use crate::{Addr, Prng, SimDuration, SimTime, Topology};

/// A message in flight between two service endpoints.
#[derive(Debug, Clone)]
pub struct Datagram {
    /// Sender endpoint.
    pub src: Addr,
    /// Destination endpoint.
    pub dst: Addr,
    /// Opaque message bytes.
    pub payload: Bytes,
}

/// Opaque timer identity, chosen by the service that sets the timer.
pub type TimerToken = u64;

/// A simulated process bound to an [`Addr`]: mocks, scenes, brokers, REST
/// servers and applications all implement `Service`.
///
/// Handlers receive `&mut Sim` and may send datagrams or set timers, but
/// never call other services directly — all interaction is via messages,
/// which is what keeps the simulation deterministic and lets the same code
/// run at laptop scale or cluster scale (paper §4).
pub trait Service {
    /// Called once when the service is bound.
    fn on_start(&mut self, _sim: &mut Sim) {}
    /// A datagram addressed to this service arrived.
    fn on_datagram(&mut self, sim: &mut Sim, dg: Datagram);
    /// A timer set via [`Sim::set_timer`] fired.
    fn on_timer(&mut self, _sim: &mut Sim, _token: TimerToken) {}
}

/// Shared, inspectable handle to a concrete service (tests and the testbed
/// keep the typed `Rc` while the kernel holds it as `dyn Service`).
pub type ServiceHandle<T> = Rc<RefCell<T>>;

/// Kernel construction parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; every per-link/per-service stream splits from it.
    pub seed: u64,
    /// Safety valve: `run_*` stops after this many events (0 = unlimited).
    pub max_events: u64,
    /// Storm watchdog: flag [`Sim::storm_detected`] when more than this
    /// many events execute within one virtual millisecond (0 = disabled).
    /// A storm almost always means a coordination loop that never
    /// converges (e.g. a scene handler that re-randomizes its writes on
    /// every run) — the failure mode is "simulation runs forever", and the
    /// flag turns it into a checkable condition.
    pub storm_threshold: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { seed: 0xD161_B0B0, max_events: 0, storm_threshold: 250_000 }
    }
}

enum EventKind {
    Deliver(Datagram),
    Timer { addr: Addr, token: TimerToken },
    Call(Box<dyn FnOnce(&mut Sim)>),
}

/// Pre-interned observability handles for the dispatch hot path — interned
/// once at kernel construction so the per-event cost when metrics are on
/// is an index bump, and a single thread-local flag check when they are
/// off.
struct ObsKeys {
    events: obs::CounterId,
    deliver: obs::CounterId,
    timer: obs::CounterId,
    call: obs::CounterId,
    unreachable: obs::CounterId,
    queue_depth: obs::HistogramId,
    f_deliver: obs::FrameId,
    f_timer: obs::FrameId,
    f_call: obs::FrameId,
}

impl ObsKeys {
    fn new() -> ObsKeys {
        ObsKeys {
            events: obs::counter("kernel.events"),
            deliver: obs::counter("kernel.deliver"),
            timer: obs::counter("kernel.timer"),
            call: obs::counter("kernel.call"),
            unreachable: obs::counter("kernel.unreachable"),
            queue_depth: obs::histogram("kernel.queue_depth"),
            f_deliver: obs::frame("kernel.deliver"),
            f_timer: obs::frame("kernel.timer"),
            f_call: obs::frame("kernel.call"),
        }
    }
}

/// The discrete-event kernel: virtual clock, event queue, topology, bound
/// services, and network statistics.
///
/// Events are ordered by `(time, insertion sequence)` — FIFO among
/// simultaneous events, which pins down execution order completely. The
/// queue is a hierarchical timer wheel with a heap overflow
/// ([`EventWheel`]): the dominant periodic-timer workload schedules and
/// fires in O(1) instead of the O(log n) a single binary heap costs, while
/// producing the exact same total order.
pub struct Sim {
    now: SimTime,
    seq: u64,
    events_processed: u64,
    queue: EventWheel<EventKind>,
    topology: Topology,
    services: HashMap<Addr, Rc<RefCell<dyn Service>>>,
    services_per_node: HashMap<crate::NodeId, usize>,
    link_rng: Prng,
    root_rng: Prng,
    stats: NetStats,
    storm_bucket_ms: u64,
    storm_count: u64,
    storm_detected: bool,
    obs: ObsKeys,
    config: SimConfig,
}

impl Sim {
    /// A kernel over the given topology, clock at zero, nothing bound.
    pub fn new(topology: Topology, config: SimConfig) -> Sim {
        let root = Prng::new(config.seed);
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            events_processed: 0,
            queue: EventWheel::new(),
            topology,
            services: HashMap::new(),
            services_per_node: HashMap::new(),
            link_rng: root.split_str("links"),
            root_rng: root,
            stats: NetStats::default(),
            storm_bucket_ms: 0,
            storm_count: 0,
            storm_detected: false,
            obs: ObsKeys::new(),
            config,
        }
    }

    /// True once an event storm was observed (see
    /// [`SimConfig::storm_threshold`]).
    pub fn storm_detected(&self) -> bool {
        self.storm_detected
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable topology access (chaos campaigns edit links/nodes live).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Datagram counters accumulated so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Events dispatched since construction.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Derive a reproducible RNG stream for a named component.
    pub fn rng_for(&self, label: &str) -> Prng {
        self.root_rng.split_str(label)
    }

    /// Bind a service at `addr`. Replaces any previous binding (the old
    /// service stops receiving). Runs the service's `on_start` hook.
    pub fn bind<T: Service + 'static>(&mut self, addr: Addr, service: ServiceHandle<T>) {
        if self.services.insert(addr, service.clone()).is_none() {
            *self.services_per_node.entry(addr.node).or_insert(0) += 1;
        }
        service.borrow_mut().on_start(self);
    }

    /// Remove the binding at `addr`; in-flight datagrams to it are dropped
    /// on delivery (counted as unreachable).
    pub fn unbind(&mut self, addr: Addr) {
        if self.services.remove(&addr).is_some() {
            if let Some(n) = self.services_per_node.get_mut(&addr.node) {
                *n = n.saturating_sub(1);
            }
        }
    }

    /// Number of services currently bound on `node` — the load proxy used
    /// by load-proportional service-time models (a node crowded with mock
    /// containers serves each request more slowly, which is what makes the
    /// paper's 1000-mock deployment slower than the 50-mock one).
    pub fn node_load(&self, node: crate::NodeId) -> usize {
        self.services_per_node.get(&node).copied().unwrap_or(0)
    }

    /// Whether any service is bound at `addr`.
    pub fn is_bound(&self, addr: Addr) -> bool {
        self.services.contains_key(&addr)
    }

    /// Send a datagram. Delay and loss come from the topology's link model;
    /// the datagram is delivered (or dropped) asynchronously.
    pub fn send(&mut self, src: Addr, dst: Addr, payload: Bytes) {
        let size = payload.len();
        let link = self.topology.link(src.node, dst.node).clone();
        self.stats.sent(size);
        if link.loss > 0.0 && self.link_rng.chance(link.loss) {
            self.stats.lost(size);
            return;
        }
        let delay = link.sample_delay(size, &mut self.link_rng);
        let at = self.now + delay;
        self.push(at, EventKind::Deliver(Datagram { src, dst, payload }));
    }

    /// Set a timer for the service at `addr`, firing after `delay` with the
    /// given token.
    pub fn set_timer(&mut self, addr: Addr, delay: SimDuration, token: TimerToken) {
        let at = self.now + delay;
        self.push(at, EventKind::Timer { addr, token });
    }

    /// Schedule an arbitrary closure at an absolute virtual time (test
    /// drivers, workload generators).
    pub fn call_at(&mut self, at: SimTime, f: impl FnOnce(&mut Sim) + 'static) {
        let at = at.max(self.now);
        self.push(at, EventKind::Call(Box::new(f)));
    }

    /// Schedule a closure after a relative delay.
    pub fn call_after(&mut self, delay: SimDuration, f: impl FnOnce(&mut Sim) + 'static) {
        self.push(self.now + delay, EventKind::Call(Box::new(f)));
    }

    fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at.as_nanos(), seq, kind);
    }

    /// Process one event. Returns `false` when the queue is empty or the
    /// event budget is exhausted.
    pub fn step(&mut self) -> bool {
        if self.config.max_events > 0 && self.events_processed >= self.config.max_events {
            return false;
        }
        let Some((at, _seq, kind)) = self.queue.pop() else {
            return false;
        };
        let at = SimTime::from_nanos(at);
        debug_assert!(at >= self.now, "time must be monotonic");
        self.now = at;
        self.events_processed += 1;
        if obs::enabled() {
            obs::clock(at.as_nanos());
            obs::inc(self.obs.events);
            obs::observe(self.obs.queue_depth, self.queue.len() as u64);
        }
        if self.config.storm_threshold > 0 {
            let bucket = self.now.as_millis();
            if bucket == self.storm_bucket_ms {
                self.storm_count += 1;
                if self.storm_count > self.config.storm_threshold {
                    self.storm_detected = true;
                }
            } else {
                self.storm_bucket_ms = bucket;
                self.storm_count = 1;
            }
        }
        match kind {
            EventKind::Deliver(dg) => {
                obs::inc(self.obs.deliver);
                let _span = obs::enter(self.obs.f_deliver);
                let service = self.services.get(&dg.dst).cloned();
                match service {
                    Some(s) => {
                        self.stats.delivered(dg.payload.len());
                        s.borrow_mut().on_datagram(self, dg);
                    }
                    None => {
                        self.stats.unreachable(dg.payload.len());
                        obs::inc(self.obs.unreachable);
                    }
                }
            }
            EventKind::Timer { addr, token } => {
                obs::inc(self.obs.timer);
                let _span = obs::enter(self.obs.f_timer);
                if let Some(s) = self.services.get(&addr).cloned() {
                    s.borrow_mut().on_timer(self, token);
                }
            }
            EventKind::Call(f) => {
                obs::inc(self.obs.call);
                let _span = obs::enter(self.obs.f_call);
                f(self);
            }
        }
        true
    }

    /// Run until the virtual clock reaches `deadline` (events at exactly
    /// `deadline` are processed) or the queue drains.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            match self.queue.peek() {
                Some((at, _seq)) if at <= deadline.as_nanos() => {
                    if !self.step() {
                        break;
                    }
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Run for a span of virtual time from now.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }

    /// Drain the queue completely (or until the event budget runs out).
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkSpec, NodeSpec, SimDuration};

    struct Echo {
        addr: Addr,
        received: Vec<(SimTime, Vec<u8>)>,
        echo_to: Option<Addr>,
        timers: Vec<TimerToken>,
    }

    impl Echo {
        fn new(addr: Addr) -> ServiceHandle<Echo> {
            Rc::new(RefCell::new(Echo { addr, received: Vec::new(), echo_to: None, timers: Vec::new() }))
        }
    }

    impl Service for Echo {
        fn on_datagram(&mut self, sim: &mut Sim, dg: Datagram) {
            self.received.push((sim.now(), dg.payload.to_vec()));
            if let Some(to) = self.echo_to {
                sim.send(self.addr, to, dg.payload);
            }
        }
        fn on_timer(&mut self, _sim: &mut Sim, token: TimerToken) {
            self.timers.push(token);
        }
    }

    fn two_node_sim() -> (Sim, Addr, Addr) {
        let mut topo = Topology::new();
        let n0 = topo.add_node(NodeSpec::laptop());
        let n1 = topo.add_node(NodeSpec::m5_xlarge(0));
        let sim = Sim::new(topo, SimConfig::default());
        (sim, Addr::new(n0, 1), Addr::new(n1, 1))
    }

    #[test]
    fn delivery_advances_clock_by_link_delay() {
        let (mut sim, a, b) = two_node_sim();
        let svc = Echo::new(b);
        sim.bind(b, svc.clone());
        sim.send(a, b, Bytes::from_static(b"hi"));
        sim.run_to_completion();
        let svc = svc.borrow();
        assert_eq!(svc.received.len(), 1);
        let (t, payload) = &svc.received[0];
        assert_eq!(payload, b"hi");
        // ec2 link: >= 250us base delay
        assert!(t.as_micros() >= 250, "delivered at {t}");
    }

    #[test]
    fn unbound_destination_counts_unreachable() {
        let (mut sim, a, b) = two_node_sim();
        sim.send(a, b, Bytes::from_static(b"x"));
        sim.run_to_completion();
        assert_eq!(sim.stats().datagrams_unreachable, 1);
        assert_eq!(sim.stats().datagrams_delivered, 0);
    }

    #[test]
    fn lossy_link_drops_roughly_at_rate() {
        let (mut sim, a, b) = two_node_sim();
        sim.topology_mut().set_link(a.node, b.node, LinkSpec::lossy_wireless(0.5));
        let svc = Echo::new(b);
        sim.bind(b, svc.clone());
        for _ in 0..1000 {
            sim.send(a, b, Bytes::from_static(b"p"));
        }
        sim.run_to_completion();
        let got = svc.borrow().received.len();
        assert!((350..650).contains(&got), "delivered {got}/1000 at loss 0.5");
        assert_eq!(sim.stats().datagrams_lost as usize, 1000 - got);
    }

    #[test]
    fn timers_fire_in_order() {
        let (mut sim, _a, b) = two_node_sim();
        let svc = Echo::new(b);
        sim.bind(b, svc.clone());
        sim.set_timer(b, SimDuration::from_millis(20), 2);
        sim.set_timer(b, SimDuration::from_millis(10), 1);
        sim.set_timer(b, SimDuration::from_millis(30), 3);
        sim.run_to_completion();
        assert_eq!(svc.borrow().timers, vec![1, 2, 3]);
        assert_eq!(sim.now().as_millis(), 30);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut sim, _a, b) = two_node_sim();
        let svc = Echo::new(b);
        sim.bind(b, svc.clone());
        sim.set_timer(b, SimDuration::from_millis(5), 1);
        sim.set_timer(b, SimDuration::from_millis(50), 2);
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(10));
        assert_eq!(svc.borrow().timers, vec![1]);
        assert_eq!(sim.now().as_millis(), 10);
        sim.run_to_completion();
        assert_eq!(svc.borrow().timers, vec![1, 2]);
    }

    #[test]
    fn ping_pong_via_echo() {
        let (mut sim, a, b) = two_node_sim();
        let sa = Echo::new(a);
        let sb = Echo::new(b);
        sb.borrow_mut().echo_to = Some(a);
        sim.bind(a, sa.clone());
        sim.bind(b, sb.clone());
        sim.send(a, b, Bytes::from_static(b"ping"));
        sim.run_to_completion();
        assert_eq!(sa.borrow().received.len(), 1);
        assert_eq!(sa.borrow().received[0].1, b"ping");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let (mut sim, a, b) = two_node_sim();
            let svc = Echo::new(b);
            sim.bind(b, svc.clone());
            for _ in 0..100 {
                sim.send(a, b, Bytes::from_static(b"x"));
            }
            sim.run_to_completion();
            let times: Vec<u64> =
                svc.borrow().received.iter().map(|(t, _)| t.as_nanos()).collect();
            times
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn max_events_budget_respected() {
        let mut topo = Topology::new();
        let n = topo.add_node(NodeSpec::laptop());
        let mut sim = Sim::new(topo, SimConfig { max_events: 5, ..Default::default() });
        let addr = Addr::new(n, 1);
        let svc = Echo::new(addr);
        svc.borrow_mut().echo_to = Some(addr); // infinite self-echo loop
        sim.bind(addr, svc);
        sim.send(addr, addr, Bytes::from_static(b"loop"));
        sim.run_to_completion();
        assert_eq!(sim.events_processed(), 5);
    }

    #[test]
    fn storm_watchdog_flags_hot_loops() {
        let mut topo = Topology::new();
        let n = topo.add_node(NodeSpec::laptop());
        // zero-latency loopback so the self-echo stays in one millisecond
        topo.set_loopback(LinkSpec {
            base_delay: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            loss: 0.0,
            bandwidth_bps: 0,
        });
        let mut sim = Sim::new(
            topo,
            SimConfig { storm_threshold: 10, max_events: 1000, ..Default::default() },
        );
        let addr = Addr::new(n, 1);
        let svc = Echo::new(addr);
        svc.borrow_mut().echo_to = Some(addr);
        sim.bind(addr, svc);
        sim.send(addr, addr, Bytes::from_static(b"hot"));
        sim.run_to_completion();
        assert!(sim.storm_detected(), "self-echo loop must trip the watchdog");
    }

    #[test]
    fn storm_watchdog_quiet_on_normal_traffic() {
        let (mut sim, a, b) = two_node_sim();
        let svc = Echo::new(b);
        sim.bind(b, svc);
        for _ in 0..100 {
            sim.send(a, b, Bytes::from_static(b"x"));
        }
        sim.run_to_completion();
        assert!(!sim.storm_detected());
    }

    #[test]
    fn far_future_timers_survive_the_wheel_overflow() {
        // Hours-away timers land in the scheduler's overflow heap; they
        // must still fire, in order, after the near-term work drains.
        let (mut sim, _a, b) = two_node_sim();
        let svc = Echo::new(b);
        sim.bind(b, svc.clone());
        sim.set_timer(b, SimDuration::from_secs(7200), 3);
        sim.set_timer(b, SimDuration::from_millis(1), 1);
        sim.set_timer(b, SimDuration::from_secs(3600), 2);
        sim.run_to_completion();
        assert_eq!(svc.borrow().timers, vec![1, 2, 3]);
        assert_eq!(sim.now().as_millis(), 7_200_000);
    }

    #[test]
    fn periodic_rearming_timers_interleave_deterministically() {
        // The dominant digi workload: many services re-arming fixed-interval
        // timers. Same-instant firings must follow insertion order exactly.
        struct Periodic {
            addr: Addr,
            fired: Rc<RefCell<Vec<(u64, TimerToken)>>>,
            remaining: u32,
        }
        impl Service for Periodic {
            fn on_datagram(&mut self, _sim: &mut Sim, _dg: Datagram) {}
            fn on_timer(&mut self, sim: &mut Sim, token: TimerToken) {
                self.fired.borrow_mut().push((sim.now().as_millis(), token));
                if self.remaining > 0 {
                    self.remaining -= 1;
                    sim.set_timer(self.addr, SimDuration::from_millis(10), token);
                }
            }
        }
        let mut topo = Topology::new();
        let n = topo.add_node(NodeSpec::laptop());
        let mut sim = Sim::new(topo, SimConfig::default());
        let fired = Rc::new(RefCell::new(Vec::new()));
        for i in 0..16u64 {
            let addr = Addr::new(n, 1 + i as u16);
            let svc = Rc::new(RefCell::new(Periodic {
                addr,
                fired: fired.clone(),
                remaining: 20,
            }));
            sim.bind(addr, svc);
            sim.set_timer(addr, SimDuration::from_millis(10), i);
        }
        sim.run_to_completion();
        let fired = fired.borrow();
        assert_eq!(fired.len(), 16 * 21);
        for (round, chunk) in fired.chunks(16).enumerate() {
            for (i, &(ms, token)) in chunk.iter().enumerate() {
                assert_eq!(ms, 10 * (round as u64 + 1));
                assert_eq!(token, i as u64, "FIFO order broken in round {round}");
            }
        }
    }

    #[test]
    fn call_at_in_past_is_clamped_to_now() {
        let (mut sim, _a, b) = two_node_sim();
        sim.set_timer(b, SimDuration::from_millis(10), 1);
        sim.run_to_completion();
        let fired = Rc::new(RefCell::new(None));
        let fired2 = fired.clone();
        sim.call_at(SimTime::ZERO, move |s| {
            *fired2.borrow_mut() = Some(s.now());
        });
        sim.run_to_completion();
        assert_eq!(*fired.borrow(), Some(SimTime::ZERO + SimDuration::from_millis(10)));
    }
}
