//! Virtual time: [`SimTime`] instants and [`SimDuration`] spans, both
//! nanosecond-precision `u64` newtypes. There is no wall clock anywhere in
//! the simulation — time advances only when the kernel dequeues events.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point on the simulation's virtual clock, in nanoseconds since testbed
/// start. The virtual clock only advances when the kernel dequeues events,
/// which makes every run bit-identical for a given seed and workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// Testbed start (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The instant `n` nanoseconds after testbed start.
    pub const fn from_nanos(n: u64) -> SimTime {
        SimTime(n)
    }

    /// Nanoseconds since testbed start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since testbed start (truncating).
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since testbed start (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since testbed start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant (saturating).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A span of `n` nanoseconds.
    pub const fn from_nanos(n: u64) -> SimDuration {
        SimDuration(n)
    }

    /// A span of `us` microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// A span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// A span of `s` seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// A span of `s` seconds, truncated to nanoseconds (negative → zero).
    pub fn from_secs_f64(s: f64) -> SimDuration {
        SimDuration((s.max(0.0) * 1e9) as u64)
    }

    /// The span in nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in microseconds (truncating).
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in milliseconds (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span in milliseconds, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `self × k`, saturating at the u64 horizon instead of overflowing.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.as_millis();
        write!(f, "{:02}:{:02}.{:03}", ms / 60_000, (ms / 1000) % 60, ms % 1000)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 5);
        assert_eq!((t + SimDuration::from_micros(500)).as_micros(), 5500);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(5));
        // saturating: no panic when subtracting a later time
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2000);
        assert_eq!(SimDuration::from_secs_f64(0.0015).as_micros(), 1500);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display() {
        let t = SimTime::ZERO + SimDuration::from_millis(61_005);
        assert_eq!(t.to_string(), "01:01.005");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_nanos(500).to_string(), "500ns");
    }
}
