//! Reliable, ordered message delivery over the (possibly lossy) datagram
//! layer.
//!
//! The simulated links can drop and reorder (jitter) datagrams, so services
//! that need in-order, exactly-once message streams — the MQTT broker
//! connections and the REST API — embed a [`ReliableEndpoint`]: per-peer
//! sequence numbers, cumulative acks, retransmission with exponential
//! backoff, and bounded retries. This is a deliberately small ARQ, not TCP:
//! no windows or congestion control, because simulated IoT messages are
//! small and sparse.
//!
//! Frame wire format (big-endian):
//!
//! ```text
//! DATA: 0x01 | inc: u64 | seq: u64 | payload...
//! ACK:  0x02 | inc: u64 | cumulative_ack: u64   (highest in-order seq received)
//! ```
//!
//! `inc` is the sender's connection *incarnation* — assigned when the
//! connection record is created (from the deterministic sim clock, so
//! replays stay identical). It is what makes restarts safe: a receiver
//! seeing a higher incarnation from a peer discards its stale receive
//! state for that peer (the peer reset and restarted its sequence space),
//! a lower one is a ghost from a dead connection and is dropped, and an
//! ACK is honored only if it echoes the current incarnation — so a
//! restarted service can never have its fresh frames silently "acked" by
//! a peer that was actually talking to the previous incarnation.

use std::collections::{BTreeMap, HashMap, VecDeque}; // keyed lookup only; `dbox audit` (DH0002) checks every iteration site

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{Addr, Datagram, Sim, SimDuration, TimerToken};

const FRAME_DATA: u8 = 0x01;
const FRAME_ACK: u8 = 0x02;

/// Timer tokens used by reliable endpoints have this bit set, so the owning
/// service can route `on_timer` callbacks without ambiguity.
pub const RELIABLE_TIMER_BIT: u64 = 1 << 63;

/// Bits 48..63 of a reliable-endpoint timer token carry the endpoint's
/// *token space*, so one service can host several endpoints (e.g. an MQTT
/// connection and an HTTP server) without timer collisions.
pub const TOKEN_SPACE_SHIFT: u32 = 48;

/// Default initial retransmission timeout.
pub const DEFAULT_RTO: SimDuration = SimDuration::from_millis(50);

/// Default retry budget before a peer is declared failed.
pub const DEFAULT_MAX_RETRIES: u32 = 8;

/// An event surfaced to the owning service.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportEvent {
    /// An in-order application payload from `peer`.
    Delivered {
        /// Remote endpoint the payload came from.
        peer: Addr,
        /// The application bytes, in send order.
        payload: Bytes,
    },
    /// Retries exhausted on a message to `peer`; the connection state has
    /// been reset.
    PeerFailed {
        /// Remote endpoint the connection was reset for.
        peer: Addr,
    },
}

#[derive(Debug, Default)]
struct ConnState {
    /// This side's connection incarnation, stamped on every outgoing DATA
    /// frame. Assigned (non-zero) on the first send; a connection reset
    /// re-assigns it from the then-current sim clock, so the peer can tell
    /// a fresh sequence space from a replay of the old one.
    send_inc: u64,
    /// Next sequence number to assign on send.
    next_send_seq: u64,
    /// Sent but not yet cumulatively acked: seq → (payload, retries).
    unacked: BTreeMap<u64, (Bytes, u32)>,
    /// The peer's incarnation the receive state belongs to (0 = none seen
    /// yet). Frames from an older incarnation are ghosts and dropped; a
    /// newer one resets `recv_cursor`/`reorder`.
    peer_inc: u64,
    /// Highest in-order seq delivered from the peer.
    recv_cursor: u64,
    /// Out-of-order arrivals waiting for the gap to fill.
    reorder: BTreeMap<u64, Bytes>,
}

/// Reliable-messaging state machine for one local address.
pub struct ReliableEndpoint {
    local: Addr,
    space: u16,
    rto: SimDuration,
    max_retries: u32,
    conns: HashMap<Addr, ConnState>,
    /// Live retransmit timers: token → (peer, seq).
    timers: HashMap<TimerToken, (Addr, u64)>,
    next_token: u64,
    events: VecDeque<TransportEvent>,
    /// DATA frames retransmitted after an RTO firing.
    retransmits: u64,
    /// Duplicate DATA frames received (already delivered or already
    /// buffered) — each one is a message the network made us see twice.
    duplicates: u64,
}

impl ReliableEndpoint {
    /// An endpoint at `local` with default retransmit settings.
    pub fn new(local: Addr) -> ReliableEndpoint {
        ReliableEndpoint::with_config(local, DEFAULT_RTO, DEFAULT_MAX_RETRIES)
    }

    /// An endpoint with explicit retransmit timeout and retry budget.
    pub fn with_config(local: Addr, rto: SimDuration, max_retries: u32) -> ReliableEndpoint {
        ReliableEndpoint {
            local,
            space: 0,
            rto,
            max_retries,
            conns: HashMap::new(),
            timers: HashMap::new(),
            next_token: 0,
            events: VecDeque::new(),
            retransmits: 0,
            duplicates: 0,
        }
    }

    /// Assign a token space (see [`TOKEN_SPACE_SHIFT`]); endpoints sharing
    /// one service address must use distinct spaces.
    pub fn with_space(mut self, space: u16) -> ReliableEndpoint {
        assert!(space < 0x8000, "token space is 15 bits");
        self.space = space;
        self
    }

    /// The endpoint's own address.
    pub fn local(&self) -> Addr {
        self.local
    }

    /// Number of messages sent to `peer` that are not yet acknowledged.
    pub fn in_flight(&self, peer: Addr) -> usize {
        self.conns.get(&peer).map_or(0, |c| c.unacked.len())
    }

    /// Total DATA frames retransmitted after an RTO expiry.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Total duplicate DATA frames received (redelivered by retransmission
    /// or link races and suppressed before the application saw them).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Live retransmit timers (testing/diagnostics: must drop to zero for a
    /// peer once that peer is declared failed).
    pub fn pending_timers(&self) -> usize {
        self.timers.len()
    }

    /// Send `payload` reliably to `peer`.
    pub fn send(&mut self, sim: &mut Sim, peer: Addr, payload: Bytes) {
        let conn = self.conns.entry(peer).or_default();
        if conn.send_inc == 0 {
            // First send on this connection record: stamp its incarnation
            // from the sim clock (+1 keeps it non-zero at t=0). A record
            // created after a reset necessarily gets a later, larger stamp.
            conn.send_inc = sim.now().as_nanos() + 1;
        }
        let inc = conn.send_inc;
        let seq = conn.next_send_seq;
        conn.next_send_seq += 1;
        conn.unacked.insert(seq, (payload.clone(), 0));
        let frame = encode_data(inc, seq, &payload);
        sim.send(self.local, peer, frame);
        self.arm_timer(sim, peer, seq, 0);
    }

    fn arm_timer(&mut self, sim: &mut Sim, peer: Addr, seq: u64, retries: u32) {
        let token =
            RELIABLE_TIMER_BIT | ((self.space as u64) << TOKEN_SPACE_SHIFT) | self.next_token;
        self.next_token += 1;
        self.timers.insert(token, (peer, seq));
        // Exponential backoff, capped at 8× the base RTO.
        let mult = 1u64 << retries.min(3);
        sim.set_timer(self.local, self.rto.saturating_mul(mult), token);
    }

    /// Feed a datagram received by the owning service. Returns `true` when
    /// the datagram was a transport frame (always, unless malformed).
    pub fn on_datagram(&mut self, sim: &mut Sim, dg: Datagram) -> bool {
        let peer = dg.src;
        let mut buf = dg.payload.clone();
        if buf.remaining() < 1 {
            return false;
        }
        match buf.get_u8() {
            FRAME_DATA => {
                if buf.remaining() < 16 {
                    return false;
                }
                let inc = buf.get_u64();
                let seq = buf.get_u64();
                let payload = buf.copy_to_bytes(buf.remaining());
                self.handle_data(sim, peer, inc, seq, payload);
                true
            }
            FRAME_ACK => {
                if buf.remaining() < 16 {
                    return false;
                }
                let inc = buf.get_u64();
                let ack = buf.get_u64();
                self.handle_ack(peer, inc, ack);
                true
            }
            _ => false,
        }
    }

    fn handle_data(&mut self, sim: &mut Sim, peer: Addr, inc: u64, seq: u64, payload: Bytes) {
        let conn = self.conns.entry(peer).or_default();
        if inc < conn.peer_inc {
            // Ghost frame from a connection the peer has since reset
            // (e.g. a retransmit racing the reset). Ignoring it — no
            // buffering, no ack — is what keeps the old sequence space
            // from poisoning the new one.
            return;
        }
        if inc > conn.peer_inc {
            // The peer restarted its sequence space (endpoint restart or
            // post-failure reset): discard receive state tied to the old
            // incarnation and adopt the new one.
            conn.peer_inc = inc;
            conn.recv_cursor = 0;
            conn.reorder.clear();
        }
        let mut delivered = Vec::new();
        if seq < conn.recv_cursor || conn.reorder.contains_key(&seq) {
            self.duplicates += 1;
        }
        if seq >= conn.recv_cursor {
            conn.reorder.entry(seq).or_insert(payload);
            // Drain the in-order prefix.
            while let Some(p) = conn.reorder.remove(&conn.recv_cursor) {
                conn.recv_cursor += 1;
                delivered.push(p);
            }
        }
        let cursor = conn.recv_cursor;
        self.events.extend(
            delivered.into_iter().map(|p| TransportEvent::Delivered { peer, payload: p }),
        );
        // Cumulative ack: highest in-order seq received (cursor - 1); also
        // acks duplicates so the sender stops retransmitting. Echoes the
        // peer's incarnation so it can reject acks meant for a dead stream.
        if cursor > 0 {
            sim.send(self.local, peer, encode_ack(inc, cursor - 1));
        }
    }

    fn handle_ack(&mut self, peer: Addr, inc: u64, ack: u64) {
        if let Some(conn) = self.conns.get_mut(&peer) {
            // Only the current incarnation's acks count; a stale one could
            // otherwise "acknowledge" fresh frames the peer never saw.
            if conn.send_inc == inc {
                conn.unacked.retain(|&seq, _| seq > ack);
            }
        }
    }

    /// Feed a timer callback. Returns `true` when the token belonged to
    /// this endpoint.
    pub fn on_timer(&mut self, sim: &mut Sim, token: TimerToken) -> bool {
        if token & RELIABLE_TIMER_BIT == 0 {
            return false;
        }
        if ((token >> TOKEN_SPACE_SHIFT) & 0x7FFF) as u16 != self.space {
            return false;
        }
        let Some((peer, seq)) = self.timers.remove(&token) else {
            return true; // ours, but already satisfied
        };
        let Some(conn) = self.conns.get_mut(&peer) else {
            return true;
        };
        let inc = conn.send_inc;
        let Some((payload, retries)) = conn.unacked.get_mut(&seq) else {
            return true; // acked in the meantime
        };
        *retries += 1;
        if *retries > self.max_retries {
            // Give up: reset the connection and tell the owner.
            self.conns.remove(&peer);
            self.timers.retain(|_, (p, _)| *p != peer);
            self.events.push_back(TransportEvent::PeerFailed { peer });
            return true;
        }
        let frame = encode_data(inc, seq, payload);
        let retries = *retries;
        self.retransmits += 1;
        sim.send(self.local, peer, frame);
        self.arm_timer(sim, peer, seq, retries);
        true
    }

    /// Pop the next application-level event, if any.
    pub fn poll(&mut self) -> Option<TransportEvent> {
        self.events.pop_front()
    }
}

fn encode_data(inc: u64, seq: u64, payload: &Bytes) -> Bytes {
    let mut b = BytesMut::with_capacity(17 + payload.len());
    b.put_u8(FRAME_DATA);
    b.put_u64(inc);
    b.put_u64(seq);
    b.extend_from_slice(payload);
    b.freeze()
}

fn encode_ack(inc: u64, ack: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(17);
    b.put_u8(FRAME_ACK);
    b.put_u64(inc);
    b.put_u64(ack);
    b.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkSpec, NodeSpec, Service, ServiceHandle, SimConfig, Topology};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Test service: a reliable endpoint that records what it receives.
    struct Peer {
        ep: ReliableEndpoint,
        delivered: Vec<Vec<u8>>,
        failures: usize,
    }

    impl Peer {
        fn new(addr: Addr) -> ServiceHandle<Peer> {
            Rc::new(RefCell::new(Peer {
                ep: ReliableEndpoint::new(addr),
                delivered: Vec::new(),
                failures: 0,
            }))
        }

        fn drain(&mut self) {
            while let Some(ev) = self.ep.poll() {
                match ev {
                    TransportEvent::Delivered { payload, .. } => {
                        self.delivered.push(payload.to_vec())
                    }
                    TransportEvent::PeerFailed { .. } => self.failures += 1,
                }
            }
        }
    }

    impl Service for Peer {
        fn on_datagram(&mut self, sim: &mut Sim, dg: Datagram) {
            self.ep.on_datagram(sim, dg);
            self.drain();
        }
        fn on_timer(&mut self, sim: &mut Sim, token: TimerToken) {
            self.ep.on_timer(sim, token);
            self.drain();
        }
    }

    fn lossy_pair(loss: f64) -> (Sim, ServiceHandle<Peer>, ServiceHandle<Peer>, Addr, Addr) {
        let mut topo = Topology::new();
        let n0 = topo.add_node(NodeSpec::laptop());
        let n1 = topo.add_node(NodeSpec::laptop());
        topo.set_link(n0, n1, LinkSpec::lossy_wireless(loss));
        topo.set_link(n1, n0, LinkSpec::lossy_wireless(loss));
        let mut sim = Sim::new(topo, SimConfig::default());
        let a = Addr::new(n0, 1);
        let b = Addr::new(n1, 1);
        let pa = Peer::new(a);
        let pb = Peer::new(b);
        sim.bind(a, pa.clone());
        sim.bind(b, pb.clone());
        (sim, pa, pb, a, b)
    }

    #[test]
    fn lossless_in_order_delivery() {
        let (mut sim, pa, pb, _a, b) = lossy_pair(0.0);
        for i in 0..50u32 {
            pa.borrow_mut().ep.send(&mut sim, b, Bytes::from(i.to_be_bytes().to_vec()));
        }
        sim.run_to_completion();
        let got = &pb.borrow().delivered;
        assert_eq!(got.len(), 50);
        for (i, p) in got.iter().enumerate() {
            assert_eq!(u32::from_be_bytes(p[..4].try_into().unwrap()), i as u32);
        }
        assert_eq!(pa.borrow().ep.in_flight(b), 0, "all messages acked");
    }

    #[test]
    fn survives_30_percent_loss() {
        let (mut sim, pa, pb, _a, b) = lossy_pair(0.3);
        for i in 0..100u32 {
            pa.borrow_mut().ep.send(&mut sim, b, Bytes::from(i.to_be_bytes().to_vec()));
        }
        sim.run_to_completion();
        let got = &pb.borrow().delivered;
        assert_eq!(got.len(), 100, "reliable layer recovers all losses");
        // strict ordering
        for (i, p) in got.iter().enumerate() {
            assert_eq!(u32::from_be_bytes(p[..4].try_into().unwrap()), i as u32);
        }
        assert_eq!(pb.borrow().failures, 0);
    }

    #[test]
    fn total_loss_reports_peer_failure() {
        let (mut sim, pa, pb, a, b) = lossy_pair(0.0);
        // A black-hole link from a to b: everything is lost.
        sim.topology_mut().set_link(a.node, b.node, LinkSpec::lossy_wireless(1.0));
        pa.borrow_mut().ep.send(&mut sim, b, Bytes::from_static(b"doomed"));
        sim.run_to_completion();
        assert_eq!(pa.borrow().failures, 1);
        assert!(pb.borrow().delivered.is_empty());
    }

    #[test]
    fn duplicate_data_is_suppressed() {
        let (mut sim, _pa, pb, a, b) = lossy_pair(0.0);
        // Hand-craft the same DATA frame twice (simulates a retransmit race).
        let frame = encode_data(1, 0, &Bytes::from_static(b"once"));
        sim.send(a, b, frame.clone());
        sim.send(a, b, frame);
        sim.run_to_completion();
        assert_eq!(pb.borrow().delivered, vec![b"once".to_vec()]);
        assert_eq!(pb.borrow().ep.duplicates(), 1, "redelivery counted");
    }

    #[test]
    fn newer_incarnation_resets_receive_state() {
        let (mut sim, _pa, pb, a, b) = lossy_pair(0.0);
        // Old incarnation delivered seq 0..1, and left a stale out-of-order
        // frame at seq 5 in the reorder buffer.
        sim.send(a, b, encode_data(1, 0, &Bytes::from_static(b"old0")));
        sim.send(a, b, encode_data(1, 1, &Bytes::from_static(b"old1")));
        sim.send(a, b, encode_data(1, 5, &Bytes::from_static(b"stale")));
        sim.run_to_completion();
        assert_eq!(pb.borrow().delivered, vec![b"old0".to_vec(), b"old1".to_vec()]);
        // The peer resets (incarnation 2) and reuses the same seq numbers:
        // the receiver must start a fresh stream, not treat them as dups —
        // and the stale seq-5 frame must never surface.
        for (seq, pl) in [(0, "new0"), (1, "new1"), (2, "new2"), (3, "new3"), (4, "new4"), (5, "new5")] {
            sim.send(a, b, encode_data(2, seq, &Bytes::copy_from_slice(pl.as_bytes())));
        }
        sim.run_to_completion();
        let got: Vec<Vec<u8>> = pb.borrow().delivered.clone();
        assert_eq!(
            got,
            vec![
                b"old0".to_vec(),
                b"old1".to_vec(),
                b"new0".to_vec(),
                b"new1".to_vec(),
                b"new2".to_vec(),
                b"new3".to_vec(),
                b"new4".to_vec(),
                b"new5".to_vec(),
            ],
            "reused sequence numbers deliver fresh payloads, stale buffer discarded"
        );
    }

    #[test]
    fn ghost_frames_from_old_incarnation_dropped() {
        let (mut sim, _pa, pb, a, b) = lossy_pair(0.0);
        sim.send(a, b, encode_data(2, 0, &Bytes::from_static(b"current")));
        sim.run_to_completion();
        // A straggling retransmit from the pre-reset connection: same seq
        // space, older incarnation. Must be ignored entirely.
        sim.send(a, b, encode_data(1, 1, &Bytes::from_static(b"ghost")));
        sim.run_to_completion();
        assert_eq!(pb.borrow().delivered, vec![b"current".to_vec()]);
    }

    #[test]
    fn stale_ack_does_not_clear_new_incarnation_frames() {
        let (mut sim, pa, _pb, a, b) = lossy_pair(0.0);
        // Black-hole a → b so the frame stays in flight.
        sim.topology_mut().set_link(a.node, b.node, LinkSpec::lossy_wireless(1.0));
        pa.borrow_mut().ep.send(&mut sim, b, Bytes::from_static(b"pending"));
        assert_eq!(pa.borrow().ep.in_flight(b), 1);
        // An ack for the same seq but a *different* incarnation (a ghost
        // from a previous life of the peer) must not clear it.
        sim.send(b, a, encode_ack(999, 0));
        sim.run_for(SimDuration::from_millis(5));
        assert_eq!(pa.borrow().ep.in_flight(b), 1, "ghost ack cleared live frame");
    }

    #[test]
    fn restarted_receiver_recovers_without_manual_cleanup() {
        // A talks to B, then B's service is replaced by a fresh endpoint at
        // the same address (a "pod restart"). A's next message stalls (its
        // seq/incarnation ride the old stream), retries exhaust, and the
        // post-failure reset gets a NEW incarnation — which the restarted B
        // accepts as a fresh stream. No sweep or manual reset needed.
        let (mut sim, pa, pb, _a, b) = lossy_pair(0.0);
        pa.borrow_mut().ep.send(&mut sim, b, Bytes::from_static(b"before"));
        sim.run_to_completion();
        assert_eq!(pb.borrow().delivered, vec![b"before".to_vec()]);
        // Restart B: unbind, rebind a brand-new endpoint.
        sim.unbind(b);
        let pb2 = Peer::new(b);
        sim.bind(b, pb2.clone());
        // A's send rides the stale connection state; the fresh B ignores
        // the mid-stream frames, A's retries exhaust (~55×RTO), and the
        // failure resets A's connection.
        pa.borrow_mut().ep.send(&mut sim, b, Bytes::from_static(b"lost"));
        sim.run_for(SimDuration::from_secs(4));
        assert_eq!(pa.borrow().failures, 1);
        assert!(pb2.borrow().delivered.is_empty());
        // Post-reset, A reaches the restarted B first try.
        pa.borrow_mut().ep.send(&mut sim, b, Bytes::from_static(b"after"));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(pb2.borrow().delivered, vec![b"after".to_vec()]);
        assert_eq!(pa.borrow().ep.in_flight(b), 0);
    }

    #[test]
    fn peer_failure_after_exactly_max_retries_with_capped_backoff() {
        let (mut sim, pa, _pb, a, b) = lossy_pair(0.0);
        // Black-hole everything a → b so every retransmit is futile.
        sim.topology_mut().set_link(a.node, b.node, LinkSpec::lossy_wireless(1.0));
        pa.borrow_mut().ep.send(&mut sim, b, Bytes::from_static(b"void"));
        sim.run_to_completion();
        let peer = pa.borrow();
        assert_eq!(peer.failures, 1);
        // Exactly DEFAULT_MAX_RETRIES retransmissions went out before the
        // endpoint gave up.
        assert_eq!(peer.ep.retransmits(), DEFAULT_MAX_RETRIES as u64);
        // Backoff schedule with the 8×RTO cap: 1+2+4+8 doubling, then five
        // more capped intervals of 8, so the failing timer lands at
        // (1+2+4+8 + 5×8) × RTO = 55 × RTO. Without the cap it would be
        // 2^9 - 1 = 511 × RTO.
        let expect = DEFAULT_RTO.saturating_mul(55);
        assert_eq!(sim.now().as_millis(), expect.as_millis());
    }

    #[test]
    fn retransmit_state_cleared_on_peer_failure() {
        let (mut sim, pa, _pb, a, b) = lossy_pair(0.0);
        sim.topology_mut().set_link(a.node, b.node, LinkSpec::lossy_wireless(1.0));
        {
            let mut peer = pa.borrow_mut();
            peer.ep.send(&mut sim, b, Bytes::from_static(b"one"));
            peer.ep.send(&mut sim, b, Bytes::from_static(b"two"));
            assert_eq!(peer.ep.in_flight(b), 2);
            assert_eq!(peer.ep.pending_timers(), 2);
        }
        sim.run_to_completion();
        let peer = pa.borrow();
        // One failure event per peer, not per message: the first exhausted
        // message resets the whole connection.
        assert_eq!(peer.failures, 1);
        assert_eq!(peer.ep.in_flight(b), 0, "unacked queue dropped");
        assert_eq!(peer.ep.pending_timers(), 0, "no orphaned timers");
    }

    #[test]
    fn malformed_frames_rejected() {
        let (mut sim, _pa, pb, a, b) = lossy_pair(0.0);
        sim.send(a, b, Bytes::from_static(&[0xFF, 1, 2]));
        sim.send(a, b, Bytes::new());
        sim.send(a, b, Bytes::from_static(&[FRAME_DATA, 0, 1])); // truncated seq
        sim.run_to_completion();
        assert!(pb.borrow().delivered.is_empty());
    }

    #[test]
    fn bidirectional_streams_are_independent() {
        let (mut sim, pa, pb, a, b) = lossy_pair(0.0);
        pa.borrow_mut().ep.send(&mut sim, b, Bytes::from_static(b"to-b"));
        pb.borrow_mut().ep.send(&mut sim, a, Bytes::from_static(b"to-a"));
        sim.run_to_completion();
        assert_eq!(pb.borrow().delivered, vec![b"to-b".to_vec()]);
        assert_eq!(pa.borrow().delivered, vec![b"to-a".to_vec()]);
    }
}
