//! Declarative, seeded fault plans — the chaos half of the paper's §6
//! promise that a laptop testbed can exercise "faults/failures, and
//! network connectivity" without touching hardware.
//!
//! A [`FaultPlan`] is a serializable artifact: a named list of timed
//! fault windows (digi crashes, node outages, partitions, link
//! degradation). [`FaultPlan::schedule`] expands it against a campaign
//! seed into concrete [`FaultWindow`]s on the sim clock — per-window
//! jitter is drawn from a [`Prng`] split off the seed, so the same
//! plan + seed yields a byte-identical schedule while different seeds
//! explore different timings. Execution lives in the core crate's
//! campaign runner; this module is pure data + arithmetic so it can be
//! shared by tests, the CLI, and future analysis tools.

use serde::{Deserialize, Serialize};

use crate::{NodeId, Prng, SimDuration, SimTime};

/// A named, replayable fault campaign against one setup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Plan name; also keys the PRNG stream for jitter.
    pub name: String,
    /// Total campaign length in sim milliseconds.
    pub duration_ms: u64,
    /// Convergence deadline: a property violation later than
    /// `window.end + convergence_ms` after every fault has healed is a
    /// hard failure, anything inside a window (+ deadline) is tolerated
    /// degradation.
    pub convergence_ms: u64,
    /// The fault windows, in declaration order.
    pub faults: Vec<FaultSpec>,
}

/// One fault window within a plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Nominal start, ms from campaign begin.
    pub at_ms: u64,
    /// How long the fault stays active before it heals. For
    /// [`FaultKind::CrashDigi`] the crash is instantaneous and this is
    /// the disruption window used for violation classification.
    pub duration_ms: u64,
    /// Uniform start jitter `U(0, jitter_ms)`, drawn per seed. Gives a
    /// single plan a family of distinct-but-reproducible runs.
    #[serde(default)]
    pub jitter_ms: u64,
    /// What breaks (see [`FaultKind`]).
    pub kind: FaultKind,
}

/// What breaks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Kill a named digi; the supervisor restarts it from its last
    /// checkpoint after backoff.
    CrashDigi {
        /// Name of the digi to kill.
        digi: String,
    },
    /// Take a whole node down (cordon + evict every digi on it), then
    /// restore it at window end.
    NodeDown {
        /// Raw [`NodeId`] of the node to fail.
        node: u32,
    },
    /// Blackhole every link between the two node groups, both
    /// directions, then heal at window end.
    Partition {
        /// Raw node ids on one side of the cut.
        left: Vec<u32>,
        /// Raw node ids on the other side.
        right: Vec<u32>,
    },
    /// Kill the MQTT broker pod: its sessions are exported to the
    /// checkpoint store, the endpoint unbinds, and at window end a fresh
    /// broker imports the sessions and rebinds on the same address.
    /// Exercises the exactly-once path: in-flight QoS 1/2 handshakes must
    /// survive the restart without loss or duplication.
    CrashBroker,
    /// Degrade every link in the cluster for the window: extra loss
    /// composes with existing loss, delay/jitter are additive.
    Degrade {
        /// Extra loss probability in `[0, 1]`, composed with link loss.
        loss: f64,
        /// Added one-way delay, milliseconds.
        extra_delay_ms: u64,
        /// Added uniform jitter bound, milliseconds.
        extra_jitter_ms: u64,
    },
}

impl FaultKind {
    /// Short label for logs and scorecards.
    pub fn label(&self) -> String {
        match self {
            FaultKind::CrashDigi { digi } => format!("crash:{digi}"),
            FaultKind::NodeDown { node } => format!("node-down:{node}"),
            FaultKind::Partition { left, right } => {
                format!("partition:{left:?}|{right:?}")
            }
            FaultKind::CrashBroker => "crash-broker".to_string(),
            FaultKind::Degrade { loss, .. } => format!("degrade:loss={loss}"),
        }
    }
}

/// A concrete, jitter-resolved fault window on the sim clock.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWindow {
    /// Index of the originating [`FaultSpec`] in the plan.
    pub index: usize,
    /// Jitter-resolved fault onset.
    pub start: SimTime,
    /// When the fault heals.
    pub end: SimTime,
    /// What breaks (copied from the spec).
    pub kind: FaultKind,
}

impl FaultPlan {
    /// An empty plan with the given name, length and convergence deadline
    /// (both in sim milliseconds).
    pub fn new(name: impl Into<String>, duration_ms: u64, convergence_ms: u64) -> FaultPlan {
        FaultPlan { name: name.into(), duration_ms, convergence_ms, faults: Vec::new() }
    }

    /// Total campaign length as a [`SimDuration`].
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_millis(self.duration_ms)
    }

    /// Convergence deadline as a [`SimDuration`].
    pub fn convergence(&self) -> SimDuration {
        SimDuration::from_millis(self.convergence_ms)
    }

    /// Push a fault spec (builder-style).
    pub fn with(mut self, spec: FaultSpec) -> FaultPlan {
        self.faults.push(spec);
        self
    }

    /// Sanity-check the plan before running it.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("plan name must not be empty".into());
        }
        if self.duration_ms == 0 {
            return Err("plan duration_ms must be > 0".into());
        }
        for (i, f) in self.faults.iter().enumerate() {
            let end = f.at_ms + f.jitter_ms + f.duration_ms;
            if end > self.duration_ms {
                return Err(format!(
                    "fault #{i} ({}) can end at {end}ms, past plan duration {}ms",
                    f.kind.label(),
                    self.duration_ms
                ));
            }
            match &f.kind {
                FaultKind::CrashDigi { digi } if digi.is_empty() => {
                    return Err(format!("fault #{i}: empty digi name"));
                }
                FaultKind::Partition { left, right } => {
                    if left.is_empty() || right.is_empty() {
                        return Err(format!("fault #{i}: partition groups must be non-empty"));
                    }
                    if left.iter().any(|n| right.contains(n)) {
                        return Err(format!("fault #{i}: partition groups overlap"));
                    }
                }
                FaultKind::Degrade { loss, .. } if !(0.0..=1.0).contains(loss) => {
                    return Err(format!("fault #{i}: loss {loss} outside [0, 1]"));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Expand the plan against a campaign seed: resolve per-window start
    /// jitter and return windows sorted by (start, index). Deterministic —
    /// the same plan + seed always yields the same schedule.
    pub fn schedule(&self, seed: u64) -> Vec<FaultWindow> {
        let root = Prng::new(seed).split_str(&format!("chaos/{}", self.name));
        let mut windows: Vec<FaultWindow> = self
            .faults
            .iter()
            .enumerate()
            .map(|(index, f)| {
                let start_ms = if f.jitter_ms > 0 {
                    let mut rng = root.split(index as u64);
                    f.at_ms + rng.range_u64(0, f.jitter_ms + 1)
                } else {
                    f.at_ms
                };
                let start = SimTime::ZERO + SimDuration::from_millis(start_ms);
                FaultWindow {
                    index,
                    start,
                    end: start + SimDuration::from_millis(f.duration_ms),
                    kind: f.kind.clone(),
                }
            })
            .collect();
        windows.sort_by_key(|w| (w.start, w.index));
        windows
    }

    /// Node groups a partition spec refers to, as [`NodeId`]s.
    pub fn partition_nodes(left: &[u32], right: &[u32]) -> (Vec<NodeId>, Vec<NodeId>) {
        (
            left.iter().copied().map(NodeId).collect(),
            right.iter().copied().map(NodeId).collect(),
        )
    }
}

/// When the last fault window heals (ZERO for an empty schedule).
pub fn last_heal(windows: &[FaultWindow]) -> SimTime {
    windows.iter().map(|w| w.end).max().unwrap_or(SimTime::ZERO)
}

/// Is a violation at `t` tolerated degradation? True iff some fault
/// window was active at `t` or healed less than `convergence` before it.
pub fn tolerated(windows: &[FaultWindow], convergence: SimDuration, t: SimTime) -> bool {
    windows.iter().any(|w| t >= w.start && t <= w.end + convergence)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::new("demo", 60_000, 5_000)
            .with(FaultSpec {
                at_ms: 5_000,
                duration_ms: 4_000,
                jitter_ms: 2_000,
                kind: FaultKind::CrashDigi { digi: "L1".into() },
            })
            .with(FaultSpec {
                at_ms: 20_000,
                duration_ms: 8_000,
                jitter_ms: 0,
                kind: FaultKind::Partition { left: vec![0], right: vec![1] },
            })
            .with(FaultSpec {
                at_ms: 35_000,
                duration_ms: 6_000,
                jitter_ms: 3_000,
                kind: FaultKind::Degrade { loss: 0.3, extra_delay_ms: 10, extra_jitter_ms: 5 },
            })
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let p = plan();
        let a = p.schedule(1);
        let b = p.schedule(1);
        assert_eq!(a, b);
        // jitter actually draws from the seed: some seed pair must differ
        let c = p.schedule(2);
        assert!(a != c || p.schedule(3) != a, "jitter ignored the seed");
    }

    #[test]
    fn schedule_respects_jitter_bounds_and_order() {
        let p = plan();
        for seed in 0..50 {
            let ws = p.schedule(seed);
            assert_eq!(ws.len(), 3);
            for (w, f) in ws.iter().map(|w| (w, &p.faults[w.index])) {
                let start_ms = w.start.as_millis();
                assert!(start_ms >= f.at_ms && start_ms <= f.at_ms + f.jitter_ms);
                assert_eq!(w.end.since(w.start).as_millis(), f.duration_ms);
            }
            assert!(ws.windows(2).all(|p| p[0].start <= p[1].start));
            assert!(last_heal(&ws) <= SimTime::ZERO + p.duration());
        }
    }

    #[test]
    fn tolerated_classification_windows() {
        let ws = vec![FaultWindow {
            index: 0,
            start: SimTime::ZERO + SimDuration::from_millis(10_000),
            end: SimTime::ZERO + SimDuration::from_millis(14_000),
            kind: FaultKind::CrashDigi { digi: "x".into() },
        }];
        let conv = SimDuration::from_millis(5_000);
        let at = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
        assert!(!tolerated(&ws, conv, at(9_999)));
        assert!(tolerated(&ws, conv, at(10_000)));
        assert!(tolerated(&ws, conv, at(14_000)));
        assert!(tolerated(&ws, conv, at(19_000)));
        assert!(!tolerated(&ws, conv, at(19_001)));
    }

    #[test]
    fn validate_catches_bad_plans() {
        assert!(plan().validate().is_ok());
        let late = FaultPlan::new("late", 1_000, 0).with(FaultSpec {
            at_ms: 900,
            duration_ms: 200,
            jitter_ms: 0,
            kind: FaultKind::NodeDown { node: 0 },
        });
        assert!(late.validate().is_err());
        let overlap = FaultPlan::new("o", 10_000, 0).with(FaultSpec {
            at_ms: 0,
            duration_ms: 100,
            jitter_ms: 0,
            kind: FaultKind::Partition { left: vec![0, 1], right: vec![1] },
        });
        assert!(overlap.validate().is_err());
        let loss = FaultPlan::new("l", 10_000, 0).with(FaultSpec {
            at_ms: 0,
            duration_ms: 100,
            jitter_ms: 0,
            kind: FaultKind::Degrade { loss: 1.5, extra_delay_ms: 0, extra_jitter_ms: 0 },
        });
        assert!(loss.validate().is_err());
    }
}
