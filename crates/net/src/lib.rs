//! # digibox-net
//!
//! The simulation substrate underneath every Digibox testbed:
//!
//! * [`SimTime`]/[`SimDuration`] — the virtual clock.
//! * [`Prng`] — a small, stable, splittable PRNG so every component gets an
//!   independent, reproducible random stream (paper goal: reproducibility).
//! * [`Sim`] — the discrete-event kernel: a time-ordered event queue driving
//!   [`Service`]s that exchange [`Datagram`]s across a simulated
//!   [`Topology`] of nodes and links (latency, jitter, loss, bandwidth).
//! * [`transport`] — a reliable, ordered message channel (sequence numbers,
//!   cumulative acks, retransmission) built on the lossy datagram layer.
//! * [`httpx`] — an HTTP/1.1-subset codec for the REST device API.
//! * [`stats`] — counters and a log-bucketed latency histogram used by the
//!   microbenchmarks.
//!
//! The paper deploys mocks and scenes as containers on Kubernetes and talks
//! to them over real TCP. Here the same protocols (MQTT packets, HTTP
//! requests) run over this deterministic in-process network, which is what
//! lets a whole cluster-scale testbed execute — reproducibly — inside one
//! laptop process (the paper's title, taken literally).

#![warn(missing_docs)]

pub mod chaos;
pub mod httpx;
mod kernel;
mod prng;
pub mod stats;
mod time;
mod topology;
pub mod transport;
pub mod wheel;

pub use chaos::{FaultKind, FaultPlan, FaultSpec, FaultWindow};
pub use kernel::{Datagram, RemoteDatagram, Service, ServiceHandle, Sim, SimConfig, TimerToken};
pub use wheel::EventWheel;
pub use prng::Prng;
pub use time::{SimDuration, SimTime};
pub use topology::{Addr, LinkSpec, LinkState, NodeId, NodeSpec, Topology};
