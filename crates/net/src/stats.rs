//! Counters and latency aggregation for the microbenchmarks (paper §4
//! reports average request latency; we also report percentiles).

use serde::{Deserialize, Serialize};

use crate::SimDuration;

/// Kernel-level datagram counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetStats {
    /// Datagrams handed to the kernel for delivery.
    pub datagrams_sent: u64,
    /// Datagrams that reached a bound service.
    pub datagrams_delivered: u64,
    /// Datagrams dropped by lossy or blackholed links.
    pub datagrams_lost: u64,
    /// Datagrams addressed to ports nothing is bound on.
    pub datagrams_unreachable: u64,
    /// Payload bytes handed to the kernel.
    pub bytes_sent: u64,
    /// Payload bytes that reached a bound service.
    pub bytes_delivered: u64,
}

impl NetStats {
    pub(crate) fn sent(&mut self, bytes: usize) {
        self.datagrams_sent += 1;
        self.bytes_sent += bytes as u64;
    }

    pub(crate) fn delivered(&mut self, bytes: usize) {
        self.datagrams_delivered += 1;
        self.bytes_delivered += bytes as u64;
    }

    pub(crate) fn lost(&mut self, _bytes: usize) {
        self.datagrams_lost += 1;
    }

    pub(crate) fn unreachable(&mut self, _bytes: usize) {
        self.datagrams_unreachable += 1;
    }

    /// Delivered / sent, in `[0, 1]`; 1.0 when nothing was sent.
    pub fn delivery_rate(&self) -> f64 {
        if self.datagrams_sent == 0 {
            1.0
        } else {
            self.datagrams_delivered as f64 / self.datagrams_sent as f64
        }
    }
}

/// A log-bucketed latency histogram: ~4% relative resolution over
/// 1 ns ..= ~584 years, constant memory, O(1) record.
///
/// Buckets are (power-of-two range) × 16 linear sub-buckets, the classic
/// HDR-style layout.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_nanos: u128,
    min_nanos: u64,
    max_nanos: u64,
}

const SUB_BUCKETS: u64 = 16;
const SUB_BITS: u32 = 4;

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        // 64 exponents × 16 sub-buckets is enough to never saturate u64.
        LatencyHistogram {
            counts: vec![0; (64 * SUB_BUCKETS) as usize],
            total: 0,
            sum_nanos: 0,
            min_nanos: u64::MAX,
            max_nanos: 0,
        }
    }

    fn index(nanos: u64) -> usize {
        if nanos < SUB_BUCKETS {
            return nanos as usize;
        }
        let exp = 63 - nanos.leading_zeros();
        let shift = exp - SUB_BITS;
        let sub = (nanos >> shift) & (SUB_BUCKETS - 1);
        (((exp - SUB_BITS + 1) as u64 * SUB_BUCKETS) + sub) as usize
    }

    /// Lower bound of bucket `i` (used to reconstruct quantiles).
    fn bucket_floor(i: usize) -> u64 {
        let i = i as u64;
        if i < SUB_BUCKETS {
            return i;
        }
        let exp = (i / SUB_BUCKETS - 1) + SUB_BITS as u64;
        let sub = i % SUB_BUCKETS;
        (SUB_BUCKETS + sub) << (exp - SUB_BITS as u64)
    }

    /// Record one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        let n = d.as_nanos();
        self.counts[Self::index(n)] += 1;
        self.total += 1;
        self.sum_nanos += n as u128;
        self.min_nanos = self.min_nanos.min(n);
        self.max_nanos = self.max_nanos.max(n);
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_nanos += other.sum_nanos;
        self.min_nanos = self.min_nanos.min(other.min_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Arithmetic mean of all samples (zero when empty).
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum_nanos / self.total as u128) as u64)
        }
    }

    /// Smallest sample (exact, zero when empty).
    pub fn min(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_nanos)
        }
    }

    /// Largest sample (exact, zero when empty).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_nanos)
    }

    /// Quantile in `[0, 1]`; returns the lower bound of the containing
    /// bucket (exact min/max are tracked separately).
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return SimDuration::from_nanos(Self::bucket_floor(i).max(self.min_nanos).min(self.max_nanos));
            }
        }
        self.max()
    }

    /// Median latency (see [`LatencyHistogram::quantile`]).
    pub fn p50(&self) -> SimDuration {
        self.quantile(0.50)
    }

    /// 99th-percentile latency (see [`LatencyHistogram::quantile`]).
    pub fn p99(&self) -> SimDuration {
        self.quantile(0.99)
    }

    /// One-line summary used by the bench harness tables.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={} p50={} p99={} max={}",
            self.total,
            self.mean(),
            self.p50(),
            self.p99(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.quantile(0.5), SimDuration::ZERO);
    }

    #[test]
    fn exact_small_values() {
        let mut h = LatencyHistogram::new();
        for n in 0..16u64 {
            h.record(SimDuration::from_nanos(n));
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::from_nanos(15));
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_millis(10));
        h.record(SimDuration::from_millis(20));
        h.record(SimDuration::from_millis(30));
        assert_eq!(h.mean().as_millis(), 20);
    }

    #[test]
    fn quantiles_within_resolution() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_micros(i));
        }
        let p50 = h.p50().as_micros() as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.10, "p50 was {p50}us");
        let p99 = h.p99().as_micros() as f64;
        assert!((p99 - 990.0).abs() / 990.0 < 0.10, "p99 was {p99}us");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_millis(1));
        b.record(SimDuration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean().as_millis(), 2);
        assert_eq!(a.max().as_millis(), 3);
    }

    #[test]
    fn bucket_floor_is_monotone_and_consistent() {
        let mut prev = 0;
        for i in 0..200 {
            let f = LatencyHistogram::bucket_floor(i);
            assert!(f >= prev, "floor not monotone at {i}");
            prev = f;
            // the floor of a bucket indexes back into the same bucket
            assert_eq!(LatencyHistogram::index(f), i, "floor/index mismatch at {i}");
        }
    }

    #[test]
    fn delivery_rate() {
        let mut s = NetStats::default();
        assert_eq!(s.delivery_rate(), 1.0);
        s.sent(10);
        s.sent(10);
        s.delivered(10);
        assert_eq!(s.delivery_rate(), 0.5);
    }
}
