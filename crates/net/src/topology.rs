use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Prng, SimDuration};

/// Identifier of a simulated machine (a "node" in the Kubernetes sense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// A network address: node + port, the endpoint granularity at which
/// services (mocks, scenes, brokers, API servers, apps) are bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr {
    /// Machine the endpoint lives on.
    pub node: NodeId,
    /// Port within that machine.
    pub port: u16,
}

impl Addr {
    /// The endpoint `node:port`.
    pub fn new(node: NodeId, port: u16) -> Addr {
        Addr { node, port }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

/// Capacity and behaviour of one simulated machine.
///
/// The defaults model the paper's two environments: a laptop (Docker
/// Desktop's single-node Kubernetes on a MacBook Air M1) and `m5.xlarge`
/// EC2 instances (4 vCPU / 16 GiB).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Human-readable label, e.g. `laptop`, `m5.xlarge-1`.
    pub label: String,
    /// Schedulable CPU in millicores (k8s-style).
    pub cpu_millis: u64,
    /// Schedulable memory in MiB.
    pub mem_mib: u64,
    /// Per-message service overhead for processes on this node (container
    /// networking + protocol handling), applied by services that opt in.
    pub service_overhead: SimDuration,
}

impl NodeSpec {
    /// A MacBook-class laptop running Docker Desktop Kubernetes: 8 cores,
    /// 16 GiB, and a noticeable per-request overhead from the Docker VM's
    /// network path (the paper observes up to ~20 ms at 50 mocks).
    pub fn laptop() -> NodeSpec {
        NodeSpec {
            label: "laptop".into(),
            cpu_millis: 8_000,
            mem_mib: 16_384,
            // Docker Desktop VM network path + kube-proxy + Python handler
            service_overhead: SimDuration::from_millis(4),
        }
    }

    /// An `m5.xlarge` EC2 instance: 4 vCPU, 16 GiB, lighter per-request
    /// overhead (no Docker Desktop VM hop) but real network RTTs.
    pub fn m5_xlarge(index: u32) -> NodeSpec {
        NodeSpec {
            label: format!("m5.xlarge-{index}"),
            cpu_millis: 4_000,
            mem_mib: 16_384,
            // no VM hop, but kube networking + handler remain
            service_overhead: SimDuration::from_millis(2),
        }
    }
}

/// Latency/jitter/loss/bandwidth model of one directed link class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Fixed propagation + switching delay.
    pub base_delay: SimDuration,
    /// Uniform jitter added on top: `U(0, jitter)`.
    pub jitter: SimDuration,
    /// Probability that a datagram is silently dropped.
    pub loss: f64,
    /// Serialization rate in bytes per second (0 = infinite).
    pub bandwidth_bps: u64,
}

impl LinkSpec {
    /// In-process loopback: ~25 µs one-way with small jitter, lossless.
    pub fn loopback() -> LinkSpec {
        LinkSpec {
            base_delay: SimDuration::from_micros(25),
            jitter: SimDuration::from_micros(10),
            loss: 0.0,
            bandwidth_bps: 0,
        }
    }

    /// Same-VPC EC2 link: ~250 µs one-way, mild jitter, effectively
    /// lossless, 1.25 GB/s (10 Gbit).
    pub fn ec2_same_vpc() -> LinkSpec {
        LinkSpec {
            base_delay: SimDuration::from_micros(250),
            jitter: SimDuration::from_micros(100),
            loss: 0.0,
            bandwidth_bps: 1_250_000_000,
        }
    }

    /// Client→cloud WAN link (developer laptop to EC2): ~15 ms one-way.
    pub fn wan() -> LinkSpec {
        LinkSpec {
            base_delay: SimDuration::from_millis(15),
            jitter: SimDuration::from_millis(3),
            loss: 0.0,
            bandwidth_bps: 125_000_000,
        }
    }

    /// A deliberately unreliable wireless-ish link for fault-injection
    /// tests (paper §6: "network connectivity between devices").
    pub fn lossy_wireless(loss: f64) -> LinkSpec {
        LinkSpec {
            base_delay: SimDuration::from_millis(2),
            jitter: SimDuration::from_millis(4),
            loss,
            bandwidth_bps: 6_250_000,
        }
    }

    /// A link that drops everything — the model for a network partition.
    pub fn blackhole() -> LinkSpec {
        LinkSpec {
            base_delay: SimDuration::from_millis(2),
            jitter: SimDuration::ZERO,
            loss: 1.0,
            bandwidth_bps: 0,
        }
    }

    /// Derive a degraded copy of this link: extra loss composes with the
    /// existing loss probability (independent drop events), extra delay
    /// and jitter are additive.
    pub fn degraded(
        &self,
        extra_loss: f64,
        extra_delay: SimDuration,
        extra_jitter: SimDuration,
    ) -> LinkSpec {
        LinkSpec {
            base_delay: self.base_delay + extra_delay,
            jitter: self.jitter + extra_jitter,
            loss: 1.0 - (1.0 - self.loss) * (1.0 - extra_loss.clamp(0.0, 1.0)),
            bandwidth_bps: self.bandwidth_bps,
        }
    }

    /// Sample the one-way delay for a datagram of `bytes` bytes.
    pub fn sample_delay(&self, bytes: usize, rng: &mut Prng) -> SimDuration {
        let mut d = self.base_delay;
        if self.jitter > SimDuration::ZERO {
            d = d + SimDuration::from_nanos(rng.range_u64(0, self.jitter.as_nanos().max(1)));
        }
        if self.bandwidth_bps > 0 {
            d = d + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps as f64);
        }
        d
    }
}

/// The simulated cluster: nodes plus the link model between them.
///
/// Links are looked up most-specific-first: an explicit `(from, to)` pair,
/// then the node-local loopback (when `from == to`), then the default
/// inter-node link.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: BTreeMap<NodeId, NodeSpec>,
    links: BTreeMap<(NodeId, NodeId), LinkSpec>,
    loopback: LinkSpec,
    default_link: LinkSpec,
    next_node: u32,
}

impl Default for Topology {
    fn default() -> Self {
        Topology::new()
    }
}

impl Topology {
    /// An empty topology (no nodes, no links).
    pub fn new() -> Topology {
        Topology {
            nodes: BTreeMap::new(),
            links: BTreeMap::new(),
            loopback: LinkSpec::loopback(),
            default_link: LinkSpec::ec2_same_vpc(),
            next_node: 0,
        }
    }

    /// Single laptop node — the paper's local environment.
    pub fn single_laptop() -> Topology {
        let mut t = Topology::new();
        t.add_node(NodeSpec::laptop());
        t
    }

    /// `n` EC2 instances in one VPC — the paper's cloud environment.
    pub fn ec2_cluster(n: u32) -> Topology {
        let mut t = Topology::new();
        for i in 0..n {
            t.add_node(NodeSpec::m5_xlarge(i));
        }
        t
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, spec: NodeSpec) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        self.nodes.insert(id, spec);
        id
    }

    /// Spec of a node, if it exists.
    pub fn node(&self, id: NodeId) -> Option<&NodeSpec> {
        self.nodes.get(&id)
    }

    /// All node ids, ascending.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Override the link class for a specific directed pair.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) {
        self.links.insert((from, to), spec);
    }

    /// Override the loopback model (same-node messages).
    pub fn set_loopback(&mut self, spec: LinkSpec) {
        self.loopback = spec;
    }

    /// Override the default inter-node link model.
    pub fn set_default_link(&mut self, spec: LinkSpec) {
        self.default_link = spec;
    }

    /// Resolve the link class used from `from` to `to`.
    pub fn link(&self, from: NodeId, to: NodeId) -> &LinkSpec {
        if let Some(l) = self.links.get(&(from, to)) {
            return l;
        }
        if from == to {
            &self.loopback
        } else {
            &self.default_link
        }
    }

    /// Snapshot the full link configuration (explicit pairs, loopback,
    /// default) so fault injectors can mutate links freely and later
    /// recompute from a known baseline.
    pub fn save_links(&self) -> LinkState {
        LinkState {
            links: self.links.clone(),
            loopback: self.loopback.clone(),
            default_link: self.default_link.clone(),
        }
    }

    /// Restore a link configuration captured with [`Topology::save_links`].
    /// Node specs are untouched.
    pub fn restore_links(&mut self, state: LinkState) {
        self.links = state.links;
        self.loopback = state.loopback;
        self.default_link = state.default_link;
    }

    /// Partition the cluster: every cross-group link between `left` and
    /// `right` (both directions) becomes a blackhole. Links inside each
    /// group are untouched. Nodes listed in neither group keep full
    /// connectivity.
    pub fn partition(&mut self, left: &[NodeId], right: &[NodeId]) {
        for &a in left {
            for &b in right {
                if a == b {
                    continue;
                }
                self.set_link(a, b, LinkSpec::blackhole());
                self.set_link(b, a, LinkSpec::blackhole());
            }
        }
    }

    /// Undo a [`Topology::partition`]: remove the explicit cross-group
    /// overrides so those pairs fall back to the default link. Only pairs
    /// currently set to a full-loss link are removed, so pre-existing
    /// explicit overrides (e.g. a WAN link) survive a heal.
    pub fn heal(&mut self, left: &[NodeId], right: &[NodeId]) {
        for &a in left {
            for &b in right {
                if a == b {
                    continue;
                }
                for pair in [(a, b), (b, a)] {
                    if self.links.get(&pair).is_some_and(|l| l.loss >= 1.0) {
                        self.links.remove(&pair);
                    }
                }
            }
        }
    }

    /// Degrade one directed link: compose `extra_loss` with its current
    /// loss and add delay/jitter on top of whatever spec currently
    /// resolves for the pair.
    pub fn degrade_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        extra_loss: f64,
        extra_delay: SimDuration,
        extra_jitter: SimDuration,
    ) {
        let spec = self.link(from, to).degraded(extra_loss, extra_delay, extra_jitter);
        self.set_link(from, to, spec);
    }

    /// Degrade every link in the cluster — loopback, default, and all
    /// explicit pairs — e.g. to model ambient RF interference.
    pub fn degrade_all(
        &mut self,
        extra_loss: f64,
        extra_delay: SimDuration,
        extra_jitter: SimDuration,
    ) {
        self.loopback = self.loopback.degraded(extra_loss, extra_delay, extra_jitter);
        self.default_link = self.default_link.degraded(extra_loss, extra_delay, extra_jitter);
        for spec in self.links.values_mut() {
            *spec = spec.degraded(extra_loss, extra_delay, extra_jitter);
        }
    }
}

/// A saved link configuration — see [`Topology::save_links`].
#[derive(Debug, Clone)]
pub struct LinkState {
    links: BTreeMap<(NodeId, NodeId), LinkSpec>,
    loopback: LinkSpec,
    default_link: LinkSpec,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ids_are_sequential() {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::laptop());
        let b = t.add_node(NodeSpec::m5_xlarge(0));
        assert_eq!(a, NodeId(0));
        assert_eq!(b, NodeId(1));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn link_resolution_precedence() {
        let mut t = Topology::ec2_cluster(2);
        let ids = t.node_ids();
        // default inter-node
        assert_eq!(t.link(ids[0], ids[1]), &LinkSpec::ec2_same_vpc());
        // loopback
        assert_eq!(t.link(ids[0], ids[0]), &LinkSpec::loopback());
        // explicit override wins
        t.set_link(ids[0], ids[1], LinkSpec::wan());
        assert_eq!(t.link(ids[0], ids[1]), &LinkSpec::wan());
        // but only in that direction
        assert_eq!(t.link(ids[1], ids[0]), &LinkSpec::ec2_same_vpc());
    }

    #[test]
    fn delay_sampling_includes_serialization() {
        let mut rng = Prng::new(1);
        let link = LinkSpec {
            base_delay: SimDuration::from_millis(1),
            jitter: SimDuration::ZERO,
            loss: 0.0,
            bandwidth_bps: 1_000_000, // 1 MB/s
        };
        // 1000 bytes at 1 MB/s = 1 ms serialization + 1 ms base
        let d = link.sample_delay(1000, &mut rng);
        assert_eq!(d.as_millis(), 2);
    }

    #[test]
    fn partition_and_heal_are_symmetric() {
        let mut t = Topology::ec2_cluster(3);
        let ids = t.node_ids();
        let baseline = t.save_links();

        t.partition(&[ids[0]], &[ids[1], ids[2]]);
        assert_eq!(t.link(ids[0], ids[1]).loss, 1.0);
        assert_eq!(t.link(ids[2], ids[0]).loss, 1.0);
        // intra-group untouched
        assert_eq!(t.link(ids[1], ids[2]), &LinkSpec::ec2_same_vpc());

        t.heal(&[ids[0]], &[ids[1], ids[2]]);
        assert_eq!(t.link(ids[0], ids[1]), &LinkSpec::ec2_same_vpc());
        assert_eq!(t.link(ids[2], ids[0]), &LinkSpec::ec2_same_vpc());

        // restore_links recovers the exact baseline too
        t.partition(&[ids[0]], &[ids[1]]);
        t.restore_links(baseline);
        assert_eq!(t.link(ids[0], ids[1]), &LinkSpec::ec2_same_vpc());
    }

    #[test]
    fn heal_preserves_preexisting_overrides() {
        let mut t = Topology::ec2_cluster(2);
        let ids = t.node_ids();
        t.set_link(ids[0], ids[1], LinkSpec::wan());
        t.partition(&[ids[0]], &[ids[1]]);
        assert_eq!(t.link(ids[0], ids[1]).loss, 1.0);
        t.heal(&[ids[0]], &[ids[1]]);
        // the partition override is gone, but so is the WAN override: the
        // partition replaced it, heal removes full-loss links only. The
        // campaign runner uses save/restore for exact recovery; heal's
        // contract is just "no blackholes left behind".
        assert!(t.link(ids[0], ids[1]).loss < 1.0);
        // reverse direction had no explicit link and falls back to default
        assert_eq!(t.link(ids[1], ids[0]), &LinkSpec::ec2_same_vpc());
    }

    #[test]
    fn degrade_composes_loss_and_adds_delay() {
        let base = LinkSpec::lossy_wireless(0.5);
        let worse = base.degraded(0.5, SimDuration::from_millis(10), SimDuration::from_millis(1));
        assert!((worse.loss - 0.75).abs() < 1e-9);
        assert_eq!(worse.base_delay, base.base_delay + SimDuration::from_millis(10));
        assert_eq!(worse.jitter, base.jitter + SimDuration::from_millis(1));
        assert_eq!(worse.bandwidth_bps, base.bandwidth_bps);

        let mut t = Topology::ec2_cluster(2);
        let ids = t.node_ids();
        t.degrade_all(0.2, SimDuration::from_millis(5), SimDuration::ZERO);
        assert!((t.link(ids[0], ids[1]).loss - 0.2).abs() < 1e-9);
        assert!((t.link(ids[0], ids[0]).loss - 0.2).abs() < 1e-9);
        let restored = t.save_links();
        t.degrade_link(ids[0], ids[1], 0.5, SimDuration::ZERO, SimDuration::ZERO);
        assert!((t.link(ids[0], ids[1]).loss - 0.6).abs() < 1e-9);
        t.restore_links(restored);
        assert!((t.link(ids[0], ids[1]).loss - 0.2).abs() < 1e-9);
    }

    #[test]
    fn jitter_bounded() {
        let mut rng = Prng::new(2);
        let link = LinkSpec::loopback();
        for _ in 0..1000 {
            let d = link.sample_delay(100, &mut rng);
            assert!(d >= link.base_delay);
            assert!(d <= link.base_delay + link.jitter);
        }
    }
}
