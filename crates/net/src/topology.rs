use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Prng, SimDuration};

/// Identifier of a simulated machine (a "node" in the Kubernetes sense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// A network address: node + port, the endpoint granularity at which
/// services (mocks, scenes, brokers, API servers, apps) are bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr {
    pub node: NodeId,
    pub port: u16,
}

impl Addr {
    pub fn new(node: NodeId, port: u16) -> Addr {
        Addr { node, port }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

/// Capacity and behaviour of one simulated machine.
///
/// The defaults model the paper's two environments: a laptop (Docker
/// Desktop's single-node Kubernetes on a MacBook Air M1) and `m5.xlarge`
/// EC2 instances (4 vCPU / 16 GiB).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Human-readable label, e.g. `laptop`, `m5.xlarge-1`.
    pub label: String,
    /// Schedulable CPU in millicores (k8s-style).
    pub cpu_millis: u64,
    /// Schedulable memory in MiB.
    pub mem_mib: u64,
    /// Per-message service overhead for processes on this node (container
    /// networking + protocol handling), applied by services that opt in.
    pub service_overhead: SimDuration,
}

impl NodeSpec {
    /// A MacBook-class laptop running Docker Desktop Kubernetes: 8 cores,
    /// 16 GiB, and a noticeable per-request overhead from the Docker VM's
    /// network path (the paper observes up to ~20 ms at 50 mocks).
    pub fn laptop() -> NodeSpec {
        NodeSpec {
            label: "laptop".into(),
            cpu_millis: 8_000,
            mem_mib: 16_384,
            // Docker Desktop VM network path + kube-proxy + Python handler
            service_overhead: SimDuration::from_millis(4),
        }
    }

    /// An `m5.xlarge` EC2 instance: 4 vCPU, 16 GiB, lighter per-request
    /// overhead (no Docker Desktop VM hop) but real network RTTs.
    pub fn m5_xlarge(index: u32) -> NodeSpec {
        NodeSpec {
            label: format!("m5.xlarge-{index}"),
            cpu_millis: 4_000,
            mem_mib: 16_384,
            // no VM hop, but kube networking + handler remain
            service_overhead: SimDuration::from_millis(2),
        }
    }
}

/// Latency/jitter/loss/bandwidth model of one directed link class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Fixed propagation + switching delay.
    pub base_delay: SimDuration,
    /// Uniform jitter added on top: `U(0, jitter)`.
    pub jitter: SimDuration,
    /// Probability that a datagram is silently dropped.
    pub loss: f64,
    /// Serialization rate in bytes per second (0 = infinite).
    pub bandwidth_bps: u64,
}

impl LinkSpec {
    /// In-process loopback: ~25 µs one-way with small jitter, lossless.
    pub fn loopback() -> LinkSpec {
        LinkSpec {
            base_delay: SimDuration::from_micros(25),
            jitter: SimDuration::from_micros(10),
            loss: 0.0,
            bandwidth_bps: 0,
        }
    }

    /// Same-VPC EC2 link: ~250 µs one-way, mild jitter, effectively
    /// lossless, 1.25 GB/s (10 Gbit).
    pub fn ec2_same_vpc() -> LinkSpec {
        LinkSpec {
            base_delay: SimDuration::from_micros(250),
            jitter: SimDuration::from_micros(100),
            loss: 0.0,
            bandwidth_bps: 1_250_000_000,
        }
    }

    /// Client→cloud WAN link (developer laptop to EC2): ~15 ms one-way.
    pub fn wan() -> LinkSpec {
        LinkSpec {
            base_delay: SimDuration::from_millis(15),
            jitter: SimDuration::from_millis(3),
            loss: 0.0,
            bandwidth_bps: 125_000_000,
        }
    }

    /// A deliberately unreliable wireless-ish link for fault-injection
    /// tests (paper §6: "network connectivity between devices").
    pub fn lossy_wireless(loss: f64) -> LinkSpec {
        LinkSpec {
            base_delay: SimDuration::from_millis(2),
            jitter: SimDuration::from_millis(4),
            loss,
            bandwidth_bps: 6_250_000,
        }
    }

    /// Sample the one-way delay for a datagram of `bytes` bytes.
    pub fn sample_delay(&self, bytes: usize, rng: &mut Prng) -> SimDuration {
        let mut d = self.base_delay;
        if self.jitter > SimDuration::ZERO {
            d = d + SimDuration::from_nanos(rng.range_u64(0, self.jitter.as_nanos().max(1)));
        }
        if self.bandwidth_bps > 0 {
            d = d + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps as f64);
        }
        d
    }
}

/// The simulated cluster: nodes plus the link model between them.
///
/// Links are looked up most-specific-first: an explicit `(from, to)` pair,
/// then the node-local loopback (when `from == to`), then the default
/// inter-node link.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: BTreeMap<NodeId, NodeSpec>,
    links: BTreeMap<(NodeId, NodeId), LinkSpec>,
    loopback: LinkSpec,
    default_link: LinkSpec,
    next_node: u32,
}

impl Default for Topology {
    fn default() -> Self {
        Topology::new()
    }
}

impl Topology {
    pub fn new() -> Topology {
        Topology {
            nodes: BTreeMap::new(),
            links: BTreeMap::new(),
            loopback: LinkSpec::loopback(),
            default_link: LinkSpec::ec2_same_vpc(),
            next_node: 0,
        }
    }

    /// Single laptop node — the paper's local environment.
    pub fn single_laptop() -> Topology {
        let mut t = Topology::new();
        t.add_node(NodeSpec::laptop());
        t
    }

    /// `n` EC2 instances in one VPC — the paper's cloud environment.
    pub fn ec2_cluster(n: u32) -> Topology {
        let mut t = Topology::new();
        for i in 0..n {
            t.add_node(NodeSpec::m5_xlarge(i));
        }
        t
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, spec: NodeSpec) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        self.nodes.insert(id, spec);
        id
    }

    pub fn node(&self, id: NodeId) -> Option<&NodeSpec> {
        self.nodes.get(&id)
    }

    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Override the link class for a specific directed pair.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) {
        self.links.insert((from, to), spec);
    }

    /// Override the loopback model (same-node messages).
    pub fn set_loopback(&mut self, spec: LinkSpec) {
        self.loopback = spec;
    }

    /// Override the default inter-node link model.
    pub fn set_default_link(&mut self, spec: LinkSpec) {
        self.default_link = spec;
    }

    /// Resolve the link class used from `from` to `to`.
    pub fn link(&self, from: NodeId, to: NodeId) -> &LinkSpec {
        if let Some(l) = self.links.get(&(from, to)) {
            return l;
        }
        if from == to {
            &self.loopback
        } else {
            &self.default_link
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ids_are_sequential() {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::laptop());
        let b = t.add_node(NodeSpec::m5_xlarge(0));
        assert_eq!(a, NodeId(0));
        assert_eq!(b, NodeId(1));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn link_resolution_precedence() {
        let mut t = Topology::ec2_cluster(2);
        let ids = t.node_ids();
        // default inter-node
        assert_eq!(t.link(ids[0], ids[1]), &LinkSpec::ec2_same_vpc());
        // loopback
        assert_eq!(t.link(ids[0], ids[0]), &LinkSpec::loopback());
        // explicit override wins
        t.set_link(ids[0], ids[1], LinkSpec::wan());
        assert_eq!(t.link(ids[0], ids[1]), &LinkSpec::wan());
        // but only in that direction
        assert_eq!(t.link(ids[1], ids[0]), &LinkSpec::ec2_same_vpc());
    }

    #[test]
    fn delay_sampling_includes_serialization() {
        let mut rng = Prng::new(1);
        let link = LinkSpec {
            base_delay: SimDuration::from_millis(1),
            jitter: SimDuration::ZERO,
            loss: 0.0,
            bandwidth_bps: 1_000_000, // 1 MB/s
        };
        // 1000 bytes at 1 MB/s = 1 ms serialization + 1 ms base
        let d = link.sample_delay(1000, &mut rng);
        assert_eq!(d.as_millis(), 2);
    }

    #[test]
    fn jitter_bounded() {
        let mut rng = Prng::new(2);
        let link = LinkSpec::loopback();
        for _ in 0..1000 {
            let d = link.sample_delay(100, &mut rng);
            assert!(d >= link.base_delay);
            assert!(d <= link.base_delay + link.jitter);
        }
    }
}
