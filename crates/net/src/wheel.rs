//! The kernel's event queue: a hierarchical timer wheel with a binary-heap
//! overflow, ordered by `(at, seq)` exactly like the plain heap it replaces.
//!
//! The dominant kernel workload is periodic timers: every unmanaged digi
//! re-arms a `dbox.loop` tick each interval, so at N mocks the queue holds
//! ~N entries and every tick costs O(log N) against a binary heap. The
//! wheel makes the common push/pop O(1): time is bucketed into ticks of
//! 2^16 ns (~65.5 µs), three levels of 256 slots cover ~16.8 ms / ~4.3 s /
//! ~18.3 min of future respectively, and anything beyond the last level
//! waits in a conventional heap until the cursor gets close.
//!
//! Determinism: events are globally ordered by `(at, seq)` — `seq` is the
//! kernel's insertion counter — which is the same total order the old
//! `BinaryHeap<Reverse<Event>>` produced, so seeded replays remain
//! bit-identical across the swap. Slots are sorted by `(at, seq)` when they
//! are opened; entries pushed into the bucket currently being drained are
//! placed by binary search.
//!
//! Allocation churn: slot buffers are `VecDeque`s that are *swapped*, never
//! dropped — the drained current bucket donates its capacity back to the
//! slot it came from, so after warm-up the steady-state push/pop cycle of a
//! periodic workload performs no allocation at all (this is the event-struct
//! free list: storage is recycled in place instead of boxed per event).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// log2 of the tick length in nanoseconds (~65.5 µs per tick).
const TICK_SHIFT: u32 = 16;
/// log2 of the slot count per level.
const SLOT_BITS: u32 = 8;
const SLOTS: usize = 1 << SLOT_BITS;
const LEVELS: usize = 3;
const WORDS: usize = SLOTS / 64;

#[derive(Debug)]
struct Entry<T> {
    at: u64,
    seq: u64,
    value: T,
}

impl<T> Entry<T> {
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.at, self.seq)
    }
}

/// Overflow-heap wrapper ordering entries by `(at, seq)` only.
struct HeapEntry<T>(Entry<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.key().cmp(&other.0.key())
    }
}

/// A deterministic event queue: hierarchical timer wheel + overflow heap.
///
/// `push` accepts `(at, seq, value)` where `at` is absolute virtual
/// nanoseconds and `seq` a strictly increasing tie-breaker; `pop` returns
/// entries in exact `(at, seq)` order. `at` must never be earlier than the
/// last popped entry's `at` (the kernel's monotonic-time invariant).
pub struct EventWheel<T> {
    /// Cursor tick: `at >> TICK_SHIFT` of the last popped entry (or the
    /// bucket currently being drained).
    base: u64,
    len: usize,
    /// The bucket being drained: all entries have `tick == base`, sorted
    /// ascending by `(at, seq)`.
    current: VecDeque<Entry<T>>,
    /// `levels[l][s]` holds unsorted entries whose tick shares the cursor's
    /// prefix above level `l` and selects slot `s` at level `l`.
    levels: Vec<Vec<VecDeque<Entry<T>>>>,
    /// Occupancy bitmaps, one bit per slot.
    occupancy: [[u64; WORDS]; LEVELS],
    /// Events too far in the future for the top level.
    overflow: BinaryHeap<Reverse<HeapEntry<T>>>,
}

impl<T> Default for EventWheel<T> {
    fn default() -> Self {
        EventWheel::new()
    }
}

impl<T> EventWheel<T> {
    /// An empty wheel with the cursor at virtual time zero.
    pub fn new() -> EventWheel<T> {
        EventWheel {
            base: 0,
            len: 0,
            current: VecDeque::new(),
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| VecDeque::new()).collect())
                .collect(),
            occupancy: [[0; WORDS]; LEVELS],
            overflow: BinaryHeap::new(),
        }
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `value` at `(at, seq)`. `at` is absolute nanoseconds and
    /// must be no earlier than the last popped entry's `at`.
    pub fn push(&mut self, at: u64, seq: u64, value: T) {
        debug_assert!(
            at >> TICK_SHIFT >= self.base,
            "event scheduled before the queue cursor"
        );
        self.len += 1;
        self.file(Entry { at, seq, value });
    }

    /// `(at, seq)` of the earliest entry, without mutating the queue.
    pub fn peek(&self) -> Option<(u64, u64)> {
        if let Some(e) = self.current.front() {
            return Some(e.key());
        }
        // Levels are strictly ordered: every level-0 entry precedes every
        // level-1 entry (they differ in tick bits above level 0 and share
        // the higher prefix), and the wheel wholly precedes the overflow.
        for l in 0..LEVELS {
            if let Some(s) = self.first_occupied(l) {
                return self.levels[l][s].iter().map(Entry::key).min();
            }
        }
        self.overflow.peek().map(|r| r.0 .0.key())
    }

    /// Remove and return the earliest entry.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        if self.current.is_empty() {
            self.advance();
        }
        let e = self.current.pop_front()?;
        self.len -= 1;
        Some((e.at, e.seq, e.value))
    }

    /// Remove and return the earliest entry only if `pred` accepts it.
    ///
    /// This is the kernel's batching primitive: after popping one delivery
    /// it keeps popping *only* while the next-due entry shares the same
    /// instant and destination, so coalescing can never reorder events —
    /// the run it collects is exactly a prefix of the `(at, seq)` order.
    ///
    /// Deliberately looks only at the bucket the last `pop` opened (events
    /// at one instant always share a bucket, so no same-instant run is ever
    /// missed): advancing the cursor here could move it past the caller's
    /// current instant, which would break the monotonic-push invariant for
    /// handlers that schedule work at `now` mid-batch.
    pub fn pop_if(
        &mut self,
        pred: impl FnOnce(u64, u64, &T) -> bool,
    ) -> Option<(u64, u64, T)> {
        let e = self.current.front()?;
        if !pred(e.at, e.seq, &e.value) {
            return None;
        }
        let e = self.current.pop_front().expect("front checked above");
        self.len -= 1;
        Some((e.at, e.seq, e.value))
    }

    /// Route an entry to the current bucket, a wheel slot, or the overflow,
    /// based on which tick prefix it shares with the cursor.
    fn file(&mut self, e: Entry<T>) {
        let tick = e.at >> TICK_SHIFT;
        if tick == self.base {
            let key = e.key();
            let idx = match self.current.binary_search_by(|x| x.key().cmp(&key)) {
                Ok(i) | Err(i) => i,
            };
            self.current.insert(idx, e);
            return;
        }
        for l in 0..LEVELS as u32 {
            if tick >> ((l + 1) * SLOT_BITS) == self.base >> ((l + 1) * SLOT_BITS) {
                let s = ((tick >> (l * SLOT_BITS)) & (SLOTS as u64 - 1)) as usize;
                self.levels[l as usize][s].push_back(e);
                self.occupancy[l as usize][s / 64] |= 1 << (s % 64);
                return;
            }
        }
        self.overflow.push(Reverse(HeapEntry(e)));
    }

    /// Refill `current` with the next-due bucket, cascading outer levels
    /// and the overflow inward as the cursor jumps forward.
    fn advance(&mut self) {
        while self.current.is_empty() {
            if let Some(s) = self.first_occupied(0) {
                // Open the slot as the new current bucket; the old (empty)
                // current buffer is swapped in, recycling its capacity.
                self.base = (self.base & !(SLOTS as u64 - 1)) | s as u64;
                self.occupancy[0][s / 64] &= !(1 << (s % 64));
                std::mem::swap(&mut self.current, &mut self.levels[0][s]);
                self.current
                    .make_contiguous()
                    .sort_unstable_by(|a, b| a.key().cmp(&b.key()));
                return;
            }
            let mut cascaded = false;
            for l in 1..LEVELS {
                if let Some(s) = self.first_occupied(l) {
                    let span = (l as u32 + 1) * SLOT_BITS;
                    self.base = (self.base & !((1u64 << span) - 1))
                        | ((s as u64) << (l as u32 * SLOT_BITS));
                    self.occupancy[l][s / 64] &= !(1 << (s % 64));
                    let mut q = std::mem::take(&mut self.levels[l][s]);
                    for e in q.drain(..) {
                        self.file(e);
                    }
                    self.levels[l][s] = q; // give the (empty) buffer back
                    cascaded = true;
                    break;
                }
            }
            if cascaded {
                continue;
            }
            // Wheel fully drained: jump the cursor to the overflow's
            // earliest window and pull that window in.
            let Some(top) = self.overflow.peek() else {
                return;
            };
            self.base = top.0 .0.at >> TICK_SHIFT;
            let prefix = self.base >> (LEVELS as u32 * SLOT_BITS);
            while let Some(top) = self.overflow.peek() {
                if (top.0 .0.at >> TICK_SHIFT) >> (LEVELS as u32 * SLOT_BITS) != prefix {
                    break;
                }
                let Reverse(HeapEntry(e)) = self.overflow.pop().expect("peeked");
                self.file(e);
            }
        }
    }

    fn first_occupied(&self, level: usize) -> Option<usize> {
        for (w, &word) in self.occupancy[level].iter().enumerate() {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Reference model: the plain binary heap the wheel replaces.
    #[derive(Default)]
    struct RefQueue {
        heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    }

    impl RefQueue {
        fn push(&mut self, at: u64, seq: u64, v: u32) {
            self.heap.push(Reverse((at, seq, v)));
        }
        fn peek(&self) -> Option<(u64, u64)> {
            self.heap.peek().map(|r| (r.0 .0, r.0 .1))
        }
        fn pop(&mut self) -> Option<(u64, u64, u32)> {
            self.heap.pop().map(|r| r.0)
        }
    }

    /// Tiny deterministic PRNG (std-only; no rand dependency here).
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    #[test]
    fn matches_heap_on_random_interleavings() {
        for seed in 0..20u64 {
            let mut rng = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1));
            let mut wheel = EventWheel::new();
            let mut reference = RefQueue::default();
            let mut seq = 0u64;
            let mut now = 0u64;
            for step in 0..4000 {
                let op = rng.next() % 10;
                if op < 6 || wheel.is_empty() {
                    // push with a delay profile mixing same-tick, near,
                    // mid-wheel, far-wheel and overflow horizons
                    let delay = match rng.next() % 6 {
                        0 => rng.next() % 1000,                    // same tick
                        1 => rng.next() % (1 << 20),               // level 0
                        2 => rng.next() % (1 << 28),               // level 1
                        3 => rng.next() % (1 << 36),               // level 2
                        4 => rng.next() % (1 << 44),               // overflow
                        _ => 0,                                    // immediate
                    };
                    let at = now + delay;
                    wheel.push(at, seq, step);
                    reference.push(at, seq, step);
                    seq += 1;
                } else {
                    assert_eq!(wheel.peek(), reference.peek(), "seed {seed} step {step}");
                    let got = wheel.pop();
                    let want = reference.pop();
                    assert_eq!(got.is_some(), want.is_some());
                    if let (Some(g), Some(w)) = (got, want) {
                        assert_eq!(g, w, "seed {seed} step {step}");
                        now = g.0;
                    }
                }
                assert_eq!(wheel.len(), reference.heap.len());
            }
            // drain
            while let Some(w) = reference.pop() {
                assert_eq!(wheel.pop(), Some(w));
            }
            assert!(wheel.is_empty());
            assert_eq!(wheel.pop(), None);
        }
    }

    #[test]
    fn periodic_rearm_keeps_fifo_ties() {
        // N timers firing at the same instants repeatedly: re-arm order
        // must follow insertion sequence exactly.
        let mut wheel = EventWheel::new();
        let mut seq = 0u64;
        let interval = 500 * 1_000_000u64; // 500 ms in ns
        for id in 0..64u32 {
            wheel.push(interval, seq, id);
            seq += 1;
        }
        for round in 1..50u64 {
            for expect in 0..64u32 {
                let (at, _s, id) = wheel.pop().expect("entry due");
                assert_eq!(at, round * interval);
                assert_eq!(id, expect, "FIFO tie-break broken in round {round}");
                wheel.push(at + interval, seq, id);
                seq += 1;
            }
        }
    }

    #[test]
    fn pop_if_takes_only_matching_front() {
        let mut wheel = EventWheel::new();
        wheel.push(100, 0, 7);
        wheel.push(100, 1, 8);
        wheel.push(200, 2, 9);
        // Predicate rejects: nothing removed.
        assert!(wheel.pop_if(|_, _, &v| v == 8).is_none());
        assert_eq!(wheel.len(), 3);
        // Predicate accepts the front only.
        assert_eq!(wheel.pop_if(|at, _, _| at == 100), Some((100, 0, 7)));
        assert_eq!(wheel.pop_if(|at, _, _| at == 100), Some((100, 1, 8)));
        // Next entry is at 200: the same-instant run is over.
        assert!(wheel.pop_if(|at, _, _| at == 100).is_none());
        assert_eq!(wheel.pop(), Some((200, 2, 9)));
        assert!(wheel.pop_if(|_, _, _| true).is_none());
    }

    #[test]
    fn pop_if_never_advances_the_cursor() {
        let mut wheel = EventWheel::new();
        // The entry sits in a future slot, not the open bucket: pop_if must
        // not pull the cursor forward to reach it (that would forbid
        // pushing at earlier instants), so it declines even on `true`.
        wheel.push(1 << 20, 0, 1);
        assert!(wheel.pop_if(|_, _, _| true).is_none());
        assert_eq!(wheel.len(), 1);
        assert_eq!(wheel.pop(), Some((1 << 20, 0, 1)));
        assert!(wheel.is_empty());
    }

    #[test]
    fn far_future_overflow_comes_back() {
        let mut wheel = EventWheel::new();
        let hour = 3_600_000_000_000u64;
        wheel.push(3 * hour, 0, 1);
        wheel.push(1_000, 1, 2);
        wheel.push(2 * hour, 2, 3);
        assert_eq!(wheel.pop().map(|e| e.2), Some(2));
        assert_eq!(wheel.pop().map(|e| e.2), Some(3));
        assert_eq!(wheel.pop().map(|e| e.2), Some(1));
        assert!(wheel.is_empty());
    }
}
