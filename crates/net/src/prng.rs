/// A small, fast, *stable* pseudo-random generator (xoshiro256\*\*, seeded
/// through SplitMix64).
///
/// Digibox promises reproducible experiments, so the random streams that
/// drive event generators and link jitter must be stable across library
/// versions and platforms — which rules out depending on `rand`'s
/// unspecified `StdRng` algorithm for anything that lands in a shared trace.
/// `Prng` is ~60 lines, fully specified, and splittable: [`Prng::split`]
/// derives an independent child stream, which is how every mock, scene and
/// link gets its own stream from one testbed seed.
#[derive(Debug, Clone)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Seed via SplitMix64 (never yields the all-zero state).
    pub fn new(seed: u64) -> Prng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Prng { s: [next(), next(), next(), next()] }
    }

    /// Derive an independent child stream, keyed by `label` so siblings
    /// differ. Deterministic: does not advance `self`.
    pub fn split(&self, label: u64) -> Prng {
        // Mix the parent state and the label through SplitMix64 again.
        let mix = self.s[0] ^ self.s[1].rotate_left(17) ^ self.s[2].rotate_left(31) ^ self.s[3];
        Prng::new(mix ^ label.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Derive a child stream keyed by a string label (FNV-1a).
    pub fn split_str(&self, label: &str) -> Prng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.split(h)
    }

    /// The next raw 64-bit output of the generator.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)` (`lo < hi`). Uses Lemire-style
    /// widening reduction; slight modulo bias is irrelevant here.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64 requires lo < hi");
        let span = hi - lo;
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)` (`lo < hi`), signed variant.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "range_i64 requires lo < hi");
        lo.wrapping_add(self.range_u64(0, (hi - lo) as u64) as i64)
    }

    /// Uniform index in `[lo, hi)` (`lo < hi`).
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fair coin (the paper's `random.choice([True, False])`).
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Pick a uniform element from a slice (`None` when empty).
    pub fn choice<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.range_usize(0, items.len())])
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Exponential sample with the given mean (inter-arrival times).
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.f64(); // (0, 1]
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller (one value per call; the pair's twin
    /// is discarded for simplicity).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        mean + std_dev * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn split_streams_are_independent_and_stable() {
        let parent = Prng::new(7);
        let mut c1 = parent.split(1);
        let mut c1_again = parent.split(1);
        let mut c2 = parent.split(2);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
        let mut s1 = parent.split_str("O1");
        let mut s2 = parent.split_str("O2");
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Prng::new(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = Prng::new(4);
        for _ in 0..10_000 {
            let v = rng.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn chance_rate_roughly_correct() {
        let mut rng = Prng::new(5);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate was {rate}");
    }

    #[test]
    fn exp_mean_roughly_correct() {
        let mut rng = Prng::new(6);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.exp(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean was {mean}");
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = Prng::new(8);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.15, "var was {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Prng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choice_on_empty_is_none() {
        let mut rng = Prng::new(10);
        assert!(rng.choice::<u8>(&[]).is_none());
    }
}
