//! Handler footprint probing.
//!
//! The analyzer learns what each program's handlers read and write by
//! *running them* — not a full simulation, just the handler functions
//! against a default-instantiated model, wrapped in the core footprint
//! recorder ([`digibox_core::footprint::record`]). Scenes get a synthetic
//! attachment of every catalog kind (named `probe-<Kind>`), so their
//! coordination writes surface no matter which kinds the real ensemble
//! attaches.
//!
//! Two capture channels are merged per handler invocation:
//!
//! * the thread-local recorder, which sees every access routed through the
//!   `SimCtx`/`LoopCtx`/`Atts` APIs (including change-guarded writes that
//!   end up not mutating anything);
//! * a model diff around the call, which catches direct `ctx.model.set`
//!   writes that bypass the context (physical-fidelity handlers do this).
//!
//! Handlers are probed over several rounds with varied seeds and times and
//! with state carried across rounds, so probabilistic branches get a
//! chance to run. The result is still an *under*-approximation — a branch
//! no probe round takes stays invisible — which is why footprint-based
//! lints err toward warnings rather than errors.

use std::collections::BTreeMap;

use digibox_core::footprint::record;
use digibox_core::program::{LoopCtx, SimCtx};
use digibox_core::{Atts, Catalog, CatalogError, Footprint};
use digibox_model::{diff, Schema};
use digibox_net::{Prng, SimDuration, SimTime};

/// How many (on_loop, on_model) rounds each program is probed for.
const PROBE_ROUNDS: u64 = 4;

/// What probing learned about one program kind.
#[derive(Debug, Clone)]
pub struct ProgramProfile {
    pub kind: String,
    pub is_scene: bool,
    pub schema: Schema,
    /// Event-generator footprint. For scenes, attachment accesses are
    /// keyed by child *kind* (the synthetic probe names are mapped back).
    pub on_loop: Footprint,
    /// Simulation-handler footprint, same keying.
    pub on_model: Footprint,
}

impl ProgramProfile {
    /// Own-model paths written by either handler.
    pub fn writes(&self) -> impl Iterator<Item = &str> {
        self.on_loop.writes.iter().chain(self.on_model.writes.iter()).map(String::as_str)
    }

    /// (child kind, path) pairs either handler writes on attachments.
    pub fn att_writes(&self) -> impl Iterator<Item = (&str, &str)> {
        self.on_loop
            .att_writes
            .iter()
            .chain(self.on_model.att_writes.iter())
            .map(|(k, p)| (k.as_str(), p.as_str()))
    }

    /// (child kind, path) pairs either handler reads on attachments.
    pub fn att_reads(&self) -> impl Iterator<Item = (&str, &str)> {
        self.on_loop
            .att_reads
            .iter()
            .chain(self.on_model.att_reads.iter())
            .map(|(k, p)| (k.as_str(), p.as_str()))
    }

    /// Does either handler touch attachments of `kind` at all?
    pub fn touches_kind(&self, kind: &str) -> bool {
        self.att_reads().any(|(k, _)| k == kind) || self.att_writes().any(|(k, _)| k == kind)
    }

    pub fn emits_events(&self) -> bool {
        self.on_loop.emits + self.on_model.emits > 0
    }
}

/// Probe one program kind from the catalog.
pub fn probe(catalog: &Catalog, kind: &str) -> Result<ProgramProfile, CatalogError> {
    let mut program = catalog.make(kind)?;
    let schema = program.schema();
    let is_scene = program.is_scene();
    let mut model = schema.instantiate("probe");
    program.init(&mut model);

    let mut atts = Atts::new();
    if is_scene {
        for k in catalog.kinds() {
            let name = format!("probe-{k}");
            let child = catalog.make(k).expect("kind listed by the catalog resolves");
            let child_model = child.schema().instantiate(&name);
            atts.attach(&name, k);
            atts.observe(&name, k, child_model.fields().clone());
        }
    }

    let mut on_loop = Footprint::default();
    let mut on_model = Footprint::default();
    let interval = model.meta.interval_ms().max(1);
    for round in 0..PROBE_ROUNDS {
        let now = SimTime::ZERO + SimDuration::from_millis(round * interval);
        let mut rng = Prng::new(0xD1B0 ^ round);

        let before = model.fields().clone();
        let mut ctx = LoopCtx { model: &mut model, rng: &mut rng, now, emitted: Vec::new() };
        let mut fp = record(|| program.on_loop(&mut ctx));
        drop(ctx);
        for op in diff(&before, model.fields()).ops {
            fp.writes.insert(op.path().to_string());
        }
        on_loop.merge(fp);

        let before = model.fields().clone();
        let mut ctx = SimCtx {
            model: &mut model,
            atts: &mut atts,
            rng: &mut rng,
            now,
            emitted: Vec::new(),
        };
        let mut fp = record(|| program.on_model(&mut ctx));
        drop(ctx);
        for op in diff(&before, model.fields()).ops {
            fp.writes.insert(op.path().to_string());
        }
        on_model.merge(fp);
        // flush staged attachment writes so later rounds see their own
        // effects mirrored, like the real runtime echo
        let _ = atts.take_patches();
    }

    Ok(ProgramProfile {
        kind: kind.to_string(),
        is_scene,
        schema,
        on_loop: rekey_by_kind(on_loop),
        on_model: rekey_by_kind(on_model),
    })
}

/// Probe every registered kind.
pub fn profile_catalog(catalog: &Catalog) -> BTreeMap<String, ProgramProfile> {
    catalog
        .kinds()
        .into_iter()
        .map(|k| (k.to_string(), probe(catalog, k).expect("registered kind resolves")))
        .collect()
}

/// Map attachment accesses from the synthetic probe names back to kinds:
/// `("probe-Hvac", "room_temp_c")` → `("Hvac", "room_temp_c")`.
fn rekey_by_kind(mut fp: Footprint) -> Footprint {
    let rekey = |set: std::collections::BTreeSet<(String, String)>| {
        set.into_iter()
            .map(|(name, path)| match name.strip_prefix("probe-") {
                Some(kind) => (kind.to_string(), path),
                None => (name, path),
            })
            .collect()
    };
    fp.att_reads = rekey(fp.att_reads);
    fp.att_writes = rekey(fp.att_writes);
    fp
}

/// Do two dotted paths overlap (equal, or one a segment-prefix of the
/// other)? `temp_c` overlaps `temp_c` and `power` overlaps
/// `power.status`, but `temp` does not overlap `temp_c`.
pub fn paths_overlap(a: &str, b: &str) -> bool {
    if a == "*" || b == "*" {
        return true;
    }
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    long == short || long.strip_prefix(short).is_some_and(|rest| rest.starts_with('.'))
}

/// Does `path` resolve inside `schema`? Walks pair/list field kinds:
/// `power.status` resolves when `power` is declared as a pair.
pub fn schema_has_path(schema: &Schema, path: &str) -> bool {
    let mut segs = path.split('.');
    let Some(first) = segs.next() else {
        return false;
    };
    let Some(spec) = schema.fields.get(first) else {
        return false;
    };
    kind_has(&spec.kind, segs)
}

fn kind_has<'a>(kind: &digibox_model::FieldKind, mut segs: impl Iterator<Item = &'a str>) -> bool {
    use digibox_model::FieldKind;
    let Some(seg) = segs.next() else {
        return true;
    };
    match kind {
        FieldKind::Any => true,
        FieldKind::Pair { inner } => {
            (seg == "intent" || seg == "status") && kind_has(inner, segs)
        }
        FieldKind::List { inner } => seg.parse::<usize>().is_ok() && kind_has(inner, segs),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_devices::full_catalog;
    use digibox_model::FieldKind;

    #[test]
    fn mock_footprints_capture_pair_writes() {
        let catalog = full_catalog();
        let profile = probe(&catalog, "Lamp").unwrap();
        assert!(!profile.is_scene);
        // the lamp's simulation handler drives intensity from power
        assert!(profile.on_model.writes.contains("intensity.status"), "{profile:?}");
        assert!(profile.on_model.reads.iter().any(|r| r.ends_with(".intent")), "{profile:?}");
    }

    #[test]
    fn scene_footprints_are_keyed_by_child_kind() {
        let catalog = full_catalog();
        let profile = probe(&catalog, "Room").unwrap();
        assert!(profile.is_scene);
        // Fig. 5: the room correlates presence into its occupancy sensors
        assert!(
            profile.att_writes().any(|(k, p)| k == "Occupancy" && p == "triggered"),
            "{:?}",
            profile.on_model.att_writes
        );
        // and feeds room temperature into attached temperature mocks
        assert!(profile.att_writes().any(|(k, p)| k == "Temperature" && p == "temp_c"));
        assert!(profile.on_loop.writes.contains("human_presence"));
        assert!(profile.emits_events());
    }

    #[test]
    fn diff_channel_catches_direct_model_writes() {
        // Greenhouse-style physical handlers write via ctx.model.set; the
        // Room does so for temp_c under physical fidelity. Probe a Room
        // with the param set and confirm the diff channel sees it.
        let catalog = full_catalog();
        let mut program = catalog.make("Room").unwrap();
        let schema = program.schema();
        let mut model = schema.instantiate("probe");
        program.init(&mut model);
        model.meta.params.insert("fidelity".into(), "physical".into());
        // enough heating that one step moves temp_c past the 0.01 rounding
        model.meta.params.insert("hvac_heat_c_per_s".into(), 2.0.into());
        let mut rng = Prng::new(7);
        let before = model.fields().clone();
        let mut ctx = LoopCtx {
            model: &mut model,
            rng: &mut rng,
            now: SimTime::ZERO,
            emitted: Vec::new(),
        };
        let mut fp = record(|| program.on_loop(&mut ctx));
        drop(ctx);
        for op in diff(&before, model.fields()).ops {
            fp.writes.insert(op.path().to_string());
        }
        assert!(fp.writes.contains("temp_c"), "{:?}", fp.writes);
    }

    #[test]
    fn profile_catalog_covers_every_kind() {
        let catalog = full_catalog();
        let profiles = profile_catalog(&catalog);
        assert_eq!(profiles.len(), catalog.len());
        assert!(profiles.values().filter(|p| p.is_scene).count() >= 18);
    }

    #[test]
    fn path_overlap_rules() {
        assert!(paths_overlap("temp_c", "temp_c"));
        assert!(paths_overlap("power", "power.status"));
        assert!(paths_overlap("power.status", "power"));
        assert!(!paths_overlap("temp", "temp_c"));
        assert!(!paths_overlap("power.status", "power.intent"));
        assert!(paths_overlap("*", "anything"));
    }

    #[test]
    fn schema_path_resolution() {
        let schema = Schema::new("T", "v1")
            .field("power", FieldKind::pair(FieldKind::enumeration(["off", "on"])))
            .field("temp_c", FieldKind::float())
            .field("tags", FieldKind::list(FieldKind::Str));
        assert!(schema_has_path(&schema, "temp_c"));
        assert!(schema_has_path(&schema, "power"));
        assert!(schema_has_path(&schema, "power.status"));
        assert!(schema_has_path(&schema, "power.intent"));
        assert!(!schema_has_path(&schema, "power.other"));
        assert!(!schema_has_path(&schema, "temp_c.status"));
        assert!(!schema_has_path(&schema, "missing"));
        assert!(schema_has_path(&schema, "tags.0"));
        assert!(!schema_has_path(&schema, "tags.x"));
    }
}
