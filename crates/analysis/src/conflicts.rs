//! Write-write conflict detection (DL0001) and scene writes that miss the
//! child's schema (DL0003, ensemble flavour).
//!
//! The runtime idiom (paper §3.2) is that a scene *manages* the mocks it
//! coordinates: their own event generators are paused (`managed = true`)
//! and the scene's simulation handler drives the correlated fields. An
//! unmanaged child whose generator writes the same field the parent scene
//! writes ping-pongs between the two writers — the scene sets the value,
//! the next generator tick overwrites it, the scene sets it back. That is
//! almost always a misconfiguration, and it is statically visible from the
//! probed footprints.

use std::collections::BTreeMap;

use digibox_registry::SetupManifest;

use crate::diag::{LintCode, Report, Span};
use crate::footprints::{paths_overlap, schema_has_path, ProgramProfile};

pub fn check(
    manifest: &SetupManifest,
    profiles: &BTreeMap<String, ProgramProfile>,
    report: &mut Report,
) {
    let decls: BTreeMap<&str, &digibox_registry::InstanceDecl> =
        manifest.instances.iter().map(|i| (i.name.as_str(), i)).collect();

    for (child, parent) in &manifest.attachments {
        let (Some(child_decl), Some(parent_decl)) =
            (decls.get(child.as_str()), decls.get(parent.as_str()))
        else {
            continue; // dangling: DL0007 already reported
        };
        let (Some(child_profile), Some(parent_profile)) =
            (profiles.get(&child_decl.kind), profiles.get(&parent_decl.kind))
        else {
            continue; // unknown kind: DL0005 already reported
        };
        if !parent_profile.is_scene {
            continue; // DL0009 already reported
        }
        for (kind, path) in parent_profile.att_writes() {
            if kind != child_decl.kind {
                continue;
            }
            if !child_decl.managed {
                if let Some(conflict) = child_profile
                    .on_loop
                    .writes
                    .iter()
                    .find(|w| paths_overlap(w, path))
                {
                    report.push(
                        LintCode::WriteConflict,
                        Span::at_digi(child).handler("on_loop").path(conflict),
                        format!(
                            "scene {parent:?} writes `{path}` on its {kind} children, but \
                             {child:?} is unmanaged and its event generator also writes \
                             `{conflict}`; the two writers will fight — run {child:?} with \
                             managed=true or detach it"
                        ),
                    );
                }
            }
            if !schema_has_path(&child_profile.schema, path) {
                report.push(
                    LintCode::WriteOutsideSchema,
                    Span::at_digi(child).path(path),
                    format!(
                        "scene {parent:?} writes `{path}` on its {kind} children, but the \
                         {kind} schema declares no such field"
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_core::program::{DigiProgram, LoopCtx, SimCtx};
    use digibox_core::Catalog;
    use digibox_devices::full_catalog;
    use digibox_model::{vmap, FieldKind, Schema};
    use digibox_registry::InstanceDecl;

    use crate::footprints::probe;

    fn decl(name: &str, kind: &str, managed: bool) -> InstanceDecl {
        InstanceDecl {
            name: name.into(),
            kind: kind.into(),
            version: "v1".into(),
            managed,
            params: BTreeMap::new(),
        }
    }

    fn lint(catalog: &Catalog, manifest: &SetupManifest) -> Report {
        let mut profiles = BTreeMap::new();
        for inst in &manifest.instances {
            if !profiles.contains_key(&inst.kind) {
                profiles.insert(inst.kind.clone(), probe(catalog, &inst.kind).unwrap());
            }
        }
        let mut report = Report::new();
        check(manifest, &profiles, &mut report);
        report
    }

    /// The deliberately conflicting pair: a gauge mock whose generator
    /// random-walks `reading`, and a driver scene that also writes
    /// `reading` on every attached Gauge.
    struct Gauge;
    impl DigiProgram for Gauge {
        fn kind(&self) -> &str {
            "Gauge"
        }
        fn version(&self) -> &str {
            "v1"
        }
        fn program_id(&self) -> &str {
            "test/gauge"
        }
        fn schema(&self) -> Schema {
            Schema::new("Gauge", "v1").field("reading", FieldKind::float())
        }
        fn on_loop(&mut self, ctx: &mut LoopCtx) {
            let next = ctx.rng.range_f64(0.0, 10.0);
            ctx.update(vmap! { "reading" => next });
        }
    }

    struct Driver;
    impl DigiProgram for Driver {
        fn kind(&self) -> &str {
            "Driver"
        }
        fn version(&self) -> &str {
            "v1"
        }
        fn program_id(&self) -> &str {
            "test/driver"
        }
        fn schema(&self) -> Schema {
            Schema::new("Driver", "v1").field("target", FieldKind::float())
        }
        fn is_scene(&self) -> bool {
            true
        }
        fn on_model(&mut self, ctx: &mut SimCtx) {
            let target = ctx.field_f64("target").unwrap_or(0.0);
            let gauges: Vec<String> =
                ctx.atts.of_type("Gauge").into_iter().map(str::to_string).collect();
            for g in gauges {
                ctx.atts.set(&g, "reading", target);
                ctx.atts.set(&g, "calibration", 1.0); // not in Gauge's schema
            }
        }
    }

    fn fixture_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(|| Box::new(Gauge)).unwrap();
        c.register(|| Box::new(Driver)).unwrap();
        c
    }

    #[test]
    fn conflicting_two_handler_fixture_is_flagged() {
        let catalog = fixture_catalog();
        let mut m = SetupManifest::new("conflict", 1);
        m.instances.push(decl("G1", "Gauge", false));
        m.instances.push(decl("D1", "Driver", false));
        m.attachments.push(("G1".into(), "D1".into()));
        let report = lint(&catalog, &m);
        let conflict = report
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::WriteConflict)
            .expect("DL0001 expected");
        assert_eq!(conflict.span.digi.as_deref(), Some("G1"));
        assert_eq!(conflict.span.path.as_deref(), Some("reading"));
        assert!(conflict.message.contains("managed=true"), "{}", conflict.message);
        // the off-schema calibration write is flagged too
        assert!(
            report.diagnostics.iter().any(|d| d.code == LintCode::WriteOutsideSchema
                && d.span.path.as_deref() == Some("calibration")),
            "{report:?}"
        );
    }

    #[test]
    fn managing_the_child_resolves_the_conflict() {
        let catalog = fixture_catalog();
        let mut m = SetupManifest::new("managed", 1);
        m.instances.push(decl("G1", "Gauge", true));
        m.instances.push(decl("D1", "Driver", false));
        m.attachments.push(("G1".into(), "D1".into()));
        let report = lint(&catalog, &m);
        assert!(!report.diagnostics.iter().any(|d| d.code == LintCode::WriteConflict));
    }

    #[test]
    fn real_library_case_room_vs_unmanaged_temperature() {
        // The Room scene drives temp_c on attached Temperature mocks; an
        // unmanaged Temperature random-walks temp_c itself.
        let catalog = full_catalog();
        let mut m = SetupManifest::new("room", 1);
        m.instances.push(decl("T1", "Temperature", false));
        m.instances.push(decl("R1", "Room", false));
        m.attachments.push(("T1".into(), "R1".into()));
        let report = lint(&catalog, &m);
        assert!(
            report.diagnostics.iter().any(|d| d.code == LintCode::WriteConflict
                && d.span.digi.as_deref() == Some("T1")),
            "{report:?}"
        );
        // managed (the walkthrough idiom) is clean
        let mut m = SetupManifest::new("room", 1);
        m.instances.push(decl("T1", "Temperature", true));
        m.instances.push(decl("R1", "Room", false));
        m.attachments.push(("T1".into(), "R1".into()));
        assert!(lint(&catalog, &m).is_clean());
    }
}
