//! Scene-graph checks: names, attachment shape, parent kinds.
//!
//! These overlap with `SetupManifest::validate`, deliberately: `validate`
//! is a gate that stops at the first problem, while the lint pass walks
//! the whole graph and reports *every* problem with a code and span.

use std::collections::{BTreeMap, BTreeSet};

use digibox_core::{topics, Catalog};
use digibox_registry::SetupManifest;

use crate::diag::{LintCode, Report, Span};

pub fn check(manifest: &SetupManifest, catalog: &Catalog, report: &mut Report) {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for inst in &manifest.instances {
        if !seen.insert(&inst.name) {
            report.push(
                LintCode::DuplicateName,
                Span::at_digi(&inst.name),
                format!("instance name {:?} is declared more than once", inst.name),
            );
        }
        check_name(&inst.name, report);
    }

    let names: BTreeSet<&str> = manifest.instances.iter().map(|i| i.name.as_str()).collect();
    let kind_of: BTreeMap<&str, &str> =
        manifest.instances.iter().map(|i| (i.name.as_str(), i.kind.as_str())).collect();

    let mut parent_of: BTreeMap<&str, &str> = BTreeMap::new();
    for (child, parent) in &manifest.attachments {
        let mut dangling = false;
        for end in [child, parent] {
            if !names.contains(end.as_str()) {
                dangling = true;
                report.push(
                    LintCode::DanglingAttach,
                    Span::at_digi(end),
                    format!(
                        "attachment ({child:?} -> {parent:?}) references undeclared instance {end:?}"
                    ),
                );
            }
        }
        if child == parent {
            report.push(
                LintCode::AttachCycle,
                Span::at_digi(child),
                format!("{child:?} is attached to itself"),
            );
            continue;
        }
        if !dangling {
            if let Some(first) = parent_of.get(child.as_str()) {
                report.push(
                    LintCode::MultipleParents,
                    Span::at_digi(child),
                    format!("{child:?} is attached to both {first:?} and {parent:?}"),
                );
                continue;
            }
            parent_of.insert(child.as_str(), parent.as_str());
        }
        // parents must be scenes (skip unknown kinds: DL0005 covers those)
        if let Some(kind) = kind_of.get(parent.as_str()) {
            if let Ok(program) = catalog.make(kind) {
                if !program.is_scene() {
                    report.push(
                        LintCode::ParentNotScene,
                        Span::at_digi(parent),
                        format!("{parent:?} ({kind}) is a mock, not a scene; it cannot ensemble {child:?}"),
                    );
                }
            }
        }
    }

    // cycle detection: follow parent chains (each child has one parent
    // after the multi-parent filter, so chains either terminate or loop)
    let mut reported: BTreeSet<&str> = BTreeSet::new();
    for start in parent_of.keys() {
        let mut cur: &str = start;
        let mut trail = vec![cur];
        while let Some(next) = parent_of.get(cur) {
            cur = next;
            if cur == *start {
                // report each cycle once, from its lexicographically first
                // member
                if trail.iter().min() == Some(start) && reported.insert(start) {
                    trail.push(cur);
                    report.push(
                        LintCode::AttachCycle,
                        Span::at_digi(start),
                        format!("attachment cycle: {}", trail.join(" -> ")),
                    );
                }
                break;
            }
            if trail.len() > manifest.attachments.len() {
                break;
            }
            trail.push(cur);
        }
    }
}

/// A digi name must round-trip through the topic conventions: its model
/// topic has to be a valid, wildcard-free MQTT topic that parses back to
/// the same name.
fn check_name(name: &str, report: &mut Report) {
    let topic = topics::model(name);
    let ok = !name.is_empty()
        && digibox_broker::validate_topic(&topic)
        && topics::digi_of(&topic) == Some(name)
        && topics::channel_of(&topic) == Some("model");
    if !ok {
        report.push(
            LintCode::TopicUnsafeName,
            Span::at_digi(name).topic(&topic),
            format!(
                "digi name {name:?} breaks the topic conventions (its model topic would be {topic:?})"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_devices::full_catalog;
    use digibox_registry::InstanceDecl;

    fn decl(name: &str, kind: &str) -> InstanceDecl {
        InstanceDecl {
            name: name.into(),
            kind: kind.into(),
            version: "v1".into(),
            managed: false,
            params: BTreeMap::new(),
        }
    }

    fn lint(manifest: &SetupManifest) -> Report {
        let mut report = Report::new();
        check(manifest, &full_catalog(), &mut report);
        report
    }

    fn codes(report: &Report) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_graph_is_quiet() {
        let mut m = SetupManifest::new("ok", 1);
        m.instances.push(decl("O1", "Occupancy"));
        m.instances.push(decl("R1", "Room"));
        m.attachments.push(("O1".into(), "R1".into()));
        assert!(lint(&m).is_clean());
    }

    #[test]
    fn duplicate_names_flagged() {
        let mut m = SetupManifest::new("dup", 1);
        m.instances.push(decl("L1", "Lamp"));
        m.instances.push(decl("L1", "Fan"));
        assert_eq!(codes(&lint(&m)), ["DL0008"]);
    }

    #[test]
    fn topic_unsafe_names_flagged() {
        let mut m = SetupManifest::new("names", 1);
        for bad in ["a/b", "a+b", "#", ""] {
            m.instances.push(decl(bad, "Lamp"));
        }
        m.instances.push(decl("fine-name_0", "Lamp"));
        let report = lint(&m);
        assert_eq!(codes(&report), ["DL0004"; 4], "{report:?}");
    }

    #[test]
    fn dangling_and_self_attach() {
        let mut m = SetupManifest::new("bad", 1);
        m.instances.push(decl("R1", "Room"));
        m.attachments.push(("ghost".into(), "R1".into()));
        m.attachments.push(("R1".into(), "R1".into()));
        let report = lint(&m);
        let mut c = codes(&report);
        c.sort();
        assert_eq!(c, ["DL0006", "DL0007"]);
    }

    #[test]
    fn multi_parent_and_non_scene_parent() {
        let mut m = SetupManifest::new("bad", 1);
        m.instances.push(decl("O1", "Occupancy"));
        m.instances.push(decl("R1", "Room"));
        m.instances.push(decl("R2", "Room"));
        m.instances.push(decl("L1", "Lamp"));
        m.attachments.push(("O1".into(), "R1".into()));
        m.attachments.push(("O1".into(), "R2".into()));
        m.attachments.push(("R1".into(), "L1".into()));
        let report = lint(&m);
        let mut c = codes(&report);
        c.sort();
        assert_eq!(c, ["DL0009", "DL0010"], "{report:?}");
    }

    #[test]
    fn cycles_reported_once() {
        let mut m = SetupManifest::new("cycle", 1);
        m.instances.push(decl("A", "Room"));
        m.instances.push(decl("B", "Building"));
        m.instances.push(decl("C", "Campus"));
        m.attachments.push(("A".into(), "B".into()));
        m.attachments.push(("B".into(), "C".into()));
        m.attachments.push(("C".into(), "A".into()));
        let report = lint(&m);
        assert_eq!(codes(&report), ["DL0006"], "{report:?}");
        assert!(report.diagnostics[0].message.contains("A -> B -> C -> A"));
    }
}
