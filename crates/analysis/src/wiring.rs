//! Topic-wiring checks (DL0002): build the ensemble's static MQTT graph —
//! who subscribes to what, who can publish what — on the broker's own
//! interned trie, and flag subscriptions that no publisher can ever match.
//!
//! Statically derivable wiring, per the `core::topics` conventions:
//!
//! * every digi publishes `digibox/digi/<name>/model` (retained) and
//!   subscribes to its own `intent` and `set` topics;
//! * a digi publishes its `event` topic when a probed handler emits;
//! * a parent scene subscribes to each attached child's `model` topic and
//!   publishes to a child's `set` topic iff its handlers stage writes for
//!   that child's kind;
//! * `intent` publishes come from applications and `dbox edit`, which the
//!   analyzer cannot see — intent subscriptions are therefore never
//!   reported dead.
//!
//! What remains checkable is the attachment contract: a child is attached
//! so the parent can read its model or drive its fields. If the parent's
//! probed footprints do neither for that child's kind, the child's `set`
//! subscription is dead *and* its model publishes go unread — the
//! attachment is inert (DL0002, info: an application may still be the
//! intended consumer, as with the walkthrough's lamp).

use std::collections::BTreeMap;

use digibox_broker::TopicTrie;
use digibox_core::topics;
use digibox_registry::SetupManifest;

use crate::diag::{LintCode, Report, Span};
use crate::footprints::ProgramProfile;

/// A statically-known subscription: (subscriber, purpose).
#[derive(Debug, Clone, PartialEq)]
enum Sub {
    OwnIntent(String),
    OwnSet(String),
    ParentModelMirror { parent: String, child: String },
}

pub fn check(
    manifest: &SetupManifest,
    profiles: &BTreeMap<String, ProgramProfile>,
    report: &mut Report,
) {
    let decls: BTreeMap<&str, &digibox_registry::InstanceDecl> =
        manifest.instances.iter().map(|i| (i.name.as_str(), i)).collect();

    // subscription side of the graph, on the broker's trie
    let mut subs: TopicTrie<Sub> = TopicTrie::new();
    for inst in &manifest.instances {
        subs.insert(&topics::intent(&inst.name), Sub::OwnIntent(inst.name.clone()));
        subs.insert(&topics::set(&inst.name), Sub::OwnSet(inst.name.clone()));
    }
    for (child, parent) in &manifest.attachments {
        if decls.contains_key(child.as_str()) && decls.contains_key(parent.as_str()) {
            subs.insert(
                &topics::model(child),
                Sub::ParentModelMirror { parent: parent.clone(), child: child.clone() },
            );
        }
    }

    // publish side: model topics always, event topics when a probe emitted,
    // set topics for children whose kind the parent stages writes for
    let mut publishes: Vec<String> = Vec::new();
    for inst in &manifest.instances {
        publishes.push(topics::model(&inst.name));
        if profiles.get(&inst.kind).is_some_and(|p| p.emits_events()) {
            publishes.push(topics::event(&inst.name));
        }
    }
    for (child, parent) in &manifest.attachments {
        let (Some(child_decl), Some(parent_decl)) =
            (decls.get(child.as_str()), decls.get(parent.as_str()))
        else {
            continue;
        };
        if profiles
            .get(&parent_decl.kind)
            .is_some_and(|p| p.att_writes().any(|(k, _)| k == child_decl.kind))
        {
            publishes.push(topics::set(child));
        }
    }

    // match publishes against the subscription trie
    let mut matched: Vec<&Sub> = Vec::new();
    for topic in &publishes {
        matched.extend(subs.lookup(topic));
    }

    // a child whose set subscription is never published to and whose model
    // mirror the parent never reads has an inert attachment
    for (child, parent) in &manifest.attachments {
        let (Some(child_decl), Some(parent_decl)) =
            (decls.get(child.as_str()), decls.get(parent.as_str()))
        else {
            continue;
        };
        let Some(parent_profile) = profiles.get(&parent_decl.kind) else {
            continue;
        };
        if !parent_profile.is_scene {
            continue; // DL0009 already reported
        }
        let set_reached = matched
            .iter()
            .any(|s| matches!(s, Sub::OwnSet(n) if n == child));
        let mirror_read = parent_profile
            .att_reads()
            .any(|(k, _)| k == child_decl.kind);
        if !set_reached && !mirror_read {
            report.push(
                LintCode::InertAttachment,
                Span::at_digi(child).topic(&topics::set(child)),
                format!(
                    "{child:?} is attached to {parent:?}, but {} handlers neither read nor \
                     write {} attachments; the attachment only matters if an application \
                     consumes {child:?} directly",
                    parent_decl.kind, child_decl.kind
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_devices::full_catalog;
    use digibox_registry::InstanceDecl;

    use crate::footprints::probe;

    fn decl(name: &str, kind: &str, managed: bool) -> InstanceDecl {
        InstanceDecl {
            name: name.into(),
            kind: kind.into(),
            version: "v1".into(),
            managed,
            params: BTreeMap::new(),
        }
    }

    fn lint(manifest: &SetupManifest) -> Report {
        let catalog = full_catalog();
        let mut profiles = BTreeMap::new();
        for inst in &manifest.instances {
            if !profiles.contains_key(&inst.kind) {
                profiles.insert(inst.kind.clone(), probe(&catalog, &inst.kind).unwrap());
            }
        }
        let mut report = Report::new();
        check(manifest, &profiles, &mut report);
        report
    }

    #[test]
    fn coordinated_attachment_is_quiet() {
        let mut m = SetupManifest::new("ok", 1);
        m.instances.push(decl("O1", "Occupancy", true));
        m.instances.push(decl("R1", "Room", false));
        m.attachments.push(("O1".into(), "R1".into()));
        assert!(lint(&m).is_clean());
    }

    #[test]
    fn ignored_attachment_is_inert() {
        // The walkthrough shape: Room never touches Lamp attachments (the
        // app drives the lamp), so the attachment is flagged as a note.
        let mut m = SetupManifest::new("lamp", 1);
        m.instances.push(decl("L1", "Lamp", false));
        m.instances.push(decl("R1", "Room", false));
        m.attachments.push(("L1".into(), "R1".into()));
        let report = lint(&m);
        assert_eq!(report.diagnostics.len(), 1, "{report:?}");
        let d = &report.diagnostics[0];
        assert_eq!(d.code, LintCode::InertAttachment);
        assert_eq!(d.code.severity(), crate::diag::Severity::Info);
        assert_eq!(d.span.digi.as_deref(), Some("L1"));
        assert_eq!(d.span.topic.as_deref(), Some("digibox/digi/L1/set"));
    }

    #[test]
    fn read_only_attachment_is_not_inert() {
        // SupplyChainRoute reads GpsTracker progress (and writes moving);
        // either alone keeps the attachment live.
        let mut m = SetupManifest::new("route", 1);
        m.instances.push(decl("G1", "GpsTracker", true));
        m.instances.push(decl("SR", "SupplyChainRoute", false));
        m.attachments.push(("G1".into(), "SR".into()));
        assert!(lint(&m).is_clean());
    }
}
