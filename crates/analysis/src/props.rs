//! Property vacuity analysis (DL0011–DL0014).
//!
//! Scene properties are checked at run time against whatever states the
//! ensemble happens to reach — a property that *cannot* fire is silently
//! useless, which is worse than one that fires spuriously. Three static
//! causes are detectable:
//!
//! * a condition naming a digi that isn't in the setup (the checker treats
//!   unknown digis as "condition false": a `Never` over one can never
//!   trip);
//! * a condition path absent from the digi's schema (missing paths are
//!   false too, per [`digibox_core::Condition::holds`]);
//! * a `leads_to` conclusion over fields no handler ever writes — the
//!   obligation is armed and then can only expire.

use std::collections::BTreeMap;

use digibox_core::{Condition, SceneProperty, Temporal};
use digibox_registry::SetupManifest;

use crate::diag::{LintCode, Report, Span};
use crate::footprints::{paths_overlap, schema_has_path, ProgramProfile};

pub fn check(
    manifest: &SetupManifest,
    properties: &[SceneProperty],
    profiles: &BTreeMap<String, ProgramProfile>,
    report: &mut Report,
) {
    let kind_of: BTreeMap<&str, &str> =
        manifest.instances.iter().map(|i| (i.name.as_str(), i.kind.as_str())).collect();
    let parent_of: BTreeMap<&str, &str> =
        manifest.attachments.iter().map(|(c, p)| (c.as_str(), p.as_str())).collect();

    for prop in properties {
        let groups: Vec<(&str, &[digibox_core::properties::DigiCondition])> =
            match &prop.temporal {
                Temporal::Never(conds) => vec![("never", conds.as_slice())],
                Temporal::Always(conds) => vec![("always", conds.as_slice())],
                Temporal::LeadsTo { premise, conclusion, .. } => {
                    vec![("premise", premise.as_slice()), ("conclusion", conclusion.as_slice())]
                }
            };

        for (role, conds) in &groups {
            for dc in *conds {
                let span = Span::at_property(&prop.name).digi(&dc.digi).path(&dc.cond.path);
                let Some(kind) = kind_of.get(dc.digi.as_str()) else {
                    report.push(
                        LintCode::UnknownPropertyDigi,
                        span,
                        format!(
                            "property {:?} ({role}) references {:?}, which is not in the \
                             setup; the condition is always false",
                            prop.name, dc.digi
                        ),
                    );
                    continue;
                };
                let Some(profile) = profiles.get(*kind) else {
                    continue; // unknown kind: DL0005 already reported
                };
                if !schema_has_path(&profile.schema, &dc.cond.path) {
                    report.push(
                        LintCode::VacuousCondition,
                        span,
                        format!(
                            "property {:?} ({role}) tests `{}` on {:?}, but the {kind} \
                             schema declares no such path; the condition can never hold",
                            prop.name, dc.cond.path, dc.digi
                        ),
                    );
                    continue;
                }
                // conclusions must be reachable: some handler has to be
                // able to write the tested path (DL0014)
                if *role == "conclusion" && !writable(dc, kind, profiles, &parent_of, &kind_of) {
                    report.push(
                        LintCode::UnreachableConclusion,
                        Span::at_property(&prop.name).digi(&dc.digi).path(&dc.cond.path),
                        format!(
                            "leads_to property {:?} concludes on `{}` of {:?}, but no \
                             handler in the setup writes that path (and it is not an \
                             intent an application could set); the conclusion can only \
                             time out",
                            prop.name, dc.cond.path, dc.digi
                        ),
                    );
                }
            }
            check_contradictions(prop, role, conds, report);
        }
    }
}

/// Can anything in the setup make `dc.cond.path` change on `dc.digi`?
/// Either the digi's own handlers write it, its parent scene stages writes
/// to it, or it is an `intent` half (applications and `dbox edit` write
/// those).
fn writable(
    dc: &digibox_core::properties::DigiCondition,
    kind: &str,
    profiles: &BTreeMap<String, ProgramProfile>,
    parent_of: &BTreeMap<&str, &str>,
    kind_of: &BTreeMap<&str, &str>,
) -> bool {
    let path = dc.cond.path.as_str();
    if path.split('.').any(|seg| seg == "intent") {
        return true;
    }
    let own = profiles.get(kind);
    if own.is_some_and(|p| p.writes().any(|w| paths_overlap(w, path))) {
        return true;
    }
    if let Some(parent) = parent_of.get(dc.digi.as_str()) {
        if let Some(parent_profile) = kind_of.get(parent).and_then(|k| profiles.get(*k)) {
            if parent_profile.att_writes().any(|(k, w)| k == kind && paths_overlap(w, path)) {
                return true;
            }
        }
    }
    false
}

/// DL0013: an unsatisfiable conjunction over one (digi, path).
fn check_contradictions(
    prop: &SceneProperty,
    role: &str,
    conds: &[digibox_core::properties::DigiCondition],
    report: &mut Report,
) {
    use digibox_core::properties::Op;

    let mut by_target: BTreeMap<(&str, &str), Vec<&Condition>> = BTreeMap::new();
    for dc in conds {
        by_target.entry((dc.digi.as_str(), dc.cond.path.as_str())).or_default().push(&dc.cond);
    }
    for ((digi, path), conds) in by_target {
        if conds.len() < 2 {
            continue;
        }
        let mut contradiction: Option<String> = None;
        // pairwise equality clashes
        'outer: for (i, a) in conds.iter().enumerate() {
            for b in &conds[i + 1..] {
                let clash = match (a.op, b.op) {
                    (Op::Eq, Op::Eq) => !a.value.loose_eq(&b.value),
                    (Op::Eq, Op::Ne) | (Op::Ne, Op::Eq) => a.value.loose_eq(&b.value),
                    _ => false,
                };
                if clash {
                    contradiction =
                        Some(format!("{:?} {:?} vs {:?} {:?}", a.op, a.value, b.op, b.value));
                    break 'outer;
                }
            }
        }
        // numeric interval emptiness (Lt/Le vs Gt/Ge, Eq within bounds)
        if contradiction.is_none() {
            let mut lo = f64::NEG_INFINITY;
            let mut lo_strict = false;
            let mut hi = f64::INFINITY;
            let mut hi_strict = false;
            for c in &conds {
                let Some(v) = c.value.as_float() else { continue };
                match c.op {
                    Op::Gt if v >= lo => {
                        lo = v;
                        lo_strict = true;
                    }
                    Op::Ge if v > lo => {
                        lo = v;
                        lo_strict = false;
                    }
                    Op::Lt if v <= hi => {
                        hi = v;
                        hi_strict = true;
                    }
                    Op::Le if v < hi => {
                        hi = v;
                        hi_strict = false;
                    }
                    Op::Eq => {
                        if v > lo || (v == lo && !lo_strict) {
                            lo = v;
                            lo_strict = false;
                        }
                        if v < hi || (v == hi && !hi_strict) {
                            hi = v;
                            hi_strict = false;
                        }
                        if v < lo || v > hi {
                            // Eq outside already-established bounds
                            lo = 1.0;
                            hi = 0.0;
                        }
                    }
                    _ => {}
                }
            }
            if lo > hi || (lo == hi && (lo_strict || hi_strict)) {
                contradiction = Some(format!("empty numeric range ({lo}, {hi})"));
            }
        }
        if let Some(why) = contradiction {
            report.push(
                LintCode::ContradictoryConditions,
                Span::at_property(&prop.name).digi(digi).path(path),
                format!(
                    "property {:?} ({role}) constrains `{path}` of {digi:?} \
                     unsatisfiably: {why}",
                    prop.name
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_core::properties::DigiCondition;
    use digibox_devices::full_catalog;
    use digibox_net::SimDuration;
    use digibox_registry::InstanceDecl;

    use crate::footprints::probe;

    fn setup() -> (SetupManifest, BTreeMap<String, ProgramProfile>) {
        let catalog = full_catalog();
        let mut m = SetupManifest::new("props", 1);
        for (name, kind, managed) in
            [("O1", "Occupancy", true), ("L1", "Lamp", false), ("R1", "Room", false)]
        {
            m.instances.push(InstanceDecl {
                name: name.into(),
                kind: kind.into(),
                version: "v1".into(),
                managed,
                params: BTreeMap::new(),
            });
        }
        m.attachments.push(("O1".into(), "R1".into()));
        m.attachments.push(("L1".into(), "R1".into()));
        let mut profiles = BTreeMap::new();
        for kind in ["Occupancy", "Lamp", "Room"] {
            profiles.insert(kind.to_string(), probe(&catalog, kind).unwrap());
        }
        (m, profiles)
    }

    fn lint(properties: &[SceneProperty]) -> Report {
        let (m, profiles) = setup();
        let mut report = Report::new();
        check(&m, properties, &profiles, &mut report);
        report
    }

    fn codes(report: &Report) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn sound_property_is_quiet() {
        let p = SceneProperty::never(
            "lamp-off-when-empty",
            vec![
                DigiCondition::new("L1", Condition::eq("power.status", "on")),
                DigiCondition::new("O1", Condition::eq("triggered", false)),
            ],
        );
        assert!(lint(&[p]).is_clean());
    }

    #[test]
    fn unknown_digi_flagged() {
        let p = SceneProperty::never(
            "ghost",
            vec![DigiCondition::new("L9", Condition::eq("power.status", "on"))],
        );
        let report = lint(&[p]);
        assert_eq!(codes(&report), ["DL0011"]);
        assert_eq!(report.diagnostics[0].span.property.as_deref(), Some("ghost"));
    }

    #[test]
    fn vacuous_path_flagged() {
        let p = SceneProperty::never(
            "typo",
            vec![DigiCondition::new("L1", Condition::eq("powr.status", "on"))],
        );
        assert_eq!(codes(&lint(&[p])), ["DL0012"]);
    }

    #[test]
    fn contradictory_conjunction_flagged() {
        let p = SceneProperty::never(
            "both-on-and-off",
            vec![
                DigiCondition::new("L1", Condition::eq("power.status", "on")),
                DigiCondition::new("L1", Condition::eq("power.status", "off")),
            ],
        );
        assert_eq!(codes(&lint(&[p])), ["DL0013"]);

        let p = SceneProperty::always(
            "empty-range",
            vec![
                DigiCondition::new("R1", Condition::gt("temp_c", 30.0)),
                DigiCondition::new("R1", Condition::lt("temp_c", 10.0)),
            ],
        );
        assert_eq!(codes(&lint(&[p])), ["DL0013"]);

        // a satisfiable range is fine
        let p = SceneProperty::always(
            "band",
            vec![
                DigiCondition::new("R1", Condition::gt("temp_c", 10.0)),
                DigiCondition::new("R1", Condition::lt("temp_c", 30.0)),
            ],
        );
        assert!(lint(&[p]).is_clean());
    }

    #[test]
    fn unreachable_conclusion_flagged() {
        // nothing in this setup writes the lamp's power.status (the Room
        // ignores lamps) — an app could, via intent, but status is only
        // written by the lamp's own handler *in response* to intent, which
        // the probe sees... so pick a field truly never written: the
        // lamp's label-like `intensity.status` IS written by its handler.
        // Use Occupancy `battery_pct`-style absent writes: its generator
        // writes `triggered` only, so conclude on O1 `sensitivity.status`
        // if declared... keep it simple with a field the schema has but no
        // handler writes: Room's `ambient_c` (set once in init, never in
        // handlers).
        let p = SceneProperty::leads_to(
            "never-concludes",
            vec![DigiCondition::new("O1", Condition::eq("triggered", true))],
            vec![DigiCondition::new("R1", Condition::gt("ambient_c", 30.0))],
            SimDuration::from_millis(1000),
        );
        let report = lint(&[p]);
        assert_eq!(codes(&report), ["DL0014"], "{report:?}");

        // concluding on something a handler writes is fine
        let p = SceneProperty::leads_to(
            "concludes",
            vec![DigiCondition::new("O1", Condition::eq("triggered", true))],
            vec![DigiCondition::new("L1", Condition::eq("intensity.status", 0.0))],
            SimDuration::from_millis(1000),
        );
        assert!(lint(&[p]).is_clean(), "lamp handler writes intensity.status");

        // intent halves are app-writable, never flagged
        let p = SceneProperty::leads_to(
            "intent-ok",
            vec![DigiCondition::new("O1", Condition::eq("triggered", true))],
            vec![DigiCondition::new("L1", Condition::eq("power.intent", "on"))],
            SimDuration::from_millis(1000),
        );
        assert!(lint(&[p]).is_clean());
    }
}
