//! Lint diagnostics: stable codes, severities, structured spans, and the
//! report with pretty-terminal and JSON rendering.
//!
//! Codes are append-only: a code, once shipped, never changes meaning, so
//! suppressions (`lint_allow` params, `--allow`) stay valid across
//! versions.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How serious a finding is. Errors make `dbox lint` exit non-zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth knowing, usually fine (e.g. an attachment the scene ignores).
    Info,
    /// Probably a mistake, but the ensemble still runs meaningfully.
    Warning,
    /// The ensemble is broken or will misbehave at run time.
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The stable lint codes (`DL` = digibox lint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintCode {
    /// DL0001 — a scene writes a child field the child's own (unmanaged)
    /// event generator also writes.
    WriteConflict,
    /// DL0002 — an attachment the parent scene neither reads nor writes.
    InertAttachment,
    /// DL0003 — a handler write targets a path absent from the target's
    /// schema.
    WriteOutsideSchema,
    /// DL0004 — a digi name that breaks the MQTT topic conventions.
    TopicUnsafeName,
    /// DL0005 — an instance references a program kind the catalog doesn't
    /// have.
    UnknownKind,
    /// DL0006 — the attachment graph has a cycle.
    AttachCycle,
    /// DL0007 — an attachment references an undeclared instance.
    DanglingAttach,
    /// DL0008 — two instances share a name.
    DuplicateName,
    /// DL0009 — an attachment parent that is not a scene.
    ParentNotScene,
    /// DL0010 — a child attached to more than one parent.
    MultipleParents,
    /// DL0011 — a property condition references a digi not in the setup.
    UnknownPropertyDigi,
    /// DL0012 — a property condition path absent from the digi's schema
    /// (the condition can never hold).
    VacuousCondition,
    /// DL0013 — a property's condition conjunction is unsatisfiable.
    ContradictoryConditions,
    /// DL0014 — a `leads_to` conclusion no handler can ever make true.
    UnreachableConclusion,
}

impl LintCode {
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::WriteConflict => "DL0001",
            LintCode::InertAttachment => "DL0002",
            LintCode::WriteOutsideSchema => "DL0003",
            LintCode::TopicUnsafeName => "DL0004",
            LintCode::UnknownKind => "DL0005",
            LintCode::AttachCycle => "DL0006",
            LintCode::DanglingAttach => "DL0007",
            LintCode::DuplicateName => "DL0008",
            LintCode::ParentNotScene => "DL0009",
            LintCode::MultipleParents => "DL0010",
            LintCode::UnknownPropertyDigi => "DL0011",
            LintCode::VacuousCondition => "DL0012",
            LintCode::ContradictoryConditions => "DL0013",
            LintCode::UnreachableConclusion => "DL0014",
        }
    }

    /// The fixed severity of findings with this code.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::WriteConflict
            | LintCode::TopicUnsafeName
            | LintCode::UnknownKind
            | LintCode::AttachCycle
            | LintCode::DanglingAttach
            | LintCode::DuplicateName
            | LintCode::ParentNotScene
            | LintCode::MultipleParents => Severity::Error,
            LintCode::WriteOutsideSchema
            | LintCode::UnknownPropertyDigi
            | LintCode::VacuousCondition
            | LintCode::ContradictoryConditions
            | LintCode::UnreachableConclusion => Severity::Warning,
            LintCode::InertAttachment => Severity::Info,
        }
    }

    /// Short human title (the lint-codes table in DESIGN.md).
    pub fn title(self) -> &'static str {
        match self {
            LintCode::WriteConflict => "write-write conflict",
            LintCode::InertAttachment => "inert attachment",
            LintCode::WriteOutsideSchema => "write outside schema",
            LintCode::TopicUnsafeName => "topic-unsafe digi name",
            LintCode::UnknownKind => "unknown program kind",
            LintCode::AttachCycle => "attachment cycle",
            LintCode::DanglingAttach => "dangling attachment",
            LintCode::DuplicateName => "duplicate digi name",
            LintCode::ParentNotScene => "attachment parent is not a scene",
            LintCode::MultipleParents => "multiple parents",
            LintCode::UnknownPropertyDigi => "property references unknown digi",
            LintCode::VacuousCondition => "vacuous property condition",
            LintCode::ContradictoryConditions => "contradictory property conditions",
            LintCode::UnreachableConclusion => "unreachable leads_to conclusion",
        }
    }

    pub fn all() -> [LintCode; 14] {
        [
            LintCode::WriteConflict,
            LintCode::InertAttachment,
            LintCode::WriteOutsideSchema,
            LintCode::TopicUnsafeName,
            LintCode::UnknownKind,
            LintCode::AttachCycle,
            LintCode::DanglingAttach,
            LintCode::DuplicateName,
            LintCode::ParentNotScene,
            LintCode::MultipleParents,
            LintCode::UnknownPropertyDigi,
            LintCode::VacuousCondition,
            LintCode::ContradictoryConditions,
            LintCode::UnreachableConclusion,
        ]
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a finding points: any combination of digi, handler, model path,
/// topic, and property name.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    pub digi: Option<String>,
    pub handler: Option<String>,
    pub path: Option<String>,
    pub topic: Option<String>,
    pub property: Option<String>,
}

impl Span {
    pub fn at_digi(name: &str) -> Span {
        Span { digi: Some(name.to_string()), ..Span::default() }
    }

    pub fn at_property(name: &str) -> Span {
        Span { property: Some(name.to_string()), ..Span::default() }
    }

    pub fn handler(mut self, handler: &str) -> Span {
        self.handler = Some(handler.to_string());
        self
    }

    pub fn path(mut self, path: &str) -> Span {
        self.path = Some(path.to_string());
        self
    }

    pub fn topic(mut self, topic: &str) -> Span {
        self.topic = Some(topic.to_string());
        self
    }

    pub fn digi(mut self, name: &str) -> Span {
        self.digi = Some(name.to_string());
        self
    }

    /// `L1/on_model power.status` — compact location prefix for the pretty
    /// renderer; empty when the span is empty.
    fn render(&self) -> String {
        let mut out = String::new();
        if let Some(d) = &self.digi {
            out.push_str(d);
        }
        if let Some(h) = &self.handler {
            if !out.is_empty() {
                out.push('/');
            }
            out.push_str(h);
        }
        if let Some(p) = &self.property {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str("property ");
            out.push_str(p);
        }
        if let Some(p) = &self.path {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(p);
        }
        if let Some(t) = &self.topic {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(t);
        }
        out
    }
}

/// Minimal JSON string escaping, shared by the lint and audit reports
/// (hand-rolled so both stay usable in serde-less harnesses).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: LintCode,
    pub severity: Severity,
    pub span: Span,
    pub message: String,
}

/// The collected findings of a lint run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    /// Findings dropped by `lint_allow` params or `--allow`.
    pub suppressed: usize,
}

impl Report {
    pub fn new() -> Report {
        Report::default()
    }

    pub fn push(&mut self, code: LintCode, span: Span, message: String) {
        self.diagnostics.push(Diagnostic { code, severity: code.severity(), span, message });
    }

    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    pub fn infos(&self) -> usize {
        self.count(Severity::Info)
    }

    fn count(&self, sev: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == sev).count()
    }

    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Drop findings covered by the global `--allow` set or the per-digi
    /// `lint_allow` params, then order what remains (most severe first,
    /// then by code and span) for stable output.
    pub fn finish(
        &mut self,
        allow: &BTreeSet<String>,
        per_digi: &BTreeMap<String, BTreeSet<String>>,
    ) {
        let before = self.diagnostics.len();
        self.diagnostics.retain(|d| {
            let code = d.code.as_str();
            if allow.contains(code) {
                return false;
            }
            match &d.span.digi {
                Some(digi) => !per_digi.get(digi).is_some_and(|set| set.contains(code)),
                None => true,
            }
        });
        self.suppressed += before - self.diagnostics.len();
        self.diagnostics.sort_by(|a, b| {
            (b.severity, a.code, &a.span, &a.message).cmp(&(a.severity, b.code, &b.span, &b.message))
        });
    }

    /// Terminal rendering: one line per finding plus a summary.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let loc = d.span.render();
            if loc.is_empty() {
                out.push_str(&format!("{} {}: {}\n", d.code, d.severity.as_str(), d.message));
            } else {
                out.push_str(&format!(
                    "{} {} [{}]: {}\n",
                    d.code,
                    d.severity.as_str(),
                    loc,
                    d.message
                ));
            }
        }
        out.push_str(&format!(
            "lint: {} error(s), {} warning(s), {} note(s)",
            self.errors(),
            self.warnings(),
            self.infos()
        ));
        if self.suppressed > 0 {
            out.push_str(&format!(", {} suppressed", self.suppressed));
        }
        out.push('\n');
        out
    }

    /// Machine rendering. Hand-rolled (not serde) so the report stays
    /// usable in serde-less harnesses; the shape is stable:
    /// `{"findings": [...], "errors": N, "warnings": N, "infos": N,
    /// "suppressed": N}`.
    pub fn to_json(&self) -> String {
        let esc = json_escape;
        fn opt(v: &Option<String>) -> String {
            match v {
                Some(s) => format!("\"{}\"", json_escape(s)),
                None => "null".into(),
            }
        }
        let findings: Vec<String> = self
            .diagnostics
            .iter()
            .map(|d| {
                format!(
                    concat!(
                        "{{\"code\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\", ",
                        "\"digi\": {}, \"handler\": {}, \"path\": {}, \"topic\": {}, ",
                        "\"property\": {}}}"
                    ),
                    d.code,
                    d.severity.as_str(),
                    esc(&d.message),
                    opt(&d.span.digi),
                    opt(&d.span.handler),
                    opt(&d.span.path),
                    opt(&d.span.topic),
                    opt(&d.span.property),
                )
            })
            .collect();
        format!(
            "{{\"findings\": [{}], \"errors\": {}, \"warnings\": {}, \"infos\": {}, \"suppressed\": {}}}\n",
            findings.join(", "),
            self.errors(),
            self.warnings(),
            self.infos(),
            self.suppressed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new();
        r.push(
            LintCode::InertAttachment,
            Span::at_digi("L1").topic("digibox/digi/L1/set"),
            "attachment to MeetingRoom is inert".into(),
        );
        r.push(
            LintCode::WriteConflict,
            Span::at_digi("T1").handler("on_loop").path("temp_c"),
            "scene MeetingRoom also writes temp_c".into(),
        );
        r
    }

    #[test]
    fn codes_are_stable_and_unique() {
        let codes: Vec<&str> = LintCode::all().iter().map(|c| c.as_str()).collect();
        let set: BTreeSet<&str> = codes.iter().copied().collect();
        assert_eq!(set.len(), codes.len(), "codes must be unique");
        assert_eq!(codes[0], "DL0001");
        assert_eq!(codes[13], "DL0014");
        for c in LintCode::all() {
            assert!(c.as_str().starts_with("DL0"));
            assert!(!c.title().is_empty());
        }
    }

    #[test]
    fn finish_sorts_errors_first() {
        let mut r = sample();
        r.finish(&BTreeSet::new(), &BTreeMap::new());
        assert_eq!(r.diagnostics[0].code, LintCode::WriteConflict);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.infos(), 1);
        assert!(r.has_errors());
    }

    #[test]
    fn global_and_per_digi_suppression() {
        let mut r = sample();
        let allow: BTreeSet<String> = ["DL0001".to_string()].into();
        r.finish(&allow, &BTreeMap::new());
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.suppressed, 1);

        let mut r = sample();
        let per: BTreeMap<String, BTreeSet<String>> =
            [("L1".to_string(), ["DL0002".to_string()].into())].into();
        r.finish(&BTreeSet::new(), &per);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].span.digi.as_deref(), Some("T1"));
        assert_eq!(r.suppressed, 1);
        // per-digi allows don't leak to other digis
        let mut r = sample();
        let per: BTreeMap<String, BTreeSet<String>> =
            [("T1".to_string(), ["DL0002".to_string()].into())].into();
        r.finish(&BTreeSet::new(), &per);
        assert_eq!(r.diagnostics.len(), 2);
    }

    #[test]
    fn pretty_rendering_mentions_code_and_span() {
        let mut r = sample();
        r.finish(&BTreeSet::new(), &BTreeMap::new());
        let text = r.render_pretty();
        assert!(text.contains("DL0001 error [T1/on_loop temp_c]"), "{text}");
        assert!(text.contains("1 error(s), 0 warning(s), 1 note(s)"), "{text}");
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut r = Report::new();
        r.push(LintCode::DuplicateName, Span::at_digi("a\"b"), "line\nbreak \\ \"q\"".into());
        r.finish(&BTreeSet::new(), &BTreeMap::new());
        let json = r.to_json();
        assert!(json.contains("\"digi\": \"a\\\"b\""), "{json}");
        assert!(json.contains("line\\nbreak \\\\ \\\"q\\\""), "{json}");
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("\"handler\": null"));
    }
}
