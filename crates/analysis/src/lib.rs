//! `dbox lint`: static analysis for digi ensembles.
//!
//! Digibox setups are checked *before* the kernel runs: the analyzer
//! instantiates each program from the catalog, probes its handlers against
//! recording shims of the simulation contexts (see [`footprints`]), and
//! cross-references the resulting read/write footprints with the setup
//! manifest, the `core::topics` conventions, and the scene properties. Four
//! passes:
//!
//! 1. **conflicts** — write-write conflicts between a scene's staged
//!    attachment writes and an unmanaged child's own generator (DL0001),
//!    plus scene writes that miss the child's schema (DL0003);
//! 2. **wiring** — the static MQTT graph on the broker's topic trie: inert
//!    attachments nobody reads or drives (DL0002), topic-unsafe digi names
//!    (DL0004);
//! 3. **graph** — nesting cycles, dangling attach references, duplicate
//!    names, mock-as-parent, multiple parents (DL0006–DL0010);
//! 4. **props** — property vacuity: unknown digis, paths outside schemas,
//!    contradictory conjunctions, `leads_to` conclusions nothing can write
//!    (DL0011–DL0014).
//!
//! Findings carry stable codes ([`LintCode`]), severities, and structured
//! spans. Suppression is per-run (`--allow DL0002`) or per-digi via a
//! `lint_allow` instance param.
//!
//! The crate also houses `dbox audit` (see [`audit`]): a determinism/
//! concurrency analyzer over the simulation crates' own Rust sources,
//! with its own stable `DH` hazard codes.

pub mod audit;
pub mod diag;
pub mod footprints;

mod conflicts;
mod graph;
mod props;
mod wiring;

use std::collections::{BTreeMap, BTreeSet};

use digibox_core::{Catalog, SceneProperty};
use digibox_model::Value;
use digibox_registry::SetupManifest;

pub use audit::{audit_paths, audit_source, AuditOptions, AuditReport, HazardCode};
pub use diag::{Diagnostic, LintCode, Report, Severity, Span};
pub use footprints::{paths_overlap, probe, profile_catalog, schema_has_path, ProgramProfile};

/// Parse and validate a comma-separated `--allow` argument against a known
/// code set. An unknown code is an operational error (the caller exits 2)
/// with a "did you mean" hint — silently ignoring a typoed `--allow` would
/// leave the user believing a finding is waived when it is not.
pub fn parse_allow_codes<'a, I>(arg: &str, known: I) -> Result<BTreeSet<String>, String>
where
    I: IntoIterator<Item = &'a str>,
{
    let known: Vec<&str> = known.into_iter().collect();
    let mut out = BTreeSet::new();
    for code in arg.split(',').map(str::trim).filter(|c| !c.is_empty()) {
        if known.contains(&code) {
            out.insert(code.to_string());
        } else {
            let hint = digibox_core::suggest::nearest(code, known.iter().copied())
                .map(|s| format!(" (did you mean {s}?)"))
                .unwrap_or_default();
            return Err(format!("--allow names unknown code {code:?}{hint}"));
        }
    }
    Ok(out)
}

/// Everything the analyzer looks at: a materialized setup plus its scene
/// properties. Build one from a live testbed (`dbox lint`) or by hand from
/// a manifest file (`dbox lint --file`).
#[derive(Debug, Clone)]
pub struct Ensemble {
    pub manifest: SetupManifest,
    pub properties: Vec<SceneProperty>,
}

impl Ensemble {
    pub fn new(manifest: SetupManifest) -> Ensemble {
        Ensemble { manifest, properties: Vec::new() }
    }

    pub fn with_properties(mut self, properties: Vec<SceneProperty>) -> Ensemble {
        self.properties = properties;
        self
    }
}

/// Lint options.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Codes suppressed for the whole run (`--allow DL0002,DL0012`).
    pub allow: BTreeSet<String>,
}

impl Options {
    /// Parse a comma-separated `--allow` argument.
    pub fn allow_list(mut self, codes: &str) -> Options {
        self.allow.extend(
            codes.split(',').map(str::trim).filter(|c| !c.is_empty()).map(str::to_string),
        );
        self
    }
}

/// Lint a full ensemble: all four passes over the manifest, the catalog
/// programs it references, and the scene properties.
pub fn lint_ensemble(catalog: &Catalog, ensemble: &Ensemble, opts: &Options) -> Report {
    let mut report = Report::new();
    graph::check(&ensemble.manifest, catalog, &mut report);

    // probe each referenced kind once; unresolvable kinds become DL0005
    let mut profiles: BTreeMap<String, ProgramProfile> = BTreeMap::new();
    let mut failed: BTreeSet<&str> = BTreeSet::new();
    for inst in &ensemble.manifest.instances {
        if profiles.contains_key(&inst.kind) || failed.contains(inst.kind.as_str()) {
            continue;
        }
        match probe(catalog, &inst.kind) {
            Ok(profile) => {
                profiles.insert(inst.kind.clone(), profile);
            }
            Err(err) => {
                failed.insert(&inst.kind);
                let hint = match err.suggestion() {
                    Some(s) => format!(" (did you mean {s:?}?)"),
                    None => String::new(),
                };
                report.push(
                    LintCode::UnknownKind,
                    Span::at_digi(&inst.name),
                    format!("unknown program kind {:?}{hint}", inst.kind),
                );
            }
        }
    }

    conflicts::check(&ensemble.manifest, &profiles, &mut report);
    wiring::check(&ensemble.manifest, &profiles, &mut report);
    props::check(&ensemble.manifest, &ensemble.properties, &profiles, &mut report);

    report.finish(&opts.allow, &per_digi_allows(&ensemble.manifest));
    report
}

/// Lint the catalog itself, ensemble-free: every program's own writes and
/// staged attachment writes must resolve in the relevant schema (DL0003).
/// This is what `dbox lint --library` runs over the built-in library.
pub fn lint_catalog(catalog: &Catalog, opts: &Options) -> Report {
    let mut report = Report::new();
    let profiles = profile_catalog(catalog);
    for (kind, profile) in &profiles {
        for (handler, fp) in [("on_loop", &profile.on_loop), ("on_model", &profile.on_model)] {
            for path in &fp.writes {
                if !schema_has_path(&profile.schema, path) {
                    report.push(
                        LintCode::WriteOutsideSchema,
                        Span::at_digi(kind).handler(handler).path(path),
                        format!("{kind}::{handler} writes `{path}`, which its schema does not declare"),
                    );
                }
            }
            for (child_kind, path) in &fp.att_writes {
                let Some(child) = profiles.get(child_kind) else {
                    report.push(
                        LintCode::UnknownKind,
                        Span::at_digi(kind).handler(handler).path(path),
                        format!("{kind}::{handler} stages writes for unregistered kind {child_kind:?}"),
                    );
                    continue;
                };
                if !schema_has_path(&child.schema, path) {
                    report.push(
                        LintCode::WriteOutsideSchema,
                        Span::at_digi(kind).handler(handler).path(path),
                        format!(
                            "{kind}::{handler} writes `{path}` on {child_kind} attachments, \
                             but the {child_kind} schema does not declare it"
                        ),
                    );
                }
            }
        }
    }
    report.finish(&opts.allow, &BTreeMap::new());
    report
}

/// Collect per-digi suppressions from `lint_allow` instance params: either
/// a comma-separated string (`"DL0002,DL0012"`) or a list of strings.
fn per_digi_allows(manifest: &SetupManifest) -> BTreeMap<String, BTreeSet<String>> {
    let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for inst in &manifest.instances {
        let Some(value) = inst.params.get("lint_allow") else {
            continue;
        };
        let codes: BTreeSet<String> = match value {
            Value::Str(s) => s
                .split(',')
                .map(str::trim)
                .filter(|c| !c.is_empty())
                .map(str::to_string)
                .collect(),
            Value::List(items) => {
                items.iter().filter_map(Value::as_str).map(str::to_string).collect()
            }
            _ => continue,
        };
        if !codes.is_empty() {
            out.insert(inst.name.clone(), codes);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_core::properties::DigiCondition;
    use digibox_core::Condition;
    use digibox_devices::full_catalog;
    use digibox_registry::InstanceDecl;

    fn decl(name: &str, kind: &str, managed: bool) -> InstanceDecl {
        InstanceDecl {
            name: name.into(),
            kind: kind.into(),
            version: "v1".into(),
            managed,
            params: BTreeMap::new(),
        }
    }

    /// The paper's walkthrough shape: a meeting room ensembling two
    /// occupancy sensors and an under-desk sensor (managed), plus a lamp
    /// the application drives.
    fn walkthrough() -> Ensemble {
        let mut m = SetupManifest::new("meeting-room", 42);
        m.instances.push(decl("O1", "Occupancy", true));
        m.instances.push(decl("O2", "Occupancy", true));
        m.instances.push(decl("D1", "Underdesk", true));
        m.instances.push(decl("L1", "Lamp", false));
        m.instances.push(decl("MeetingRoom", "Room", false));
        for child in ["O1", "O2", "D1", "L1"] {
            m.attachments.push((child.into(), "MeetingRoom".into()));
        }
        Ensemble::new(m).with_properties(vec![SceneProperty::never(
            "lamp-off-when-empty",
            vec![
                DigiCondition::new("L1", Condition::eq("power.status", "on")),
                DigiCondition::new("O1", Condition::eq("triggered", false)),
            ],
        )])
    }

    #[test]
    fn walkthrough_lints_to_one_note() {
        let report = lint_ensemble(&full_catalog(), &walkthrough(), &Options::default());
        assert!(!report.has_errors(), "{}", report.render_pretty());
        assert_eq!(report.warnings(), 0, "{}", report.render_pretty());
        // the lamp attachment is app-driven, which lint can't see: DL0002
        assert_eq!(report.infos(), 1, "{}", report.render_pretty());
        assert_eq!(report.diagnostics[0].code, LintCode::InertAttachment);
        assert_eq!(report.diagnostics[0].span.digi.as_deref(), Some("L1"));
    }

    #[test]
    fn unknown_kind_reported_once_with_suggestion() {
        let mut m = SetupManifest::new("typo", 1);
        m.instances.push(decl("F1", "Fna", false));
        m.instances.push(decl("F2", "Fna", false));
        let report = lint_ensemble(&full_catalog(), &Ensemble::new(m), &Options::default());
        let dl5: Vec<_> =
            report.diagnostics.iter().filter(|d| d.code == LintCode::UnknownKind).collect();
        assert_eq!(dl5.len(), 1, "one DL0005 per kind, not per instance: {report:?}");
        assert!(dl5[0].message.contains("did you mean \"Fan\""), "{}", dl5[0].message);
    }

    #[test]
    fn global_allow_suppresses() {
        let report =
            lint_ensemble(&full_catalog(), &walkthrough(), &Options::default().allow_list("DL0002"));
        assert!(report.is_clean(), "{}", report.render_pretty());
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn per_digi_lint_allow_param_suppresses() {
        let mut ensemble = walkthrough();
        ensemble
            .manifest
            .instances
            .iter_mut()
            .find(|i| i.name == "L1")
            .unwrap()
            .params
            .insert("lint_allow".into(), Value::Str("DL0002".into()));
        let report = lint_ensemble(&full_catalog(), &ensemble, &Options::default());
        assert!(report.is_clean(), "{}", report.render_pretty());
        assert_eq!(report.suppressed, 1);

        // a different digi's allowance does not mask it
        let mut ensemble = walkthrough();
        ensemble
            .manifest
            .instances
            .iter_mut()
            .find(|i| i.name == "O1")
            .unwrap()
            .params
            .insert("lint_allow".into(), Value::List(vec![Value::Str("DL0002".into())]));
        let report = lint_ensemble(&full_catalog(), &ensemble, &Options::default());
        assert_eq!(report.infos(), 1);
        assert_eq!(report.suppressed, 0);
    }

    #[test]
    fn library_catalog_is_schema_clean() {
        let report = lint_catalog(&full_catalog(), &Options::default());
        assert!(report.is_clean(), "{}", report.render_pretty());
    }

    #[test]
    fn parse_allow_codes_accepts_known_and_rejects_unknown() {
        let known = || LintCode::all().map(LintCode::as_str);
        let set = parse_allow_codes("DL0002, DL0012,", known()).unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.contains("DL0002"));

        let err = parse_allow_codes("DL0002,DL0099", known()).unwrap_err();
        assert!(err.contains("DL0099"), "{err}");

        // near-miss gets an OSA suggestion
        let err = parse_allow_codes("DL002", known()).unwrap_err();
        assert!(err.contains("did you mean DL0002?"), "{err}");

        // hazard codes validate the same way (ties break to the lowest code)
        let err =
            parse_allow_codes("DH0006", HazardCode::all().map(HazardCode::as_str)).unwrap_err();
        assert!(err.contains("did you mean DH0001?"), "{err}");
    }
}
