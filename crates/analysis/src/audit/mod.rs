//! `dbox audit`: a determinism/concurrency static analyzer for the
//! simulation sources themselves.
//!
//! Where `dbox lint` checks *ensembles* (manifests, footprints, wiring),
//! `dbox audit` checks the *Rust sources* of the simulation crates for
//! hazards that would break the kernel's bit-reproducibility contract:
//! wall-clock reads, OS entropy, hash-order iteration, stray threads, and
//! pointer-identity leaks. It replaces the old `scripts/lint_determinism.sh`
//! grep, which could not see the difference between code and a doc comment
//! and whose `// det-ok:` waivers were never checked against anything.
//!
//! The pipeline, per file: [`lexer::lex`] → [`rules::scan`] →
//! [`suppress::apply`]. The lexer understands comments, strings, raw
//! strings, and char literals, so rule passes only ever see real code
//! tokens; the suppression pass enforces the `// det-ok(DHxxxx): reason`
//! grammar *both ways* (unexcused hazards fail, and so do stale or
//! malformed excuses). Findings carry stable `DH` codes and render through
//! the same pretty/canonical-JSON conventions as the `DL` lint report.
//!
//! Everything is dependency-free and filesystem-order-independent: files
//! are walked in sorted order and findings are sorted by
//! [`report::AuditReport::finish`], so two runs over the same tree produce
//! byte-identical reports on any platform.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod suppress;

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use report::{AuditFinding, AuditReport, HazardCode};
pub use rules::RuleConfig;

/// The simulation crates `dbox audit` covers by default (the same set the
/// retired grep lint walked). Deliberately excludes `cli`, `obs`, `bench`,
/// `analysis`, and `integration`: those run outside the kernel's
/// deterministic envelope.
pub const DEFAULT_CRATES: [&str; 7] = [
    "crates/core",
    "crates/net",
    "crates/broker",
    "crates/model",
    "crates/devices",
    "crates/orchestrator",
    "crates/registry",
];

/// Audit options.
#[derive(Debug, Clone, Default)]
pub struct AuditOptions {
    /// Hazard codes suppressed for the whole run (`--allow DH0005`).
    pub allow: BTreeSet<String>,
}

/// Audit one file's source text. Returns the surviving findings and the
/// number suppressed by `// det-ok` annotations. This is the unit the
/// per-code fixtures exercise directly.
pub fn audit_source(file: &str, src: &str) -> (Vec<AuditFinding>, usize) {
    let cfg = config_for(file);
    let tokens = lexer::lex(src);
    let findings = rules::scan(file, &tokens, &cfg);
    let set = suppress::collect(file, &tokens);
    suppress::apply(file, findings, &set)
}

/// The per-file rule configuration: the `core::sweep` worker engine and the
/// `core::islands` space-parallel engine are the only places `std::thread`
/// is legal — both quarantine OS parallelism behind deterministic barriers,
/// so everything they run stays replayable.
fn config_for(file: &str) -> RuleConfig {
    let normalized = file.replace('\\', "/");
    RuleConfig {
        threads_allowed: normalized.ends_with("core/src/sweep.rs")
            || normalized.ends_with("core/src/islands.rs"),
    }
}

/// Audit a set of paths (files or directories; directories are walked
/// recursively for `.rs` files in sorted order). Paths are recorded in the
/// report exactly as derived from the arguments, so repo-relative inputs
/// yield repo-relative findings.
pub fn audit_paths<P: AsRef<Path>>(paths: &[P], opts: &AuditOptions) -> io::Result<AuditReport> {
    let mut files: Vec<PathBuf> = Vec::new();
    for p in paths {
        collect_rs_files(p.as_ref(), &mut files)?;
    }
    files.sort();
    files.dedup();

    let mut report = AuditReport::new();
    report.files = files.len();
    for path in &files {
        let src = fs::read_to_string(path)?;
        let name = path.to_string_lossy().replace('\\', "/");
        let (findings, suppressed) = audit_source(&name, &src);
        report.findings.extend(findings);
        report.suppressed += suppressed;
    }
    report.finish(&opts.allow);
    Ok(report)
}

fn collect_rs_files(path: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let meta = fs::metadata(path).map_err(|e| {
        io::Error::new(e.kind(), format!("audit path {}: {e}", path.display()))
    })?;
    if meta.is_file() {
        if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    // deterministic walk: sort directory entries by name
    let mut entries: Vec<PathBuf> =
        fs::read_dir(path)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            // skip build output if anyone points the audit at a crate root
            if entry.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|ext| ext == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_source_pipeline_end_to_end() {
        let src = "let t = SystemTime::now();\n\
                   let u = Instant::now(); // det-ok(DH0001): fixture exercises suppression\n";
        let (findings, suppressed) = audit_source("fixture.rs", src);
        assert_eq!(suppressed, 1);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code, HazardCode::BannedTimeOrEntropy);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn stale_annotations_surface_through_the_pipeline() {
        let (findings, suppressed) =
            audit_source("fixture.rs", "// det-ok(DH0003): no thread here anymore\nlet x = 1;\n");
        assert_eq!(suppressed, 0);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code, HazardCode::StaleSuppression);
    }

    #[test]
    fn sweep_engine_gets_thread_exemption() {
        assert!(config_for("crates/core/src/sweep.rs").threads_allowed);
        assert!(config_for("/abs/path/crates/core/src/sweep.rs").threads_allowed);
        assert!(!config_for("crates/net/src/transport.rs").threads_allowed);
        assert!(!config_for("crates/core/src/pool.rs").threads_allowed);
    }

    #[test]
    fn island_engine_gets_thread_exemption() {
        assert!(config_for("crates/core/src/islands.rs").threads_allowed);
        assert!(config_for("/abs/path/crates/core/src/islands.rs").threads_allowed);
        // A look-alike module elsewhere does NOT inherit the sanction.
        assert!(!config_for("crates/net/src/islands.rs").threads_allowed);
        assert!(!config_for("crates/core/src/testbed.rs").threads_allowed);
    }

    #[test]
    fn unsanctioned_thread_spawn_still_fires_dh0003() {
        // The island exemption is path-scoped: the identical source in any
        // other file keeps producing a DH0003 error.
        let src = "pub fn run() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        let (findings, suppressed) = audit_source("crates/core/src/testbed.rs", src);
        assert_eq!(suppressed, 0);
        assert!(
            findings.iter().any(|f| f.code == HazardCode::ThreadOutsideSweep),
            "{findings:?}"
        );
        let (findings, _) = audit_source("crates/core/src/islands.rs", src);
        assert!(
            findings.iter().all(|f| f.code != HazardCode::ThreadOutsideSweep),
            "{findings:?}"
        );
    }

    #[test]
    fn default_crates_match_the_retired_grep_lint() {
        assert_eq!(DEFAULT_CRATES.len(), 7);
        assert!(DEFAULT_CRATES.contains(&"crates/orchestrator"));
        assert!(!DEFAULT_CRATES.contains(&"crates/cli"));
    }
}
