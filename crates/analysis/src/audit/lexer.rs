//! A hand-rolled, span-accurate token lexer for Rust source.
//!
//! `dbox audit` needs exactly one guarantee the old grep lint could not
//! give: a banned construct mentioned inside a string literal, a doc
//! comment, or a `r#"raw string"#` must never diagnose. So the lexer's
//! whole job is classifying bytes into *code* tokens versus *literal and
//! comment* tokens, with 1-based line/column spans good enough to print
//! `file.rs:191:9` locations. It is not a full Rust lexer — it does not
//! distinguish keywords from identifiers, and it folds all operators into
//! single-character [`TokenKind::Punct`] tokens — but it is exact about
//! the hard parts:
//!
//! * line comments (`//`, `///`, `//!`) to end of line;
//! * block comments (`/* .. */`), **nested** as Rust nests them;
//! * string literals with escapes, byte strings (`b".."`);
//! * raw strings `r".."`, `r#".."#`, … with arbitrary `#` depth (and the
//!   `br#".."#` byte form), where `"` and `//` inside are just bytes;
//! * char literals (`'x'`, `'\n'`, `'\u{1F600}'`) versus lifetimes
//!   (`'static`), including the `'a'`-vs-`'a` ambiguity;
//! * raw identifiers (`r#type`).

/// What a token is. Rules only ever match against [`TokenKind::Ident`],
/// [`TokenKind::Punct`] and (for format-string checks) [`TokenKind::Str`];
/// suppression parsing reads [`TokenKind::LineComment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `for`, `r#type`).
    Ident,
    /// A numeric literal.
    Number,
    /// A string literal of any kind; [`Token::text`] is the *content*
    /// (quotes and raw-string hashes stripped, escapes left as written).
    Str,
    /// A char literal (`'x'`), content stripped of quotes.
    Char,
    /// A lifetime (`'a`), text without the leading quote.
    Lifetime,
    /// A `//`-style comment, text without the leading slashes.
    LineComment,
    /// A `/* */` comment (possibly nested), text without delimiters.
    BlockComment,
    /// A single punctuation character (`:`, `<`, `.`, `&`, …).
    Punct,
}

/// One token with its source span.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// Token text (see [`TokenKind`] for what is stripped per kind).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// Whether this is a code token (not a comment).
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether this is a punctuation token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor { chars: src.chars().peekable(), line: 1, col: 1 }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    /// Peek two characters ahead without consuming (clones the iterator;
    /// cheap enough at lint scale).
    fn peek2(&self) -> Option<char> {
        let mut it = self.chars.clone();
        it.next();
        it.next()
    }

    fn peek3(&self) -> Option<char> {
        let mut it = self.chars.clone();
        it.next();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Never fails: unterminated literals and comments are
/// closed at end of input (the audit must degrade gracefully on code that
/// does not compile yet).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // comments
        if c == '/' && cur.peek2() == Some('/') {
            cur.bump();
            cur.bump();
            let mut text = String::new();
            while let Some(c) = cur.peek() {
                if c == '\n' {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            out.push(Token { kind: TokenKind::LineComment, text, line, col });
            continue;
        }
        if c == '/' && cur.peek2() == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            let mut text = String::new();
            while let Some(c) = cur.peek() {
                if c == '*' && cur.peek2() == Some('/') {
                    cur.bump();
                    cur.bump();
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                    text.push_str("*/");
                    continue;
                }
                if c == '/' && cur.peek2() == Some('*') {
                    cur.bump();
                    cur.bump();
                    depth += 1;
                    text.push_str("/*");
                    continue;
                }
                text.push(c);
                cur.bump();
            }
            out.push(Token { kind: TokenKind::BlockComment, text, line, col });
            continue;
        }
        // raw strings / raw identifiers / byte strings, before plain idents
        if c == 'r' || c == 'b' {
            let n1 = cur.peek2();
            let n2 = cur.peek3();
            // r"..."  r#"..."#...
            if c == 'r' && (n1 == Some('"') || n1 == Some('#')) {
                // distinguish r#ident (raw identifier) from r#"raw string"
                let raw_ident = n1 == Some('#') && n2.is_some_and(is_ident_start);
                if !raw_ident {
                    if let Some(tok) = lex_raw_string(&mut cur, line, col) {
                        out.push(tok);
                        continue;
                    }
                }
                if raw_ident {
                    cur.bump(); // r
                    cur.bump(); // #
                    let mut text = String::new();
                    while let Some(c) = cur.peek() {
                        if !is_ident_continue(c) {
                            break;
                        }
                        text.push(c);
                        cur.bump();
                    }
                    out.push(Token { kind: TokenKind::Ident, text, line, col });
                    continue;
                }
            }
            // b"..."  br"..."  br#"..."#  b'x'
            if c == 'b' {
                if n1 == Some('"') {
                    cur.bump(); // b
                    out.push(lex_plain_string(&mut cur, line, col));
                    continue;
                }
                if n1 == Some('r') && (n2 == Some('"') || n2 == Some('#')) {
                    cur.bump(); // b
                    if let Some(tok) = lex_raw_string(&mut cur, line, col) {
                        out.push(tok);
                        continue;
                    }
                }
                if n1 == Some('\'') {
                    cur.bump(); // b
                    out.push(lex_char(&mut cur, line, col));
                    continue;
                }
            }
        }
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(c) = cur.peek() {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            out.push(Token { kind: TokenKind::Ident, text, line, col });
            continue;
        }
        if c.is_ascii_digit() {
            let mut text = String::new();
            while let Some(c) = cur.peek() {
                if is_ident_continue(c) {
                    text.push(c);
                    cur.bump();
                } else if c == '.' && cur.peek2().is_some_and(|d| d.is_ascii_digit()) && !text.contains('.') {
                    // `1.5` is one number; `1..5` and `1.max(2)` are not
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            out.push(Token { kind: TokenKind::Number, text, line, col });
            continue;
        }
        if c == '"' {
            out.push(lex_plain_string(&mut cur, line, col));
            continue;
        }
        if c == '\'' {
            out.push(lex_char(&mut cur, line, col));
            continue;
        }
        // everything else: one punct char
        cur.bump();
        out.push(Token { kind: TokenKind::Punct, text: c.to_string(), line, col });
    }
    out
}

/// Lex `"..."` with escape handling; cursor is on the opening quote.
fn lex_plain_string(cur: &mut Cursor, line: u32, col: u32) -> Token {
    cur.bump(); // "
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(esc) = cur.peek() {
                text.push(esc);
                cur.bump();
            }
            continue;
        }
        if c == '"' {
            cur.bump();
            break;
        }
        text.push(c);
        cur.bump();
    }
    Token { kind: TokenKind::Str, text, line, col }
}

/// Lex `r"..."` / `r#"..."#` with any hash depth; cursor is on the `r`.
/// Returns `None` (consuming nothing) if what follows is not actually a
/// raw string opener — e.g. `r#foo` handled by the caller.
fn lex_raw_string(cur: &mut Cursor, line: u32, col: u32) -> Option<Token> {
    // count hashes after the r without consuming until sure
    let mut probe = cur.chars.clone();
    probe.next(); // r
    let mut hashes = 0usize;
    loop {
        match probe.next() {
            Some('#') => hashes += 1,
            Some('"') => break,
            _ => return None,
        }
    }
    cur.bump(); // r
    for _ in 0..hashes {
        cur.bump();
    }
    cur.bump(); // "
    let mut text = String::new();
    'outer: while let Some(c) = cur.peek() {
        if c == '"' {
            // check for closing hash run
            let mut probe = cur.chars.clone();
            probe.next(); // "
            for _ in 0..hashes {
                if probe.next() != Some('#') {
                    text.push('"');
                    cur.bump();
                    continue 'outer;
                }
            }
            cur.bump(); // "
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
        text.push(c);
        cur.bump();
    }
    Some(Token { kind: TokenKind::Str, text, line, col })
}

/// Lex a `'…` token: char literal or lifetime; cursor is on the `'`.
fn lex_char(cur: &mut Cursor, line: u32, col: u32) -> Token {
    cur.bump(); // '
    let mut text = String::new();
    match cur.peek() {
        Some('\\') => {
            // escaped char literal: consume escape then to closing quote
            text.push('\\');
            cur.bump();
            if let Some(esc) = cur.peek() {
                text.push(esc);
                cur.bump();
                if esc == 'u' {
                    // '\u{..}'
                    while let Some(c) = cur.peek() {
                        text.push(c);
                        cur.bump();
                        if c == '}' {
                            break;
                        }
                    }
                }
            }
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            Token { kind: TokenKind::Char, text, line, col }
        }
        Some(c) if is_ident_start(c) => {
            // 'a' is a char, 'a (no closing quote) is a lifetime
            if cur.peek2() == Some('\'') {
                cur.bump();
                cur.bump();
                Token { kind: TokenKind::Char, text: c.to_string(), line, col }
            } else {
                while let Some(c) = cur.peek() {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                Token { kind: TokenKind::Lifetime, text, line, col }
            }
        }
        Some(c) => {
            // '+' and friends
            text.push(c);
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            Token { kind: TokenKind::Char, text, line, col }
        }
        None => Token { kind: TokenKind::Char, text, line, col },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn code_idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = r##"
            let x = "SystemTime::now()"; // Instant::now in a comment
            /* thread_rng in a block comment */
            let y = r#"rand::random inside raw "quoted" string"#;
        "##;
        let idents = code_idents(src);
        assert!(idents.contains(&"let".to_string()));
        assert!(!idents.contains(&"SystemTime".to_string()), "{idents:?}");
        assert!(!idents.contains(&"Instant".to_string()));
        assert!(!idents.contains(&"thread_rng".to_string()));
        assert!(!idents.contains(&"rand".to_string()));
        // but the literal content is preserved on the Str tokens
        let strs: Vec<String> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text)
            .collect();
        assert!(strs[0].contains("SystemTime::now"));
        assert!(strs[1].contains("rand::random inside raw \"quoted\" string"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ code");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks[0].1.contains("inner"));
        assert!(toks[0].1.contains("still comment"));
        assert_eq!(toks[1], (TokenKind::Ident, "code".to_string()));
    }

    #[test]
    fn raw_string_hash_depths() {
        // depth-2 raw string containing a depth-1 closer
        let src = r####"let s = r##"has "# inside"## ; after"####;
        let toks = kinds(src);
        let s = toks.iter().find(|(k, _)| *k == TokenKind::Str).unwrap();
        assert_eq!(s.1, "has \"# inside");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "after"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r###"b"bytes" br#"raw bytes"# b'x'"###);
        assert_eq!(toks[0], (TokenKind::Str, "bytes".to_string()));
        assert_eq!(toks[1], (TokenKind::Str, "raw bytes".to_string()));
        assert_eq!(toks[2], (TokenKind::Char, "x".to_string()));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = kinds("'a' 'static <'b> '\\n' '\\u{1F600}'");
        assert_eq!(toks[0], (TokenKind::Char, "a".to_string()));
        assert_eq!(toks[1], (TokenKind::Lifetime, "static".to_string()));
        assert_eq!(toks[3], (TokenKind::Lifetime, "b".to_string()));
        assert!(matches!(toks[5], (TokenKind::Char, _)));
        assert!(matches!(toks[6], (TokenKind::Char, _)));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert_eq!(toks[1], (TokenKind::Ident, "type".to_string()));
    }

    #[test]
    fn spans_are_one_based_lines_and_cols() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let toks = kinds("1..5 1.5 1.max(2)");
        assert_eq!(toks[0], (TokenKind::Number, "1".to_string()));
        assert_eq!(toks[1], (TokenKind::Punct, ".".to_string()));
        assert_eq!(toks[2], (TokenKind::Punct, ".".to_string()));
        assert_eq!(toks[3], (TokenKind::Number, "5".to_string()));
        assert_eq!(toks[4], (TokenKind::Number, "1.5".to_string()));
        assert_eq!(toks[5], (TokenKind::Number, "1".to_string()));
        assert_eq!(toks[6], (TokenKind::Punct, ".".to_string()));
        assert_eq!(toks[7], (TokenKind::Ident, "max".to_string()));
    }

    #[test]
    fn unterminated_input_degrades_gracefully() {
        // never panic, close at EOF
        lex("let s = \"unterminated");
        lex("/* unterminated");
        lex("let s = r#\"unterminated");
        lex("'");
    }

    // Property-test version: wider input space in real CI; the offline
    // stub compiles this out.
    mod prop {
        #[allow(unused_imports)] // the offline proptest stub empties the macro
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// The audit's core guarantee: a banned name embedded in any
            /// literal or comment form — including raw strings with
            /// adversarial near-closer `"#…` runs inside — never surfaces
            /// as a code identifier, while the literal's content survives
            /// on the Str token.
            #[test]
            fn banned_names_in_literals_never_become_code(
                prefix in "[a-z ]{0,8}",
                suffix in "[a-z #\"]{0,8}",
                banned in prop::sample::select(vec![
                    "SystemTime", "Instant", "thread_rng", "RandomState",
                ]),
                hashes in 2usize..5,
                mode in 0usize..4,
            ) {
                let payload = format!("{prefix}{banned}::now(){suffix}");
                let src = match mode {
                    0 => {
                        // plain string; payload may not end mid-escape
                        let safe = payload.replace('\\', "").replace('"', "");
                        format!("let s = \"{safe}\";\nlet tail = 1;")
                    }
                    1 => format!("// {payload}\nlet tail = 1;"),
                    2 => {
                        let safe = payload.replace("*/", "").replace("/*", "");
                        format!("/* {safe} */ let tail = 1;")
                    }
                    _ => {
                        // raw string with a near-closer (one hash short)
                        let h = "#".repeat(hashes);
                        let near = "#".repeat(hashes - 1);
                        let safe = payload.replace('#', "");
                        format!("let s = r{h}\"{safe} \"{near} inner\"{h};\nlet tail = 1;")
                    }
                };
                let toks = lex(&src);
                prop_assert!(
                    !toks.iter().any(|t| t.kind == TokenKind::Ident && t.text == banned),
                    "{banned} leaked out of a literal in {src:?}"
                );
                // the lexer resynchronized: code after the literal is code
                prop_assert!(toks.iter().any(|t| t.is_ident("tail")), "{src:?}");
            }

            /// Total on arbitrary input: no panic, and spans stay 1-based.
            #[test]
            fn lex_is_total_and_spans_stay_one_based(src in "\\PC{0,200}") {
                for t in lex(&src) {
                    prop_assert!(t.line >= 1 && t.col >= 1);
                }
            }
        }
    }
}
