//! Audit diagnostics: stable `DH` (digibox hazard) codes, file/line/col
//! spans, and the report with pretty-terminal and canonical-JSON output.
//!
//! Same conventions as the `DL` lint codes in [`crate::diag`]: codes are
//! append-only and never change meaning, so `--allow` lists and
//! `// det-ok(DHxxxx)` suppressions stay valid across versions.

use std::collections::BTreeSet;
use std::fmt;

pub use crate::diag::Severity;

/// The stable hazard codes (`DH` = digibox hazard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HazardCode {
    /// DH0001 — a banned wall-clock/entropy API in simulation code
    /// (`SystemTime::now`, `Instant::now`, `thread_rng`, `rand::random`,
    /// `RandomState`).
    BannedTimeOrEntropy,
    /// DH0002 — iteration over a `HashMap`/`HashSet` in hash order, with
    /// no trailing sort, BTree re-collection, or order-independent
    /// reduction.
    HashOrderIteration,
    /// DH0003 — `std::thread` use outside the sanctioned parallel engines
    /// (`core::sweep` workers, `core::islands` space-parallel engine).
    ThreadOutsideSweep,
    /// DH0004 — pointer identity leaking into observable output (`{:p}`
    /// format specifier, `as *const … as usize` casts).
    PointerIdentityLeak,
    /// DH0005 — floating-point accumulation over a hash-ordered source
    /// (float addition is not associative, so the sum depends on hash
    /// order).
    FloatAccumulation,
    /// DH0090 — a `// det-ok(DHxxxx)` suppression that matches no finding
    /// (the hazard it excused is gone; the annotation must go too).
    StaleSuppression,
    /// DH0091 — a malformed or legacy determinism annotation (bare
    /// `// det-ok:` without a code, unknown code, or missing reason).
    MalformedSuppression,
}

impl HazardCode {
    pub fn as_str(self) -> &'static str {
        match self {
            HazardCode::BannedTimeOrEntropy => "DH0001",
            HazardCode::HashOrderIteration => "DH0002",
            HazardCode::ThreadOutsideSweep => "DH0003",
            HazardCode::PointerIdentityLeak => "DH0004",
            HazardCode::FloatAccumulation => "DH0005",
            HazardCode::StaleSuppression => "DH0090",
            HazardCode::MalformedSuppression => "DH0091",
        }
    }

    /// The fixed severity of findings with this code. Everything is an
    /// error except DH0005, whose float-flow analysis is heuristic.
    pub fn severity(self) -> Severity {
        match self {
            HazardCode::FloatAccumulation => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// Short human title (the hazard-codes table in DESIGN.md §13).
    pub fn title(self) -> &'static str {
        match self {
            HazardCode::BannedTimeOrEntropy => "banned time/entropy API",
            HazardCode::HashOrderIteration => "hash-order iteration",
            HazardCode::ThreadOutsideSweep => "thread spawn outside sanctioned engines",
            HazardCode::PointerIdentityLeak => "pointer identity leak",
            HazardCode::FloatAccumulation => "float accumulation over hash order",
            HazardCode::StaleSuppression => "stale det-ok suppression",
            HazardCode::MalformedSuppression => "malformed det-ok annotation",
        }
    }

    pub fn all() -> [HazardCode; 7] {
        [
            HazardCode::BannedTimeOrEntropy,
            HazardCode::HashOrderIteration,
            HazardCode::ThreadOutsideSweep,
            HazardCode::PointerIdentityLeak,
            HazardCode::FloatAccumulation,
            HazardCode::StaleSuppression,
            HazardCode::MalformedSuppression,
        ]
    }

    /// Parse `"DH0002"` back to a code.
    pub fn parse(s: &str) -> Option<HazardCode> {
        HazardCode::all().into_iter().find(|c| c.as_str() == s)
    }
}

impl fmt::Display for HazardCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One audit finding, anchored to a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AuditFinding {
    /// Path as given to the audit (repo-relative in CI).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    pub code: HazardCode,
    pub severity: Severity,
    pub message: String,
}

impl AuditFinding {
    pub fn new(code: HazardCode, file: &str, line: u32, col: u32, message: String) -> AuditFinding {
        AuditFinding { file: file.to_string(), line, col, code, severity: code.severity(), message }
    }
}

/// The collected findings of an audit run.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    pub findings: Vec<AuditFinding>,
    /// Findings dropped by `// det-ok(DHxxxx)` annotations.
    pub suppressed: usize,
    /// Findings dropped by the global `--allow` set.
    pub allowed: usize,
    /// Number of `.rs` files scanned.
    pub files: usize,
}

impl AuditReport {
    pub fn new() -> AuditReport {
        AuditReport::default()
    }

    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|d| d.severity == sev).count()
    }

    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Drop findings covered by the global `--allow` set, then order what
    /// remains (most severe first, then by file/line/col/code) so output
    /// is byte-stable across runs and platforms.
    pub fn finish(&mut self, allow: &BTreeSet<String>) {
        let before = self.findings.len();
        self.findings.retain(|d| !allow.contains(d.code.as_str()));
        self.allowed += before - self.findings.len();
        self.findings.sort_by(|a, b| {
            (b.severity, &a.file, a.line, a.col, a.code, &a.message)
                .cmp(&(a.severity, &b.file, b.line, b.col, b.code, &b.message))
        });
    }

    /// Terminal rendering: `DH0002 error crates/x.rs:191:9: message`.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        for d in &self.findings {
            out.push_str(&format!(
                "{} {} {}:{}:{}: {}\n",
                d.code,
                d.severity.as_str(),
                d.file,
                d.line,
                d.col,
                d.message
            ));
        }
        out.push_str(&format!(
            "audit: {} file(s), {} error(s), {} warning(s)",
            self.files,
            self.errors(),
            self.warnings()
        ));
        if self.suppressed > 0 {
            out.push_str(&format!(", {} suppressed", self.suppressed));
        }
        if self.allowed > 0 {
            out.push_str(&format!(", {} allowed", self.allowed));
        }
        out.push('\n');
        out
    }

    /// Canonical machine rendering: hand-rolled (not serde) like the lint
    /// report, keys in a fixed order, findings pre-sorted by [`finish`],
    /// one trailing newline — so CI can archive and `cmp` reports
    /// byte-for-byte.
    ///
    /// [`finish`]: AuditReport::finish
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|d| {
                format!(
                    concat!(
                        "{{\"code\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", ",
                        "\"line\": {}, \"col\": {}, \"message\": \"{}\"}}"
                    ),
                    d.code,
                    d.severity.as_str(),
                    crate::diag::json_escape(&d.file),
                    d.line,
                    d.col,
                    crate::diag::json_escape(&d.message),
                )
            })
            .collect();
        format!(
            "{{\"findings\": [{}], \"files\": {}, \"errors\": {}, \"warnings\": {}, \"suppressed\": {}, \"allowed\": {}}}\n",
            findings.join(", "),
            self.files,
            self.errors(),
            self.warnings(),
            self.suppressed,
            self.allowed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AuditReport {
        let mut r = AuditReport::new();
        r.files = 2;
        r.findings.push(AuditFinding::new(
            HazardCode::FloatAccumulation,
            "crates/x/src/a.rs",
            7,
            5,
            "sum of f64 over hash order".into(),
        ));
        r.findings.push(AuditFinding::new(
            HazardCode::HashOrderIteration,
            "crates/x/src/a.rs",
            3,
            9,
            "iterates `m` (HashMap) in hash order".into(),
        ));
        r
    }

    #[test]
    fn codes_are_stable_unique_and_parse_back() {
        let codes: Vec<&str> = HazardCode::all().iter().map(|c| c.as_str()).collect();
        let set: BTreeSet<&str> = codes.iter().copied().collect();
        assert_eq!(set.len(), codes.len());
        assert_eq!(codes[0], "DH0001");
        assert_eq!(codes[4], "DH0005");
        assert_eq!(codes[5], "DH0090");
        for c in HazardCode::all() {
            assert_eq!(HazardCode::parse(c.as_str()), Some(c));
            assert!(!c.title().is_empty());
        }
        assert_eq!(HazardCode::parse("DL0001"), None);
    }

    #[test]
    fn finish_sorts_errors_first_then_location() {
        let mut r = sample();
        r.finish(&BTreeSet::new());
        assert_eq!(r.findings[0].code, HazardCode::HashOrderIteration);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
    }

    #[test]
    fn allow_drops_and_counts() {
        let mut r = sample();
        r.finish(&["DH0002".to_string()].into());
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.allowed, 1);
        assert!(!r.has_errors());
    }

    #[test]
    fn pretty_and_json_are_stable() {
        let mut r = sample();
        r.finish(&BTreeSet::new());
        let text = r.render_pretty();
        assert!(text.contains("DH0002 error crates/x/src/a.rs:3:9:"), "{text}");
        assert!(text.contains("2 file(s), 1 error(s), 1 warning(s)"), "{text}");
        let a = r.to_json();
        let b = r.clone().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"code\": \"DH0002\""), "{a}");
        assert!(a.ends_with('\n'));
    }
}
