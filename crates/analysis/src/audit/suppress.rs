//! The structured suppression grammar, and its enforcement.
//!
//! A finding is excused by a line comment of the form
//!
//! ```text
//! // det-ok(DH0002): reason the hazard is not real here
//! ```
//!
//! either trailing the offending line or standing alone on the line
//! directly above it. Several codes may share one annotation:
//! `// det-ok(DH0002,DH0005): …`. Unlike the legacy grep lint, the
//! contract is *checked* both ways:
//!
//! * a suppression that matches no finding is itself a finding (DH0090,
//!   stale) — annotations cannot rot in place once the hazard is fixed;
//! * a bare legacy `// det-ok: reason`, an unknown code, or a missing
//!   reason is malformed (DH0091) — suppressions must say *what* they
//!   excuse and *why*.

use super::lexer::{Token, TokenKind};
use super::report::{AuditFinding, HazardCode};

/// One parsed `// det-ok(...)` annotation.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Codes this annotation excuses.
    pub codes: Vec<HazardCode>,
    /// The justification after the colon.
    pub reason: String,
    /// 1-based line the comment sits on.
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
}

/// Everything suppression-shaped found in one file's comments.
#[derive(Debug, Default)]
pub struct SuppressionSet {
    pub suppressions: Vec<Suppression>,
    /// DH0091 findings for malformed/legacy annotations.
    pub malformed: Vec<AuditFinding>,
}

/// Scan a file's comment tokens for `det-ok` annotations.
pub fn collect(file: &str, tokens: &[Token]) -> SuppressionSet {
    let mut set = SuppressionSet::default();
    for tok in tokens {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let body = tok.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("det-ok") else {
            continue;
        };
        let malformed = |msg: String| {
            AuditFinding::new(HazardCode::MalformedSuppression, file, tok.line, tok.col, msg)
        };
        let rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix('(') {
            let Some((codes_str, tail)) = after.split_once(')') else {
                set.malformed.push(malformed("unclosed `det-ok(` annotation".into()));
                continue;
            };
            let mut codes = Vec::new();
            let mut bad = None;
            for c in codes_str.split(',').map(str::trim).filter(|c| !c.is_empty()) {
                match HazardCode::parse(c) {
                    Some(code) => codes.push(code),
                    None => bad = Some(c.to_string()),
                }
            }
            if let Some(bad) = bad {
                let hint = digibox_core::suggest::nearest(
                    &bad,
                    HazardCode::all().iter().map(|c| c.as_str()),
                )
                .map(|s| format!(" (did you mean {s}?)"))
                .unwrap_or_default();
                set.malformed
                    .push(malformed(format!("det-ok names unknown hazard code {bad:?}{hint}")));
                continue;
            }
            if codes.is_empty() {
                set.malformed.push(malformed("det-ok() names no hazard code".into()));
                continue;
            }
            let reason = tail.trim_start().strip_prefix(':').map(str::trim).unwrap_or("");
            if reason.is_empty() {
                set.malformed.push(malformed(
                    "det-ok suppression has no reason (expected `// det-ok(DHxxxx): why`)".into(),
                ));
                continue;
            }
            set.suppressions.push(Suppression {
                codes,
                reason: reason.to_string(),
                line: tok.line,
                col: tok.col,
            });
        } else {
            // legacy `// det-ok: reason` or stray `det-ok` marker
            set.malformed.push(malformed(
                "legacy bare `det-ok:` annotation — migrate to `// det-ok(DHxxxx): reason`"
                    .into(),
            ));
        }
    }
    set
}

/// Apply suppressions to a file's findings. Returns the findings that
/// survive (with DH0090 staleness findings appended for annotations that
/// matched nothing) plus the count of findings suppressed.
///
/// An annotation on line `L` covers findings on `L` (trailing form) and
/// `L + 1` (line-above form).
pub fn apply(file: &str, findings: Vec<AuditFinding>, set: &SuppressionSet) -> (Vec<AuditFinding>, usize) {
    let mut used = vec![false; set.suppressions.len()];
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for finding in findings {
        let hit = set.suppressions.iter().enumerate().find(|(_, s)| {
            s.codes.contains(&finding.code)
                && (s.line == finding.line || s.line + 1 == finding.line)
        });
        match hit {
            Some((i, _)) => {
                used[i] = true;
                suppressed += 1;
            }
            None => kept.push(finding),
        }
    }
    for (i, s) in set.suppressions.iter().enumerate() {
        if !used[i] {
            let codes: Vec<&str> = s.codes.iter().map(|c| c.as_str()).collect();
            kept.push(AuditFinding::new(
                HazardCode::StaleSuppression,
                file,
                s.line,
                s.col,
                format!(
                    "det-ok({}) suppresses nothing — the hazard it excused is gone; remove the annotation",
                    codes.join(",")
                ),
            ));
        }
    }
    kept.extend(set.malformed.iter().cloned());
    (kept, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::lexer::lex;

    fn finding(code: HazardCode, line: u32) -> AuditFinding {
        AuditFinding::new(code, "f.rs", line, 1, "x".into())
    }

    #[test]
    fn parses_structured_annotations() {
        let toks = lex("// det-ok(DH0002): min over values is order-independent\n");
        let set = collect("f.rs", &toks);
        assert!(set.malformed.is_empty(), "{:?}", set.malformed);
        assert_eq!(set.suppressions.len(), 1);
        assert_eq!(set.suppressions[0].codes, vec![HazardCode::HashOrderIteration]);
        assert!(set.suppressions[0].reason.contains("order-independent"));
    }

    #[test]
    fn multi_code_annotations() {
        let toks = lex("// det-ok(DH0002, DH0005): digest accumulation is commutative\n");
        let set = collect("f.rs", &toks);
        assert_eq!(set.suppressions[0].codes.len(), 2);
    }

    #[test]
    fn legacy_bare_form_is_malformed() {
        let toks = lex("use std::collections::HashMap; // det-ok: keyed lookup only\n");
        let set = collect("f.rs", &toks);
        assert!(set.suppressions.is_empty());
        assert_eq!(set.malformed.len(), 1);
        assert_eq!(set.malformed[0].code, HazardCode::MalformedSuppression);
        assert!(set.malformed[0].message.contains("legacy"), "{}", set.malformed[0].message);
    }

    #[test]
    fn unknown_code_and_missing_reason_are_malformed() {
        let toks = lex("// det-ok(DH9999): no such code\n// det-ok(DH0002):\n// det-ok(DH0020): typo\n");
        let set = collect("f.rs", &toks);
        assert!(set.suppressions.is_empty());
        assert_eq!(set.malformed.len(), 3);
        assert!(set.malformed[0].message.contains("DH9999"));
        assert!(set.malformed[1].message.contains("no reason"));
        // OSA suggestion on near-miss codes
        assert!(set.malformed[2].message.contains("did you mean DH0002?"), "{}", set.malformed[2].message);
    }

    #[test]
    fn det_ok_inside_string_is_not_an_annotation() {
        let toks = lex("let s = \"// det-ok: in a string\";\n");
        let set = collect("f.rs", &toks);
        assert!(set.suppressions.is_empty());
        assert!(set.malformed.is_empty());
    }

    #[test]
    fn trailing_and_line_above_forms_suppress() {
        let toks = lex("// det-ok(DH0002): covers next line\nx;\ny; // det-ok(DH0001): covers this line\n");
        let set = collect("f.rs", &toks);
        let findings = vec![
            finding(HazardCode::HashOrderIteration, 2),
            finding(HazardCode::BannedTimeOrEntropy, 3),
        ];
        let (kept, suppressed) = apply("f.rs", findings, &set);
        assert_eq!(suppressed, 2);
        assert!(kept.is_empty(), "{kept:?}");
    }

    #[test]
    fn wrong_code_or_line_does_not_suppress() {
        let toks = lex("x; // det-ok(DH0001): wrong code for this finding\n");
        let set = collect("f.rs", &toks);
        let (kept, suppressed) = apply("f.rs", vec![finding(HazardCode::HashOrderIteration, 1)], &set);
        assert_eq!(suppressed, 0);
        // the original finding survives AND the annotation is stale
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().any(|f| f.code == HazardCode::HashOrderIteration));
        assert!(kept.iter().any(|f| f.code == HazardCode::StaleSuppression));
    }

    #[test]
    fn stale_suppression_becomes_dh0090() {
        let toks = lex("// det-ok(DH0002): nothing here anymore\nclean_code();\n");
        let set = collect("f.rs", &toks);
        let (kept, suppressed) = apply("f.rs", Vec::new(), &set);
        assert_eq!(suppressed, 0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].code, HazardCode::StaleSuppression);
        assert_eq!(kept[0].line, 1);
        assert!(kept[0].message.contains("det-ok(DH0002)"), "{}", kept[0].message);
    }
}
