//! The determinism/concurrency rule passes.
//!
//! Every pass works on the lexed token stream of one file, so string
//! literals, comments, and raw strings can never false-positive (see
//! [`super::lexer`]). The passes:
//!
//! * **DH0001** — banned wall-clock/entropy APIs: `SystemTime::now`,
//!   `Instant::now`, `thread_rng`, `rand::random`, `RandomState`. Virtual
//!   time comes from the kernel, randomness from the seeded `Prng`.
//! * **DH0002** — *actual* hash-order iteration: `for _ in map` or an
//!   `.iter()`/`.keys()`/`.values()`/`.drain()`/`.into_iter()` chain whose
//!   receiver was declared `HashMap`/`HashSet` in this file. A site is
//!   clean when hash order provably cannot reach observable state:
//!   the chain re-collects into a `BTreeMap`/`BTreeSet`, ends in an
//!   order-independent reduction (`min`/`max`/`sum`/`count`/`all`/`any`…),
//!   or collects into a local that is sorted within the next two
//!   statements (the workspace's `collect-then-sort` idiom).
//! * **DH0003** — `std::thread` outside `core::sweep`: all simulation
//!   parallelism must go through the deterministic sweep engine.
//! * **DH0004** — pointer identity leaking into observable output: a
//!   `{:p}` format specifier, or an `as *const … as usize` address cast.
//!   Addresses differ run-to-run under ASLR, so they must never reach a
//!   model, digest, or trace.
//! * **DH0005** — float accumulation over a hash-ordered source: a
//!   `sum()`/`product()` reduction over a hash binding whose value type is
//!   `f32`/`f64` (float addition is not associative, so even an
//!   order-independent-looking reduction depends on hash order).
//!
//! The receiver analysis is deliberately an *under*-approximation: a hash
//! map that crosses a function boundary or hides behind a wrapper type is
//! invisible. That is the correct bias for a gate that must hold `dbox
//! audit` to zero false positives on its own sources — cross-file flows
//! are the clippy `iter_over_hash_type` lint's job in full-toolchain CI.

use std::collections::BTreeMap;

use super::lexer::{Token, TokenKind};
use super::report::{AuditFinding, HazardCode};

/// Per-file rule configuration.
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// `std::thread` is legal here (the `core::sweep` worker engine).
    pub threads_allowed: bool,
}

/// Iterator-producing methods on hash collections.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Chain-terminating adapters whose result does not depend on iteration
/// order (for non-float element types).
const ORDER_FREE_REDUCERS: [&str; 12] = [
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "sum",
    "product",
    "count",
    "len",
    "all",
    "any",
];

/// What the file declared a hash-typed binding as.
#[derive(Debug, Clone, Copy)]
struct HashBinding {
    /// The map's value type (or set's element type) mentions `f32`/`f64`.
    float_values: bool,
}

/// Run every pass over one file's tokens.
pub fn scan(file: &str, tokens: &[Token], cfg: &RuleConfig) -> Vec<AuditFinding> {
    // rules never look at comments; spans stay intact on the code tokens
    let code: Vec<&Token> = tokens.iter().filter(|t| t.is_code()).collect();
    let mut findings = Vec::new();
    banned_apis(file, &code, &mut findings);
    if !cfg.threads_allowed {
        threads(file, &code, &mut findings);
    }
    pointer_leaks(file, &code, &mut findings);
    let bindings = collect_hash_bindings(&code);
    hash_iteration(file, &code, &bindings, &mut findings);
    findings
}

/// Does `code[i..]` start with this ident/punct pattern? `"::"` in the
/// pattern means two consecutive `:` tokens; a single char matches a
/// punct; anything longer matches an ident.
fn seq(code: &[&Token], i: usize, pattern: &[&str]) -> bool {
    let mut at = i;
    for p in pattern {
        if *p == "::" {
            if !(code.get(at).is_some_and(|t| t.is_punct(':'))
                && code.get(at + 1).is_some_and(|t| t.is_punct(':')))
            {
                return false;
            }
            at += 2;
        } else if p.chars().count() == 1 && !p.chars().next().unwrap().is_alphabetic() {
            if !code.get(at).is_some_and(|t| t.is_punct(p.chars().next().unwrap())) {
                return false;
            }
            at += 1;
        } else {
            if !code.get(at).is_some_and(|t| t.is_ident(p)) {
                return false;
            }
            at += 1;
        }
    }
    true
}

fn banned_apis(file: &str, code: &[&Token], findings: &mut Vec<AuditFinding>) {
    for i in 0..code.len() {
        let t = code[i];
        let hit: Option<&str> = if seq(code, i, &["SystemTime", "::", "now"]) {
            Some("SystemTime::now reads the wall clock — use the kernel's virtual time")
        } else if seq(code, i, &["Instant", "::", "now"]) {
            Some("Instant::now reads the wall clock — use the kernel's virtual time")
        } else if t.is_ident("thread_rng") {
            Some("thread_rng draws OS entropy — use the seeded Prng")
        } else if seq(code, i, &["rand", "::", "random"]) {
            Some("rand::random draws OS entropy — use the seeded Prng")
        } else if t.is_ident("RandomState") {
            Some("RandomState seeds hashers from OS entropy — hash order becomes run-dependent")
        } else {
            None
        };
        if let Some(msg) = hit {
            findings.push(AuditFinding::new(
                HazardCode::BannedTimeOrEntropy,
                file,
                t.line,
                t.col,
                msg.to_string(),
            ));
        }
    }
}

fn threads(file: &str, code: &[&Token], findings: &mut Vec<AuditFinding>) {
    let mut i = 0;
    while i < code.len() {
        let hit = seq(code, i, &["thread", "::", "spawn"]) || seq(code, i, &["std", "::", "thread"]);
        if hit {
            findings.push(AuditFinding::new(
                HazardCode::ThreadOutsideSweep,
                file,
                code[i].line,
                code[i].col,
                "std::thread outside core::sweep/core::islands — simulation parallelism must \
                 go through a deterministic engine"
                    .to_string(),
            ));
            // skip the whole `a :: b` just matched so `std::thread::spawn`
            // yields one finding, not two
            i += 4;
        } else {
            i += 1;
        }
    }
}

fn pointer_leaks(file: &str, code: &[&Token], findings: &mut Vec<AuditFinding>) {
    for (i, t) in code.iter().enumerate() {
        // `{:p}` (or `{name:p}`) inside any string literal: the Display
        // machinery prints an address
        if t.kind == TokenKind::Str && format_string_prints_pointer(&t.text) {
            findings.push(AuditFinding::new(
                HazardCode::PointerIdentityLeak,
                file,
                t.line,
                t.col,
                "format string prints a pointer ({:p}) — addresses differ run-to-run under ASLR"
                    .to_string(),
            ));
        }
        // `as *const T as usize` / `as *mut T as usize`: address as data
        if t.is_ident("as")
            && code.get(i + 1).is_some_and(|t| t.is_punct('*'))
            && code.get(i + 2).is_some_and(|t| t.is_ident("const") || t.is_ident("mut"))
        {
            for j in i + 3..code.len().min(i + 16) {
                if code[j].is_punct(';') || code[j].is_punct('{') {
                    break;
                }
                if code[j].is_ident("as") && code.get(j + 1).is_some_and(|t| t.is_ident("usize")) {
                    findings.push(AuditFinding::new(
                        HazardCode::PointerIdentityLeak,
                        file,
                        t.line,
                        t.col,
                        "pointer cast to usize — the address is run-dependent and must not \
                         reach observable state"
                            .to_string(),
                    ));
                    break;
                }
            }
        }
    }
}

/// `{:p}` / `{name:p}` / `{0:p}` in a format string, ignoring `{{` escapes.
fn format_string_prints_pointer(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            if bytes.get(i + 1) == Some(&b'{') {
                i += 2;
                continue;
            }
            let close = s[i + 1..].find('}').map(|o| i + 1 + o);
            if let Some(close) = close {
                let inner = &s[i + 1..close];
                let spec = inner.split_once(':').map(|(_, spec)| spec).unwrap_or("");
                if spec == "p" || spec.ends_with('p') && spec.chars().all(|c| c.is_alphanumeric() || "<>^#0.+-_$ ".contains(c)) && spec.len() <= 4 {
                    return true;
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    false
}

/// Pass 1 of DH0002/DH0005: names declared `HashMap`/`HashSet` in this
/// file — `name: HashMap<…>` (fields, params, struct-literal inits via
/// `name: HashMap::new()`) and `name = HashMap::new()` (lets, assigns).
fn collect_hash_bindings(code: &[&Token]) -> BTreeMap<String, HashBinding> {
    let mut out = BTreeMap::new();
    for i in 0..code.len() {
        let t = code[i];
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // walk back over a path prefix (`std :: collections :: HashMap`)
        let mut start = i;
        while start >= 2
            && code[start - 1].is_punct(':')
            && code[start - 2].is_punct(':')
        {
            if start >= 3 && code[start - 3].kind == TokenKind::Ident {
                start -= 3;
            } else {
                break;
            }
        }
        if start < 2 {
            continue;
        }
        // `name : HashMap…` (type annotation or struct-literal init) or
        // `name = HashMap::new()`; a `::`-path or `<` before the colon
        // means the hash type is nested inside another type — skip.
        let before = code[start - 1];
        let is_single_colon =
            before.is_punct(':') && !code.get(start.wrapping_sub(2)).is_some_and(|t| t.is_punct(':'));
        let is_assign = before.is_punct('=')
            && !code.get(start.wrapping_sub(2)).is_some_and(|t| {
                // not ==, <=, >=, != etc.
                t.is_punct('=') || t.is_punct('<') || t.is_punct('>') || t.is_punct('!')
            });
        if !(is_single_colon || is_assign) {
            continue;
        }
        let name_tok = code[start - 2];
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        let float_values = generic_args_mention_float(code, i, t.is_ident("HashMap"));
        out.insert(name_tok.text.clone(), HashBinding { float_values });
    }
    out
}

/// Whether the value type (map) / element type (set) of the generic args
/// at `code[at+1..]` mentions `f32`/`f64`.
fn generic_args_mention_float(code: &[&Token], at: usize, is_map: bool) -> bool {
    if !code.get(at + 1).is_some_and(|t| t.is_punct('<')) {
        return false;
    }
    let mut depth = 1usize;
    let mut seen_top_comma = false;
    let mut j = at + 2;
    while j < code.len() && depth > 0 {
        let t = code[j];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 1 {
            seen_top_comma = true;
        } else if (t.is_ident("f32") || t.is_ident("f64")) && (seen_top_comma || !is_map) {
            return true;
        }
        j += 1;
    }
    false
}

/// Pass 2 of DH0002/DH0005: iteration sites over the collected bindings.
fn hash_iteration(
    file: &str,
    code: &[&Token],
    bindings: &BTreeMap<String, HashBinding>,
    findings: &mut Vec<AuditFinding>,
) {
    if bindings.is_empty() {
        return;
    }
    // ranges of for-loop header expressions, so the chain scan below does
    // not double-report `for x in map.iter()`
    let mut covered: Vec<(usize, usize)> = Vec::new();

    // --- `for pat in expr {` form
    for i in 0..code.len() {
        if !code[i].is_ident("for") {
            continue;
        }
        // `for<'a>` higher-ranked bounds are not loops
        if code.get(i + 1).is_some_and(|t| t.is_punct('<')) {
            continue;
        }
        // the pattern cannot contain the `in` keyword; find it
        let Some(in_at) = (i + 1..code.len().min(i + 24)).find(|&j| code[j].is_ident("in")) else {
            continue;
        };
        // expression runs to the loop body `{` (struct literals are
        // illegal in for-headers, so the first depth-0 `{` is the body)
        let mut depth = 0i32;
        let mut body_at = None;
        for j in in_at + 1..code.len() {
            let t = code[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('{') && depth == 0 {
                body_at = Some(j);
                break;
            }
        }
        let Some(body_at) = body_at else { continue };
        covered.push((in_at + 1, body_at));
        // strip leading `&`, `&mut`, `(`
        let mut at = in_at + 1;
        while at < body_at
            && (code[at].is_punct('&') || code[at].is_ident("mut") || code[at].is_punct('('))
        {
            at += 1;
        }
        let Some((base, chain_from)) = receiver_base(code, at, body_at) else { continue };
        let Some(binding) = bindings.get(&base) else { continue };
        let methods = chain_methods(code, chain_from, body_at);
        if !float_reduces(binding, &methods)
            && chain_is_order_safe(code, chain_from, body_at, &methods)
        {
            continue;
        }
        push_iteration_finding(file, code[at], &base, binding, &methods, findings);
    }

    // --- `recv.iter()…` chain form
    for i in 0..code.len() {
        if covered.iter().any(|&(s, e)| i >= s && i < e) {
            continue;
        }
        let t = code[i];
        if !(t.kind == TokenKind::Ident && ITER_METHODS.contains(&t.text.as_str())) {
            continue;
        }
        if !(i >= 2 && code[i - 1].is_punct('.') && code.get(i + 1).is_some_and(|t| t.is_punct('('))) {
            continue;
        }
        // receiver: `name.iter()` or `self.name.iter()` / `x.name.iter()`
        let recv = code[i - 2];
        if recv.kind != TokenKind::Ident {
            continue; // complex receiver — out of scope (under-approximate)
        }
        let Some(binding) = bindings.get(&recv.text) else { continue };
        let chain_end = chain_end(code, i);
        let mut methods = vec![t.text.clone()];
        methods.extend(chain_methods(code, i + 1, chain_end));
        // a float sum/product is the DH0005 hazard itself, so the
        // order-free-reducer escape below must not swallow it
        if !float_reduces(binding, &methods) && chain_is_order_safe(code, i, chain_end, &methods) {
            continue;
        }
        // `let v = …collect();` followed by `v.sort…()` within two
        // statements is the workspace's collect-then-sort idiom
        if methods.last().is_some_and(|m| m == "collect")
            && collected_into_sorted_or_btree(code, i, chain_end)
        {
            continue;
        }
        push_iteration_finding(file, t, &recv.text, binding, &methods, findings);
    }
}

/// The base identifier of a receiver expression starting at `at`:
/// `name…` → (`name`, after) or `self . name…` / `x . name…` → (`name`,
/// after). Returns the index where a method chain would continue.
fn receiver_base(code: &[&Token], at: usize, limit: usize) -> Option<(String, usize)> {
    let first = code.get(at)?;
    if first.kind != TokenKind::Ident || first.is_ident("mut") {
        return None;
    }
    // `a . b …`: if the next two tokens are `.` + ident + (not a call),
    // treat `b` as a field access extending the base
    let mut base = first.text.clone();
    let mut end = at + 1;
    while end + 1 < limit
        && code[end].is_punct('.')
        && code[end + 1].kind == TokenKind::Ident
        && !code.get(end + 2).is_some_and(|t| t.is_punct('('))
    {
        base = code[end + 1].text.clone();
        end += 2;
    }
    Some((base, end))
}

/// Method names in a `. m ( … )` chain between `from` and `to`, skipping
/// balanced parens (closure bodies stay invisible) and turbofish.
fn chain_methods(code: &[&Token], from: usize, to: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut j = from;
    while j < to {
        let t = code[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0
            && t.is_punct('.')
            && code.get(j + 1).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            out.push(code[j + 1].text.clone());
            j += 1;
        }
        j += 1;
    }
    out
}

/// Where a method chain starting at the method token `i` ends: the last
/// token of the final `. m ( … )` link at depth 0.
fn chain_end(code: &[&Token], i: usize) -> usize {
    let mut j = i + 1; // the `(` after the iter method
    let mut depth = 0i32;
    let mut end = i;
    while j < code.len() {
        let t = code[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                break;
            }
            if depth == 0 {
                end = j;
                // chain continues only through `.` or turbofish `::<…>`
                let next = code.get(j + 1);
                let continues = next.is_some_and(|t| t.is_punct('.'))
                    || (next.is_some_and(|t| t.is_punct(':'))
                        && code.get(j + 2).is_some_and(|t| t.is_punct(':')));
                if !continues {
                    break;
                }
            }
        } else if depth == 0 && (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')) {
            break;
        }
        j += 1;
    }
    end + 1
}

/// Hash order cannot reach observable state through this chain: it
/// re-collects into a BTree (turbofish or annotated let), or terminates
/// in an order-independent reduction.
fn chain_is_order_safe(code: &[&Token], from: usize, to: usize, methods: &[String]) -> bool {
    // any BTreeMap/BTreeSet/BinaryHeap mention in the chain's turbofish
    for j in from..to.min(code.len()) {
        if code[j].kind == TokenKind::Ident && code[j].text.starts_with("BTree") {
            return true;
        }
    }
    match methods.last() {
        Some(last) if ORDER_FREE_REDUCERS.contains(&last.as_str()) => true,
        _ => false,
    }
}

/// For a chain ending in `collect`: does the enclosing statement collect
/// into a BTree-typed let, or into a local that is `.sort*()`ed within
/// the next two statements?
fn collected_into_sorted_or_btree(code: &[&Token], i: usize, chain_end: usize) -> bool {
    // find the start of the statement (previous `;` / `{` / `}`)
    let mut start = i;
    while start > 0 {
        let t = code[start - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        start -= 1;
    }
    // `let [mut] name [: Type] = …`
    if !code.get(start).is_some_and(|t| t.is_ident("let")) {
        return false;
    }
    let mut at = start + 1;
    if code.get(at).is_some_and(|t| t.is_ident("mut")) {
        at += 1;
    }
    let Some(name_tok) = code.get(at) else { return false };
    if name_tok.kind != TokenKind::Ident {
        return false;
    }
    // BTree-typed annotation counts immediately
    for j in at + 1..i {
        if code[j].kind == TokenKind::Ident && code[j].text.starts_with("BTree") {
            return true;
        }
    }
    // look for `name . sort*` within the next two statements
    let name = &name_tok.text;
    let mut semis = 0;
    let mut j = chain_end;
    while j < code.len() && semis < 3 {
        if code[j].is_punct(';') {
            semis += 1;
        } else if code[j].is_ident(name)
            && code.get(j + 1).is_some_and(|t| t.is_punct('.'))
            && code.get(j + 2).is_some_and(|t| {
                t.kind == TokenKind::Ident && t.text.starts_with("sort")
            })
        {
            return true;
        }
        j += 1;
    }
    false
}

/// An accumulating reduction over float values: the DH0005 shape.
fn float_reduces(binding: &HashBinding, methods: &[String]) -> bool {
    binding.float_values && methods.iter().any(|m| m == "sum" || m == "product" || m == "fold")
}

fn push_iteration_finding(
    file: &str,
    at: &Token,
    name: &str,
    binding: &HashBinding,
    methods: &[String],
    findings: &mut Vec<AuditFinding>,
) {
    if float_reduces(binding, methods) {
        findings.push(AuditFinding::new(
            HazardCode::FloatAccumulation,
            file,
            at.line,
            at.col,
            format!(
                "float accumulation over `{name}` (hash-ordered, f32/f64 values) — float \
                 addition is not associative, so the result depends on hash order; sort first"
            ),
        ));
        return;
    }
    // an order-free integer reduction was already filtered out; what is
    // left iterates in hash order
    findings.push(AuditFinding::new(
        HazardCode::HashOrderIteration,
        file,
        at.line,
        at.col,
        format!(
            "iterates `{name}` (declared HashMap/HashSet in this file) in hash order — sort \
             first, re-collect into a BTree, or reduce order-independently"
        ),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::lexer::lex;

    fn scan_src(src: &str) -> Vec<AuditFinding> {
        let tokens = lex(src);
        scan("fixture.rs", &tokens, &RuleConfig::default())
    }

    fn codes(src: &str) -> Vec<&'static str> {
        scan_src(src).into_iter().map(|f| f.code.as_str()).collect()
    }

    // ---- DH0001 -------------------------------------------------------

    #[test]
    fn dh0001_fires_on_banned_apis() {
        assert_eq!(codes("let t = SystemTime::now();"), ["DH0001"]);
        assert_eq!(codes("let t = std::time::Instant::now();"), ["DH0001"]);
        assert_eq!(codes("let r = thread_rng();"), ["DH0001"]);
        assert_eq!(codes("let x: u8 = rand::random();"), ["DH0001"]);
        assert_eq!(codes("let s = RandomState::new();"), ["DH0001"]);
    }

    #[test]
    fn dh0001_never_fires_in_strings_docs_or_comments() {
        assert!(codes("let s = \"SystemTime::now\";").is_empty());
        assert!(codes("// SystemTime::now is banned\nlet x = 1;").is_empty());
        assert!(codes("/// Unlike `Instant::now`, virtual time is seeded.\nfn f() {}").is_empty());
        assert!(codes(r###"let s = r#"thread_rng() and rand::random()"#;"###).is_empty());
        assert!(codes("/* RandomState */ let x = 1;").is_empty());
    }

    #[test]
    fn dh0001_spans_point_at_the_call() {
        let f = &scan_src("let t =\n    SystemTime::now();")[0];
        assert_eq!((f.line, f.col), (2, 5));
    }

    // ---- DH0002 -------------------------------------------------------

    const MAP_DECL: &str = "let mut m: HashMap<String, u32> = HashMap::new();\n";

    #[test]
    fn dh0002_fires_on_for_loop_over_hash_map() {
        let src = format!("{MAP_DECL}for (k, v) in &m {{ out.push(k); }}");
        assert_eq!(codes(&src), ["DH0002"]);
    }

    #[test]
    fn dh0002_fires_on_iter_chain_methods() {
        for m in ["iter", "keys", "values", "drain", "into_iter"] {
            let src = format!("{MAP_DECL}for x in m.{m}() {{ use_it(x); }}");
            assert_eq!(codes(&src), ["DH0002"], "method {m}");
        }
        let src = format!("{MAP_DECL}let v: Vec<_> = m.iter().map(|(k, _)| k).collect();");
        assert_eq!(codes(&src), ["DH0002"]);
    }

    #[test]
    fn dh0002_resolves_self_fields() {
        let src = "struct S { sessions: HashMap<u32, u32> }\n\
                   impl S { fn f(&self) { for s in self.sessions.values() { p(s); } } }";
        assert_eq!(codes(src), ["DH0002"]);
    }

    #[test]
    fn dh0002_ignores_btreemap_and_unknown_receivers() {
        assert!(codes("let m: BTreeMap<u32, u32> = BTreeMap::new();\nfor x in &m {}").is_empty());
        // receiver declared in another file: invisible, under-approximate
        assert!(codes("fn f(m: &SomeWrapper) { for x in m.iter() {} }").is_empty());
    }

    #[test]
    fn dh0002_sorted_collect_idiom_is_clean() {
        let src = format!(
            "{MAP_DECL}let mut v: Vec<(String, u32)> = m.into_iter().collect();\nv.sort_unstable();"
        );
        assert!(codes(&src).is_empty(), "{:?}", scan_src(&src));
        // sort via sort_by_key two statements later
        let src = format!(
            "{MAP_DECL}let mut v: Vec<_> = m.iter().collect();\nlog();\nv.sort_by_key(|(k, _)| k.clone());"
        );
        assert!(codes(&src).is_empty(), "{:?}", scan_src(&src));
    }

    #[test]
    fn dh0002_collect_into_btree_is_clean() {
        let src = format!("{MAP_DECL}let b: BTreeMap<String, u32> = m.into_iter().collect();");
        assert!(codes(&src).is_empty(), "{:?}", scan_src(&src));
        let src = format!("{MAP_DECL}let b = m.into_iter().collect::<BTreeMap<_, _>>();");
        assert!(codes(&src).is_empty(), "{:?}", scan_src(&src));
    }

    #[test]
    fn dh0002_order_free_reductions_are_clean() {
        let src = format!("{MAP_DECL}let n = m.values().map(|v| v + 1).min();");
        assert!(codes(&src).is_empty(), "{:?}", scan_src(&src));
        let src = format!("{MAP_DECL}let n: u32 = m.values().copied().sum();");
        assert!(codes(&src).is_empty(), "{:?}", scan_src(&src));
        let src = format!("{MAP_DECL}let any = m.keys().any(|k| k.is_empty());");
        assert!(codes(&src).is_empty(), "{:?}", scan_src(&src));
    }

    #[test]
    fn dh0002_unsorted_collect_still_fires() {
        let src = format!("{MAP_DECL}let v: Vec<_> = m.keys().cloned().collect();\nemit(v);");
        assert_eq!(codes(&src), ["DH0002"]);
    }

    // ---- DH0003 -------------------------------------------------------

    #[test]
    fn dh0003_fires_on_thread_spawn() {
        assert_eq!(codes("let h = std::thread::spawn(|| {});"), ["DH0003"]);
        assert_eq!(codes("use std::thread;\nfn f() { thread::spawn(run); }").len(), 2);
    }

    #[test]
    fn dh0003_exempts_the_sweep_engine() {
        let tokens = lex("let h = std::thread::spawn(|| {});");
        let f = scan("core/src/sweep.rs", &tokens, &RuleConfig { threads_allowed: true });
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn dh0003_exempts_the_island_engine() {
        // thread::scope is the island engine's idiom; the exemption covers it.
        let tokens = lex("std::thread::scope(|s| { s.spawn(|| {}); });");
        let f = scan("core/src/islands.rs", &tokens, &RuleConfig { threads_allowed: true });
        assert!(f.is_empty(), "{f:?}");
        let f = scan("core/src/testbed.rs", &tokens, &RuleConfig::default());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, HazardCode::ThreadOutsideSweep);
    }

    // ---- DH0004 -------------------------------------------------------

    #[test]
    fn dh0004_fires_on_pointer_formats_and_casts() {
        assert_eq!(codes("let s = format!(\"cell at {:p}\", cell);"), ["DH0004"]);
        assert_eq!(codes("let id = (&cell as *const Cell) as usize;"), ["DH0004"]);
    }

    #[test]
    fn dh0004_ignores_braces_that_are_not_pointer_specs() {
        assert!(codes("let s = format!(\"{{:p}} literal {x}\");").is_empty());
        assert!(codes("let s = format!(\"{name:>8}\");").is_empty());
        // const pointer without an integer round-trip is fine (FFI etc.)
        assert!(codes("let p = &x as *const u8; read(p);").is_empty());
    }

    // ---- DH0005 -------------------------------------------------------

    #[test]
    fn dh0005_fires_on_float_sum_over_hash_values() {
        let src = "let w: HashMap<u32, f64> = HashMap::new();\nlet total: f64 = w.values().sum();";
        assert_eq!(codes(src), ["DH0005"]);
    }

    #[test]
    fn dh0005_spares_integer_sums_and_float_btrees() {
        let src = "let w: HashMap<u32, u64> = HashMap::new();\nlet total: u64 = w.values().sum();";
        assert!(codes(src).is_empty());
        let src = "let w: BTreeMap<u32, f64> = BTreeMap::new();\nlet total: f64 = w.values().sum();";
        assert!(codes(src).is_empty());
    }
}
