//! Headless bench smoke: old-vs-new substrate microbenchmarks plus a
//! reduced E1/E6 sweep, written to `BENCH_substrate.json`, the E11
//! sweep-scaling row (jobs=1 vs jobs=all on a 16-seed chaos campaign),
//! written to `BENCH_sweep.json`, and the E13 `max_digis_per_sec` scaling
//! row (pooled arena testbeds at 10k/100k digis vs a per-digi-timer
//! baseline), written to `BENCH_scale.json`, and the E14 `islands_speedup`
//! row (one 2k-digi sim space-partitioned across island kernels at 1
//! worker vs one per core), written to `BENCH_islands.json`. Set
//! `DIGIBOX_E13_FULL=1` to add the million-digi row (minutes, not
//! CI-smoke material).
//!
//! Unlike the criterion benches this runs in seconds and needs no
//! harness, so CI can execute it report-only:
//!
//! ```text
//! cargo run --release -p digibox-bench --bin bench_smoke [out.json] [sweep.json] [obs.json] [scale.json] [islands.json]
//! ```
//!
//! Timings use `std::time::Instant` (criterion is a dev-dependency and
//! unavailable to bin targets); each microbench is repeated and the best
//! of N kept, which is noisy next to criterion but stable enough for the
//! ≥2×/≥3× speedup gates tracked in ISSUE/EXPERIMENTS.

use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::time::Instant;

use digibox_bench::baseline::{OldEventQueue, OldTopicTrie};
use digibox_bench::{build_deployment, laptop, measure_gets, parallel_sweep, report};
use digibox_broker::TopicTrie;
use digibox_core::campaign::Campaign;
use digibox_core::islands::{self, IslandEnv, IslandSpec, IslandsConfig};
use digibox_core::properties::DigiCondition;
use digibox_core::{Condition, SceneProperty, Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_net::chaos::{FaultKind, FaultPlan, FaultSpec};
use digibox_net::{EventWheel, SimDuration};
use serde_json::json;

const TIMERS: u64 = 1024;
const ROUNDS: u64 = 64;
const PERIOD_NS: u64 = 10_000_000;
const STANDING: u64 = 2048;
const REPS: usize = 7;

/// Best-of-N wall-clock seconds for `f`, with the result black-boxed by
/// summing into a sink the caller asserts on.
fn best_of<F: FnMut() -> u64>(mut f: F) -> (f64, u64) {
    let mut best = f64::MAX;
    let mut sink = 0;
    for _ in 0..REPS {
        let t = Instant::now();
        sink = f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, sink)
}

fn periodic_old() -> u64 {
    let mut q = OldEventQueue::new();
    let mut seq = 0u64;
    let horizon = PERIOD_NS * ROUNDS;
    for s in 0..STANDING {
        q.push(horizon + 1 + s * 1_000_000, seq, u64::MAX - s);
        seq += 1;
    }
    for t in 0..TIMERS {
        q.push(1 + t * (PERIOD_NS / TIMERS), seq, t);
        seq += 1;
    }
    let mut fired = 0u64;
    while let Some((at, _, t)) = q.pop() {
        if at > horizon {
            break;
        }
        fired += 1;
        if at < horizon {
            q.push(at + PERIOD_NS, seq, t);
            seq += 1;
        }
    }
    fired
}

fn periodic_new() -> u64 {
    let mut q = EventWheel::new();
    let mut seq = 0u64;
    let horizon = PERIOD_NS * ROUNDS;
    for s in 0..STANDING {
        q.push(horizon + 1 + s * 1_000_000, seq, u64::MAX - s);
        seq += 1;
    }
    for t in 0..TIMERS {
        q.push(1 + t * (PERIOD_NS / TIMERS), seq, t);
        seq += 1;
    }
    let mut fired = 0u64;
    while let Some((at, _, t)) = q.pop() {
        if at > horizon {
            break;
        }
        fired += 1;
        if at < horizon {
            q.push(at + PERIOD_NS, seq, t);
            seq += 1;
        }
    }
    fired
}

fn filters(n: usize) -> Vec<String> {
    let mut f: Vec<String> = (0..n).map(|i| format!("digibox/mock/O{i}/status")).collect();
    f.push("digibox/mock/+/status".into());
    f.push("digibox/#".into());
    f
}

fn routing_old(trie: &OldTopicTrie<u32>, topics: &[String], publishes: usize) -> u64 {
    let mut routed = 0u64;
    for i in 0..publishes {
        let mut routes: Vec<u32> = trie.lookup(&topics[i % topics.len()]).into_iter().copied().collect();
        routes.sort_unstable();
        routes.dedup();
        routed += routes.len() as u64;
    }
    routed
}

fn routing_new(trie: &TopicTrie<u32>, topics: &[String], publishes: usize) -> u64 {
    let mut cache: HashMap<String, Rc<[u32]>> = HashMap::new();
    let mut routed = 0u64;
    for i in 0..publishes {
        let topic = &topics[i % topics.len()];
        let routes = match cache.get(topic) {
            Some(r) => Rc::clone(r),
            None => {
                let mut r: Vec<u32> = trie.lookup(topic).into_iter().copied().collect();
                r.sort_unstable();
                r.dedup();
                let r: Rc<[u32]> = r.into();
                cache.insert(topic.clone(), Rc::clone(&r));
                r
            }
        };
        routed += routes.len() as u64;
    }
    routed
}

/// The E11 fixture: a short chaos campaign (one crash window over a 10s
/// run) on the room/lamp/occupancy scene. One call = one seed's full
/// simulated campaign — heavy enough that thread-level parallelism is what
/// the wall-clock measures, not startup.
fn sweep_plan() -> FaultPlan {
    FaultPlan::new("e11", 10_000, 1_000).with(FaultSpec {
        at_ms: 2_000,
        duration_ms: 2_000,
        jitter_ms: 1_000,
        kind: FaultKind::CrashDigi { digi: "L1".into() },
    })
}

fn sweep_testbed(seed: u64) -> digibox_core::Result<Testbed> {
    let config = TestbedConfig { seed, logging: false, ..Default::default() };
    let mut tb = Testbed::ec2(2, full_catalog(), config);
    tb.run_with("Occupancy", "O1", Default::default(), true)?;
    tb.run_with("Room", "R1", Default::default(), false)?;
    tb.run_with("Lamp", "L1", Default::default(), false)?;
    tb.run_for(SimDuration::from_secs(1));
    tb.attach("O1", "R1")?;
    tb.attach("L1", "R1")?;
    tb.add_property(SceneProperty::leads_to(
        "lamp-follows-vacancy",
        vec![DigiCondition::new("O1", Condition::eq("triggered", false))],
        vec![DigiCondition::new("L1", Condition::eq("power.status", "off"))],
        SimDuration::from_secs(5),
    ));
    tb.run_for(SimDuration::from_secs(1));
    Ok(tb)
}

/// The E12 fixture: build a 50-sensor deployment with the obs layer on or
/// off and run it for 20 virtual seconds. Returns (wall-clock seconds,
/// kernel events recorded) — the event count is 0 when metrics are off
/// and identical across runs when on (the layer is deterministic).
fn obs_run(seed: u64, metrics: bool) -> (f64, u64) {
    let t = Instant::now();
    let mut tb = Testbed::laptop(
        full_catalog(),
        TestbedConfig { seed, logging: false, metrics, ..Default::default() },
    );
    build_deployment(&mut tb, 50, 2, 0);
    tb.run_for(SimDuration::from_secs(20));
    let wall = t.elapsed().as_secs_f64();
    (wall, tb.obs_snapshot().counter("kernel.events"))
}

/// One E13 measurement: `digis` pooled into 10k-digi arena pods across an
/// EC2 cluster, advanced `virtual_secs`. Returns (wall seconds, kernel
/// events, total pool ticks, batched deliveries, queue-depth histogram).
fn scale_pooled(digis: usize, virtual_secs: u64) -> (f64, u64, u64, u64, serde_json::Value) {
    const PER_POOL: usize = 10_000;
    // one 10k pool pod (~2510 cpu millis) fits an m5.xlarge (4000); give
    // the cluster one node per pool plus slack for broker + control.
    let nodes = (digis.div_ceil(PER_POOL) + 2) as u32;
    let mut tb = Testbed::ec2(
        nodes,
        full_catalog(),
        TestbedConfig { seed: 13, logging: false, metrics: true, ..Default::default() },
    );
    let mut pools = Vec::new();
    let mut start = 0;
    while start < digis {
        let end = (start + PER_POOL).min(digis);
        let names: Vec<String> = (start..end).map(|i| format!("S{i}")).collect();
        let (pool, _) = tb.run_pool("Occupancy", &names, BTreeMap::new(), false).expect("pool runs");
        pools.push(pool);
        start = end;
    }
    tb.run_for(SimDuration::from_secs(2)); // warm-up: pods start, sessions connect
    let events_before = tb.sim().events_processed();
    let t = Instant::now();
    tb.run_for(SimDuration::from_secs(virtual_secs));
    let wall = t.elapsed().as_secs_f64();
    let events = tb.sim().events_processed() - events_before;
    let (ticks, batched) = pools.iter().fold((0u64, 0u64), |(t, b), p| {
        let s = p.borrow().stats();
        (t + s.ticks_dispatched, b + s.batched_deliveries)
    });
    let snap = tb.obs_snapshot();
    let depth = snap
        .histograms
        .iter()
        .find(|(name, _)| name == "kernel.queue_depth")
        .map(|(_, h)| json!({"count": h.count, "max": h.max, "mean": h.sum as f64 / h.count.max(1) as f64}))
        .unwrap_or_else(|| json!(null));
    (wall, events, ticks, batched, depth)
}

/// The E13 baseline: the same digi kind, one microservice (and one kernel
/// timer) per digi — the pre-arena execution mode.
fn scale_per_digi(digis: usize, virtual_secs: u64) -> (f64, u64) {
    // dedicated mock pods are 5 cpu millis each on 4000-milli nodes
    let nodes = (digis / 512 + 2) as u32;
    let mut tb = Testbed::ec2(
        nodes,
        full_catalog(),
        TestbedConfig { seed: 13, logging: false, metrics: true, ..Default::default() },
    );
    for i in 0..digis {
        tb.run_with("Occupancy", &format!("S{i}"), BTreeMap::new(), false).expect("digi runs");
    }
    tb.run_for(SimDuration::from_secs(2));
    let events_before = tb.sim().events_processed();
    let t = Instant::now();
    tb.run_for(SimDuration::from_secs(virtual_secs));
    let wall = t.elapsed().as_secs_f64();
    (wall, tb.sim().events_processed() - events_before)
}

/// The E14 fixture: four islands, each pooling `digis_per_island`
/// occupancy digis into one arena pod — one logical testbed split across
/// island kernels for the space-parallel scaling row.
fn island_specs(digis_per_island: usize) -> Vec<IslandSpec> {
    (0..4)
        .map(|i| {
            IslandSpec::new(format!("pool-{i}"), move |env: &IslandEnv| {
                let mut tb = Testbed::new(
                    env.topology.clone(),
                    full_catalog(),
                    TestbedConfig {
                        seed: env.seed,
                        home_node: Some(env.island as u32),
                        ..Default::default()
                    },
                );
                let names: Vec<String> =
                    (0..digis_per_island).map(|d| format!("P{i}x{d}")).collect();
                tb.run_pool("Occupancy", &names, Default::default(), false)?;
                tb.run_for(SimDuration::from_secs(1));
                Ok(tb)
            })
        })
        .collect()
}

/// One E14 run: the island campaign at the given worker count, reduced
/// to per-island digest strings plus wall-clock, epochs and cross count.
fn islands_run_at(workers: usize) -> (Vec<String>, f64, u64, u64) {
    let t = Instant::now();
    let run = islands::run(
        7,
        island_specs(500),
        &IslandsConfig { workers, ..IslandsConfig::default() },
        SimDuration::from_secs(5),
        &[],
        |island, tb, _t0| {
            format!(
                "island={island} now={} digis={} stats={}",
                tb.now().as_nanos(),
                tb.digi_count(),
                tb.obs_snapshot().to_json()
            )
        },
    )
    .expect("e14 island run");
    (run.results, t.elapsed().as_secs_f64(), run.epochs, run.cross_datagrams)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_substrate.json".into());
    let sweep_path = std::env::args().nth(2).unwrap_or_else(|| "BENCH_sweep.json".into());
    let obs_path = std::env::args().nth(3).unwrap_or_else(|| "BENCH_obs.json".into());
    let scale_path = std::env::args().nth(4).unwrap_or_else(|| "BENCH_scale.json".into());
    let islands_path = std::env::args().nth(5).unwrap_or_else(|| "BENCH_islands.json".into());

    // ---- microbench 1: periodic timers, old heap vs timer wheel ----
    let (heap_s, heap_fired) = best_of(periodic_old);
    let (wheel_s, wheel_fired) = best_of(periodic_new);
    assert_eq!(heap_fired, wheel_fired, "old and new queues disagree on fired count");
    let timer_speedup = heap_s / wheel_s;
    report(
        "smoke",
        &format!("periodic_timer  old={:.3}ms new={:.3}ms speedup={timer_speedup:.2}x", heap_s * 1e3, wheel_s * 1e3),
    );

    // ---- microbench 2: repeated-topic publish routing ----
    let fs = filters(512);
    let mut old_trie = OldTopicTrie::new();
    let mut new_trie = TopicTrie::new();
    for (i, f) in fs.iter().enumerate() {
        old_trie.insert(f, i as u32);
        new_trie.insert(f, i as u32);
    }
    let topics: Vec<String> = (0..8).map(|i| format!("digibox/mock/O{i}/status")).collect();
    let (old_s, old_routed) = best_of(|| routing_old(&old_trie, &topics, 4096));
    let (new_s, new_routed) = best_of(|| routing_new(&new_trie, &topics, 4096));
    assert_eq!(old_routed, new_routed, "old and new routing disagree");
    let routing_speedup = old_s / new_s;
    report(
        "smoke",
        &format!("publish_routing old={:.3}ms new={:.3}ms speedup={routing_speedup:.2}x", old_s * 1e3, new_s * 1e3),
    );

    // ---- reduced E1: request latency on one laptop ----
    let mut tb = laptop(1);
    build_deployment(&mut tb, 50, 2, 0);
    let app = measure_gets(&mut tb, 50, 200);
    let app = app.borrow();
    let h = app.latencies();
    let e1 = json!({
        "sensors": 50, "rooms": 2, "gets": 200,
        "mean_ms": h.mean().as_millis_f64(),
        "p50_ms": h.p50().as_millis_f64(),
        "p99_ms": h.p99().as_millis_f64(),
        "count": h.count(),
    });
    report("smoke", &format!("E1 reduced: mean={:.2}ms p99={:.2}ms", h.mean().as_millis_f64(), h.p99().as_millis_f64()));

    // ---- reduced E6: latency across seeds (sharded sweep) ----
    let seeds: Vec<u64> = (1..=4).collect();
    let sweep = parallel_sweep(&seeds, |seed| {
        let mut tb = laptop(seed);
        build_deployment(&mut tb, 50, 5, 0);
        let app = measure_gets(&mut tb, 50, 100);
        let app = app.borrow();
        app.latencies().mean().as_millis_f64()
    });
    let e6: Vec<_> = seeds.iter().zip(&sweep).map(|(s, m)| json!({"seed": s, "mean_ms": m})).collect();
    report("smoke", &format!("E6 reduced: per-seed means {sweep:?}"));

    let doc = json!({
        "bench": "substrate_hotpath smoke",
        "harness": "bench_smoke bin (std::time::Instant, best of 7)",
        "micro": {
            "periodic_timer": {
                "timers": TIMERS, "rounds": ROUNDS, "period_ns": PERIOD_NS, "standing": STANDING,
                "old_binary_heap_ms": heap_s * 1e3,
                "new_timer_wheel_ms": wheel_s * 1e3,
                "speedup": timer_speedup,
            },
            "publish_routing": {
                "subscriptions": fs.len(), "hot_topics": topics.len(), "publishes": 4096,
                "old_uncached_ms": old_s * 1e3,
                "new_cached_interned_ms": new_s * 1e3,
                "speedup": routing_speedup,
            },
        },
        "e1_reduced": e1,
        "e6_reduced": e6,
    });
    std::fs::write(&out_path, serde_json::to_string_pretty(&doc).unwrap()).expect("write report");
    report("smoke", &format!("wrote {out_path}"));

    // ---- E11: sweep scaling — same 16-seed campaign at jobs=1 vs jobs=all ----
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let seeds: Vec<u64> = (1..=16).collect();
    let campaign = Campaign::new(sweep_plan()).expect("e11 plan validates");

    let t = Instant::now();
    let serial = campaign.run_jobs(&seeds, 1, sweep_testbed).expect("jobs=1 sweep");
    let serial_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let parallel = campaign.run_jobs(&seeds, 0, sweep_testbed).expect("jobs=all sweep");
    let parallel_s = t.elapsed().as_secs_f64();

    let digest_match = serial.digest() == parallel.digest();
    assert!(digest_match, "jobs=1 and jobs={cores} scorecards diverged");
    assert!(serial.errors.is_empty(), "e11 sweep had seed failures");
    let speedup = serial_s / parallel_s;
    report(
        "smoke",
        &format!(
            "E11 sweep scaling: cores={cores} jobs1={serial_s:.2}s jobsN={parallel_s:.2}s \
             speedup={speedup:.2}x digest_match={digest_match}"
        ),
    );

    let sweep_doc = json!({
        "bench": "sweep scaling (E11)",
        "harness": "bench_smoke bin (std::time::Instant)",
        "cores": cores,
        "seeds": seeds.len(),
        "campaign": { "plan": "e11", "duration_ms": 10_000, "convergence_ms": 1_000 },
        "jobs1": { "jobs": 1, "wall_clock_s": serial_s, "digest": serial.digest() },
        "jobsN": { "jobs": cores, "wall_clock_s": parallel_s, "digest": parallel.digest() },
        "speedup": speedup,
        "digest_match": digest_match,
    });
    std::fs::write(&sweep_path, serde_json::to_string_pretty(&sweep_doc).unwrap())
        .expect("write sweep report");
    report("smoke", &format!("wrote {sweep_path}"));

    // ---- E12: observability overhead — same scene, metrics on vs off ----
    let mut on_best = f64::MAX;
    let mut off_best = f64::MAX;
    let mut events = 0u64;
    for _ in 0..3 {
        let (on_s, on_events) = obs_run(1, true);
        let (off_s, off_events) = obs_run(1, false);
        assert!(on_events > 0, "metrics-on run recorded no kernel events");
        assert_eq!(off_events, 0, "metrics-off run must record nothing");
        events = on_events;
        on_best = on_best.min(on_s);
        off_best = off_best.min(off_s);
    }
    let overhead_pct = (on_best / off_best - 1.0) * 100.0;
    report(
        "smoke",
        &format!(
            "E12 obs overhead: enabled={:.3}s disabled={:.3}s overhead={overhead_pct:.1}% \
             ({events} kernel events recorded)",
            on_best, off_best
        ),
    );
    let obs_doc = json!({
        "bench": "observability overhead (E12)",
        "harness": "bench_smoke bin (std::time::Instant, best of 3)",
        "scene": { "sensors": 50, "rooms": 2, "virtual_secs": 20 },
        "enabled_s": on_best,
        "disabled_s": off_best,
        "overhead_pct": overhead_pct,
        "kernel_events_recorded": events,
        "gate": "overhead_pct < 5",
    });
    std::fs::write(&obs_path, serde_json::to_string_pretty(&obs_doc).unwrap())
        .expect("write obs report");
    report("smoke", &format!("wrote {obs_path}"));

    // ---- E13: max_digis_per_sec — pooled arena testbeds vs per-digi timers ----
    const VIRTUAL_SECS: u64 = 5;
    let (base_wall, base_events) = scale_per_digi(10_000, VIRTUAL_SECS);
    let base_eps = base_events as f64 / base_wall;
    report(
        "smoke",
        &format!("E13 baseline: 10000 per-digi timers wall={base_wall:.2}s events/s={base_eps:.0}"),
    );
    let mut scales = vec![10_000usize, 100_000];
    if std::env::var("DIGIBOX_E13_FULL").is_ok_and(|v| v == "1") {
        scales.push(1_000_000);
    }
    let mut rows = Vec::new();
    let mut eps_100k = 0f64;
    for &digis in &scales {
        let (wall, events, ticks, batched, depth) = scale_pooled(digis, VIRTUAL_SECS);
        let eps = events as f64 / wall;
        // "max digis sustainable at real time": simulated digi-seconds per
        // wall second (each digi advances VIRTUAL_SECS in `wall` seconds)
        let max_digis = digis as f64 * VIRTUAL_SECS as f64 / wall;
        if digis == 100_000 {
            eps_100k = eps;
        }
        report(
            "smoke",
            &format!(
                "E13 pooled: digis={digis} wall={wall:.2}s events/s={eps:.0} \
                 max_digis_per_sec={max_digis:.0} ticks={ticks} batched={batched}"
            ),
        );
        rows.push(json!({
            "digis": digis, "virtual_secs": VIRTUAL_SECS,
            "wall_clock_s": wall, "kernel_events": events,
            "events_per_sec": eps, "max_digis_per_sec": max_digis,
            "pool_ticks": ticks, "batched_deliveries": batched,
            "queue_depth": depth,
        }));
    }
    let scale_ratio = eps_100k / base_eps;
    report("smoke", &format!("E13 gate: arena@100k / per-digi@10k = {scale_ratio:.2}x (need >= 5)"));
    let scale_doc = json!({
        "bench": "max_digis_per_sec scaling (E13)",
        "harness": "bench_smoke bin (std::time::Instant)",
        "baseline": {
            "digis": 10_000, "mode": "one microservice + one kernel timer per digi",
            "wall_clock_s": base_wall, "kernel_events": base_events, "events_per_sec": base_eps,
        },
        "rows": rows,
        "speedup_100k_vs_baseline_10k": scale_ratio,
        "gate": "speedup_100k_vs_baseline_10k >= 5",
    });
    std::fs::write(&scale_path, serde_json::to_string_pretty(&scale_doc).unwrap())
        .expect("write scale report");
    report("smoke", &format!("wrote {scale_path}"));

    // ---- E14: islands_speedup — one 2k-digi sim space-partitioned onto
    // 1 worker vs one per core; the digest match is the gate, the speedup
    // is honest wall-clock (≈1x on single-core runners) ----
    let (serial, w1_s, epochs1, cross1) = islands_run_at(1);
    let (parallel, wn_s, epochs_n, cross_n) = islands_run_at(0);
    let workers_n = cores.min(4);
    let islands_digest_match = serial == parallel;
    assert!(islands_digest_match, "workers=1 and workers={workers_n} island digests diverged");
    assert_eq!((epochs1, cross1), (epochs_n, cross_n), "island barrier protocol diverged");
    assert!(cross1 > 0, "e14 ran without cross-island traffic");
    let islands_speedup = w1_s / wn_s;
    report(
        "smoke",
        &format!(
            "E14 islands scaling: cores={cores} islands=4 digis=2000 epochs={epochs1} \
             cross={cross1} w1={w1_s:.2}s wN={wn_s:.2}s speedup={islands_speedup:.2}x \
             digest_match={islands_digest_match}"
        ),
    );
    let islands_doc = json!({
        "bench": "islands_speedup (E14)",
        "harness": "bench_smoke bin (std::time::Instant)",
        "cores": cores,
        "islands": 4,
        "digis": 2_000,
        "virtual_secs": 5,
        "epochs": epochs1,
        "cross_datagrams": cross1,
        "workers1": { "workers": 1, "wall_clock_s": w1_s },
        "workersN": { "workers": workers_n, "wall_clock_s": wn_s },
        "speedup": islands_speedup,
        "digest_match": islands_digest_match,
    });
    std::fs::write(&islands_path, serde_json::to_string_pretty(&islands_doc).unwrap())
        .expect("write islands report");
    report("smoke", &format!("wrote {islands_path}"));
}
