//! Frozen pre-overhaul implementations of the two hot-path data structures
//! the substrate overhaul replaced, kept verbatim so `substrate_hotpath`
//! and `bench_smoke` can measure old-vs-new on the same machine in the
//! same process.
//!
//! * [`OldEventQueue`] — the kernel's original event queue: one global
//!   `BinaryHeap<Reverse<Event>>` ordered by `(at, seq)`. Every push is an
//!   O(log n) sift through the whole queue; periodic timers pay that cost
//!   on every re-arm. The replacement is `digibox_net::EventWheel`
//!   (hierarchical timer wheel + far-future overflow heap).
//!
//! * [`OldTopicTrie`] — the broker's original subscription trie:
//!   `BTreeMap<String, Node>` children keyed by owned level strings, and a
//!   `lookup` that collects `topic.split('/')` into a fresh `Vec<&str>`
//!   per publish. The replacement interns levels to `u32` symbols and
//!   walks the split iterator directly; the broker additionally caches
//!   resolved routes per topic behind a trie epoch.
//!
//! Nothing outside the bench crate should use these types.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// An event in the old queue: `(at, seq)` total order, payload `T`.
struct OldEvent<T> {
    at: u64,
    seq: u64,
    value: T,
}

impl<T> PartialEq for OldEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for OldEvent<T> {}
impl<T> PartialOrd for OldEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for OldEvent<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The kernel's original single binary-heap event queue.
pub struct OldEventQueue<T> {
    heap: BinaryHeap<Reverse<OldEvent<T>>>,
}

impl<T> Default for OldEventQueue<T> {
    fn default() -> Self {
        OldEventQueue::new()
    }
}

impl<T> OldEventQueue<T> {
    pub fn new() -> OldEventQueue<T> {
        OldEventQueue { heap: BinaryHeap::new() }
    }

    pub fn push(&mut self, at: u64, seq: u64, value: T) {
        self.heap.push(Reverse(OldEvent { at, seq, value }));
    }

    pub fn peek(&self) -> Option<(u64, u64)> {
        self.heap.peek().map(|Reverse(e)| (e.at, e.seq))
    }

    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.seq, e.value))
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The broker's original subscription trie (string-keyed, allocating
/// lookup), copied from the pre-overhaul `digibox_broker::topic`.
#[derive(Debug, Clone)]
pub struct OldTopicTrie<T> {
    root: Node<T>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<T> {
    children: BTreeMap<String, Node<T>>,
    values: Vec<T>,
}

impl<T> Default for Node<T> {
    fn default() -> Self {
        Node { children: BTreeMap::new(), values: Vec::new() }
    }
}

impl<T> Default for OldTopicTrie<T> {
    fn default() -> Self {
        OldTopicTrie::new()
    }
}

impl<T> OldTopicTrie<T> {
    pub fn new() -> OldTopicTrie<T> {
        OldTopicTrie { root: Node::default(), len: 0 }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn insert(&mut self, filter: &str, value: T) {
        let mut node = &mut self.root;
        for level in filter.split('/') {
            node = node.children.entry(level.to_string()).or_default();
        }
        node.values.push(value);
        self.len += 1;
    }

    pub fn remove_where(&mut self, filter: &str, mut pred: impl FnMut(&T) -> bool) -> usize {
        let mut node = &mut self.root;
        for level in filter.split('/') {
            match node.children.get_mut(level) {
                Some(n) => node = n,
                None => return 0,
            }
        }
        let before = node.values.len();
        node.values.retain(|v| !pred(v));
        let removed = before - node.values.len();
        self.len -= removed;
        removed
    }

    pub fn lookup(&self, topic: &str) -> Vec<&T> {
        let levels: Vec<&str> = topic.split('/').collect();
        let mut out = Vec::new();
        let skip_wildcards_at_root = topic.starts_with('$');
        Self::walk(&self.root, &levels, 0, skip_wildcards_at_root, &mut out);
        out
    }

    fn walk<'a>(
        node: &'a Node<T>,
        levels: &[&str],
        depth: usize,
        dollar_guard: bool,
        out: &mut Vec<&'a T>,
    ) {
        if let Some(hash) = node.children.get("#") {
            if !(dollar_guard && depth == 0) {
                out.extend(hash.values.iter());
            }
        }
        if depth == levels.len() {
            out.extend(node.values.iter());
            return;
        }
        let level = levels[depth];
        if let Some(child) = node.children.get(level) {
            Self::walk(child, levels, depth + 1, dollar_guard, out);
        }
        if let Some(plus) = node.children.get("+") {
            if !(dollar_guard && depth == 0) {
                Self::walk(plus, levels, depth + 1, dollar_guard, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_broker::TopicTrie;
    use digibox_net::EventWheel;

    /// The frozen baselines must agree with the live implementations —
    /// otherwise old-vs-new bench numbers compare different semantics.
    #[test]
    fn old_queue_agrees_with_event_wheel() {
        let mut old = OldEventQueue::new();
        let mut new = EventWheel::new();
        let mut state = 0x5eed_cafe_u64;
        let mut at = 0u64;
        for seq in 0..5000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            at += state >> 40; // mixes same-tick, near, and far delays
            old.push(at, seq, seq);
            new.push(at, seq, seq);
        }
        while let Some(expect) = old.pop() {
            assert_eq!(new.pop(), Some(expect));
        }
        assert!(new.is_empty());
    }

    #[test]
    fn old_trie_agrees_with_interned_trie() {
        let filters = ["a/+/c", "a/#", "a/b/c", "+/b/+", "#", "$SYS/#", "x/y"];
        let topics = ["a/b/c", "a/x/c", "a/b", "x/y", "$SYS/stats", "q"];
        let mut old = OldTopicTrie::new();
        let mut new = TopicTrie::new();
        for (i, f) in filters.iter().enumerate() {
            old.insert(f, i);
            new.insert(f, i);
        }
        for t in topics {
            let mut a: Vec<usize> = old.lookup(t).into_iter().copied().collect();
            let mut b: Vec<usize> = new.lookup(t).into_iter().copied().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "route mismatch for {t}");
        }
    }
}
