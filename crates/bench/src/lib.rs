//! Shared workload builders for the experiment benches.
//!
//! Every bench in `benches/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index). Benches print the paper-style rows
//! (simulated quantities: request latency, detection rates) once at startup
//! and then let Criterion measure the *substrate's* wall-clock cost for the
//! same operations, so `cargo bench` yields both the reproduced results
//! and the performance of this implementation.

pub mod baseline;

use std::collections::BTreeMap;

use digibox_core::{AppClient, FidelityMode, Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_model::Value;
use digibox_net::{ServiceHandle, SimDuration};

/// Empty params.
pub fn no_params() -> BTreeMap<String, Value> {
    BTreeMap::new()
}

/// Build the paper's deployment shape: `sensors` occupancy mocks over
/// `rooms` rooms over `buildings` buildings on the given testbed, all
/// managed (the microbenchmark measures the request path, not event load).
pub fn build_deployment(tb: &mut Testbed, sensors: usize, rooms: usize, buildings: usize) {
    for b in 0..buildings {
        tb.run_with("Building", &format!("B{b}"), no_params(), true).unwrap();
    }
    for r in 0..rooms {
        tb.run_with("Room", &format!("R{r}"), no_params(), true).unwrap();
    }
    for s in 0..sensors {
        tb.run_with("Occupancy", &format!("O{s}"), no_params(), true).unwrap();
    }
    tb.run_for(SimDuration::from_secs(2));
    for r in 0..rooms {
        if buildings > 0 {
            tb.attach(&format!("R{r}"), &format!("B{}", r % buildings)).unwrap();
        }
    }
    for s in 0..sensors {
        tb.attach(&format!("O{s}"), &format!("R{}", s % rooms)).unwrap();
    }
    tb.run_for(SimDuration::from_secs(2));
}

/// Issue `gets` REST GETs round-robin over the sensors and return the app
/// client (whose histogram holds the simulated latencies).
pub fn measure_gets(tb: &mut Testbed, sensors: usize, gets: usize) -> ServiceHandle<AppClient> {
    let client_node = tb.broker_addr().node;
    let app = tb.app(client_node);
    let targets: Vec<_> = (0..sensors).map(|s| tb.digi_addr(&format!("O{s}")).unwrap()).collect();
    for i in 0..gets {
        let target = targets[i % targets.len()];
        app.borrow_mut().get(tb.sim(), target, "/model");
        tb.run_for(SimDuration::from_millis(30));
    }
    tb.run_for(SimDuration::from_secs(1));
    app
}

/// A laptop testbed (§4 local environment), logging off for benches.
pub fn laptop(seed: u64) -> Testbed {
    Testbed::laptop(
        full_catalog(),
        TestbedConfig { seed, logging: false, ..Default::default() },
    )
}

/// An EC2 cluster testbed (§4 cloud environment).
pub fn cluster(nodes: u32, seed: u64) -> Testbed {
    Testbed::ec2(
        nodes,
        full_catalog(),
        TestbedConfig { seed, logging: false, ..Default::default() },
    )
}

/// A testbed with a chosen fidelity mode (logging on: E4/E8 read traces).
pub fn with_fidelity(fidelity: FidelityMode, seed: u64) -> Testbed {
    Testbed::laptop(full_catalog(), TestbedConfig { seed, fidelity, ..Default::default() })
}

// Multi-seed sweeps now run on the work-stealing engine in `core::sweep`
// (DESIGN.md §10); the chunked crossbeam driver that used to live here is
// gone. Re-exported so existing benches keep their import path.
pub use digibox_core::sweep::parallel_sweep;

/// Paper-style one-line report, printed by each bench before measuring.
pub fn report(experiment: &str, row: &str) {
    eprintln!("[{experiment}] {row}");
}
