//! E9 — paper §6 "efficient simulation" (extension): FaaS-style pooling
//! vs one-microservice-per-mock.
//!
//! > "an open question is how to make these large-scale simulations more
//! > efficient, i.e., running a higher number of mocks/scenes with a fixed
//! > amount of compute resource budget"
//!
//! Both modes run the same 500 occupancy mocks for the same virtual time;
//! the report compares runtime footprint (broker sessions, kernel events,
//! wall time), and Criterion measures steady-state advancement cost.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, Criterion};
use digibox_bench::report;
use digibox_core::{Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_net::SimDuration;

const MOCKS: usize = 500;

fn microservice_testbed() -> Testbed {
    let mut tb = Testbed::laptop(
        full_catalog(),
        TestbedConfig { seed: 1, logging: false, ..Default::default() },
    );
    for i in 0..MOCKS {
        tb.run_with("Occupancy", &format!("O{i}"), BTreeMap::new(), false).unwrap();
    }
    tb.run_for(SimDuration::from_secs(2));
    tb
}

fn pooled_testbed() -> Testbed {
    let mut tb = Testbed::laptop(
        full_catalog(),
        TestbedConfig { seed: 1, logging: false, ..Default::default() },
    );
    let names: Vec<String> = (0..MOCKS).map(|i| format!("O{i}")).collect();
    tb.run_pool("Occupancy", &names, BTreeMap::new(), false).unwrap();
    tb.run_for(SimDuration::from_secs(2));
    tb
}

fn footprint(label: &str, tb: &mut Testbed) -> (u64, u64) {
    let sessions = tb.broker().borrow().session_count();
    let (pods, cpu_used, cpu_cap) = tb.cluster_utilization();
    let events_before = tb.sim().events_processed();
    let wall = std::time::Instant::now();
    tb.run_for(SimDuration::from_secs(10));
    let wall = wall.elapsed();
    let events = tb.sim().events_processed() - events_before;
    report(
        "E9 faas pooling (§6)",
        &format!(
            "{label:<15} mocks={MOCKS} pods={pods:<4} cpu_requested={cpu_used}/{cpu_cap}m \
broker_sessions={sessions:<4} kernel_events/10s={events:<7} wall={wall:.2?}"
        ),
    );
    (events, cpu_used)
}

fn bench(c: &mut Criterion) {
    let mut micro = microservice_testbed();
    let mut pooled = pooled_testbed();
    let (micro_events, micro_cpu) = footprint("microservices", &mut micro);
    let (pool_events, pool_cpu) = footprint("pooled (FaaS)", &mut pooled);
    report(
        "E9 faas pooling (§6)",
        &format!(
            "consolidation: {:.1}x less cpu budget, {}x fewer broker sessions, {:.2}x fewer kernel events",
            micro_cpu as f64 / pool_cpu.max(1) as f64,
            MOCKS,
            micro_events as f64 / pool_events.max(1) as f64,
        ),
    );
    assert!(
        pool_events < micro_events,
        "pooling must reduce kernel event load ({pool_events} vs {micro_events})"
    );
    assert!(pool_cpu * 5 < micro_cpu, "pooling must shrink the requested compute budget");

    let mut group = c.benchmark_group("e9_faas");
    group.sample_size(10);
    group.bench_function("advance_1s_500_mocks_microservices", |b| {
        b.iter(|| micro.run_for(SimDuration::from_secs(1)))
    });
    group.bench_function("advance_1s_500_mocks_pooled", |b| {
        b.iter(|| pooled.run_for(SimDuration::from_secs(1)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
