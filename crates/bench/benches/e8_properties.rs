//! E8 — §3.3 scene properties: run-time invariant checking. Reports
//! violation-detection latency, benches checking overhead (testbed with vs
//! without properties).

use criterion::{criterion_group, criterion_main, Criterion};
use digibox_bench::{no_params, report};
use digibox_core::properties::DigiCondition;
use digibox_core::{Condition, SceneProperty, Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_model::vmap;
use digibox_net::SimDuration;

fn testbed_with_properties(n_props: usize, seed: u64) -> Testbed {
    let mut tb = Testbed::laptop(full_catalog(), TestbedConfig { seed, ..Default::default() });
    tb.run_with("Occupancy", "O1", no_params(), true).unwrap();
    tb.run("Lamp", "L1").unwrap();
    tb.run("Room", "R1").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.attach("O1", "R1").unwrap();
    tb.attach("L1", "R1").unwrap();
    for i in 0..n_props {
        // the paper's example property, parameterized to get n distinct ones
        tb.add_property(SceneProperty::never(
            &format!("lamp-off-when-empty-{i}"),
            vec![
                DigiCondition::new("L1", Condition::eq("power.status", "on")),
                DigiCondition::new("O1", Condition::eq("triggered", false)),
            ],
        ));
    }
    tb
}

fn bench(c: &mut Criterion) {
    // detection-latency report: force the disallowed state, measure the
    // virtual time until the violation is logged
    let mut tb = testbed_with_properties(1, 3);
    tb.set_managed("R1", true).unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.digi("O1").unwrap().borrow_mut().force_fields(tb.sim(), vmap! { "triggered" => false });
    tb.run_for(SimDuration::from_millis(100));
    let before = tb.now();
    tb.edit("L1", vmap! { "power" => "on" }).unwrap();
    tb.run_for(SimDuration::from_secs(2));
    let violations = tb.violations();
    assert!(!violations.is_empty(), "the disallowed state must be detected");
    let detect = violations[0].ts - before;
    report(
        "E8 properties (§3.3)",
        &format!(
            "violation detected {} of virtual time after the triggering edit ({} violations)",
            detect,
            violations.len()
        ),
    );

    // overhead: advance the same workload with 0 / 1 / 32 properties
    let mut group = c.benchmark_group("e8_properties");
    group.sample_size(15);
    for n_props in [0usize, 1, 32] {
        let mut tb = testbed_with_properties(n_props, 7);
        group.bench_function(format!("advance_1s_{n_props}_properties"), |b| {
            b.iter(|| tb.run_for(SimDuration::from_secs(1)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
