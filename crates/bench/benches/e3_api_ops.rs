//! E3 — Table 1: per-operation cost of the dbox API (`run`, `check`,
//! `edit`, `attach`, `commit`). The functional coverage lives in
//! `tests/cli_table1.rs`; this bench reports how expensive each verb is on
//! the in-process runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use digibox_bench::{laptop, no_params, report};
use digibox_model::vmap;
use digibox_net::SimDuration;
use digibox_registry::Repository;

fn bench(c: &mut Criterion) {
    report("E3 api ops (Table 1)", "wall-clock cost per dbox verb below");
    let mut group = c.benchmark_group("e3_api_ops");
    group.sample_size(20);

    // dbox run + stop (full container lifecycle)
    group.bench_function("run_stop_mock", |b| {
        let mut tb = laptop(1);
        let mut i = 0u64;
        b.iter(|| {
            let name = format!("bench-{i}");
            i += 1;
            tb.run("Lamp", &name).unwrap();
            tb.run_for(SimDuration::from_millis(500));
            tb.stop(&name).unwrap();
        })
    });

    // dbox check
    group.bench_function("check", |b| {
        let mut tb = laptop(2);
        tb.run("Lamp", "L1").unwrap();
        tb.run_for(SimDuration::from_secs(1));
        b.iter(|| tb.check("L1").unwrap())
    });

    // dbox edit (through the real MQTT path)
    group.bench_function("edit_roundtrip", |b| {
        let mut tb = laptop(3);
        tb.run("Lamp", "L1").unwrap();
        tb.run_for(SimDuration::from_secs(1));
        let mut on = false;
        b.iter(|| {
            on = !on;
            tb.edit("L1", vmap! { "power" => if on { "on" } else { "off" } }).unwrap();
            tb.run_for(SimDuration::from_millis(200));
        })
    });

    // dbox attach/detach
    group.bench_function("attach_detach", |b| {
        let mut tb = laptop(4);
        tb.run_with("Occupancy", "O1", no_params(), true).unwrap();
        tb.run("Room", "R1").unwrap();
        tb.run_for(SimDuration::from_secs(1));
        b.iter(|| {
            tb.attach("O1", "R1").unwrap();
            tb.run_for(SimDuration::from_millis(100));
            tb.detach("O1", "R1").unwrap();
            tb.run_for(SimDuration::from_millis(100));
        })
    });

    // dbox commit (snapshot + hash + store)
    group.bench_function("commit_setup", |b| {
        let mut tb = laptop(5);
        for i in 0..20 {
            tb.run_with("Occupancy", &format!("O{i}"), no_params(), true).unwrap();
        }
        tb.run("Room", "R1").unwrap();
        tb.run_for(SimDuration::from_secs(1));
        let mut repo = Repository::new();
        b.iter(|| tb.commit(&mut repo, "bench", "msg", "bench").unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
