//! E2 — paper §4, cloud microbenchmark: "It's able to run 1000 occupancy
//! sensors across 100 rooms and 5 buildings with 2 m5.xlarge EC2
//! instances, with the average request latency (network delay included)
//! under 60 ms."

use criterion::{criterion_group, criterion_main, Criterion};
use digibox_bench::{build_deployment, cluster, measure_gets, report};
use digibox_net::SimDuration;

fn bench(c: &mut Criterion) {
    let mut tb = cluster(2, 2);
    build_deployment(&mut tb, 1000, 100, 5);
    let app = measure_gets(&mut tb, 1000, 300);
    {
        let app = app.borrow();
        let h = app.latencies();
        report(
            "E2 cloud (1000 sensors, 100 rooms, 5 buildings, 2x m5.xlarge)",
            &format!(
                "avg GET latency = {} (paper: < 60 ms, network delay included)  p50={} p99={} n={}",
                h.mean(),
                h.p50(),
                h.p99(),
                h.count()
            ),
        );
        assert!(h.mean() < SimDuration::from_millis(60), "E2 must land under the paper bound");
    }

    let mut group = c.benchmark_group("e2_cluster");
    group.sample_size(10);
    let server = tb.digi_addr("O0").unwrap();
    group.bench_function("rest_get_roundtrip_wall_1000_mocks", |b| {
        b.iter(|| {
            app.borrow_mut().get(tb.sim(), server, "/model");
            tb.run_for(SimDuration::from_millis(60));
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
