//! E1 — paper §4, local microbenchmark: "we run Digibox in a MacBook Air
//! M1 laptop where we are able to run 50 occupancy sensors in 2 room
//! scenes with average request latency (the time it takes for a REST GET
//! to return a mock's status) under 20 ms."
//!
//! The report line gives the reproduced (simulated) latency; the Criterion
//! measurement gives the substrate's wall cost per GET round-trip.

use criterion::{criterion_group, criterion_main, Criterion};
use digibox_bench::{build_deployment, laptop, measure_gets, report};
use digibox_net::SimDuration;

fn bench(c: &mut Criterion) {
    // ---- reproduce the paper's row ----
    let mut tb = laptop(1);
    build_deployment(&mut tb, 50, 2, 0);
    let app = measure_gets(&mut tb, 50, 200);
    {
        let app = app.borrow();
        let h = app.latencies();
        report(
            "E1 local (50 sensors, 2 rooms, laptop)",
            &format!(
                "avg GET latency = {} (paper: < 20 ms)  p50={} p99={} n={}",
                h.mean(),
                h.p50(),
                h.p99(),
                h.count()
            ),
        );
        assert!(h.mean() < SimDuration::from_millis(20), "E1 must land under the paper bound");
    }

    // ---- substrate cost of the same operation ----
    let mut group = c.benchmark_group("e1_local");
    group.sample_size(20);
    let server = tb.digi_addr("O0").unwrap();
    group.bench_function("rest_get_roundtrip_wall", |b| {
        b.iter(|| {
            app.borrow_mut().get(tb.sim(), server, "/model");
            tb.run_for(SimDuration::from_millis(30));
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
