//! E5 — §3.5 logging and replay: record → archive → replay. Reports the
//! archive size and replay fidelity; benches archive encode/decode and the
//! replay itself.

use criterion::{criterion_group, criterion_main, Criterion};
use digibox_bench::{no_params, report};
use digibox_core::{Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_net::SimDuration;
use digibox_trace::{archive, ReplaySchedule, TraceRecord};

fn record_run(seed: u64, secs: u64) -> Vec<TraceRecord> {
    let mut tb =
        Testbed::laptop(full_catalog(), TestbedConfig { seed, ..Default::default() });
    tb.run_with("Occupancy", "O1", no_params(), true).unwrap();
    tb.run("Lamp", "L1").unwrap();
    tb.run("Room", "R1").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb.attach("O1", "R1").unwrap();
    tb.attach("L1", "R1").unwrap();
    tb.run_for(SimDuration::from_secs(secs));
    tb.log().records()
}

fn fresh_replay_target() -> Testbed {
    let mut tb =
        Testbed::laptop(full_catalog(), TestbedConfig { seed: 999, ..Default::default() });
    tb.run_with("Occupancy", "O1", no_params(), true).unwrap();
    tb.run_with("Lamp", "L1", no_params(), true).unwrap();
    tb.run_with("Room", "R1", no_params(), true).unwrap();
    tb.run_for(SimDuration::from_secs(1));
    tb
}

fn bench(c: &mut Criterion) {
    let records = record_run(7, 30);
    let bytes = archive::write(&records);
    let schedule = ReplaySchedule::from_records(&records);
    report(
        "E5 replay (§3.5)",
        &format!(
            "{} records → {} byte archive; schedule: {} steps over {} digis, {} of virtual time",
            records.len(),
            bytes.len(),
            schedule.len(),
            schedule.sources().len(),
            schedule.duration()
        ),
    );

    // fidelity: replay ends in the recorded final states
    let mut tb = fresh_replay_target();
    tb.replay(&schedule).unwrap();
    tb.run_for(SimDuration::from_nanos(schedule.duration().as_nanos() + 1_000_000_000));
    for (name, fields) in schedule.final_states() {
        assert_eq!(tb.check(&name).unwrap().fields(), &fields, "{name} diverged");
    }
    report("E5 replay (§3.5)", "replayed final states identical to recording ✓");

    let mut group = c.benchmark_group("e5_replay");
    group.sample_size(20);
    group.bench_function("archive_write", |b| b.iter(|| archive::write(&records)));
    group.bench_function("archive_read", |b| b.iter(|| archive::read(&bytes).unwrap()));
    group.bench_function("schedule_extract", |b| {
        b.iter(|| ReplaySchedule::from_records(&records))
    });
    group.sample_size(10);
    group.bench_function("full_replay_30s_trace", |b| {
        b.iter(|| {
            let mut tb = fresh_replay_target();
            tb.replay(&schedule).unwrap();
            tb.run_for(SimDuration::from_nanos(schedule.duration().as_nanos() + 1_000_000));
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
