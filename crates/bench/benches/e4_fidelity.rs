//! E4 — Fig. 7 fidelity ablation: the same application observed under
//! device-centric vs scene-centric simulation. Reports the app-visible
//! ensemble-consistency rate per mode (the paper's qualitative claim made
//! quantitative), then benches one simulation step per mode.

use criterion::{criterion_group, criterion_main, Criterion};
use digibox_apps::SmartBuildingApp;
use digibox_bench::{no_params, report, with_fidelity};
use digibox_core::{FidelityMode, Testbed};
use digibox_net::SimDuration;

fn build(fidelity: FidelityMode, seed: u64) -> (Testbed, SmartBuildingApp) {
    let mut tb = with_fidelity(fidelity, seed);
    for s in ["O1", "O2"] {
        tb.run_with("Occupancy", s, no_params(), true).unwrap();
    }
    tb.run_with("Underdesk", "D1", no_params(), true).unwrap();
    tb.run_with("Room", "R1", no_params(), false).unwrap();
    tb.run_for(SimDuration::from_secs(1));
    for s in ["O1", "O2", "D1"] {
        tb.attach(s, "R1").unwrap();
    }
    let mut app = SmartBuildingApp::new(&mut tb, 10);
    app.add_room("R1", &["O1", "O2"], &["D1"], None);
    (tb, app)
}

fn consistency_rate(fidelity: FidelityMode) -> f64 {
    // independent seeds → independent testbeds → parallel shards
    let shards = digibox_bench::parallel_sweep(&[1, 2, 3], |seed| {
        let (mut tb, mut app) = build(fidelity, seed);
        let mut consistent = 0u32;
        let mut samples = 0u32;
        for _ in 0..120 {
            tb.run_for(SimDuration::from_millis(500));
            app.step(&mut tb);
            if let Some(ok) = app.sensors_consistent("R1") {
                samples += 1;
                consistent += u32::from(ok);
            }
        }
        (consistent, samples)
    });
    let (consistent, samples) =
        shards.into_iter().fold((0u32, 0u32), |(c, s), (dc, ds)| (c + dc, s + ds));
    consistent as f64 / samples.max(1) as f64
}

fn bench(c: &mut Criterion) {
    let device = consistency_rate(FidelityMode::DeviceCentric);
    let scene = consistency_rate(FidelityMode::SceneCentric);
    report(
        "E4 fidelity (Fig. 7)",
        &format!(
            "app-visible ensemble consistency: device-centric = {:.1}%, scene-centric = {:.1}%",
            device * 100.0,
            scene * 100.0
        ),
    );
    assert!(scene > 0.99, "scene-centric must hold the invariant");
    assert!(device < 0.8, "device-centric must exhibit correlation bugs");

    let mut group = c.benchmark_group("e4_fidelity");
    group.sample_size(20);
    for (label, mode) in [
        ("device_centric_step", FidelityMode::DeviceCentric),
        ("scene_centric_step", FidelityMode::SceneCentric),
        ("physical_step", FidelityMode::Physical),
    ] {
        let (mut tb, mut app) = build(mode, 9);
        group.bench_function(label, |b| {
            b.iter(|| {
                tb.run_for(SimDuration::from_millis(500));
                app.step(&mut tb);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
