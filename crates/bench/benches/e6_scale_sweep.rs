//! E6 — §4 scalability sweep ("easy to run a few and tens of simulated
//! devices in a laptop to thousands and more in cloud"): request latency
//! as the deployment grows, and as nodes are added. Prints the full series
//! (the figure the paper sketches in prose), then benches event throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use digibox_bench::{build_deployment, cluster, laptop, measure_gets, no_params, report};
use digibox_net::SimDuration;

fn latency_at(nodes: u32, sensors: usize) -> (f64, f64) {
    let rooms = (sensors / 10).max(1);
    let mut tb = if nodes == 0 { laptop(42) } else { cluster(nodes, 42) };
    build_deployment(&mut tb, sensors, rooms, 0);
    let app = measure_gets(&mut tb, sensors, 150);
    let app = app.borrow();
    let h = app.latencies();
    (h.mean().as_millis_f64(), h.p99().as_millis_f64())
}

fn bench(c: &mut Criterion) {
    // ---- series 1: mocks vs latency on one laptop ----
    report("E6 sweep", "series 1: latency vs #mocks (single laptop)");
    let mut last = 0.0;
    for sensors in [10usize, 50, 100, 200, 400] {
        let (mean, p99) = latency_at(0, sensors);
        report(
            "E6 sweep",
            &format!("  laptop  sensors={sensors:<5} mean={mean:>8.2}ms p99={p99:>8.2}ms"),
        );
        assert!(mean >= last * 0.8, "latency should not collapse as load grows");
        last = mean;
    }

    // ---- series 2: nodes vs latency at 800 mocks ----
    report("E6 sweep", "series 2: latency vs #nodes (800 mocks)");
    let mut prev = f64::MAX;
    let mut means = Vec::new();
    for nodes in [2u32, 4, 8] {
        let (mean, p99) = latency_at(nodes, 800);
        report(
            "E6 sweep",
            &format!("  cluster nodes={nodes:<3} sensors=800  mean={mean:>8.2}ms p99={p99:>8.2}ms"),
        );
        means.push(mean);
        prev = prev.min(mean);
    }
    // adding nodes spreads the mocks → per-node load falls → latency falls
    assert!(
        means.last().unwrap() < means.first().unwrap(),
        "adding nodes should reduce latency: {means:?}"
    );

    // ---- substrate: event throughput at scale ----
    let mut group = c.benchmark_group("e6_scale");
    group.sample_size(10);
    group.bench_function("advance_1s_200_unmanaged_mocks", |b| {
        let mut tb = laptop(7);
        for i in 0..200 {
            tb.run_with("Occupancy", &format!("O{i}"), no_params(), false).unwrap();
        }
        tb.run_for(SimDuration::from_secs(2));
        b.iter(|| tb.run_for(SimDuration::from_secs(1)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
