//! Substrate microbenchmarks: the building blocks every experiment rides
//! on — MQTT codec, topic matching, broker routing, HTTP codec, model
//! diffing, the DES kernel, SHA-256, DML parsing.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};

use digibox_broker::{packet::Packet, MqttConn, QoS, TopicTrie};
use digibox_model::{diff, dml, vmap, Value};
use digibox_net::httpx::{Method, Request};
use digibox_net::{
    Addr, Datagram, NodeSpec, Prng, Service, Sim, SimConfig, TimerToken, Topology,
};

fn mqtt_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("mqtt_codec");
    let pkt = Packet::Publish {
        dup: false,
        qos: QoS::AtLeastOnce,
        retain: true,
        topic: "digibox/digi/O1/model".into(),
        packet_id: Some(42),
        payload: Bytes::from(vec![0x7B; 256]),
    };
    let encoded = pkt.encode();
    group.bench_function("encode_publish_256b", |b| b.iter(|| pkt.encode()));
    group.bench_function("decode_publish_256b", |b| b.iter(|| Packet::decode(&encoded).unwrap()));
    group.finish();
}

fn topic_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("topic_trie");
    let mut trie = TopicTrie::new();
    for i in 0..1000 {
        trie.insert(&format!("digibox/digi/D{i}/model"), i);
        if i % 10 == 0 {
            trie.insert(&format!("digibox/digi/D{i}/+"), i);
        }
    }
    trie.insert("digibox/#", 9999);
    group.bench_function("lookup_1000_filters", |b| {
        b.iter(|| trie.lookup("digibox/digi/D500/model").len())
    });
    group.finish();
}

fn http_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("http_codec");
    let req = Request::new(Method::Post, "/intent")
        .with_body("application/json", r#"{"power":"on","intensity":0.7}"#.as_bytes().to_vec());
    let encoded = req.encode();
    group.bench_function("encode_request", |b| b.iter(|| req.encode()));
    group.bench_function("decode_request", |b| b.iter(|| Request::decode(&encoded).unwrap()));
    group.finish();
}

fn model_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("model");
    let from = vmap! {
        "power" => vmap! { "intent" => "on", "status" => "off" },
        "intensity" => vmap! { "intent" => 0.7, "status" => 0.0 },
        "temp_c" => 21.5, "triggered" => false, "count" => 3,
    };
    let mut to = from.clone();
    if let Value::Map(m) = &mut to {
        m.insert("triggered".into(), Value::Bool(true));
    }
    group.bench_function("diff_small_model", |b| b.iter(|| diff(&from, &to)));
    let doc = "\
meta:
  type: Room
  version: v2
  name: MeetingRoom
  managed: true
  attach: [L1, O1, D1]
human_presence: true
num_occupants: 4
temp_c: 21.5
";
    group.bench_function("dml_parse", |b| b.iter(|| dml::parse(doc).unwrap()));
    let parsed = dml::parse(doc).unwrap();
    group.bench_function("dml_print", |b| b.iter(|| dml::to_string(&parsed)));
    group.finish();
}

struct Echo {
    addr: Addr,
}
impl Service for Echo {
    fn on_datagram(&mut self, sim: &mut Sim, dg: Datagram) {
        sim.send(self.addr, dg.src, dg.payload);
    }
}

fn kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    group.bench_function("event_dispatch_ping_pong", |b| {
        let mut topo = Topology::new();
        let n = topo.add_node(NodeSpec::laptop());
        let mut sim = Sim::new(topo, SimConfig::default());
        let a = Addr::new(n, 1);
        let e = Addr::new(n, 2);
        sim.bind(e, Rc::new(RefCell::new(Echo { addr: e })));
        b.iter(|| {
            sim.send(a, e, Bytes::from_static(b"ping"));
            sim.run_to_completion();
        })
    });
    group.bench_function("prng_next_u64", |b| {
        let mut rng = Prng::new(1);
        b.iter(|| rng.next_u64())
    });
    group.finish();
}

/// Broker routing throughput at fan-out: one publish → 100 subscribers.
struct Sink {
    conn: MqttConn,
    received: u64,
}
impl Service for Sink {
    fn on_datagram(&mut self, sim: &mut Sim, dg: Datagram) {
        self.conn.on_datagram(sim, dg);
        while let Some(ev) = self.conn.poll() {
            if matches!(ev, digibox_broker::ClientEvent::Message { .. }) {
                self.received += 1;
            }
        }
    }
    fn on_timer(&mut self, sim: &mut Sim, token: TimerToken) {
        self.conn.on_timer(sim, token);
    }
}

fn broker_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker");
    group.sample_size(20);
    group.bench_function("publish_fanout_100_subscribers", |b| {
        let mut topo = Topology::new();
        let n = topo.add_node(NodeSpec::laptop());
        let mut sim = Sim::new(topo, SimConfig::default());
        let broker_addr = Addr::new(n, 1883);
        let broker = digibox_broker::Broker::new(broker_addr);
        sim.bind(broker_addr, broker);
        let mut sinks = Vec::new();
        for i in 0..100u16 {
            let addr = Addr::new(n, 10_000 + i);
            let sink = Rc::new(RefCell::new(Sink {
                conn: MqttConn::new(addr, broker_addr, &format!("s{i}")),
                received: 0,
            }));
            sim.bind(addr, sink.clone());
            sink.borrow_mut().conn.connect(&mut sim, None);
            sinks.push(sink);
        }
        sim.run_to_completion();
        for s in &sinks {
            let mut s = s.borrow_mut();
            s.conn.subscribe(&mut sim, &[("bench/topic", QoS::AtMostOnce)]);
        }
        sim.run_to_completion();
        let pub_addr = Addr::new(n, 20_000);
        let publisher = Rc::new(RefCell::new(Sink {
            conn: MqttConn::new(pub_addr, broker_addr, "pub"),
            received: 0,
        }));
        sim.bind(pub_addr, publisher.clone());
        publisher.borrow_mut().conn.connect(&mut sim, None);
        sim.run_to_completion();
        b.iter(|| {
            publisher.borrow_mut().conn.publish(
                &mut sim,
                "bench/topic",
                &b"payload"[..],
                QoS::AtMostOnce,
                false,
            );
            sim.run_to_completion();
        });
    });
    group.finish();
}

criterion_group!(benches, mqtt_codec, topic_matching, http_codec, model_ops, kernel, broker_fanout);
criterion_main!(benches);
