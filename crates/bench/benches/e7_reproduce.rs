//! E7 — §3.4/§3.5 reproducibility: commit → push → pull → recreate, and
//! seeded-run determinism. Reports digest equality, benches the pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use digibox_bench::{no_params, report};
use digibox_core::{Testbed, TestbedConfig};
use digibox_devices::full_catalog;
use digibox_net::SimDuration;
use digibox_registry::{sha256, Repository};

fn build(tb: &mut Testbed) {
    for i in 0..10 {
        tb.run_with("Occupancy", &format!("O{i}"), no_params(), true).unwrap();
    }
    tb.run("Lamp", "L1").unwrap();
    tb.run_with("Room", "R1", no_params(), true).unwrap();
    tb.run("Building", "B1").unwrap();
    tb.run_for(SimDuration::from_secs(1));
    for i in 0..10 {
        tb.attach(&format!("O{i}"), "R1").unwrap();
    }
    tb.attach("L1", "R1").unwrap();
    tb.attach("R1", "B1").unwrap();
}

fn state_digest(tb: &mut Testbed) -> String {
    let mut blob = String::new();
    for name in tb.digi_names() {
        let m = tb.check(&name).unwrap();
        blob.push_str(&serde_json::to_string(&m.fields().to_json()).unwrap());
    }
    sha256(blob.as_bytes()).short()
}

fn seeded_run_digest(seed: u64) -> String {
    let mut tb = Testbed::laptop(
        full_catalog(),
        TestbedConfig { seed, logging: false, ..Default::default() },
    );
    build(&mut tb);
    // digest the whole trajectory, not one instant (a single snapshot of a
    // small ensemble can coincide across seeds by chance)
    let mut trajectory = String::new();
    for _ in 0..5 {
        tb.run_for(SimDuration::from_secs(4));
        trajectory.push_str(&state_digest(&mut tb));
    }
    sha256(trajectory.as_bytes()).short()
}

fn bench(c: &mut Criterion) {
    // determinism report
    let a = seeded_run_digest(1234);
    let b = seeded_run_digest(1234);
    let other = seeded_run_digest(4321);
    report(
        "E7 reproduce (§3.4/3.5)",
        &format!("seed 1234 run A digest={a}, run B digest={b} (equal: {}), seed 4321={other}", a == b),
    );
    assert_eq!(a, b, "seeded runs must be bit-identical");
    assert_ne!(a, other);

    // round-trip report
    let mut tb = Testbed::laptop(
        full_catalog(),
        TestbedConfig { seed: 9, logging: false, ..Default::default() },
    );
    build(&mut tb);
    let mut local = Repository::new();
    tb.commit(&mut local, "setup", "bench", "setup").unwrap();
    let mut hub = Repository::new();
    let n = local.push(&mut hub, "setup").unwrap();
    report("E7 reproduce (§3.4/3.5)", &format!("push transferred {n} objects"));

    let mut group = c.benchmark_group("e7_reproduce");
    group.sample_size(10);
    group.bench_function("commit_push_pull", |b| {
        b.iter(|| {
            let mut local = Repository::new();
            tb.commit(&mut local, "setup", "bench", "setup").unwrap();
            let mut hub = Repository::new();
            local.push(&mut hub, "setup").unwrap();
            let mut third = Repository::new();
            third.pull(&hub, "setup").unwrap();
            third.resolve("setup").unwrap()
        })
    });
    group.bench_function("recreate_from_manifest", |b| {
        let manifest = tb.snapshot("setup").unwrap();
        b.iter(|| {
            let mut fresh = Testbed::laptop(
                full_catalog(),
                TestbedConfig { seed: manifest.seed, logging: false, ..Default::default() },
            );
            fresh.recreate(&manifest).unwrap();
            fresh.digi_count()
        })
    });
    group.bench_function("sha256_1kib", |b| {
        let data = vec![0xABu8; 1024];
        b.iter(|| sha256(&data))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
