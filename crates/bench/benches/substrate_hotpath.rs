//! Substrate hot-path overhaul: old vs new, same machine, same process.
//!
//! Two microbenchmarks, each run against the frozen pre-overhaul
//! implementation (`digibox_bench::baseline`) and the live one:
//!
//! * `periodic_timer/*` — 1024 periodic timers re-arming through 64
//!   rounds: the kernel workload the hierarchical timer wheel targets.
//! * `publish_routing/*` — repeated publishes to a small set of hot
//!   topics over a 512-subscription trie: the broker workload the
//!   interned trie + route cache targets.
//!
//! `scripts/bench_smoke.sh` (and the `bench_smoke` bin) run the same
//! comparisons headlessly and write `BENCH_substrate.json`.

use std::collections::HashMap;
use std::rc::Rc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use digibox_bench::baseline::{OldEventQueue, OldTopicTrie};
use digibox_broker::TopicTrie;
use digibox_net::EventWheel;

const TIMERS: u64 = 1024;
const ROUNDS: u64 = 64;
/// 10ms in the kernel's nanosecond clock — a typical digi tick interval.
const PERIOD_NS: u64 = 10_000_000;
/// Keepalive/retransmit-style timers parked past the horizon: every live
/// connection keeps a couple pending, and they deepen the old global heap
/// while the wheel files them into upper levels untouched.
const STANDING: u64 = 2048;

/// Drive `TIMERS` periodic timers (one per device, phases staggered over
/// the first period, as the testbed stagger-boots devices) through
/// `ROUNDS` re-arms on the old global heap, with `STANDING` far-future
/// timers resident.
fn periodic_old() -> u64 {
    let mut q = OldEventQueue::new();
    let mut seq = 0u64;
    let horizon = PERIOD_NS * ROUNDS;
    for s in 0..STANDING {
        q.push(horizon + 1 + s * 1_000_000, seq, u64::MAX - s);
        seq += 1;
    }
    for t in 0..TIMERS {
        q.push(1 + t * (PERIOD_NS / TIMERS), seq, t);
        seq += 1;
    }
    let mut fired = 0u64;
    while let Some((at, _, t)) = q.pop() {
        if at > horizon {
            break;
        }
        fired += 1;
        if at < horizon {
            q.push(at + PERIOD_NS, seq, t);
            seq += 1;
        }
    }
    fired
}

/// The same workload on the hierarchical timer wheel.
fn periodic_new() -> u64 {
    let mut q = EventWheel::new();
    let mut seq = 0u64;
    let horizon = PERIOD_NS * ROUNDS;
    for s in 0..STANDING {
        q.push(horizon + 1 + s * 1_000_000, seq, u64::MAX - s);
        seq += 1;
    }
    for t in 0..TIMERS {
        q.push(1 + t * (PERIOD_NS / TIMERS), seq, t);
        seq += 1;
    }
    let mut fired = 0u64;
    while let Some((at, _, t)) = q.pop() {
        if at > horizon {
            break;
        }
        fired += 1;
        if at < horizon {
            q.push(at + PERIOD_NS, seq, t);
            seq += 1;
        }
    }
    fired
}

/// The broker's subscription shape: per-digi status filters plus a few
/// wildcard observers, as `build_deployment` produces.
fn filters(n: usize) -> Vec<String> {
    let mut f: Vec<String> = (0..n)
        .map(|i| format!("digibox/mock/O{i}/status"))
        .collect();
    f.push("digibox/mock/+/status".into());
    f.push("digibox/#".into());
    f
}

fn hot_topics() -> Vec<String> {
    (0..8).map(|i| format!("digibox/mock/O{i}/status")).collect()
}

/// Old path: every publish re-walks the string trie (allocating the level
/// vector) and re-sorts/dedups the route list.
fn routing_old(trie: &OldTopicTrie<u32>, topics: &[String], publishes: usize) -> usize {
    let mut routed = 0;
    for i in 0..publishes {
        let topic = &topics[i % topics.len()];
        let mut routes: Vec<u32> = trie.lookup(topic).into_iter().copied().collect();
        routes.sort_unstable();
        routes.dedup();
        routed += routes.len();
    }
    routed
}

/// New path: interned trie plus the broker's per-topic route cache
/// (epoch-checked `Rc` route lists) — replicated here because the broker
/// itself only exposes it behind the MQTT session machinery.
fn routing_new(trie: &TopicTrie<u32>, topics: &[String], publishes: usize) -> usize {
    let mut cache: HashMap<String, Rc<[u32]>> = HashMap::new();
    let epoch = trie.epoch();
    let mut routed = 0;
    for i in 0..publishes {
        let topic = &topics[i % topics.len()];
        let routes = match cache.get(topic) {
            Some(r) => Rc::clone(r),
            None => {
                let mut r: Vec<u32> = trie.lookup(topic).into_iter().copied().collect();
                r.sort_unstable();
                r.dedup();
                let r: Rc<[u32]> = r.into();
                cache.insert(topic.clone(), Rc::clone(&r));
                r
            }
        };
        debug_assert_eq!(epoch, trie.epoch());
        routed += routes.len();
    }
    routed
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("periodic_timer");
    group.bench_function("old_binary_heap", |b| b.iter(|| black_box(periodic_old())));
    group.bench_function("new_timer_wheel", |b| b.iter(|| black_box(periodic_new())));
    group.finish();

    let fs = filters(512);
    let mut old_trie = OldTopicTrie::new();
    let mut new_trie = TopicTrie::new();
    for (i, f) in fs.iter().enumerate() {
        old_trie.insert(f, i as u32);
        new_trie.insert(f, i as u32);
    }
    let topics = hot_topics();
    // Sanity: both paths route identically before we time them.
    assert_eq!(
        routing_old(&old_trie, &topics, topics.len()),
        routing_new(&new_trie, &topics, topics.len())
    );

    let mut group = c.benchmark_group("publish_routing");
    group.bench_function("old_uncached_trie", |b| {
        b.iter(|| black_box(routing_old(&old_trie, &topics, 4096)))
    });
    group.bench_function("new_cached_interned", |b| {
        b.iter(|| black_box(routing_new(&new_trie, &topics, 4096)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
