//! Periodic model checkpoints, stored content-addressed in a
//! [`Repository`] so a supervised restart can resume a digi from its last
//! snapshot instead of cold-starting — the recovery half of the chaos
//! subsystem.
//!
//! A checkpoint is the digi's full field tree (intent *and* status — pair
//! fields keep both sides) serialized as canonical JSON. Identical states
//! deduplicate for free: `Repository::put` hashes the bytes, and the ref
//! `checkpoint/<digi>` always points at the latest snapshot, exactly like
//! a branch head.

use std::collections::BTreeMap;

use digibox_model::Value;
use digibox_net::SimTime;
use digibox_registry::{Digest, Repository};

/// Per-digi bookkeeping for the latest checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointInfo {
    /// Content digest of the snapshotted field tree.
    pub digest: Digest,
    /// Virtual time of the snapshot.
    pub at: SimTime,
    /// Model revision at snapshot time.
    pub revision: u64,
    /// Total snapshots taken for this digi (including deduplicated ones).
    pub taken: u64,
}

/// Content-addressed checkpoint store for a testbed's digis.
pub struct CheckpointStore {
    repo: Repository,
    latest: BTreeMap<String, CheckpointInfo>,
}

impl Default for CheckpointStore {
    fn default() -> Self {
        CheckpointStore::new()
    }
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> CheckpointStore {
        CheckpointStore { repo: Repository::new(), latest: BTreeMap::new() }
    }

    /// Snapshot `fields` for `name`. Returns the digest (stable for equal
    /// states, so repeated snapshots of an idle digi cost one hash).
    pub fn save(&mut self, name: &str, fields: &Value, revision: u64, at: SimTime) -> Digest {
        let bytes = serde_json::to_vec(&fields.to_json()).expect("model fields serialize");
        let digest = self.repo.put(bytes);
        self.repo.set_ref(&format!("checkpoint/{name}"), digest);
        let taken = self.latest.get(name).map_or(0, |i| i.taken) + 1;
        self.latest.insert(name.to_string(), CheckpointInfo { digest, at, revision, taken });
        digest
    }

    /// The latest checkpointed field tree for `name`, if any.
    pub fn restore(&self, name: &str) -> Option<Value> {
        let digest = self.repo.resolve(&format!("checkpoint/{name}")).ok()?;
        let bytes = self.repo.get(&digest).ok()?;
        let json: serde_json::Value = serde_json::from_slice(bytes).ok()?;
        Some(Value::from_json(&json))
    }

    /// Bookkeeping for `name`'s latest checkpoint, if any.
    pub fn info(&self, name: &str) -> Option<&CheckpointInfo> {
        self.latest.get(name)
    }

    /// Digis with at least one checkpoint.
    pub fn names(&self) -> Vec<String> {
        self.latest.keys().cloned().collect()
    }

    /// Forget `name`'s checkpoints (the digi was stopped for good).
    pub fn forget(&mut self, name: &str) {
        self.latest.remove(name);
    }

    /// Distinct stored states across all digis (dedup diagnostic).
    pub fn object_count(&self) -> usize {
        self.repo.object_count()
    }
}

#[cfg(test)]
mod checkpoint {
    use super::*;
    use digibox_model::vmap;

    #[test]
    fn save_restore_roundtrip() {
        let mut store = CheckpointStore::new();
        let state = vmap! { "power" => vmap! { "intent" => "on", "status" => "on" } };
        store.save("L1", &state, 3, SimTime::ZERO);
        let back = store.restore("L1").expect("restorable");
        assert_eq!(back, state);
        assert!(store.restore("nope").is_none());
        let info = store.info("L1").unwrap();
        assert_eq!(info.revision, 3);
        assert_eq!(info.taken, 1);
    }

    #[test]
    fn latest_wins_and_identical_states_deduplicate() {
        let mut store = CheckpointStore::new();
        let a = vmap! { "x" => 1 };
        let b = vmap! { "x" => 2 };
        let d1 = store.save("M", &a, 1, SimTime::ZERO);
        let d2 = store.save("M", &b, 2, SimTime::ZERO);
        assert_ne!(d1, d2);
        assert_eq!(store.restore("M").unwrap(), b);
        // snapshotting the same state again reuses the stored object
        let objects = store.object_count();
        let d3 = store.save("M", &b, 2, SimTime::ZERO);
        assert_eq!(d2, d3);
        assert_eq!(store.object_count(), objects);
        assert_eq!(store.info("M").unwrap().taken, 3);
        store.forget("M");
        assert!(store.info("M").is_none());
        // the ref still resolves (objects are immutable), by design
        assert!(store.restore("M").is_some());
    }
}
