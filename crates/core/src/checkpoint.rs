//! Periodic model checkpoints, stored content-addressed in a
//! [`Repository`] so a supervised restart can resume a digi from its last
//! snapshot instead of cold-starting — the recovery half of the chaos
//! subsystem.
//!
//! A checkpoint is the digi's full field tree (intent *and* status — pair
//! fields keep both sides) serialized as canonical JSON. Identical states
//! deduplicate for free: `Repository::put` hashes the bytes, and the ref
//! `checkpoint/<digi>` always points at the latest snapshot, exactly like
//! a branch head.

use std::collections::BTreeMap;

use digibox_broker::{OutboundSnapshot, QoS, SessionSnapshot};
use digibox_model::Value;
use digibox_net::SimTime;
use digibox_registry::{Digest, Repository};

/// Per-digi bookkeeping for the latest checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointInfo {
    /// Content digest of the snapshotted field tree.
    pub digest: Digest,
    /// Virtual time of the snapshot.
    pub at: SimTime,
    /// Model revision at snapshot time.
    pub revision: u64,
    /// Total snapshots taken for this digi (including deduplicated ones).
    pub taken: u64,
}

/// Content-addressed checkpoint store for a testbed's digis.
pub struct CheckpointStore {
    repo: Repository,
    latest: BTreeMap<String, CheckpointInfo>,
    /// Client ids with a persisted broker session (`broker-session/<id>`
    /// ref each), kept sorted so export → import round-trips in a
    /// deterministic order.
    broker_sessions: std::collections::BTreeSet<String>,
}

impl Default for CheckpointStore {
    fn default() -> Self {
        CheckpointStore::new()
    }
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> CheckpointStore {
        CheckpointStore {
            repo: Repository::new(),
            latest: BTreeMap::new(),
            broker_sessions: std::collections::BTreeSet::new(),
        }
    }

    /// Snapshot `fields` for `name`. Returns the digest (stable for equal
    /// states, so repeated snapshots of an idle digi cost one hash).
    pub fn save(&mut self, name: &str, fields: &Value, revision: u64, at: SimTime) -> Digest {
        let bytes = serde_json::to_vec(&fields.to_json()).expect("model fields serialize");
        let digest = self.repo.put(bytes);
        self.repo.set_ref(&format!("checkpoint/{name}"), digest);
        let taken = self.latest.get(name).map_or(0, |i| i.taken) + 1;
        self.latest.insert(name.to_string(), CheckpointInfo { digest, at, revision, taken });
        digest
    }

    /// The latest checkpointed field tree for `name`, if any.
    pub fn restore(&self, name: &str) -> Option<Value> {
        let digest = self.repo.resolve(&format!("checkpoint/{name}")).ok()?;
        let bytes = self.repo.get(&digest).ok()?;
        let json: serde_json::Value = serde_json::from_slice(bytes).ok()?;
        Some(Value::from_json(&json))
    }

    /// Bookkeeping for `name`'s latest checkpoint, if any.
    pub fn info(&self, name: &str) -> Option<&CheckpointInfo> {
        self.latest.get(name)
    }

    /// Digis with at least one checkpoint.
    pub fn names(&self) -> Vec<String> {
        self.latest.keys().cloned().collect()
    }

    /// Forget `name`'s checkpoints (the digi was stopped for good).
    pub fn forget(&mut self, name: &str) {
        self.latest.remove(name);
    }

    /// Distinct stored states across all digis (dedup diagnostic).
    pub fn object_count(&self) -> usize {
        self.repo.object_count()
    }

    /// The virtual instant of the periodic checkpoint nearest at or before
    /// `t`: the largest multiple of `every` that is `<= t`. This is where
    /// `dbox replay --from-checkpoint` resumes. Returns `SimTime::ZERO`
    /// when `every` is zero.
    pub fn aligned(t: SimTime, every: digibox_net::SimDuration) -> SimTime {
        let period = every.as_nanos();
        if period == 0 {
            return SimTime::ZERO;
        }
        SimTime::from_nanos(t.as_nanos() / period * period)
    }

    /// Rebuild per-digi checkpoints from a recorded trace: for every
    /// source, save the last model-change snapshot at or before `upto` —
    /// exactly the state the periodic checkpointer would have stored had
    /// it run at that instant. This is how a replay resumes from a trace
    /// alone, without the original run's checkpoint store. Returns the
    /// number of digis checkpointed.
    pub fn ingest_trace(&mut self, records: &[digibox_trace::TraceRecord], upto: SimTime) -> usize {
        let mut last: BTreeMap<&str, (SimTime, &Value)> = BTreeMap::new();
        for r in records {
            if r.ts > upto {
                continue;
            }
            if let digibox_trace::RecordKind::ModelChange { fields, .. } = &r.kind {
                last.insert(r.source.as_str(), (r.ts, fields));
            }
        }
        let count = last.len();
        for (name, (at, fields)) in last {
            // revision is unknowable from the trace; 0 marks "synthesized"
            self.save(name, fields, 0, at);
        }
        count
    }

    // ---- broker sessions ------------------------------------------------

    /// Persist the broker's durable sessions (from
    /// [`Broker::export_sessions`](digibox_broker::Broker::export_sessions))
    /// as one content-addressed object per client under the ref
    /// `broker-session/<client_id>` — the broker-restart analogue of a
    /// digi's model checkpoint. Replaces any previously persisted set.
    pub fn save_broker_sessions(&mut self, snapshots: &[SessionSnapshot]) {
        self.broker_sessions.clear();
        for snap in snapshots {
            let bytes = session_to_json(snap).to_string().into_bytes();
            let digest = self.repo.put(bytes);
            self.repo.set_ref(&format!("broker-session/{}", snap.client_id), digest);
            self.broker_sessions.insert(snap.client_id.clone());
        }
    }

    /// Restore every persisted broker session, sorted by client id, ready
    /// for [`Broker::import_sessions`](digibox_broker::Broker::import_sessions).
    /// Sessions that fail to parse (impossible unless the repository was
    /// corrupted by hand) are skipped.
    pub fn restore_broker_sessions(&self) -> Vec<SessionSnapshot> {
        self.broker_sessions
            .iter()
            .filter_map(|id| {
                let digest = self.repo.resolve(&format!("broker-session/{id}")).ok()?;
                let bytes = self.repo.get(&digest).ok()?;
                let json: serde_json::Value =
                    serde_json::from_slice(bytes).ok()?;
                session_from_json(&json)
            })
            .collect()
    }

    /// Number of broker sessions currently persisted.
    pub fn broker_session_count(&self) -> usize {
        self.broker_sessions.len()
    }
}

/// Lowercase hex, the encoding for payload bytes inside a persisted
/// session (payloads are arbitrary bytes; JSON strings must stay UTF-8).
fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    (0..s.len() / 2).map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok()).collect()
}

/// Hand-built JSON for a session snapshot. `digibox_broker` deliberately
/// has no serde dependency, so the persistence encoding lives here with
/// the store that owns it.
fn session_to_json(s: &SessionSnapshot) -> serde_json::Value {
    use serde_json::{Map, Number, Value as J};
    let mut obj = Map::new();
    obj.insert("client_id".into(), J::String(s.client_id.clone()));
    obj.insert(
        "subscriptions".into(),
        J::Array(
            s.subscriptions
                .iter()
                .map(|(f, q)| {
                    J::Array(vec![
                        J::String(f.clone()),
                        J::Number(Number::from(*q as u64)),
                    ])
                })
                .collect(),
        ),
    );
    obj.insert(
        "will".into(),
        match &s.will {
            Some((topic, payload)) => {
                J::Array(vec![J::String(topic.clone()), J::String(hex(payload))])
            }
            None => J::Null,
        },
    );
    obj.insert("keep_alive_secs".into(), J::Number(Number::from(u64::from(s.keep_alive_secs))));
    obj.insert(
        "inbound_rec".into(),
        J::Array(s.inbound_rec.iter().map(|p| J::Number(Number::from(u64::from(*p)))).collect()),
    );
    obj.insert(
        "outbound".into(),
        J::Array(
            s.outbound
                .iter()
                .map(|o| {
                    let mut m = Map::new();
                    m.insert("packet_id".into(), J::Number(Number::from(u64::from(o.packet_id))));
                    m.insert("topic".into(), J::String(o.topic.clone()));
                    m.insert("payload".into(), J::String(hex(&o.payload)));
                    m.insert("qos".into(), J::Number(Number::from(o.qos as u64)));
                    m.insert("retain".into(), J::Bool(o.retain));
                    m.insert("released".into(), J::Bool(o.released));
                    J::Object(m)
                })
                .collect(),
        ),
    );
    J::Object(obj)
}

fn session_from_json(j: &serde_json::Value) -> Option<SessionSnapshot> {
    let subscriptions = j
        .get("subscriptions")?
        .as_array()?
        .iter()
        .map(|pair| {
            let arr = pair.as_array()?;
            let filter = arr.first()?.as_str()?.to_string();
            let qos = QoS::from_bits(arr.get(1)?.as_u64()? as u8)?;
            Some((filter, qos))
        })
        .collect::<Option<Vec<_>>>()?;
    let will = match j.get("will")? {
        serde_json::Value::Null => None,
        w => {
            let arr = w.as_array()?;
            let topic = arr.first()?.as_str()?.to_string();
            let payload = bytes::Bytes::from(unhex(arr.get(1)?.as_str()?)?);
            Some((topic, payload))
        }
    };
    let inbound_rec = j
        .get("inbound_rec")?
        .as_array()?
        .iter()
        .map(|p| Some(p.as_u64()? as u16))
        .collect::<Option<Vec<_>>>()?;
    let outbound = j
        .get("outbound")?
        .as_array()?
        .iter()
        .map(|o| {
            Some(OutboundSnapshot {
                packet_id: o.get("packet_id")?.as_u64()? as u16,
                topic: o.get("topic")?.as_str()?.to_string(),
                payload: bytes::Bytes::from(unhex(o.get("payload")?.as_str()?)?),
                qos: QoS::from_bits(o.get("qos")?.as_u64()? as u8)?,
                retain: o.get("retain")?.as_bool()?,
                released: o.get("released")?.as_bool()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(SessionSnapshot {
        client_id: j.get("client_id")?.as_str()?.to_string(),
        subscriptions,
        will,
        keep_alive_secs: j.get("keep_alive_secs")?.as_u64()? as u16,
        inbound_rec,
        outbound,
    })
}

#[cfg(test)]
mod checkpoint {
    use super::*;
    use digibox_model::vmap;

    #[test]
    fn save_restore_roundtrip() {
        let mut store = CheckpointStore::new();
        let state = vmap! { "power" => vmap! { "intent" => "on", "status" => "on" } };
        store.save("L1", &state, 3, SimTime::ZERO);
        let back = store.restore("L1").expect("restorable");
        assert_eq!(back, state);
        assert!(store.restore("nope").is_none());
        let info = store.info("L1").unwrap();
        assert_eq!(info.revision, 3);
        assert_eq!(info.taken, 1);
    }

    #[test]
    fn latest_wins_and_identical_states_deduplicate() {
        let mut store = CheckpointStore::new();
        let a = vmap! { "x" => 1 };
        let b = vmap! { "x" => 2 };
        let d1 = store.save("M", &a, 1, SimTime::ZERO);
        let d2 = store.save("M", &b, 2, SimTime::ZERO);
        assert_ne!(d1, d2);
        assert_eq!(store.restore("M").unwrap(), b);
        // snapshotting the same state again reuses the stored object
        let objects = store.object_count();
        let d3 = store.save("M", &b, 2, SimTime::ZERO);
        assert_eq!(d2, d3);
        assert_eq!(store.object_count(), objects);
        assert_eq!(store.info("M").unwrap().taken, 3);
        store.forget("M");
        assert!(store.info("M").is_none());
        // the ref still resolves (objects are immutable), by design
        assert!(store.restore("M").is_some());
    }

    #[test]
    fn aligned_floors_to_checkpoint_boundary() {
        use digibox_net::SimDuration;
        let every = SimDuration::from_secs(5);
        let at = |s: u64| SimTime::ZERO + SimDuration::from_secs(s);
        assert_eq!(CheckpointStore::aligned(at(12), every), at(10));
        assert_eq!(CheckpointStore::aligned(at(10), every), at(10));
        assert_eq!(CheckpointStore::aligned(at(4), every), at(0));
        assert_eq!(CheckpointStore::aligned(at(9), SimDuration::ZERO), SimTime::ZERO);
        // sub-second remainders floor too
        let t = SimTime::from_nanos(17_300_000_001);
        assert_eq!(CheckpointStore::aligned(t, every), at(15));
    }

    #[test]
    fn ingest_trace_synthesizes_last_state_per_source() {
        use digibox_net::SimDuration;
        use digibox_trace::{RecordKind, TraceRecord};
        let at = |ms: u64| SimTime::ZERO + SimDuration::from_millis(ms);
        let change = |seq: u64, ms: u64, source: &str, fields: Value| TraceRecord {
            seq,
            ts: at(ms),
            source: source.into(),
            kind: RecordKind::ModelChange { patch: digibox_model::Patch::new(), fields },
        };
        let records = vec![
            change(0, 1_000, "O1", vmap! { "t" => true }),
            change(1, 4_000, "O1", vmap! { "t" => false }),
            change(2, 6_000, "O1", vmap! { "t" => true }),
            change(3, 2_000, "L1", vmap! { "on" => true }),
        ];
        let mut store = CheckpointStore::new();
        // checkpoint instant at 5s: O1's 4s state wins, the 6s one is after
        assert_eq!(store.ingest_trace(&records, at(5_000)), 2);
        assert_eq!(store.restore("O1").unwrap(), vmap! { "t" => false });
        assert_eq!(store.restore("L1").unwrap(), vmap! { "on" => true });
        assert_eq!(store.info("O1").unwrap().at, at(4_000));
        // the bound is inclusive: a record exactly at the instant counts
        store.ingest_trace(&records, at(6_000));
        assert_eq!(store.restore("O1").unwrap(), vmap! { "t" => true });
    }

    #[test]
    fn broker_sessions_roundtrip_including_binary_payloads() {
        let mut store = CheckpointStore::new();
        let snaps = vec![
            SessionSnapshot {
                client_id: "app-1".into(),
                subscriptions: vec![
                    ("digi/+/status".into(), QoS::ExactlyOnce),
                    ("$share/workers/jobs/#".into(), QoS::AtLeastOnce),
                ],
                will: Some(("digi/app-1/will".into(), bytes::Bytes::from(vec![0u8, 255, 10]))),
                keep_alive_secs: 30,
                inbound_rec: vec![3, 9],
                outbound: vec![OutboundSnapshot {
                    packet_id: 7,
                    topic: "digi/l1/status".into(),
                    payload: bytes::Bytes::from(vec![1u8, 2, 0, 254]),
                    qos: QoS::ExactlyOnce,
                    retain: false,
                    released: true,
                }],
            },
            SessionSnapshot {
                client_id: "app-2".into(),
                subscriptions: Vec::new(),
                will: None,
                keep_alive_secs: 0,
                inbound_rec: Vec::new(),
                outbound: Vec::new(),
            },
        ];
        store.save_broker_sessions(&snaps);
        assert_eq!(store.broker_session_count(), 2);
        assert_eq!(store.restore_broker_sessions(), snaps);
        // a fresh export replaces the persisted set
        store.save_broker_sessions(&snaps[1..]);
        assert_eq!(store.broker_session_count(), 1);
        assert_eq!(store.restore_broker_sessions(), snaps[1..]);
        assert_eq!(hex(&[0x0f, 0xa0]), "0fa0");
        assert_eq!(unhex("0fa0").unwrap(), vec![0x0f, 0xa0]);
        assert!(unhex("xy").is_none() && unhex("abc").is_none());
    }
}
