//! The program catalog: program id → factory.
//!
//! The catalog is the run-time resolver behind "container images": a shared
//! setup references types by program id (e.g. `builtin/lamp`); the
//! receiving Digibox instantiates them from its catalog (paper §3.5:
//! recreating a setup "includes pulling the container images"). The
//! `digibox-devices` crate registers the 20 built-in mocks and 18 scenes
//! here.

use std::collections::BTreeMap;
use std::fmt;

use digibox_registry::TypePackage;

use crate::program::DigiProgram;

type Factory = Box<dyn Fn() -> Box<dyn DigiProgram>>;

/// Catalog errors. Unknown-name variants carry the offending name and a
/// nearest-match suggestion so callers (CLI errors, `dbox lint` DL0005)
/// don't have to re-derive it from the catalog.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogError {
    /// No registered type with this kind name.
    UnknownKind {
        /// The name that failed to resolve.
        kind: String,
        /// Closest registered name, if any is plausibly close.
        suggestion: Option<String>,
    },
    /// No registered type with this program id.
    UnknownProgram {
        /// The id that failed to resolve.
        program: String,
        /// Closest registered id, if any is plausibly close.
        suggestion: Option<String>,
    },
    /// A type with this kind name is already registered.
    DuplicateKind(String),
}

impl CatalogError {
    /// The name that failed to resolve, when there is one.
    pub fn unknown_name(&self) -> Option<&str> {
        match self {
            CatalogError::UnknownKind { kind, .. } => Some(kind),
            CatalogError::UnknownProgram { program, .. } => Some(program),
            CatalogError::DuplicateKind(_) => None,
        }
    }

    /// The nearest registered name, when one is close enough.
    pub fn suggestion(&self) -> Option<&str> {
        match self {
            CatalogError::UnknownKind { suggestion, .. }
            | CatalogError::UnknownProgram { suggestion, .. } => suggestion.as_deref(),
            CatalogError::DuplicateKind(_) => None,
        }
    }
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hint = |s: &Option<String>| match s {
            Some(s) => format!(" (did you mean {s:?}?)"),
            None => String::new(),
        };
        match self {
            CatalogError::UnknownKind { kind, suggestion } => {
                write!(f, "no program registered for type {kind:?}{}", hint(suggestion))
            }
            CatalogError::UnknownProgram { program, suggestion } => {
                write!(f, "no program with id {program:?}{}", hint(suggestion))
            }
            CatalogError::DuplicateKind(k) => write!(f, "type {k:?} already registered"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// A registry of digi programs, indexed by type name and by program id.
#[derive(Default)]
pub struct Catalog {
    by_kind: BTreeMap<String, Factory>,
    kind_to_program: BTreeMap<String, String>,
    program_to_kind: BTreeMap<String, String>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a program type via its factory. The factory is probed once
    /// to learn kind/version/program-id.
    pub fn register<F>(&mut self, factory: F) -> Result<(), CatalogError>
    where
        F: Fn() -> Box<dyn DigiProgram> + 'static,
    {
        let probe = factory();
        let kind = probe.kind().to_string();
        let program = probe.program_id().to_string();
        if self.by_kind.contains_key(&kind) {
            return Err(CatalogError::DuplicateKind(kind));
        }
        self.kind_to_program.insert(kind.clone(), program.clone());
        self.program_to_kind.insert(program, kind.clone());
        self.by_kind.insert(kind, Box::new(factory));
        Ok(())
    }

    /// Instantiate a program for a type name.
    pub fn make(&self, kind: &str) -> Result<Box<dyn DigiProgram>, CatalogError> {
        self.by_kind.get(kind).map(|f| f()).ok_or_else(|| CatalogError::UnknownKind {
            kind: kind.to_string(),
            suggestion: crate::suggest::nearest(kind, self.by_kind.keys().map(String::as_str))
                .map(str::to_string),
        })
    }

    /// Instantiate by program id (used when recreating pulled setups).
    pub fn make_by_program(&self, program: &str) -> Result<Box<dyn DigiProgram>, CatalogError> {
        let kind =
            self.program_to_kind.get(program).ok_or_else(|| CatalogError::UnknownProgram {
                program: program.to_string(),
                suggestion: crate::suggest::nearest(
                    program,
                    self.program_to_kind.keys().map(String::as_str),
                )
                .map(str::to_string),
            })?;
        self.make(kind)
    }

    /// Whether a type with this kind name is registered.
    pub fn contains_kind(&self, kind: &str) -> bool {
        self.by_kind.contains_key(kind)
    }

    /// All registered type names, sorted.
    pub fn kinds(&self) -> Vec<&str> {
        self.by_kind.keys().map(String::as_str).collect()
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.by_kind.len()
    }

    /// Whether the catalog has no types.
    pub fn is_empty(&self) -> bool {
        self.by_kind.is_empty()
    }

    /// Build the shareable [`TypePackage`] for a registered type — what
    /// `dbox commit` stores in the repository for each type in a setup.
    pub fn package(&self, kind: &str) -> Result<TypePackage, CatalogError> {
        let program = self.make(kind)?;
        let schema = program.schema();
        Ok(TypePackage {
            kind: program.kind().to_string(),
            version: program.version().to_string(),
            program: program.program_id().to_string(),
            schema_json: serde_json::to_string(&schema).expect("schemas serialize"),
            default_params: BTreeMap::new(),
            notes: program.describe(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{LoopCtx, SimCtx};
    use digibox_model::{FieldKind, Schema};

    struct Dummy;
    impl DigiProgram for Dummy {
        fn kind(&self) -> &str {
            "Dummy"
        }
        fn version(&self) -> &str {
            "v1"
        }
        fn program_id(&self) -> &str {
            "test/dummy"
        }
        fn schema(&self) -> Schema {
            Schema::new("Dummy", "v1").field("x", FieldKind::int())
        }
        fn on_loop(&mut self, _ctx: &mut LoopCtx) {}
        fn on_model(&mut self, _ctx: &mut SimCtx) {}
    }

    #[test]
    fn register_and_make() {
        let mut c = Catalog::new();
        c.register(|| Box::new(Dummy)).unwrap();
        assert!(c.contains_kind("Dummy"));
        assert_eq!(c.kinds(), ["Dummy"]);
        let p = c.make("Dummy").unwrap();
        assert_eq!(p.kind(), "Dummy");
        let p2 = c.make_by_program("test/dummy").unwrap();
        assert_eq!(p2.kind(), "Dummy");
    }

    #[test]
    fn duplicate_and_unknown_errors() {
        let mut c = Catalog::new();
        c.register(|| Box::new(Dummy)).unwrap();
        assert!(matches!(c.register(|| Box::new(Dummy)), Err(CatalogError::DuplicateKind(_))));
        assert!(matches!(c.make("Nope"), Err(CatalogError::UnknownKind { .. })));
        assert!(matches!(c.make_by_program("no/prog"), Err(CatalogError::UnknownProgram { .. })));
    }

    fn expect_err(r: Result<Box<dyn DigiProgram>, CatalogError>) -> CatalogError {
        match r {
            Err(e) => e,
            Ok(p) => panic!("expected an error, resolved {}", p.kind()),
        }
    }

    #[test]
    fn unknown_kind_suggests_nearest() {
        let mut c = Catalog::new();
        c.register(|| Box::new(Dummy)).unwrap();
        let err = expect_err(c.make("Dumny"));
        assert_eq!(err.unknown_name(), Some("Dumny"));
        assert_eq!(err.suggestion(), Some("Dummy"));
        assert!(err.to_string().contains("did you mean \"Dummy\"?"), "{err}");
        // far-off names get no suggestion
        let err = expect_err(c.make("Telescope"));
        assert_eq!(err.suggestion(), None);
        assert!(!err.to_string().contains("did you mean"), "{err}");
        // program ids too
        let err = expect_err(c.make_by_program("test/dumny"));
        assert_eq!(err.suggestion(), Some("test/dummy"));
    }

    #[test]
    fn package_carries_schema() {
        let mut c = Catalog::new();
        c.register(|| Box::new(Dummy)).unwrap();
        let pkg = c.package("Dummy").unwrap();
        assert_eq!(pkg.kind, "Dummy");
        assert_eq!(pkg.program, "test/dummy");
        let schema: Schema = serde_json::from_str(&pkg.schema_json).unwrap();
        assert!(schema.fields.contains_key("x"));
    }
}
