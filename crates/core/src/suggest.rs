//! "Did you mean ...?" suggestions for unknown names.
//!
//! Shared by [`crate::catalog::CatalogError`] and the `dbox lint` analyzer:
//! both resolve user-typed type names against a known set and want a
//! nearest-match hint on failure.

/// Edit distance with adjacent transpositions counting as one edit
/// (optimal string alignment), case-insensitive — `Fna` is one typo away
/// from `Fan`, not two.
fn distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().flat_map(char::to_lowercase).collect();
    let b: Vec<char> = b.chars().flat_map(char::to_lowercase).collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev2: Vec<usize> = vec![0; b.len() + 1];
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            let mut best = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
            if i > 0 && j > 0 && *ca == b[j - 1] && a[i - 1] == *cb {
                best = best.min(prev2[j - 1] + 1);
            }
            cur[j + 1] = best;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The candidate closest to `target`, if any is close enough to plausibly
/// be a typo (distance ≤ ⌈len/3⌉, and ≤ 3 absolute).
pub fn nearest<'a, I>(target: &str, candidates: I) -> Option<&'a str>
where
    I: IntoIterator<Item = &'a str>,
{
    let budget = target.chars().count().div_ceil(3).min(3).max(1);
    candidates
        .into_iter()
        .map(|c| (distance(target, c), c))
        .filter(|(d, _)| *d <= budget)
        .min_by_key(|(d, c)| (*d, c.to_string()))
        .map(|(_, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        assert_eq!(distance("", ""), 0);
        assert_eq!(distance("abc", "abc"), 0);
        assert_eq!(distance("abc", "abd"), 1);
        assert_eq!(distance("kitten", "sitting"), 3);
        assert_eq!(distance("Lamp", "lamp"), 0, "case-insensitive");
    }

    #[test]
    fn nearest_finds_typos() {
        let kinds = ["Lamp", "Fan", "Hvac", "Occupancy", "Thermostat"];
        assert_eq!(nearest("Lmap", kinds), Some("Lamp"));
        assert_eq!(nearest("occupancy", kinds), Some("Occupancy"));
        assert_eq!(nearest("Thermostat2", kinds), Some("Thermostat"));
        assert_eq!(nearest("Televison", kinds), None, "nothing close enough");
        assert_eq!(nearest("Fna", kinds), Some("Fan"));
    }

    #[test]
    fn short_names_get_a_tight_budget() {
        // one edit allowed on very short names, no more
        assert_eq!(nearest("Fb", ["Fa", "Go"]), Some("Fa"));
        assert_eq!(nearest("Xy", ["Fa"]), None);
    }
}
