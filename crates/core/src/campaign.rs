//! Chaos campaigns (paper §6 lists device faults/failures as a
//! prototyping dimension): execute a seeded [`FaultPlan`] against a
//! testbed, sweep it across seeds, and score each run with a
//! degradation-aware verdict — violations *during* a fault window (plus a
//! convergence grace period) are tolerated degradation; violations after
//! the last fault heals are hard failures.
//!
//! The runner drives the testbed between fault transitions with
//! [`Testbed::run_for`], so restarts and checkpoints interleave exactly as
//! they would in a plain run, and the whole campaign is a pure function of
//! (plan, seed, testbed builder): the scorecard digest is byte-identical
//! across runs.

use std::collections::BTreeMap;

use digibox_net::chaos::{self, FaultKind, FaultPlan, FaultWindow};
use digibox_net::{LinkState, NodeId, SimDuration, SimTime};
use digibox_trace::RecordKind;

use crate::islands::{self, IslandSpec, IslandsConfig};
use crate::sweep;
use crate::testbed::Testbed;

/// A fault plan bound to a seed sweep.
pub struct Campaign {
    plan: FaultPlan,
}

/// A seed that produced no report: its builder failed or the run panicked.
/// Captured per seed by the sweep engine instead of poisoning the whole
/// campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedFailure {
    /// The seed that failed.
    pub seed: u64,
    /// The builder error or panic message.
    pub error: String,
}

/// Per-seed observations.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedReport {
    /// The seed this report belongs to.
    pub seed: u64,
    /// Fraction of the run each digi was up (1.0 = never down). Digis
    /// that never crashed report 1.0.
    pub availability: BTreeMap<String, f64>,
    /// Supervised restarts per digi.
    pub restarts: BTreeMap<String, u64>,
    /// Kernel datagrams dropped by lossy/blackholed links.
    pub messages_lost: u64,
    /// Broker-side transport retransmissions (reliable-delivery repair
    /// work caused by the faults).
    pub messages_redelivered: u64,
    /// Sessions the broker reaped via keep-alive probing.
    pub broker_sessions_expired: u64,
    /// Checkpoint snapshots taken across all digis.
    pub checkpoints_taken: u64,
    /// Violations inside a fault window + convergence grace (tolerated).
    pub violations_during_fault: u64,
    /// Violations after the last heal + convergence deadline (failures).
    pub violations_post_heal: u64,
    /// Time from the last heal to the last *tolerated* violation — how
    /// long the ensemble took to reconverge (0 = instantly clean).
    pub time_to_reconverge_ms: u64,
    /// Observability counters for the seed's run (`digibox_obs` registry:
    /// kernel dispatch, broker routing, digi handlers, restarts,
    /// checkpoints). Empty when the testbed was built with
    /// `TestbedConfig::metrics` off. Keys are sorted, so the map is part
    /// of the canonical JSON and digest.
    pub metrics: BTreeMap<String, u64>,
}

/// The campaign verdict across all seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct Scorecard {
    /// Name of the fault plan that ran.
    pub plan: String,
    /// Convergence deadline used for violation classification.
    pub convergence_ms: u64,
    /// One report per seed, in canonical seed order.
    pub per_seed: Vec<SeedReport>,
    /// Seeds that never produced a report (builder error or panic), in
    /// canonical seed order. Part of the canonical JSON and digest.
    pub errors: Vec<SeedFailure>,
}

impl Scorecard {
    /// Hard failures summed across all seeds.
    pub fn post_heal_violations(&self) -> u64 {
        self.per_seed.iter().map(|s| s.violations_post_heal).sum()
    }

    /// Clean = no seed produced a violation after its convergence
    /// deadline. Degradation during faults does not count against this.
    pub fn clean(&self) -> bool {
        self.post_heal_violations() == 0
    }

    /// Canonical JSON (hand-built, sorted keys, fixed float precision) so
    /// the digest is stable across platforms and serde versions.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 256 * self.per_seed.len());
        out.push_str(&format!(
            "{{\"plan\":{},\"convergence_ms\":{},\"clean\":{},\"post_heal_violations\":{},\"per_seed\":[",
            json_str(&self.plan),
            self.convergence_ms,
            self.clean(),
            self.post_heal_violations()
        ));
        for (i, s) in self.per_seed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"seed\":{},\"availability\":{{", s.seed));
            for (j, (name, a)) in s.availability.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{:.6}", json_str(name), a));
            }
            out.push_str("},\"restarts\":{");
            for (j, (name, n)) in s.restarts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{}", json_str(name), n));
            }
            out.push_str(&format!(
                "}},\"messages_lost\":{},\"messages_redelivered\":{},\
                 \"broker_sessions_expired\":{},\"checkpoints_taken\":{},\
                 \"violations_during_fault\":{},\"violations_post_heal\":{},\
                 \"time_to_reconverge_ms\":{},\"metrics\":{{",
                s.messages_lost,
                s.messages_redelivered,
                s.broker_sessions_expired,
                s.checkpoints_taken,
                s.violations_during_fault,
                s.violations_post_heal,
                s.time_to_reconverge_ms
            ));
            for (j, (name, v)) in s.metrics.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{}", json_str(name), v));
            }
            out.push_str("}}");
        }
        out.push_str("],\"errors\":[");
        for (i, e) in self.errors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seed\":{},\"error\":{}}}",
                e.seed,
                json_str(&e.error)
            ));
        }
        out.push_str("]}");
        out
    }

    /// Content digest of the canonical JSON — two runs of the same plan,
    /// seeds and setup must produce the same digest.
    pub fn digest(&self) -> String {
        digibox_registry::sha256(self.to_json().as_bytes()).to_string()
    }

    /// Human-readable summary for the CLI's pretty format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "chaos plan {:?}: {} seed(s), convergence {}ms — {}\n",
            self.plan,
            self.per_seed.len(),
            self.convergence_ms,
            if self.clean() { "CLEAN" } else { "POST-HEAL VIOLATIONS" }
        ));
        for s in &self.per_seed {
            let worst = s
                .availability
                .iter()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("availability is finite"))
                .map(|(n, a)| format!("{n} {:.1}%", a * 100.0))
                .unwrap_or_else(|| "n/a".to_string());
            out.push_str(&format!(
                "  seed {:>3}: worst availability {worst}; restarts {}; lost {}; \
                 redelivered {}; during-fault {}; post-heal {}; reconverge {}ms\n",
                s.seed,
                s.restarts.values().sum::<u64>(),
                s.messages_lost,
                s.messages_redelivered,
                s.violations_during_fault,
                s.violations_post_heal,
                s.time_to_reconverge_ms
            ));
            if let Some(events) = s.metrics.get("kernel.events") {
                out.push_str(&format!(
                    "           kernel events {events}; broker publishes {}; digi handlers {}\n",
                    s.metrics.get("broker.publishes").copied().unwrap_or(0),
                    s.metrics.get("digi.on_loop").copied().unwrap_or(0)
                        + s.metrics.get("digi.on_model").copied().unwrap_or(0)
                ));
            }
        }
        for e in &self.errors {
            out.push_str(&format!("  seed {:>3}: FAILED — {}\n", e.seed, e.error));
        }
        out.push_str(&format!("scorecard digest {}\n", &self.digest()[..12]));
        out
    }
}

impl Campaign {
    /// Validate the plan and wrap it for execution.
    pub fn new(plan: FaultPlan) -> Result<Campaign, String> {
        plan.validate()?;
        Ok(Campaign { plan })
    }

    /// The validated fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Run the plan once per seed on one core, building a fresh testbed
    /// each time via `build` (which should configure digis, properties,
    /// and — for partition plans — a broker session timeout so stale
    /// sessions clear). Equivalent to [`Campaign::run_jobs`] with
    /// `jobs = 1`; the scorecard is byte-identical either way.
    pub fn run<F>(&self, seeds: &[u64], build: F) -> crate::Result<Scorecard>
    where
        F: Fn(u64) -> crate::Result<Testbed> + Sync,
    {
        self.run_jobs(seeds, 1, build)
    }

    /// Run the plan once per seed across `jobs` worker threads (`0` = one
    /// per core) on the [`sweep`] engine. Every worker builds its own
    /// isolated testbed/kernel and reports are merged in canonical seed
    /// order, so the scorecard — and its digest — is byte-identical for
    /// any `jobs` value. A seed whose builder fails or whose run panics
    /// becomes a [`SeedFailure`] entry instead of aborting the sweep.
    pub fn run_jobs<F>(&self, seeds: &[u64], jobs: usize, build: F) -> crate::Result<Scorecard>
    where
        F: Fn(u64) -> crate::Result<Testbed> + Sync,
    {
        let outcome = sweep::sweep(seeds, jobs, |seed| {
            let mut tb = build(seed).map_err(|e| e.to_string())?;
            Ok(self.run_seed(seed, &mut tb))
        });
        let mut per_seed = Vec::with_capacity(outcome.runs.len());
        let mut errors = Vec::new();
        for run in outcome.runs {
            match run.result {
                Ok(report) => per_seed.push(report),
                Err(e) => errors.push(SeedFailure { seed: run.seed, error: e.to_string() }),
            }
        }
        Ok(Scorecard {
            plan: self.plan.name.clone(),
            convergence_ms: self.plan.convergence_ms,
            per_seed,
            errors,
        })
    }

    /// Run the plan once per seed with each run executed space-parallel
    /// on the island engine (`core::islands`, DESIGN.md §15): `specs_for`
    /// partitions the scene into islands for a seed, the engine drives
    /// them through conservative-lookahead epochs with the plan's fault
    /// windows resolved at barrier fences, and the per-island reports are
    /// merged into one [`SeedReport`] (digi maps union — island scenes
    /// must use globally unique digi names — numeric fields sum,
    /// reconvergence takes the worst island). `workers` is the island
    /// worker-thread count per run (`0` = one per core) and never changes
    /// the scorecard digest; `jobs` shards seeds exactly like
    /// [`Campaign::run_jobs`].
    pub fn run_islands<F>(
        &self,
        seeds: &[u64],
        jobs: usize,
        workers: usize,
        specs_for: F,
    ) -> crate::Result<Scorecard>
    where
        F: Fn(u64) -> Vec<IslandSpec> + Sync,
    {
        let span = self.plan.duration() + self.plan.convergence();
        let config = IslandsConfig { workers, ..IslandsConfig::default() };
        let outcome = sweep::sweep(seeds, jobs, |seed| {
            let windows = self.plan.schedule(seed);
            let run = islands::run(
                seed,
                specs_for(seed),
                &config,
                span,
                &windows,
                |_, tb, t0| {
                    // Records up to the aligned start are settle noise;
                    // epoch events are strictly after t0 (events at t0 are
                    // processed during clock alignment).
                    let seq0 = tb
                        .log()
                        .records()
                        .iter()
                        .take_while(|r| r.ts <= t0)
                        .last()
                        .map(|r| r.seq);
                    self.collect(seed, tb, t0, &windows, seq0)
                },
            )?;
            Ok(merge_island_reports(seed, run.results))
        });
        let mut per_seed = Vec::with_capacity(outcome.runs.len());
        let mut errors = Vec::new();
        for run in outcome.runs {
            match run.result {
                Ok(report) => per_seed.push(report),
                Err(e) => errors.push(SeedFailure { seed: run.seed, error: e.to_string() }),
            }
        }
        Ok(Scorecard {
            plan: self.plan.name.clone(),
            convergence_ms: self.plan.convergence_ms,
            per_seed,
            errors,
        })
    }

    /// Execute the plan's windows against one testbed. Fault times are
    /// relative to the moment this is called (the builder may have run
    /// settle time first).
    fn run_seed(&self, seed: u64, tb: &mut Testbed) -> SeedReport {
        let windows = self.plan.schedule(seed);
        let t0 = tb.now();
        let seq0 = tb.log().records().last().map(|r| r.seq);
        let baseline = tb.sim().topology().save_links();

        let mut marks: Vec<SimTime> = windows.iter().flat_map(|w| [w.start, w.end]).collect();
        marks.sort_unstable();
        marks.dedup();
        let mut active = vec![false; windows.len()];

        for mark in marks {
            let abs = t0 + (mark - SimTime::ZERO);
            if abs > tb.now() {
                tb.run_for(abs - tb.now());
            }
            let mut topo_dirty = false;
            for (i, w) in windows.iter().enumerate() {
                if w.start != mark {
                    continue;
                }
                active[i] = true;
                tb.log().lifecycle(tb.now(), "chaos", "fault-begin", &w.kind.label());
                match &w.kind {
                    FaultKind::CrashDigi { digi } => {
                        let _ = tb.kill(digi);
                    }
                    FaultKind::NodeDown { node } => {
                        let _ = tb.fail_node(NodeId(*node));
                    }
                    FaultKind::CrashBroker => {
                        // The restart is scheduled up front: the broker
                        // stays dark for the whole window, then a fresh
                        // instance imports the exported sessions.
                        tb.kill_broker(w.end.since(w.start));
                    }
                    FaultKind::Partition { .. } | FaultKind::Degrade { .. } => topo_dirty = true,
                }
            }
            for (i, w) in windows.iter().enumerate() {
                if w.end != mark || !active[i] {
                    continue;
                }
                active[i] = false;
                tb.log().lifecycle(tb.now(), "chaos", "fault-end", &w.kind.label());
                match &w.kind {
                    FaultKind::NodeDown { node } => tb.restore_node(NodeId(*node)),
                    FaultKind::Partition { .. } | FaultKind::Degrade { .. } => topo_dirty = true,
                    // Broker rebind was scheduled by kill_broker at
                    // window start; nothing to do at heal time.
                    FaultKind::CrashDigi { .. } | FaultKind::CrashBroker => {}
                }
            }
            if topo_dirty {
                reapply_topology(tb, &baseline, &windows, &active);
            }
        }

        // Run out the plan, then the convergence grace period.
        let end_abs = t0 + self.plan.duration() + self.plan.convergence();
        if end_abs > tb.now() {
            tb.run_for(end_abs - tb.now());
        }
        self.collect(seed, tb, t0, &windows, seq0)
    }

    fn collect(
        &self,
        seed: u64,
        tb: &mut Testbed,
        t0: SimTime,
        windows: &[FaultWindow],
        seq0: Option<u64>,
    ) -> SeedReport {
        let convergence = self.plan.convergence();
        let records = tb.log().since(seq0);
        let end = tb.now();
        let total = end - t0;

        // Downtime windows from the lifecycle stream: killed → restarted.
        let mut down_since: BTreeMap<String, SimTime> = BTreeMap::new();
        let mut downtime: BTreeMap<String, SimDuration> = BTreeMap::new();
        let mut restarts: BTreeMap<String, u64> = BTreeMap::new();
        for r in &records {
            let RecordKind::Lifecycle { action, .. } = &r.kind else { continue };
            match action.as_str() {
                "killed" => {
                    down_since.entry(r.source.clone()).or_insert(r.ts);
                }
                "restarted" => {
                    *restarts.entry(r.source.clone()).or_insert(0) += 1;
                    if let Some(t) = down_since.remove(&r.source) {
                        let d = downtime.entry(r.source.clone()).or_insert(SimDuration::ZERO);
                        *d = *d + (r.ts - t);
                    }
                }
                _ => {}
            }
        }
        for (name, t) in down_since {
            let d = downtime.entry(name).or_insert(SimDuration::ZERO);
            *d = *d + (end - t);
        }
        let mut availability: BTreeMap<String, f64> = BTreeMap::new();
        for name in tb.digi_names() {
            availability.insert(name, 1.0);
        }
        for (name, d) in &downtime {
            let frac = if total > SimDuration::ZERO {
                1.0 - d.as_secs_f64() / total.as_secs_f64()
            } else {
                1.0
            };
            availability.insert(name.clone(), frac.clamp(0.0, 1.0));
        }

        // Degradation-aware violation classification, in plan time.
        let last_heal = chaos::last_heal(windows);
        let mut during_fault = 0u64;
        let mut post_heal = 0u64;
        let mut last_tolerated_after_heal: Option<SimTime> = None;
        for r in &records {
            if !matches!(r.kind, RecordKind::Violation { .. }) {
                continue;
            }
            let rel = SimTime::ZERO + (r.ts - t0);
            if chaos::tolerated(windows, convergence, rel) {
                during_fault += 1;
                if rel > last_heal {
                    last_tolerated_after_heal =
                        Some(last_tolerated_after_heal.map_or(rel, |t| t.max(rel)));
                }
            } else {
                post_heal += 1;
            }
        }
        let time_to_reconverge_ms =
            last_tolerated_after_heal.map_or(0, |t| (t - last_heal).as_millis());

        let checkpoints_taken = tb
            .checkpoints()
            .names()
            .iter()
            .filter_map(|n| tb.checkpoints().info(n))
            .map(|i| i.taken)
            .sum();
        let (messages_redelivered, broker_sessions_expired) = {
            let b = tb.broker().borrow();
            (b.transport_retransmits(), b.stats().sessions_expired)
        };
        let messages_lost = tb.sim().stats().datagrams_lost;
        let metrics: BTreeMap<String, u64> =
            tb.obs_snapshot().counters.into_iter().collect();

        SeedReport {
            seed,
            availability,
            restarts,
            messages_lost,
            messages_redelivered,
            broker_sessions_expired,
            checkpoints_taken,
            violations_during_fault: during_fault,
            violations_post_heal: post_heal,
            time_to_reconverge_ms,
            metrics,
        }
    }
}

/// Merge per-island seed reports into one: digi-keyed maps union (island
/// scenes use globally unique digi names), numeric totals sum, and
/// reconvergence time takes the slowest island.
fn merge_island_reports(seed: u64, reports: Vec<SeedReport>) -> SeedReport {
    let mut merged = SeedReport {
        seed,
        availability: BTreeMap::new(),
        restarts: BTreeMap::new(),
        messages_lost: 0,
        messages_redelivered: 0,
        broker_sessions_expired: 0,
        checkpoints_taken: 0,
        violations_during_fault: 0,
        violations_post_heal: 0,
        time_to_reconverge_ms: 0,
        metrics: BTreeMap::new(),
    };
    for r in reports {
        merged.availability.extend(r.availability);
        merged.restarts.extend(r.restarts);
        merged.messages_lost += r.messages_lost;
        merged.messages_redelivered += r.messages_redelivered;
        merged.broker_sessions_expired += r.broker_sessions_expired;
        merged.checkpoints_taken += r.checkpoints_taken;
        merged.violations_during_fault += r.violations_during_fault;
        merged.violations_post_heal += r.violations_post_heal;
        merged.time_to_reconverge_ms = merged.time_to_reconverge_ms.max(r.time_to_reconverge_ms);
        for (k, v) in r.metrics {
            *merged.metrics.entry(k).or_insert(0) += v;
        }
    }
    merged
}

/// Recompute link state from the baseline plus every active topology
/// fault, in spec order. Recompute-from-baseline (rather than undoing
/// individual faults) keeps overlapping partitions/degradations correct.
fn reapply_topology(
    tb: &mut Testbed,
    baseline: &LinkState,
    windows: &[FaultWindow],
    active: &[bool],
) {
    let topo = tb.sim().topology_mut();
    topo.restore_links(baseline.clone());
    for (i, w) in windows.iter().enumerate() {
        if !active[i] {
            continue;
        }
        match &w.kind {
            FaultKind::Partition { left, right } => {
                let (l, r) = FaultPlan::partition_nodes(left, right);
                topo.partition(&l, &r);
            }
            FaultKind::Degrade { loss, extra_delay_ms, extra_jitter_ms } => {
                topo.degrade_all(
                    *loss,
                    SimDuration::from_millis(*extra_delay_ms),
                    SimDuration::from_millis(*extra_jitter_ms),
                );
            }
            FaultKind::CrashDigi { .. } | FaultKind::NodeDown { .. } | FaultKind::CrashBroker => {}
        }
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod campaign {
    use super::*;

    fn sample() -> Scorecard {
        let mut availability = BTreeMap::new();
        availability.insert("L1".to_string(), 0.9432);
        availability.insert("R1".to_string(), 1.0);
        let mut restarts = BTreeMap::new();
        restarts.insert("L1".to_string(), 2u64);
        let mut metrics = BTreeMap::new();
        metrics.insert("kernel.events".to_string(), 400u64);
        metrics.insert("broker.publishes".to_string(), 25u64);
        Scorecard {
            plan: "demo".to_string(),
            convergence_ms: 2000,
            per_seed: vec![SeedReport {
                seed: 7,
                availability,
                restarts,
                messages_lost: 14,
                messages_redelivered: 9,
                broker_sessions_expired: 1,
                checkpoints_taken: 12,
                violations_during_fault: 3,
                violations_post_heal: 0,
                time_to_reconverge_ms: 840,
                metrics,
            }],
            errors: Vec::new(),
        }
    }

    #[test]
    fn digest_is_deterministic_and_content_sensitive() {
        let a = sample();
        let b = sample();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.digest().len(), 64);
        let mut c = sample();
        c.per_seed[0].messages_lost += 1;
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn clean_tracks_post_heal_only() {
        let mut s = sample();
        assert!(s.clean(), "during-fault violations are tolerated");
        s.per_seed[0].violations_post_heal = 1;
        assert!(!s.clean());
        assert_eq!(s.post_heal_violations(), 1);
    }

    #[test]
    fn json_is_canonical() {
        let s = sample();
        let j = s.to_json();
        assert!(j.starts_with("{\"plan\":\"demo\""), "{j}");
        assert!(j.contains("\"availability\":{\"L1\":0.943200,\"R1\":1.000000}"), "{j}");
        assert!(j.contains("\"clean\":true"));
        assert!(
            j.contains("\"metrics\":{\"broker.publishes\":25,\"kernel.events\":400}"),
            "{j}"
        );
        assert_eq!(j, s.to_json());
        assert!(j.ends_with("\"errors\":[]}"), "{j}");
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn seed_failures_are_canonical_and_digest_sensitive() {
        let clean = sample();
        let mut failed = sample();
        failed.errors.push(SeedFailure { seed: 13, error: "panicked: boom".into() });
        assert_ne!(clean.digest(), failed.digest());
        assert!(
            failed.to_json().contains("\"errors\":[{\"seed\":13,\"error\":\"panicked: boom\"}]"),
            "{}",
            failed.to_json()
        );
        assert!(failed.render().contains("seed  13: FAILED — panicked: boom"), "{}", failed.render());
        // failures don't count as post-heal violations — clean() is about
        // property verdicts; callers surface errors separately (exit 1).
        assert!(failed.clean());
    }
}
