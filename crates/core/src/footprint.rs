//! Handler footprint recording for static analysis.
//!
//! `dbox lint` wants to know, for every program, which model paths each
//! handler reads and writes — without running a full simulation. The
//! recorder here is a thread-local tap on the [`crate::program::SimCtx`] /
//! [`crate::program::LoopCtx`] accessors and on [`crate::atts::Atts`]: the
//! analyzer wraps a probe invocation in [`record`], the handler runs
//! normally against an ordinary model, and every field access routed
//! through the context APIs lands in the returned [`Footprint`].
//!
//! The tap is off by default (a single thread-local `Cell<bool>` check on
//! the hot path) and never enabled by the runtime, so simulation
//! performance is unaffected.
//!
//! Writes that bypass the context (direct `ctx.model.set` calls, as some
//! physical-fidelity handlers do) are invisible to the tap; the analyzer
//! complements it by diffing model fields around the probe.

use std::cell::{Cell, RefCell};
use std::collections::BTreeSet;

/// Paths touched by one handler invocation (or several, when merged).
///
/// Own-model paths are dotted strings exactly as the handler addressed them
/// (`"power.status"`, `"count"`); attachment accesses carry the attached
/// digi's name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Own-model paths read.
    pub reads: BTreeSet<String>,
    /// Own-model paths written (recorded before change-guards, so a
    /// same-value write still counts as write intent).
    pub writes: BTreeSet<String>,
    /// (attached digi name, path) pairs read.
    pub att_reads: BTreeSet<(String, String)>,
    /// (attached digi name, path) pairs written.
    pub att_writes: BTreeSet<(String, String)>,
    /// Number of events emitted.
    pub emits: usize,
}

impl Footprint {
    /// Fold another footprint into this one.
    pub fn merge(&mut self, other: Footprint) {
        self.reads.extend(other.reads);
        self.writes.extend(other.writes);
        self.att_reads.extend(other.att_reads);
        self.att_writes.extend(other.att_writes);
        self.emits += other.emits;
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
            && self.writes.is_empty()
            && self.att_reads.is_empty()
            && self.att_writes.is_empty()
            && self.emits == 0
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static CURRENT: RefCell<Footprint> = RefCell::new(Footprint::default());
}

#[inline]
fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

#[inline]
pub(crate) fn note_read(path: &str) {
    if enabled() {
        CURRENT.with(|c| {
            c.borrow_mut().reads.insert(path.to_string());
        });
    }
}

/// `note_read` for a `field` + `.suffix` pair — the format happens only
/// when the tap is on, keeping the disabled path allocation-free.
#[inline]
pub(crate) fn note_read_pair(field: &str, suffix: &str) {
    if enabled() {
        CURRENT.with(|c| {
            c.borrow_mut().reads.insert(format!("{field}.{suffix}"));
        });
    }
}

#[inline]
pub(crate) fn note_write_pair(field: &str, suffix: &str) {
    if enabled() {
        CURRENT.with(|c| {
            c.borrow_mut().writes.insert(format!("{field}.{suffix}"));
        });
    }
}

/// Is the tap currently on? Lets callers skip work that only feeds it.
#[inline]
pub(crate) fn is_recording() -> bool {
    enabled()
}

#[inline]
pub(crate) fn note_write(path: &str) {
    if enabled() {
        CURRENT.with(|c| {
            c.borrow_mut().writes.insert(path.to_string());
        });
    }
}

#[inline]
pub(crate) fn note_att_read(name: &str, path: &str) {
    if enabled() {
        CURRENT.with(|c| {
            c.borrow_mut().att_reads.insert((name.to_string(), path.to_string()));
        });
    }
}

#[inline]
pub(crate) fn note_att_write(name: &str, path: &str) {
    if enabled() {
        CURRENT.with(|c| {
            c.borrow_mut().att_writes.insert((name.to_string(), path.to_string()));
        });
    }
}

#[inline]
pub(crate) fn note_emit() {
    if enabled() {
        CURRENT.with(|c| {
            c.borrow_mut().emits += 1;
        });
    }
}

/// Record every context access made while `f` runs on this thread.
///
/// Recording is not re-entrant: a nested `record` call would fold into the
/// outer capture. The analyzer only ever probes one handler at a time.
pub fn record<F: FnOnce()>(f: F) -> Footprint {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            ENABLED.with(|e| e.set(false));
        }
    }

    CURRENT.with(|c| c.replace(Footprint::default()));
    ENABLED.with(|e| e.set(true));
    let guard = Guard;
    f();
    drop(guard);
    CURRENT.with(|c| c.replace(Footprint::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        note_read("x");
        note_write("y");
        let fp = record(|| {});
        assert!(fp.is_empty(), "accesses outside record() must not leak in");
    }

    #[test]
    fn captures_and_resets() {
        let fp = record(|| {
            note_read("power.status");
            note_write("intensity.status");
            note_att_read("O1", "triggered");
            note_att_write("L1", "power.status");
            note_emit();
            note_emit();
        });
        assert!(fp.reads.contains("power.status"));
        assert!(fp.writes.contains("intensity.status"));
        assert!(fp.att_reads.contains(&("O1".to_string(), "triggered".to_string())));
        assert!(fp.att_writes.contains(&("L1".to_string(), "power.status".to_string())));
        assert_eq!(fp.emits, 2);
        // the tap is off again
        note_read("leak");
        assert!(record(|| {}).is_empty());
    }

    #[test]
    fn recovers_after_panic() {
        let result = std::panic::catch_unwind(|| {
            record(|| {
                note_read("before-panic");
                panic!("handler blew up");
            })
        });
        assert!(result.is_err());
        // the drop guard disabled the tap
        note_read("after-panic");
        assert!(record(|| {}).is_empty());
    }

    #[test]
    fn merge_folds() {
        let mut a = record(|| {
            note_read("x");
            note_emit();
        });
        let b = record(|| {
            note_read("y");
            note_write("z");
        });
        a.merge(b);
        assert!(a.reads.contains("x") && a.reads.contains("y"));
        assert!(a.writes.contains("z"));
        assert_eq!(a.emits, 1);
    }
}
