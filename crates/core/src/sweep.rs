//! Deterministic multi-core sweep engine.
//!
//! Digibox's workloads are *sweeps*: the same scene run once per seed —
//! chaos campaigns, determinism digests, fidelity benches, property
//! sweeps. Every seed is fully independent (each run builds its own
//! [`crate::Testbed`], which owns its own kernel, broker, and trace log),
//! so a sweep parallelizes perfectly — as long as parallelism cannot
//! change the *result*.
//!
//! The engine guarantees that by construction:
//!
//! * **Per-worker kernels.** The task closure builds everything it needs
//!   *inside* the worker thread. Nothing simulation-side is shared, so the
//!   single-threaded determinism argument (same seed ⇒ same event order)
//!   holds unchanged per seed. `Testbed` is intentionally not `Send`; only
//!   the extracted, plain-data report crosses threads.
//! * **Canonical merge order.** Results are written into a slot indexed by
//!   the seed's position in the input slice and merged in that order, so
//!   the output is byte-identical for `jobs = 1` and `jobs = N` no matter
//!   how the OS schedules workers.
//! * **Panic isolation.** Each seed runs under `catch_unwind`; a panicking
//!   build or run yields a per-seed [`SeedError`] instead of poisoning the
//!   whole sweep.
//!
//! Scheduling is work-stealing: the seed list is sharded into contiguous
//! per-worker deques; a worker pops from the front of its own deque and,
//! when empty, steals from the back of the fullest other deque. Seeds with
//! skewed runtimes (a chaos seed that triggers many restarts can cost
//! several times the median) therefore rebalance instead of serializing
//! behind the slowest static chunk.
//!
//! This module is deliberately std-only and self-contained (no other core
//! modules): `scripts/standalone_sweep.rs` compiles it directly with bare
//! `rustc` to measure scaling where cargo has no registry access, and the
//! offline harness runs its unit tests the same way.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Why one seed of a sweep produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedError {
    /// The task returned an error (e.g. the testbed builder failed).
    Task(String),
    /// The task panicked; the payload message is captured.
    Panic(String),
}

impl fmt::Display for SeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeedError::Task(e) => write!(f, "{e}"),
            SeedError::Panic(m) => write!(f, "panicked: {m}"),
        }
    }
}

/// The outcome of one seed.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedRun<T> {
    /// The seed that ran.
    pub seed: u64,
    /// The run's value, or why it failed.
    pub result: Result<T, SeedError>,
}

/// A completed sweep: one entry per input seed, in input order.
#[derive(Debug)]
pub struct SweepOutcome<T> {
    /// Per-seed outcomes, in **canonical (input) order** — independent of
    /// worker count and scheduling.
    pub runs: Vec<SeedRun<T>>,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Seeds executed by a worker other than the one they were sharded to.
    pub steals: u64,
}

impl<T> SweepOutcome<T> {
    /// Successful results in seed order, dropping failed seeds.
    pub fn successes(self) -> Vec<T> {
        self.runs.into_iter().filter_map(|r| r.result.ok()).collect()
    }

    /// `(seed, error)` for every failed seed, in seed order.
    pub fn failures(&self) -> Vec<(u64, &SeedError)> {
        self.runs
            .iter()
            .filter_map(|r| r.result.as_ref().err().map(|e| (r.seed, e)))
            .collect()
    }
}

/// Resolve a `--jobs` style knob: `0` means one worker per available core.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// One work item: (result slot, seed).
type Item = (usize, u64);

struct Shard {
    queue: Mutex<VecDeque<Item>>,
}

/// Pop the next item for worker `w`: own front first, then steal from the
/// back of the fullest other shard.
fn claim(shards: &[Shard], w: usize, steals: &AtomicU64) -> Option<Item> {
    if let Some(item) = lock(&shards[w].queue).pop_front() {
        return Some(item);
    }
    loop {
        // Pick the victim with the most remaining work (len is a snapshot;
        // good enough — a stale victim just yields None and we rescan).
        let victim = shards
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != w)
            .map(|(i, s)| (lock(&s.queue).len(), i))
            .max()
            .filter(|(len, _)| *len > 0);
        let Some((_, v)) = victim else { return None };
        if let Some(item) = lock(&shards[v].queue).pop_back() {
            steals.fetch_add(1, Ordering::Relaxed);
            return Some(item);
        }
        // Lost the race for that victim's last item — rescan.
    }
}

/// Mutex lock that shrugs off poisoning: workers only panic inside
/// `catch_unwind`, never while holding a lock, but be robust anyway.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn run_one<T, F>(task: &F, seed: u64) -> Result<T, SeedError>
where
    F: Fn(u64) -> Result<T, String>,
{
    match catch_unwind(AssertUnwindSafe(|| task(seed))) {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(e)) => Err(SeedError::Task(e)),
        Err(payload) => Err(SeedError::Panic(panic_message(payload.as_ref()))),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `task` once per seed across `jobs` worker threads (`0` = one per
/// core) and merge the outcomes in canonical seed order.
///
/// The task must be self-contained per seed: build the testbed (or any
/// other state) *inside* the closure so each worker owns an isolated
/// kernel. Errors and panics are captured per seed; the sweep itself never
/// fails.
pub fn sweep<T, F>(seeds: &[u64], jobs: usize, task: F) -> SweepOutcome<T>
where
    T: Send,
    F: Fn(u64) -> Result<T, String> + Sync,
{
    let jobs = resolve_jobs(jobs).min(seeds.len()).max(1);
    if jobs == 1 {
        let runs = seeds
            .iter()
            .map(|&seed| SeedRun { seed, result: run_one(&task, seed) })
            .collect();
        return SweepOutcome { runs, jobs: 1, steals: 0 };
    }

    // Contiguous sharding (like chunked iteration) so neighbouring seeds —
    // which tend to cost alike — start on the same worker; stealing
    // handles the skew.
    let chunk = seeds.len().div_ceil(jobs);
    let shards: Vec<Shard> = seeds
        .chunks(chunk)
        .enumerate()
        .map(|(c, ss)| Shard {
            queue: Mutex::new(
                ss.iter().enumerate().map(|(i, &s)| (c * chunk + i, s)).collect(),
            ),
        })
        .collect();
    let slots: Vec<Mutex<Option<SeedRun<T>>>> =
        seeds.iter().map(|_| Mutex::new(None)).collect();
    let steals = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for w in 0..shards.len() {
            let (shards, slots, task, steals) = (&shards, &slots, &task, &steals);
            scope.spawn(move || {
                while let Some((slot, seed)) = claim(shards, w, steals) {
                    let run = SeedRun { seed, result: run_one(task, seed) };
                    *lock(&slots[slot]) = Some(run);
                }
            });
        }
    });

    let runs = slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every claimed slot is filled before its worker exits")
        })
        .collect();
    SweepOutcome { runs, jobs, steals: steals.load(Ordering::Relaxed) }
}

/// Infallible convenience wrapper with the bench crate's historical
/// contract: run `f` per seed on all cores, return plain results in seed
/// order, and propagate any per-seed panic to the caller.
pub fn parallel_sweep<R, F>(seeds: &[u64], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    sweep(seeds, 0, |seed| Ok(f(seed)))
        .runs
        .into_iter()
        .map(|run| match run.result {
            Ok(v) => v,
            Err(e) => panic!("sweep seed {} failed: {e}", run.seed),
        })
        .collect()
}

#[cfg(test)]
mod sweep_tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    /// A cheap deterministic per-seed "simulation".
    fn mix(seed: u64) -> u64 {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        x
    }

    #[test]
    fn merge_order_is_canonical_across_jobs() {
        let seeds: Vec<u64> = vec![9, 1, 5, 5, 42, 3, 1000, 7, 2, 8, 11, 13];
        let run = |jobs| sweep(&seeds, jobs, |s| Ok::<u64, String>(mix(s)));
        let one = run(1);
        assert_eq!(one.jobs, 1);
        for jobs in [2, 3, 8, 64] {
            let n = run(jobs);
            assert_eq!(n.runs, one.runs, "jobs={jobs} must merge identically");
            assert_eq!(n.jobs, jobs.min(seeds.len()));
        }
        // and the order is the input order, not sorted
        let got: Vec<u64> = one.runs.iter().map(|r| r.seed).collect();
        assert_eq!(got, seeds);
    }

    #[test]
    fn task_errors_are_per_seed() {
        let out = sweep(&[1, 2, 3], 2, |s| {
            if s == 2 {
                Err("no broker".to_string())
            } else {
                Ok(s * 10)
            }
        });
        assert_eq!(out.runs[0].result, Ok(10));
        assert_eq!(out.runs[1].result, Err(SeedError::Task("no broker".into())));
        assert_eq!(out.runs[2].result, Ok(30));
        assert_eq!(out.failures(), vec![(2, &SeedError::Task("no broker".into()))]);
        assert_eq!(out.successes(), vec![10, 30]);
    }

    #[test]
    fn panics_are_isolated_and_reported() {
        for jobs in [1, 2, 4] {
            let out = sweep(&[7, 13, 21], jobs, |s| {
                if s == 13 {
                    panic!("boom at {s}");
                }
                Ok::<u64, String>(s)
            });
            assert_eq!(out.runs.len(), 3, "jobs={jobs}");
            assert_eq!(out.runs[0].result, Ok(7));
            assert_eq!(out.runs[1].result, Err(SeedError::Panic("boom at 13".into())));
            assert_eq!(out.runs[2].result, Ok(21));
            assert_eq!(out.runs[1].result.as_ref().unwrap_err().to_string(), "panicked: boom at 13");
        }
    }

    #[test]
    fn skewed_work_is_stolen() {
        // First shard gets all the slow seeds; the other worker must come
        // steal or the sweep serializes.
        let seeds: Vec<u64> = (0..8).collect();
        let out = sweep(&seeds, 2, |s| {
            if s < 4 {
                std::thread::sleep(Duration::from_millis(10));
            }
            Ok::<u64, String>(s)
        });
        assert_eq!(out.jobs, 2);
        assert!(out.steals > 0, "fast worker should have stolen from the slow shard");
        let got: Vec<u64> = out.runs.iter().map(|r| r.result.clone().unwrap()).collect();
        assert_eq!(got, seeds);
    }

    #[test]
    fn every_seed_runs_exactly_once() {
        static COUNT: AtomicUsize = AtomicUsize::new(0);
        let seeds: Vec<u64> = (0..100).collect();
        let out = sweep(&seeds, 8, |s| {
            COUNT.fetch_add(1, Ordering::Relaxed);
            Ok::<u64, String>(s)
        });
        assert_eq!(COUNT.load(Ordering::Relaxed), 100);
        assert_eq!(out.runs.len(), 100);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let out = sweep::<u64, _>(&[], 4, |s| Ok(s));
        assert!(out.runs.is_empty());
        let out = sweep(&[5], 0, |s| Ok::<u64, String>(s));
        assert_eq!(out.runs.len(), 1);
        assert_eq!(out.jobs, 1, "one seed needs one worker regardless of cores");
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }

    #[test]
    fn parallel_sweep_keeps_seed_order() {
        let seeds: Vec<u64> = (0..32).rev().collect();
        let got = parallel_sweep(&seeds, mix);
        let want: Vec<u64> = seeds.iter().map(|&s| mix(s)).collect();
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "sweep seed 3 failed")]
    fn parallel_sweep_propagates_panics() {
        parallel_sweep(&[1, 2, 3], |s| {
            if s == 3 {
                panic!("kaboom");
            }
            s
        });
    }
}
