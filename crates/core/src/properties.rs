//! Scene properties: run-time checked conditions over model states
//! (paper §3.3: "developers can specify scene properties, conditions that
//! should be met in the scene ... expressed as k-v pairs, which Digibox
//! checks at run-time and reports any violations").
//!
//! A [`SceneProperty`] names a set of digis and a [`Temporal`] condition:
//!
//! * `Never(cond)` — the disallowed-state form from the paper: `cond` must
//!   not hold in any reachable state;
//! * `Always(cond)` — dual convenience form;
//! * `LeadsTo { premise, conclusion, within }` — the bounded temporal
//!   operator from the paper's future-work list (§3.3 cites AutoTap's LTL):
//!   whenever `premise` becomes true, `conclusion` must become true within
//!   the window, e.g. "when the room is occupied the lamp turns on within
//!   2 s".
//!
//! The checker is driven by the testbed on every model change and logs
//! violations to the trace.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use digibox_model::{Path, Value};
use digibox_net::{SimDuration, SimTime};

/// A comparison on one model field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Condition {
    /// Dotted path into the digi's fields, e.g. `power.status`.
    pub path: String,
    /// Comparison operator.
    pub op: Op,
    /// The value to compare against.
    pub value: Value,
}

/// Comparison operators for [`Condition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Op {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Numerically less than.
    Lt,
    /// Numerically less than or equal.
    Le,
    /// Numerically greater than.
    Gt,
    /// Numerically greater than or equal.
    Ge,
}

impl Condition {
    /// `path == value`.
    pub fn eq(path: &str, value: impl Into<Value>) -> Condition {
        Condition { path: path.to_string(), op: Op::Eq, value: value.into() }
    }

    /// `path != value`.
    pub fn ne(path: &str, value: impl Into<Value>) -> Condition {
        Condition { path: path.to_string(), op: Op::Ne, value: value.into() }
    }

    /// `path > value`.
    pub fn gt(path: &str, value: impl Into<Value>) -> Condition {
        Condition { path: path.to_string(), op: Op::Gt, value: value.into() }
    }

    /// `path < value`.
    pub fn lt(path: &str, value: impl Into<Value>) -> Condition {
        Condition { path: path.to_string(), op: Op::Lt, value: value.into() }
    }

    /// Evaluate against a field tree. Missing paths make the condition
    /// false (a device that hasn't reported yet violates nothing).
    pub fn holds(&self, fields: &Value) -> bool {
        let Ok(path) = Path::parse(&self.path) else {
            return false;
        };
        let Some(actual) = path.lookup(fields) else {
            return false;
        };
        match self.op {
            Op::Eq => actual.loose_eq(&self.value),
            Op::Ne => !actual.loose_eq(&self.value),
            Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                let (Some(a), Some(b)) = (actual.as_float(), self.value.as_float()) else {
                    return false;
                };
                match self.op {
                    Op::Lt => a < b,
                    Op::Le => a <= b,
                    Op::Gt => a > b,
                    Op::Ge => a >= b,
                    _ => unreachable!(),
                }
            }
        }
    }
}

/// A condition over a *named* digi's fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DigiCondition {
    /// The digi whose fields are inspected.
    pub digi: String,
    /// The field comparison.
    #[serde(flatten)]
    pub cond: Condition,
}

impl DigiCondition {
    /// A condition on the named digi.
    pub fn new(digi: &str, cond: Condition) -> DigiCondition {
        DigiCondition { digi: digi.to_string(), cond }
    }

    fn holds(&self, states: &BTreeMap<String, Value>) -> bool {
        states.get(&self.digi).map(|f| self.cond.holds(f)).unwrap_or(false)
    }
}

/// The temporal shape of a property.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Temporal {
    /// All conditions must never hold simultaneously (disallowed state).
    Never(Vec<DigiCondition>),
    /// All conditions must always hold simultaneously.
    Always(Vec<DigiCondition>),
    /// Whenever all premises hold, all conclusions must hold within the
    /// window (checked at the end of the window).
    LeadsTo {
        /// Conditions that arm the obligation when all hold.
        premise: Vec<DigiCondition>,
        /// Conditions that must hold to discharge it.
        conclusion: Vec<DigiCondition>,
        /// Deadline after the premise first holds.
        within: SimDuration,
    },
}

/// A named property over the testbed state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneProperty {
    /// Property name (appears in violations and scorecards).
    pub name: String,
    /// The temporal shape and its conditions.
    pub temporal: Temporal,
}

impl SceneProperty {
    /// The paper's example: "the lamp should always be turned off when the
    /// occupancy sensor is not triggered" is expressed as the disallowed
    /// state {lamp on, sensor untriggered}.
    pub fn never(name: &str, conds: Vec<DigiCondition>) -> SceneProperty {
        SceneProperty { name: name.to_string(), temporal: Temporal::Never(conds) }
    }

    /// An invariant: all conditions must hold at every update.
    pub fn always(name: &str, conds: Vec<DigiCondition>) -> SceneProperty {
        SceneProperty { name: name.to_string(), temporal: Temporal::Always(conds) }
    }

    /// A response property: premise → conclusion within a deadline.
    pub fn leads_to(
        name: &str,
        premise: Vec<DigiCondition>,
        conclusion: Vec<DigiCondition>,
        within: SimDuration,
    ) -> SceneProperty {
        SceneProperty { name: name.to_string(), temporal: Temporal::LeadsTo { premise, conclusion, within } }
    }
}

/// A detected violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Name of the violated property.
    pub property: String,
    /// Virtual time of detection.
    pub at: SimTime,
    /// Human-readable account of what held (or didn't).
    pub detail: String,
}

/// Tracks pending `LeadsTo` obligations.
#[derive(Debug, Clone)]
struct Obligation {
    property_index: usize,
    deadline: SimTime,
}

/// Evaluates properties against the evolving testbed state.
///
/// The testbed feeds it `(digi, fields)` updates; the checker keeps the
/// latest state per digi and reports violations. `LeadsTo` obligations are
/// armed when premises become true and resolved either by the conclusion
/// becoming true or by the deadline passing (checked on
/// [`PropertyChecker::advance`]).
#[derive(Debug, Clone, Default)]
pub struct PropertyChecker {
    properties: Vec<SceneProperty>,
    states: BTreeMap<String, Value>,
    obligations: Vec<Obligation>,
    /// Rising-edge tracking for premises.
    premise_was_true: Vec<bool>,
    violations: Vec<Violation>,
}

impl PropertyChecker {
    /// A checker with no properties registered.
    pub fn new() -> PropertyChecker {
        PropertyChecker::default()
    }

    /// Register a property to check on every update.
    pub fn add(&mut self, property: SceneProperty) {
        self.properties.push(property);
        self.premise_was_true.push(false);
    }

    /// The registered properties.
    pub fn properties(&self) -> &[SceneProperty] {
        &self.properties
    }

    /// Violations detected so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Drain and return the detected violations.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// Feed a state update and evaluate immediate (`Never`/`Always`)
    /// properties; arm or discharge `LeadsTo` obligations.
    pub fn observe(&mut self, now: SimTime, digi: &str, fields: Value) {
        self.states.insert(digi.to_string(), fields);
        self.evaluate(now);
    }

    /// Advance the clock: expire `LeadsTo` deadlines.
    pub fn advance(&mut self, now: SimTime) {
        let mut expired = Vec::new();
        self.obligations.retain(|ob| {
            if ob.deadline <= now {
                expired.push(ob.clone());
                false
            } else {
                true
            }
        });
        for ob in expired {
            let prop = &self.properties[ob.property_index];
            if let Temporal::LeadsTo { conclusion, .. } = &prop.temporal {
                if !conclusion.iter().all(|c| c.holds(&self.states)) {
                    self.violations.push(Violation {
                        property: prop.name.clone(),
                        at: now,
                        detail: format!(
                            "conclusion not reached within window (deadline {})",
                            ob.deadline
                        ),
                    });
                }
            }
        }
    }

    fn evaluate(&mut self, now: SimTime) {
        for (i, prop) in self.properties.iter().enumerate() {
            match &prop.temporal {
                Temporal::Never(conds) => {
                    if !conds.is_empty() && conds.iter().all(|c| c.holds(&self.states)) {
                        self.violations.push(Violation {
                            property: prop.name.clone(),
                            at: now,
                            detail: format!("disallowed state reached: {}", describe(conds)),
                        });
                    }
                }
                Temporal::Always(conds) => {
                    // Only meaningful once every referenced digi has
                    // reported at least once.
                    let all_known = conds.iter().all(|c| self.states.contains_key(&c.digi));
                    if all_known && !conds.iter().all(|c| c.holds(&self.states)) {
                        self.violations.push(Violation {
                            property: prop.name.clone(),
                            at: now,
                            detail: format!("invariant broken: {}", describe(conds)),
                        });
                    }
                }
                Temporal::LeadsTo { premise, conclusion, within } => {
                    let premise_true = !premise.is_empty() && premise.iter().all(|c| c.holds(&self.states));
                    let was = self.premise_was_true[i];
                    if premise_true && !was {
                        // Rising edge: either already satisfied or arm an
                        // obligation.
                        if !conclusion.iter().all(|c| c.holds(&self.states)) {
                            self.obligations.push(Obligation {
                                property_index: i,
                                deadline: now + *within,
                            });
                        }
                    }
                    self.premise_was_true[i] = premise_true;
                    // Discharge satisfied obligations for this property.
                    if conclusion.iter().all(|c| c.holds(&self.states)) {
                        self.obligations.retain(|ob| ob.property_index != i);
                    }
                }
            }
        }
    }
}

fn describe(conds: &[DigiCondition]) -> String {
    conds
        .iter()
        .map(|c| format!("{}.{} {:?} {}", c.digi, c.cond.path, c.cond.op, c.cond.value))
        .collect::<Vec<_>>()
        .join(" && ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_model::vmap;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn lamp_on() -> Value {
        vmap! { "power" => vmap! { "status" => "on" } }
    }

    fn lamp_off() -> Value {
        vmap! { "power" => vmap! { "status" => "off" } }
    }

    fn sensor(triggered: bool) -> Value {
        vmap! { "triggered" => triggered }
    }

    /// The paper's example property.
    fn lamp_off_when_empty() -> SceneProperty {
        SceneProperty::never(
            "lamp-off-when-empty",
            vec![
                DigiCondition::new("L1", Condition::eq("power.status", "on")),
                DigiCondition::new("O1", Condition::eq("triggered", false)),
            ],
        )
    }

    #[test]
    fn never_property_fires_on_disallowed_state() {
        let mut pc = PropertyChecker::new();
        pc.add(lamp_off_when_empty());
        pc.observe(at(1), "L1", lamp_off());
        pc.observe(at(2), "O1", sensor(false));
        assert!(pc.violations().is_empty(), "lamp off + empty room is fine");
        pc.observe(at(3), "L1", lamp_on());
        assert_eq!(pc.violations().len(), 1);
        assert_eq!(pc.violations()[0].property, "lamp-off-when-empty");
    }

    #[test]
    fn never_property_quiet_when_occupied() {
        let mut pc = PropertyChecker::new();
        pc.add(lamp_off_when_empty());
        pc.observe(at(1), "O1", sensor(true));
        pc.observe(at(2), "L1", lamp_on());
        assert!(pc.violations().is_empty());
    }

    #[test]
    fn always_property_waits_for_all_digis() {
        let mut pc = PropertyChecker::new();
        pc.add(SceneProperty::always(
            "sensor-present",
            vec![DigiCondition::new("O1", Condition::ne("triggered", Value::Null))],
        ));
        // O1 never reported: no violation yet
        pc.observe(at(1), "L1", lamp_on());
        assert!(pc.violations().is_empty());
        pc.observe(at(2), "O1", sensor(true));
        assert!(pc.violations().is_empty());
    }

    #[test]
    fn leads_to_satisfied_in_time() {
        let mut pc = PropertyChecker::new();
        pc.add(SceneProperty::leads_to(
            "light-follows-presence",
            vec![DigiCondition::new("O1", Condition::eq("triggered", true))],
            vec![DigiCondition::new("L1", Condition::eq("power.status", "on"))],
            SimDuration::from_millis(2000),
        ));
        pc.observe(at(0), "L1", lamp_off());
        pc.observe(at(100), "O1", sensor(true)); // premise rises, obligation armed
        pc.observe(at(900), "L1", lamp_on()); // conclusion reached in time
        pc.advance(at(5000));
        assert!(pc.violations().is_empty());
    }

    #[test]
    fn leads_to_violated_on_deadline() {
        let mut pc = PropertyChecker::new();
        pc.add(SceneProperty::leads_to(
            "light-follows-presence",
            vec![DigiCondition::new("O1", Condition::eq("triggered", true))],
            vec![DigiCondition::new("L1", Condition::eq("power.status", "on"))],
            SimDuration::from_millis(2000),
        ));
        pc.observe(at(0), "L1", lamp_off());
        pc.observe(at(100), "O1", sensor(true));
        pc.advance(at(2100));
        assert_eq!(pc.violations().len(), 1);
        assert_eq!(pc.violations()[0].property, "light-follows-presence");
    }

    #[test]
    fn leads_to_rearms_on_next_rising_edge() {
        let mut pc = PropertyChecker::new();
        pc.add(SceneProperty::leads_to(
            "p",
            vec![DigiCondition::new("O1", Condition::eq("triggered", true))],
            vec![DigiCondition::new("L1", Condition::eq("power.status", "on"))],
            SimDuration::from_millis(1000),
        ));
        pc.observe(at(0), "L1", lamp_off());
        pc.observe(at(0), "O1", sensor(true));
        pc.advance(at(1500)); // first violation
        pc.observe(at(1600), "O1", sensor(false)); // premise falls
        pc.observe(at(1700), "O1", sensor(true)); // rises again
        pc.advance(at(3000)); // second violation
        assert_eq!(pc.violations().len(), 2);
    }

    #[test]
    fn numeric_comparisons() {
        let c = Condition::gt("temp.status", 30.0);
        assert!(c.holds(&vmap! { "temp" => vmap! { "status" => 31.5 } }));
        assert!(!c.holds(&vmap! { "temp" => vmap! { "status" => 29 } }));
        // int/float interop
        let c = Condition::eq("n", 3);
        assert!(c.holds(&vmap! { "n" => 3.0 }));
        // missing path is false
        assert!(!c.holds(&Value::map()));
        // non-numeric against numeric op is false
        let c = Condition::lt("s", 5);
        assert!(!c.holds(&vmap! { "s" => "str" }));
    }

    #[test]
    fn take_violations_drains() {
        let mut pc = PropertyChecker::new();
        pc.add(lamp_off_when_empty());
        pc.observe(at(1), "L1", lamp_on());
        pc.observe(at(2), "O1", sensor(false));
        assert_eq!(pc.take_violations().len(), 1);
        assert!(pc.violations().is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let p = lamp_off_when_empty();
        let json = serde_json::to_string(&p).unwrap();
        let back: SceneProperty = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
