//! MQTT topic conventions for digi traffic.
//!
//! Every digi `<name>` owns a topic subtree:
//!
//! * `digibox/digi/<name>/model` — retained; full model (meta + fields) as
//!   JSON, republished on every change. Scenes mirror their attached
//!   children from here; applications subscribe here for status.
//! * `digibox/digi/<name>/intent` — inbound commands: a JSON map of
//!   `path → value` applied to the `intent` halves (what `dbox edit` and
//!   applications send).
//! * `digibox/digi/<name>/set` — inbound coordination: a serialized
//!   [`digibox_model::Patch`] applied verbatim to the fields (what parent
//!   scenes send).
//! * `digibox/digi/<name>/event` — event-generator output, for
//!   observability and app triggers.
//! * `digibox/lwt/<name>` — last-will: fired by the broker when the digi
//!   dies unexpectedly.

/// Model channel: the digi's published state.
pub fn model(name: &str) -> String {
    format!("digibox/digi/{name}/model")
}

/// Intent channel: requested state changes.
pub fn intent(name: &str) -> String {
    format!("digibox/digi/{name}/intent")
}

/// Set channel: direct field writes from scenes/tools.
pub fn set(name: &str) -> String {
    format!("digibox/digi/{name}/set")
}

/// Event channel: one-shot notifications.
pub fn event(name: &str) -> String {
    format!("digibox/digi/{name}/event")
}

/// Last-will topic, fired by the broker when the digi dies unexpectedly.
pub fn lwt(name: &str) -> String {
    format!("digibox/lwt/{name}")
}

/// Extract the digi name from any `digibox/digi/<name>/...` topic.
pub fn digi_of(topic: &str) -> Option<&str> {
    let rest = topic.strip_prefix("digibox/digi/")?;
    let (name, _) = rest.split_once('/')?;
    Some(name)
}

/// Which channel a `digibox/digi/...` topic addresses.
pub fn channel_of(topic: &str) -> Option<&str> {
    let rest = topic.strip_prefix("digibox/digi/")?;
    let (_, channel) = rest.split_once('/')?;
    Some(channel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_shapes() {
        assert_eq!(model("L1"), "digibox/digi/L1/model");
        assert_eq!(intent("L1"), "digibox/digi/L1/intent");
        assert_eq!(set("Room"), "digibox/digi/Room/set");
        assert_eq!(event("O1"), "digibox/digi/O1/event");
        assert_eq!(lwt("O1"), "digibox/lwt/O1");
    }

    #[test]
    fn parse_back() {
        assert_eq!(digi_of("digibox/digi/L1/model"), Some("L1"));
        assert_eq!(channel_of("digibox/digi/L1/model"), Some("model"));
        assert_eq!(digi_of("digibox/lwt/L1"), None);
        assert_eq!(digi_of("unrelated"), None);
    }
}
