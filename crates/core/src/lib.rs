//! # digibox-core
//!
//! **Digibox**: a scene-centric prototyping environment for IoT
//! applications (Fu et al., HotNets'22), reimplemented as a deterministic
//! in-process system in Rust.
//!
//! Digibox's two core abstractions are the **mock** (a simulated device:
//! model + event generator + simulator + logger) and the **scene** (a
//! controller that *ensembles* attached mocks and nested scenes, generating
//! scene-level events and keeping the mocks' correlated state consistent).
//! Applications talk to mocks over MQTT and REST exactly as they would talk
//! to real devices, which is what makes prototypes transferable.
//!
//! The crate layers:
//!
//! * [`DigiProgram`] — the programming model for device and scene logic
//!   (the Rust equivalent of the paper's Python `dbox` library, Fig. 4/5):
//!   an event-generation handler run on a configurable loop and a
//!   simulation handler run on model change.
//! * [`DigiService`] — the microservice wrapper: each digi runs as its own
//!   service on the simulated network, speaking MQTT to the broker and
//!   HTTP to applications.
//! * [`Testbed`] — the runtime: simulated cluster + control plane + broker
//!   + trace log, orchestrating digi pods (paper §4).
//! * [`Dbox`] — the Table-1 command API (`run`, `stop`, `check`, `watch`,
//!   `attach`, `edit`, `commit`, `push`, `pull`, `replay`).
//! * [`properties`] — scene properties: disallowed-state invariants and
//!   bounded temporal operators, checked online against the trace.
//! * [`AppClient`] — the application side: a REST/MQTT client endpoint
//!   with latency accounting, used by example apps and the §4
//!   microbenchmarks.
//! * [`sweep`] — the deterministic multi-core sweep engine: seed-sharded
//!   work-stealing execution with canonical-order merge, so campaigns and
//!   benches scale across cores without changing a single digest.
//! * [`islands`] — deterministic space-parallel execution *inside* one
//!   run: one event kernel per scene island, synchronized at conservative
//!   lookahead barriers, with cross-island datagrams merged in canonical
//!   order so every digest is worker-count independent.

#![warn(missing_docs)]

mod appclient;
mod atts;
pub mod campaign;
mod catalog;
pub mod cell;
pub mod checkpoint;
mod dbox;
mod digi;
pub mod footprint;
pub mod islands;
pub mod pool;
pub mod program;
pub mod properties;
pub mod suggest;
pub mod sweep;
mod testbed;
pub mod topics;

pub use appclient::{AppClient, AppEvent};
pub use atts::Atts;
pub use campaign::{Campaign, Scorecard, SeedReport};
pub use cell::{CellStats, DigiCell, Outbox};
pub use checkpoint::{CheckpointInfo, CheckpointStore};
pub use catalog::{Catalog, CatalogError};
pub use dbox::Dbox;
pub use digi::{DigiService, DigiStats};
pub use footprint::Footprint;
pub use islands::{IslandEnv, IslandSpec, IslandsConfig, IslandsRun};
pub use pool::{Arena, DigiArena, DigiId, DigiPool, PoolStats};
pub use program::{DigiProgram, LoopCtx, SimCtx};
pub use properties::{Condition, PropertyChecker, SceneProperty, Temporal};
pub use sweep::{parallel_sweep, SeedError, SeedRun, SweepOutcome};
pub use testbed::{FidelityMode, Testbed, TestbedConfig, TestbedError};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, TestbedError>;
