//! The digi microservice: one mock or scene running as its own service on
//! the simulated network — the paper's deployment model (every digi is a
//! pod). The digi logic itself lives in [`DigiCell`]; this host owns the
//! MQTT session, the REST endpoint, and all timing (loop ticks, actuation
//! delays, load-dependent service overhead).

use std::cell::RefCell;
use std::collections::HashMap; // keyed lookup only; `dbox audit` (DH0002) checks every iteration site
use std::rc::Rc;

use bytes::Bytes;

use digibox_broker::{ClientEvent, MqttConn, QoS};
use digibox_model::{Model, Path, Value};
use digibox_net::httpx::{Request, Response};
use digibox_net::transport::{ReliableEndpoint, TransportEvent};
use digibox_net::{Addr, Datagram, Prng, Service, ServiceHandle, Sim, SimDuration, TimerToken};
use digibox_trace::TraceLog;

use crate::cell::{DigiCell, Outbox};
use crate::program::DigiProgram;
use crate::topics;

/// Timer token for the event-generation loop.
const TOKEN_LOOP: TimerToken = 1;
/// Namespace bit for delayed-actuation timers.
const TOKEN_ACTUATION_BIT: TimerToken = 1 << 61;
/// Namespace bit for delayed REST responses (service overhead).
const TOKEN_RESPONSE_BIT: TimerToken = 1 << 60;
/// Token space of the HTTP reliable endpoint (MQTT conn uses space 1).
const HTTP_TOKEN_SPACE: u16 = 2;

/// Per-digi counters (cell counters + service-level REST count).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DigiStats {
    /// `on_loop` invocations.
    pub loops_run: u64,
    /// One-shot events emitted.
    pub events_emitted: u64,
    /// Model publications.
    pub model_publishes: u64,
    /// Intents applied to the model.
    pub intents_applied: u64,
    /// Set-channel patches applied to this digi.
    pub set_patches_applied: u64,
    /// Set-channel patches sent to attachments.
    pub set_patches_sent: u64,
    /// REST requests served.
    pub rest_requests: u64,
    /// Scene simulation handler invocations.
    pub sim_handler_runs: u64,
}

/// The service hosting one digi.
pub struct DigiService {
    cell: DigiCell,
    addr: Addr,
    conn: MqttConn,
    http: ReliableEndpoint,
    /// Per-message processing overhead of this digi's node (scaled by node
    /// load at request time).
    service_overhead: SimDuration,
    overhead_rng: Prng,
    pending_actuations: HashMap<TimerToken, Vec<(Path, Value)>>,
    next_actuation_token: u64,
    pending_responses: HashMap<TimerToken, (Addr, Bytes)>,
    next_response_token: u64,
    rest_requests: u64,
    /// Set when the MQTT session died (transport exhausted retries to the
    /// broker, e.g. during a partition); the next loop tick re-connects
    /// and re-subscribes, so coordination resumes after a heal.
    reconnect_pending: bool,
    broker_losses: u64,
}

impl DigiService {
    /// Build a digi service. `model` should be freshly instantiated from
    /// the program's schema (plus meta overrides).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        addr: Addr,
        broker: Addr,
        model: Model,
        program: Box<dyn DigiProgram>,
        rng: Prng,
        log: TraceLog,
        scene_logic_enabled: bool,
        service_overhead: SimDuration,
    ) -> ServiceHandle<DigiService> {
        let name = model.meta.name.clone();
        let overhead_rng = rng.split_str("service-overhead");
        Rc::new(RefCell::new(DigiService {
            conn: MqttConn::new(addr, broker, &format!("digi/{name}")),
            http: ReliableEndpoint::new(addr).with_space(HTTP_TOKEN_SPACE),
            cell: DigiCell::new(model, program, rng, log, scene_logic_enabled),
            addr,
            service_overhead,
            overhead_rng,
            pending_actuations: HashMap::new(),
            next_actuation_token: 0,
            pending_responses: HashMap::new(),
            next_response_token: 0,
            rest_requests: 0,
            reconnect_pending: false,
            broker_losses: 0,
        }))
    }

    /// The digi's instance name.
    pub fn name(&self) -> &str {
        self.cell.name()
    }

    /// The service's bound address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The current model.
    pub fn model(&self) -> &Model {
        self.cell.model()
    }

    /// Combined cell + service counters.
    pub fn stats(&self) -> DigiStats {
        let c = self.cell.stats();
        DigiStats {
            loops_run: c.loops_run,
            events_emitted: c.events_emitted,
            model_publishes: c.model_publishes,
            intents_applied: c.intents_applied,
            set_patches_applied: c.set_patches_applied,
            set_patches_sent: c.set_patches_sent,
            rest_requests: self.rest_requests,
            sim_handler_runs: c.sim_handler_runs,
        }
    }

    /// Whether the hosted program is a scene.
    pub fn is_scene(&self) -> bool {
        self.cell.is_scene()
    }

    /// How many times this digi's broker session died and was re-created.
    pub fn broker_losses(&self) -> u64 {
        self.broker_losses
    }

    /// The digi's type name.
    pub fn kind(&self) -> &str {
        self.cell.kind()
    }

    /// Pause/resume event generation (used by replay and test cases; the
    /// paper's way is setting `managed`, which this complements).
    pub fn set_generation_enabled(&mut self, enabled: bool) {
        self.cell.set_generation_enabled(enabled);
    }

    /// Toggle the `managed` flag (paper §3.3: "pause event generation in
    /// the scene, e.g. setting building's managed field").
    pub fn set_managed(&mut self, managed: bool) {
        self.cell.set_managed(managed);
    }

    /// Direct model mutation for replay: force fields and reprocess.
    pub fn force_fields(&mut self, sim: &mut Sim, fields: Value) {
        let mut out = Outbox::new();
        self.cell.force_fields(sim.now(), fields, &mut out);
        self.flush(sim, out);
    }

    /// Attach a child digi: mirror it and subscribe to its model topic.
    pub fn attach_child(&mut self, sim: &mut Sim, child: &str, kind: &str) {
        let topic = self.cell.attach_child(sim.now(), child, kind);
        self.conn.subscribe(sim, &[(&topic, QoS::AtMostOnce)]);
        // The child's retained model will arrive and trigger coordination.
    }

    /// Detach a child digi.
    pub fn detach_child(&mut self, sim: &mut Sim, child: &str) {
        let topic = self.cell.detach_child(sim.now(), child);
        self.conn.unsubscribe(sim, &[&topic]);
    }

    fn interval(&self) -> SimDuration {
        SimDuration::from_millis(self.cell.interval_ms())
    }

    /// (Re-)establish the MQTT session: connect with the last-will,
    /// subscribe the command topics, and re-subscribe every attached
    /// child's model topic — the broker re-delivers retained child models
    /// on subscribe, which re-mirrors the scene after a session loss.
    fn connect_session(&mut self, sim: &mut Sim) {
        let will = Some((topics::lwt(self.cell.name()), Bytes::from_static(b"offline")));
        self.conn.connect(sim, will);
        let [intent_topic, set_topic] = self.cell.command_topics();
        self.conn.subscribe(
            sim,
            &[(&intent_topic, QoS::AtLeastOnce), (&set_topic, QoS::AtLeastOnce)],
        );
        let children = self.cell.model().meta.attach.clone();
        for child in children {
            let topic = topics::model(&child);
            self.conn.subscribe(sim, &[(&topic, QoS::AtMostOnce)]);
        }
    }

    fn flush(&mut self, sim: &mut Sim, out: Outbox) {
        for (topic, payload, retain) in out.messages {
            self.conn.publish(sim, &topic, payload, QoS::AtMostOnce, retain);
        }
    }

    fn handle_mqtt_message(&mut self, sim: &mut Sim, topic: &str, payload: &[u8]) {
        let now = sim.now();
        let mut out = Outbox::new();
        if topic == topics::intent(self.cell.name()) {
            self.cell.log_message_in(now, topic, payload);
            let updates = DigiCell::parse_intents(payload);
            let delay_ms = self.cell.actuation_delay_ms();
            if delay_ms == 0 {
                self.cell.apply_intents(now, updates, &mut out);
            } else {
                // Hardware actuation latency (paper §6): the intent lands
                // after the configured delay.
                let token = TOKEN_ACTUATION_BIT | self.next_actuation_token;
                self.next_actuation_token += 1;
                self.pending_actuations.insert(token, updates);
                sim.set_timer(self.addr, SimDuration::from_millis(delay_ms), token);
            }
        } else if topic == topics::set(self.cell.name()) {
            self.cell.log_message_in(now, topic, payload);
            self.cell.handle_set(now, payload, &mut out);
        } else if let Some(child) = topics::digi_of(topic) {
            if topics::channel_of(topic) == Some("model") && self.cell.has_child(child) {
                let child = child.to_string();
                self.cell.observe_child(now, &child, payload, &mut out);
            }
        }
        self.flush(sim, out);
    }

    /// Serve the REST device API with load-dependent service time.
    fn handle_http(&mut self, sim: &mut Sim, peer: Addr, payload: &Bytes) {
        self.rest_requests += 1;
        let mut out = Outbox::new();
        let response = match Request::decode(payload) {
            Ok(req) => self.cell.route_http(sim.now(), &req, &mut out),
            Err(e) => Response::bad_request(&e.to_string()),
        };
        self.flush(sim, out);
        let bytes = response.encode();
        if self.service_overhead == SimDuration::ZERO {
            self.http.send(sim, peer, bytes);
        } else {
            // Request-processing time grows with node load: a node crowded
            // with mock containers serves each request more slowly (the
            // effect behind the paper's 20 ms → 60 ms growth from the
            // 50-mock laptop to the 1000-mock cluster).
            let load = sim.node_load(self.addr.node) as f64;
            let factor = (1.0 + load / 64.0) * self.overhead_rng.range_f64(0.85, 1.25);
            let delay = SimDuration::from_nanos(
                (self.service_overhead.as_nanos() as f64 * factor) as u64,
            );
            let token = TOKEN_RESPONSE_BIT | self.next_response_token;
            self.next_response_token += 1;
            self.pending_responses.insert(token, (peer, bytes));
            sim.set_timer(self.addr, delay, token);
        }
    }

    fn pump(&mut self, sim: &mut Sim) {
        while let Some(ev) = self.conn.poll() {
            match ev {
                ClientEvent::Message { topic, payload, .. } => {
                    self.handle_mqtt_message(sim, &topic, &payload);
                }
                ClientEvent::BrokerLost => {
                    self.broker_losses += 1;
                    self.reconnect_pending = true;
                }
                ClientEvent::Connected { .. } => {}
                ClientEvent::SubAck { .. }
                | ClientEvent::PubAck { .. }
                | ClientEvent::PubComp { .. } => {}
            }
        }
        while let Some(ev) = self.http.poll() {
            match ev {
                TransportEvent::Delivered { peer, payload } => {
                    self.handle_http(sim, peer, &payload);
                }
                TransportEvent::PeerFailed { .. } => {}
            }
        }
    }
}

impl Service for DigiService {
    fn on_start(&mut self, sim: &mut Sim) {
        // Session with last-will so watchers learn about crashes.
        self.connect_session(sim);
        let mut out = Outbox::new();
        self.cell.start(sim.now(), &mut out);
        self.flush(sim, out);
        sim.set_timer(self.addr, self.interval(), TOKEN_LOOP);
    }

    fn on_datagram(&mut self, sim: &mut Sim, dg: Datagram) {
        if dg.src == self.conn.broker() {
            self.conn.on_datagram(sim, dg);
        } else {
            self.http.on_datagram(sim, dg);
        }
        self.pump(sim);
    }

    fn on_timer(&mut self, sim: &mut Sim, token: TimerToken) {
        if self.conn.on_timer(sim, token) {
            self.pump(sim);
            return;
        }
        if self.http.on_timer(sim, token) {
            self.pump(sim);
            return;
        }
        if token == TOKEN_LOOP {
            if self.reconnect_pending {
                self.reconnect_pending = false;
                self.connect_session(sim);
                // The broker's retained copy of our model may predate
                // whatever happened while the session was down.
                let mut out = Outbox::new();
                self.cell.republish_model(sim.now(), &mut out);
                self.flush(sim, out);
            }
            let mut out = Outbox::new();
            self.cell.tick(sim.now(), &mut out);
            self.flush(sim, out);
            sim.set_timer(self.addr, self.interval(), TOKEN_LOOP);
        } else if token & TOKEN_ACTUATION_BIT != 0 {
            if let Some(updates) = self.pending_actuations.remove(&token) {
                let mut out = Outbox::new();
                self.cell.apply_intents(sim.now(), updates, &mut out);
                self.flush(sim, out);
            }
        } else if token & TOKEN_RESPONSE_BIT != 0 {
            if let Some((peer, bytes)) = self.pending_responses.remove(&token) {
                self.http.send(sim, peer, bytes);
            }
        }
    }
}
