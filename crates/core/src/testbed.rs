//! The testbed runtime (paper §4): a simulated cluster running the broker
//! and every digi as a microservice, plus the control plane, trace log and
//! property checker.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use digibox_broker::Broker;
use digibox_model::{Meta, Model, Value};
use digibox_net::{Addr, NodeId, ServiceHandle, Sim, SimConfig, SimDuration, SimTime, Topology};
use digibox_obs as obs;
use digibox_orchestrator::{ControlPlane, ControlPlaneConfig, PodAction, PodPhase, PodSpec};
use digibox_registry::{InstanceDecl, Repository, SetupManifest};
use digibox_trace::{ReplaySchedule, TraceLog};

use crate::appclient::AppClient;
use crate::catalog::{Catalog, CatalogError};
use crate::checkpoint::CheckpointStore;
use crate::digi::DigiService;
use crate::properties::{PropertyChecker, SceneProperty};
use crate::topics;

/// Simulation fidelity (paper, Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FidelityMode {
    /// Each device simulated in isolation — scene controllers do not
    /// coordinate (today's device simulators).
    DeviceCentric,
    /// Scenes ensemble their mocks (Digibox's contribution).
    #[default]
    SceneCentric,
    /// Scene-centric plus simple physical models (thermal, light) in the
    /// device programs that support them.
    Physical,
}

/// Testbed construction parameters.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Master seed: RNG streams for links, control plane and every digi
    /// split from it.
    pub seed: u64,
    /// Mock-centric vs scene-centric simulation (paper §5).
    pub fidelity: FidelityMode,
    /// Whether the trace log records (disable only in overhead benches).
    pub logging: bool,
    /// Kernel event-storm watchdog threshold (events per virtual
    /// millisecond; 0 disables). See `digibox_net::SimConfig`.
    pub storm_threshold: u64,
    /// Snapshot every digi's model this often so a supervised restart can
    /// resume from the last checkpoint instead of cold-starting. Snapshots
    /// are pure reads (no sim events, no RNG draws), so they do not
    /// perturb determinism. `None` disables checkpointing.
    pub checkpoint_every: Option<SimDuration>,
    /// Broker idle-session expiry (see `Broker::set_session_timeout`).
    /// Required for partition recovery: probing a dead/unreachable client
    /// clears the broker's stale session *and* transport state, letting
    /// the client reconnect cleanly after the partition heals. `None`
    /// (default) keeps the broker timer-free so quiesced testbeds drain.
    pub broker_session_timeout: Option<SimDuration>,
    /// Whether the deterministic observability layer (`digibox_obs`)
    /// records metrics and spans for this testbed. Metrics never perturb
    /// the simulation — disabling them changes no event order, RNG draw or
    /// digest — so the default is on; turn off only to measure recording
    /// overhead. Enabling resets the thread's collector, so each testbed
    /// starts from a zeroed registry.
    pub metrics: bool,
    /// Island-scoped placement (`core::islands`, DESIGN.md §15): when set,
    /// this testbed owns exactly one node of a shared multi-node topology.
    /// The broker binds at `(home, 1883)` instead of the first node, and
    /// every *other* node is cordoned at construction so the control plane
    /// never schedules a pod onto a foreign island's machine. `None`
    /// (default) keeps the classic whole-cluster behaviour.
    pub home_node: Option<u32>,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            seed: 42,
            fidelity: FidelityMode::SceneCentric,
            logging: true,
            storm_threshold: digibox_net::SimConfig::default().storm_threshold,
            checkpoint_every: Some(SimDuration::from_secs(5)),
            broker_session_timeout: None,
            metrics: true,
            home_node: None,
        }
    }
}

/// Testbed errors.
#[derive(Debug)]
pub enum TestbedError {
    /// A type name or program id failed to resolve.
    Catalog(CatalogError),
    /// No digi with this name is running.
    UnknownDigi(String),
    /// The digi exists but its program is not a scene.
    NotAScene(String),
    /// The orchestrator's store rejected an operation.
    Orchestrator(digibox_orchestrator::StoreError),
    /// The type registry rejected an operation.
    Registry(digibox_registry::RegistryError),
    /// A model operation failed.
    Model(digibox_model::ModelError),
    /// Anything else that prevented setup.
    Setup(String),
}

impl fmt::Display for TestbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestbedError::Catalog(e) => write!(f, "{e}"),
            TestbedError::UnknownDigi(n) => write!(f, "no digi named {n:?}"),
            TestbedError::NotAScene(n) => write!(f, "{n:?} is not a scene"),
            TestbedError::Orchestrator(e) => write!(f, "{e}"),
            TestbedError::Registry(e) => write!(f, "{e}"),
            TestbedError::Model(e) => write!(f, "{e}"),
            TestbedError::Setup(m) => write!(f, "setup error: {m}"),
        }
    }
}

impl std::error::Error for TestbedError {}

impl From<CatalogError> for TestbedError {
    fn from(e: CatalogError) -> Self {
        TestbedError::Catalog(e)
    }
}
impl From<digibox_orchestrator::StoreError> for TestbedError {
    fn from(e: digibox_orchestrator::StoreError) -> Self {
        TestbedError::Orchestrator(e)
    }
}
impl From<digibox_registry::RegistryError> for TestbedError {
    fn from(e: digibox_registry::RegistryError) -> Self {
        TestbedError::Registry(e)
    }
}
impl From<digibox_model::ModelError> for TestbedError {
    fn from(e: digibox_model::ModelError) -> Self {
        TestbedError::Model(e)
    }
}

struct DigiEntry {
    handle: ServiceHandle<DigiService>,
    addr: Addr,
    pod: String,
    kind: String,
    version: String,
    managed: bool,
    params: BTreeMap<String, Value>,
}

/// A crashed digi awaiting its supervised restart.
struct PendingRestart {
    due: SimTime,
    name: String,
    kind: String,
    params: BTreeMap<String, Value>,
    managed: bool,
    /// Children the digi had attached when it died.
    attach: Vec<String>,
    /// Last checkpointed field tree, restored after `Program::init`.
    checkpoint: Option<Value>,
    /// Failed placement attempts so far (node cordoned, cluster full…).
    attempts: u32,
}

/// Give up re-placing a crashed digi after this many failed attempts;
/// with per-attempt backoff this spans well past any realistic outage.
const MAX_RESTART_ATTEMPTS: u32 = 120;

/// Pre-interned observability handles for the control-plane and
/// checkpoint paths the testbed itself drives.
struct TestbedObs {
    restarts: obs::CounterId,
    restart_retries: obs::CounterId,
    restart_abandoned: obs::CounterId,
    broker_restarts: obs::CounterId,
    checkpoint_passes: obs::CounterId,
    checkpoint_snapshots: obs::CounterId,
    replay_schedules: obs::CounterId,
    replay_steps: obs::CounterId,
    replay_resumed: obs::CounterId,
    digis: obs::GaugeId,
    pending_restarts: obs::GaugeId,
    f_restart: obs::FrameId,
    f_checkpoint: obs::FrameId,
}

impl TestbedObs {
    fn new() -> TestbedObs {
        TestbedObs {
            restarts: obs::counter("control.restarts"),
            restart_retries: obs::counter("control.restart_retries"),
            restart_abandoned: obs::counter("control.restart_abandoned"),
            broker_restarts: obs::counter("control.broker_restarts"),
            checkpoint_passes: obs::counter("checkpoint.passes"),
            checkpoint_snapshots: obs::counter("checkpoint.snapshots"),
            replay_schedules: obs::counter("replay.schedules"),
            replay_steps: obs::counter("replay.steps"),
            replay_resumed: obs::counter("replay.resumed_states"),
            digis: obs::gauge("testbed.digis"),
            pending_restarts: obs::gauge("testbed.pending_restarts"),
            f_restart: obs::frame("control.restart"),
            f_checkpoint: obs::frame("checkpoint.write"),
        }
    }
}

/// The Digibox testbed.
pub struct Testbed {
    sim: Sim,
    control: Rc<RefCell<ControlPlane>>,
    broker: ServiceHandle<Broker>,
    broker_addr: Addr,
    catalog: Catalog,
    log: TraceLog,
    digis: BTreeMap<String, DigiEntry>,
    checker: PropertyChecker,
    /// Trace cursor for feeding the property checker.
    checker_cursor: Option<u64>,
    next_digi_port: u16,
    next_app_port: u16,
    /// The developer-console MQTT session used by `edit`/`replay`.
    operator: Option<ServiceHandle<AppClient>>,
    /// Pools created via [`Testbed::run_pool`]; checkpoint passes snapshot
    /// their members from the pools' dense model columns.
    pools: Vec<ServiceHandle<crate::DigiPool>>,
    pending_restarts: Vec<PendingRestart>,
    /// When a killed broker's replacement rebinds (None = broker is up).
    pending_broker_restart: Option<SimTime>,
    checkpoints: CheckpointStore,
    /// Next periodic checkpoint pass (None when checkpointing is off).
    next_checkpoint: Option<SimTime>,
    storm_logged: bool,
    obs: TestbedObs,
    config: TestbedConfig,
}

impl Testbed {
    /// Build a testbed over an explicit topology; the broker binds on the
    /// first node (port 1883, like EMQX).
    pub fn new(topology: Topology, catalog: Catalog, config: TestbedConfig) -> Testbed {
        assert!(!topology.is_empty(), "testbed needs at least one node");
        // Enable/disable recording before anything interns keys, and zero
        // the thread's collector so metrics never leak across testbeds
        // (sweep workers reuse threads for many seeds).
        obs::set_enabled(config.metrics);
        obs::reset();
        let nodes: Vec<(NodeId, _)> = topology
            .node_ids()
            .into_iter()
            .map(|id| (id, topology.node(id).expect("listed node exists").clone()))
            .collect();
        let broker_node = match config.home_node {
            Some(home) => {
                let id = NodeId(home);
                assert!(
                    nodes.iter().any(|(n, _)| *n == id),
                    "home_node {home} is not in the topology"
                );
                id
            }
            None => nodes[0].0,
        };
        let mut sim = Sim::new(
            topology,
            SimConfig {
                seed: config.seed,
                storm_threshold: config.storm_threshold,
                ..Default::default()
            },
        );
        let control = Rc::new(RefCell::new(ControlPlane::new(
            &nodes,
            ControlPlaneConfig { seed: config.seed ^ 0x5EED, ..Default::default() },
        )));
        if config.home_node.is_some() {
            let mut cp = control.borrow_mut();
            for (id, _) in &nodes {
                if *id != broker_node {
                    cp.set_cordon(*id, true);
                }
            }
        }
        let broker_addr = Addr::new(broker_node, 1883);
        let broker = Broker::new(broker_addr);
        if let Some(timeout) = config.broker_session_timeout {
            broker.borrow_mut().set_session_timeout(Some(timeout));
        }
        sim.bind(broker_addr, broker.clone());
        let log = if config.logging { TraceLog::new() } else { TraceLog::disabled() };
        let next_checkpoint = config.checkpoint_every.map(|every| SimTime::ZERO + every);
        Testbed {
            sim,
            control,
            broker,
            broker_addr,
            catalog,
            log,
            digis: BTreeMap::new(),
            checker: PropertyChecker::new(),
            checker_cursor: None,
            next_digi_port: 10_000,
            next_app_port: 50_000,
            operator: None,
            pools: Vec::new(),
            pending_restarts: Vec::new(),
            pending_broker_restart: None,
            checkpoints: CheckpointStore::new(),
            next_checkpoint,
            storm_logged: false,
            obs: TestbedObs::new(),
            config,
        }
    }

    /// The paper's local environment: one laptop node.
    pub fn laptop(catalog: Catalog, config: TestbedConfig) -> Testbed {
        Testbed::new(Topology::single_laptop(), catalog, config)
    }

    /// The paper's cloud environment: `n` m5.xlarge nodes in one VPC.
    pub fn ec2(n: u32, catalog: Catalog, config: TestbedConfig) -> Testbed {
        Testbed::new(Topology::ec2_cluster(n), catalog, config)
    }

    // ---- accessors ----

    /// The underlying simulation kernel.
    pub fn sim(&mut self) -> &mut Sim {
        &mut self.sim
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The shared trace log.
    pub fn log(&self) -> &TraceLog {
        &self.log
    }

    /// Where the broker is bound.
    pub fn broker_addr(&self) -> Addr {
        self.broker_addr
    }

    /// The broker service handle.
    pub fn broker(&self) -> &ServiceHandle<Broker> {
        &self.broker
    }

    /// The type catalog this testbed instantiates from.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The configuration the testbed was built with.
    pub fn config(&self) -> &TestbedConfig {
        &self.config
    }

    /// Names of all running digis, sorted.
    pub fn digi_names(&self) -> Vec<String> {
        self.digis.keys().cloned().collect()
    }

    /// Number of running digis.
    pub fn digi_count(&self) -> usize {
        self.digis.len()
    }

    /// The service address of a digi's REST API.
    pub fn digi_addr(&self, name: &str) -> crate::Result<Addr> {
        self.digis
            .get(name)
            .map(|d| d.addr)
            .ok_or_else(|| TestbedError::UnknownDigi(name.to_string()))
    }

    /// Borrow a digi's service handle (tests, advanced drivers).
    pub fn digi(&self, name: &str) -> crate::Result<ServiceHandle<DigiService>> {
        self.digis
            .get(name)
            .map(|d| d.handle.clone())
            .ok_or_else(|| TestbedError::UnknownDigi(name.to_string()))
    }

    /// Cluster utilization: (pods, requested cpu millis, cpu capacity
    /// millis) across all nodes — the "compute resource budget" of the
    /// paper's §6 efficiency question.
    pub fn cluster_utilization(&self) -> (u32, u64, u64) {
        let control = self.control.borrow();
        let sched = control.scheduler();
        let mut pods = 0;
        let mut used = 0;
        let mut cap = 0;
        for (_, alloc) in sched.nodes() {
            pods += alloc.pods;
            used += alloc.cpu_allocated;
            cap += alloc.spec.cpu_millis;
        }
        (pods, used, cap)
    }

    /// Pod phase of a digi (orchestrator view). Works for crashed digis
    /// too (their pod records persist through the backoff window).
    pub fn pod_phase(&self, name: &str) -> Option<PodPhase> {
        let pod = match self.digis.get(name) {
            Some(e) => e.pod.clone(),
            None => format!("digi-{}", name.to_lowercase()),
        };
        self.control.borrow().phase(&pod)
    }

    /// The checkpoint store (chaos scorecards and tests inspect it).
    pub fn checkpoints(&self) -> &CheckpointStore {
        &self.checkpoints
    }

    /// `(digi name, checkpoint digest hex)` for every checkpointed digi,
    /// sorted by name — the byte-comparable checkpoint witness used by the
    /// determinism tests (serial vs island runs must agree exactly).
    pub fn checkpoint_digests(&self) -> Vec<(String, String)> {
        self.checkpoints
            .names()
            .into_iter()
            .filter_map(|n| {
                let d = self.checkpoints.info(&n)?.digest.to_string();
                Some((n, d))
            })
            .collect()
    }

    /// How many times a digi's MQTT session was lost (transport-level
    /// broker failure observed by the digi), if it is running.
    pub fn broker_losses(&self, name: &str) -> Option<u64> {
        self.digis.get(name).map(|e| e.handle.borrow().broker_losses())
    }

    /// Crashed digis still waiting out their restart backoff.
    pub fn pending_restart_count(&self) -> usize {
        self.pending_restarts.len()
    }

    /// Snapshot the observability registry for this testbed (`dbox stats`,
    /// `dbox profile`, chaos scorecards). Late-bound gauges — values that
    /// only make sense at observation time, like population counts — are
    /// mirrored in before the freeze so the snapshot is self-contained.
    /// Returns an empty snapshot when `TestbedConfig::metrics` is off.
    pub fn obs_snapshot(&mut self) -> obs::Snapshot {
        if obs::enabled() {
            obs::set(self.obs.digis, self.digis.len() as i64);
            obs::set(self.obs.pending_restarts, self.pending_restarts.len() as i64);
            obs::clock(self.sim.now().as_nanos());
        }
        obs::snapshot()
    }

    // ---- dbox run/stop ----

    /// `dbox run <Type> <name>` — create and start a digi.
    pub fn run(&mut self, kind: &str, name: &str) -> crate::Result<()> {
        self.run_with(kind, name, BTreeMap::new(), false)
    }

    /// `dbox run` with meta params and managed flag.
    pub fn run_with(
        &mut self,
        kind: &str,
        name: &str,
        params: BTreeMap<String, Value>,
        managed: bool,
    ) -> crate::Result<()> {
        self.start_digi(kind, name, params, managed, None, false)
    }

    /// The shared start path. `checkpoint` (a restored field tree) is
    /// applied after `Program::init`, so a supervised restart resumes from
    /// the last snapshot instead of cold-starting. `pod_exists` requeues
    /// the crashed pod through the control plane instead of creating a new
    /// one, preserving its restart count (and thus its backoff history).
    fn start_digi(
        &mut self,
        kind: &str,
        name: &str,
        params: BTreeMap<String, Value>,
        managed: bool,
        checkpoint: Option<Value>,
        pod_exists: bool,
    ) -> crate::Result<()> {
        if self.digis.contains_key(name) {
            return Err(TestbedError::Setup(format!("digi {name:?} already running")));
        }
        let mut program = self.catalog.make(kind)?;
        let schema = program.schema();
        let mut model = schema.instantiate(name);
        model.meta = Meta {
            kind: kind.to_string(),
            version: program.version().to_string(),
            name: name.to_string(),
            managed: match self.config.fidelity {
                // Device-centric: every mock generates independently.
                FidelityMode::DeviceCentric => managed && program.is_scene(),
                _ => managed,
            },
            attach: Vec::new(),
            params: {
                let mut p = params.clone();
                if self.config.fidelity == FidelityMode::Physical {
                    p.entry("fidelity".to_string()).or_insert(Value::from("physical"));
                }
                p
            },
        };
        program.init(&mut model);
        if let Some(fields) = checkpoint {
            model.set_fields(fields)?;
        }

        // Pod through the control plane.
        let pod_name = format!("digi-{}", name.to_lowercase());
        if pod_exists {
            self.control.borrow_mut().requeue(&pod_name);
        } else {
            let pod_spec = if program.is_scene() {
                PodSpec::scene(&pod_name, program.program_id())
            } else {
                PodSpec::mock(&pod_name, program.program_id())
            };
            self.control.borrow_mut().create_pod(pod_spec)?;
        }
        let actions = self.control.borrow_mut().reconcile();
        let mut placed_node = None;
        let mut start_delay = SimDuration::ZERO;
        for action in actions {
            match action {
                PodAction::Start { pod, node, delay, .. } if pod == pod_name => {
                    placed_node = Some(node);
                    start_delay = delay;
                }
                PodAction::MarkUnschedulable { pod } if pod == pod_name => {
                    return Err(TestbedError::Setup(format!(
                        "pod {pod} unschedulable: cluster is full"
                    )));
                }
                _ => {}
            }
        }
        let node = placed_node
            .ok_or_else(|| TestbedError::Setup(format!("pod {pod_name} was not placed")))?;

        let addr = Addr::new(node, self.next_digi_port);
        self.next_digi_port = self.next_digi_port.checked_add(1).expect("port space exhausted");
        let overhead = self
            .sim
            .topology()
            .node(node)
            .map(|n| n.service_overhead)
            .unwrap_or(SimDuration::ZERO);
        let scene_logic = self.config.fidelity != FidelityMode::DeviceCentric;
        let rng = self.sim.rng_for(&format!("digi/{name}/{}", model.meta.seed()));
        let handle = DigiService::new(
            addr,
            self.broker_addr,
            model,
            program,
            rng,
            self.log.clone(),
            scene_logic,
            overhead,
        );
        self.digis.insert(
            name.to_string(),
            DigiEntry {
                handle: handle.clone(),
                addr,
                pod: pod_name.clone(),
                kind: kind.to_string(),
                version: handle.borrow().model().meta.version.clone(),
                managed,
                params,
            },
        );
        // Container start: bind after the startup delay.
        let control = self.control.clone();
        self.sim.call_after(start_delay, move |sim| {
            sim.bind(addr, handle);
            control.borrow_mut().mark_running(&pod_name);
        });
        Ok(())
    }

    /// `dbox stop <name>` — stop and remove a digi.
    pub fn stop(&mut self, name: &str) -> crate::Result<()> {
        let entry = self
            .digis
            .remove(name)
            .ok_or_else(|| TestbedError::UnknownDigi(name.to_string()))?;
        self.control.borrow_mut().delete_pod(&entry.pod)?;
        self.sim.unbind(entry.addr);
        self.checkpoints.forget(name);
        self.log.lifecycle(self.sim.now(), name, "stopped", "");
        // Detach from any scene that references it.
        let parents: Vec<String> = self
            .digis
            .iter()
            .filter(|(_, e)| e.handle.borrow().model().meta.attach.iter().any(|c| c == name))
            .map(|(n, _)| n.clone())
            .collect();
        for parent in parents {
            let handle = self.digis[&parent].handle.clone();
            handle.borrow_mut().detach_child(&mut self.sim, name);
        }
        Ok(())
    }

    /// Kill a digi's process without deleting the pod (fault injection).
    /// The control plane backs the pod off (exponentially, capped) and the
    /// testbed restarts it from its last checkpoint — like a crashed
    /// container whose volume survived. The pod record persists so
    /// consecutive crashes accumulate restart counts (and backoff).
    pub fn kill(&mut self, name: &str) -> crate::Result<()> {
        let entry = self
            .digis
            .get(name)
            .ok_or_else(|| TestbedError::UnknownDigi(name.to_string()))?;
        let addr = entry.addr;
        let pod = entry.pod.clone();
        let kind = entry.kind.clone();
        let params = entry.params.clone();
        let managed = entry.managed;
        self.sim.unbind(addr);
        self.log.lifecycle(self.sim.now(), name, "killed", "");
        let attach: Vec<String> =
            self.digis[name].handle.borrow().model().meta.attach.clone();
        self.digis.remove(name);
        self.control.borrow_mut().report_exit(&pod);
        let restart_delay = self.control.borrow().restart_delay_for(&pod);
        let checkpoint = self.checkpoints.restore(name);
        // Rebuild outside the event (deterministic order): schedule a
        // testbed-level restart marker the driver must apply.
        self.pending_restarts.push(PendingRestart {
            due: self.sim.now() + restart_delay,
            name: name.to_string(),
            kind,
            params,
            managed,
            attach,
            checkpoint,
            attempts: 0,
        });
        Ok(())
    }

    /// Fail a whole node: cordon it so nothing reschedules onto it, then
    /// kill every digi it hosts. Their pods back off and — once the
    /// backoff elapses — reschedule onto surviving nodes, restoring from
    /// their checkpoints. Restore capacity with [`Testbed::restore_node`].
    pub fn fail_node(&mut self, node: NodeId) -> crate::Result<()> {
        self.control.borrow_mut().set_cordon(node, true);
        self.log.lifecycle(self.sim.now(), "testbed", "node-down", &format!("node {}", node.0));
        let victims: Vec<String> = self
            .digis
            .iter()
            .filter(|(_, e)| e.addr.node == node)
            .map(|(n, _)| n.clone())
            .collect();
        for name in victims {
            self.kill(&name)?;
        }
        Ok(())
    }

    /// Uncordon a failed node; pending restarts that were unplaceable
    /// retry on their backoff schedule and can land here again.
    pub fn restore_node(&mut self, node: NodeId) {
        self.control.borrow_mut().set_cordon(node, false);
        self.log.lifecycle(self.sim.now(), "testbed", "node-up", &format!("node {}", node.0));
    }

    /// Kill the broker pod (fault injection): durable sessions are
    /// exported into the checkpoint store (`broker-session/<client>`
    /// refs), the endpoint unbinds, and after `outage` a fresh broker
    /// imports them and rebinds on the same address. Clients ride out the
    /// outage on their transport retries: once those exhaust they observe
    /// `BrokerLost` and redial, and because their sessions are persistent
    /// the resumed broker replays in-flight QoS 1/2 handshakes — no
    /// message is lost or duplicated across the crash. Calling this while
    /// a restart is already pending only extends the outage.
    pub fn kill_broker(&mut self, outage: SimDuration) {
        let now = self.sim.now();
        if self.pending_broker_restart.is_none() {
            let snaps = self.broker.borrow().export_sessions();
            self.checkpoints.save_broker_sessions(&snaps);
            self.sim.unbind(self.broker_addr);
            self.log.lifecycle(
                now,
                "broker",
                "killed",
                &format!("{} session(s) exported", snaps.len()),
            );
        }
        let due = now + outage;
        self.pending_broker_restart =
            Some(self.pending_broker_restart.map_or(due, |d| d.max(due)));
    }

    /// Whether the broker is currently down (killed, replacement not yet
    /// bound).
    pub fn broker_down(&self) -> bool {
        self.pending_broker_restart.is_some()
    }

    fn apply_broker_restart(&mut self) {
        let Some(due) = self.pending_broker_restart else {
            return;
        };
        let now = self.sim.now();
        if now < due {
            return;
        }
        self.pending_broker_restart = None;
        let broker = Broker::new(self.broker_addr);
        if let Some(timeout) = self.config.broker_session_timeout {
            broker.borrow_mut().set_session_timeout(Some(timeout));
        }
        let snaps = self.checkpoints.restore_broker_sessions();
        let n = snaps.len();
        broker.borrow_mut().import_sessions(snaps);
        self.sim.bind(self.broker_addr, broker.clone());
        self.broker = broker;
        obs::inc(self.obs.broker_restarts);
        self.log.lifecycle(now, "broker", "restarted", &format!("{n} session(s) imported"));
    }

    // ---- attach / edit / check ----

    /// `dbox attach <child> <parent>` — attach a digi to a scene.
    pub fn attach(&mut self, child: &str, parent: &str) -> crate::Result<()> {
        let child_kind = self
            .digis
            .get(child)
            .ok_or_else(|| TestbedError::UnknownDigi(child.to_string()))?
            .kind
            .clone();
        let parent_entry = self
            .digis
            .get(parent)
            .ok_or_else(|| TestbedError::UnknownDigi(parent.to_string()))?;
        if !parent_entry.handle.borrow().is_scene() {
            return Err(TestbedError::NotAScene(parent.to_string()));
        }
        let handle = parent_entry.handle.clone();
        handle.borrow_mut().attach_child(&mut self.sim, child, &child_kind);
        Ok(())
    }

    /// `dbox attach -d` — detach.
    pub fn detach(&mut self, child: &str, parent: &str) -> crate::Result<()> {
        let handle = self
            .digis
            .get(parent)
            .ok_or_else(|| TestbedError::UnknownDigi(parent.to_string()))?
            .handle
            .clone();
        handle.borrow_mut().detach_child(&mut self.sim, child);
        Ok(())
    }

    /// `dbox check <name>` — snapshot a digi's model.
    pub fn check(&mut self, name: &str) -> crate::Result<Model> {
        Ok(self.digi(name)?.borrow().model().clone())
    }

    /// `dbox edit <name>` — set intent fields through the real message
    /// path (MQTT publish to the digi's intent topic).
    pub fn edit(&mut self, name: &str, updates: Value) -> crate::Result<()> {
        self.digi_addr(name)?; // existence check
        let topic = topics::intent(name);
        let payload = serde_json::to_vec(&updates.to_json()).expect("values serialize");
        // Publish directly through the broker service (the testbed acts as
        // the developer's console, which in the paper is a CLI process with
        // its own MQTT session).
        self.publish_as_operator(&topic, payload);
        Ok(())
    }

    /// Toggle a digi's `managed` flag (pausing/resuming its own event
    /// generation).
    pub fn set_managed(&mut self, name: &str, managed: bool) -> crate::Result<()> {
        let handle = self.digi(name)?;
        handle.borrow_mut().set_managed(managed);
        if let Some(e) = self.digis.get_mut(name) {
            e.managed = managed;
        }
        Ok(())
    }

    fn publish_as_operator(&mut self, topic: &str, payload: Vec<u8>) {
        // Route through the broker like any client: a lightweight operator
        // session bound lazily at a reserved port on the broker's node.
        let op_addr = Addr::new(self.broker_addr.node, 65_000);
        if !self.sim.is_bound(op_addr) {
            let client = AppClient::with_mqtt(op_addr, self.broker_addr, "dbox-operator");
            self.sim.bind(op_addr, client.clone());
            self.operator = Some(client);
            self.sim.run_for(SimDuration::from_millis(5)); // let CONNECT settle
        }
        let client = self.operator.clone().expect("operator bound above");
        client.borrow_mut().publish(&mut self.sim, topic, payload, digibox_broker::QoS::AtLeastOnce);
    }

    // ---- pooled (FaaS-style) execution, paper §6 ----

    /// Run `names` instances of `kind` inside **one** pooled executor
    /// service (one pod, one broker session, one timer wheel) instead of
    /// one microservice each — the consolidation the paper's §6 "efficient
    /// simulation" question asks about. Pooled digis speak the same topics
    /// and REST routes (`/digi/<name>/...`) as dedicated ones, but are not
    /// addressable through `check`/`edit`/`attach` (use the returned
    /// handle). The `e9_faas_pooling` bench compares both modes.
    pub fn run_pool(
        &mut self,
        kind: &str,
        names: &[String],
        params: BTreeMap<String, Value>,
        managed: bool,
    ) -> crate::Result<(ServiceHandle<crate::DigiPool>, Addr)> {
        // One pod for the whole pool; resources scale sub-linearly with
        // occupancy (the whole point of consolidation).
        let pod_name = format!("pool-{}", self.next_digi_port);
        let pod_spec = PodSpec::scene(&pod_name, "faas/pool")
            .with_resources(10 + names.len() as u64 / 4, 16 + names.len() as u64 / 8);
        self.control.borrow_mut().create_pod(pod_spec)?;
        let actions = self.control.borrow_mut().reconcile();
        let mut placed = None;
        let mut start_delay = SimDuration::ZERO;
        for action in actions {
            match action {
                PodAction::Start { pod, node, delay, .. } if pod == pod_name => {
                    placed = Some(node);
                    start_delay = delay;
                }
                PodAction::MarkUnschedulable { pod } if pod == pod_name => {
                    return Err(TestbedError::Setup(format!("pool pod {pod} unschedulable")));
                }
                _ => {}
            }
        }
        let node =
            placed.ok_or_else(|| TestbedError::Setup(format!("pool pod {pod_name} not placed")))?;
        let addr = Addr::new(node, self.next_digi_port);
        self.next_digi_port = self.next_digi_port.checked_add(1).expect("port space exhausted");
        let overhead = self
            .sim
            .topology()
            .node(node)
            .map(|n| n.service_overhead)
            .unwrap_or(SimDuration::ZERO);
        let pool = crate::DigiPool::new(addr, self.broker_addr, overhead);

        // Materialize the cells' models/programs now; host them at start.
        let mut members = Vec::new();
        for name in names {
            let mut program = self.catalog.make(kind)?;
            let schema = program.schema();
            let mut model = schema.instantiate(name);
            model.meta = Meta {
                kind: kind.to_string(),
                version: program.version().to_string(),
                name: name.clone(),
                managed,
                attach: Vec::new(),
                params: params.clone(),
            };
            program.init(&mut model);
            let rng = self.sim.rng_for(&format!("digi/{name}/{}", model.meta.seed()));
            members.push((model, program, rng));
        }
        let scene_logic = self.config.fidelity != FidelityMode::DeviceCentric;
        let log = self.log.clone();
        let control = self.control.clone();
        let handle = pool.clone();
        self.sim.call_after(start_delay, move |sim| {
            sim.bind(addr, handle.clone());
            for (model, program, rng) in members {
                handle.borrow_mut().host(sim, model, program, rng, log.clone(), scene_logic);
            }
            control.borrow_mut().mark_running(&pod_name);
        });
        self.pools.push(pool.clone());
        Ok((pool, addr))
    }

    // ---- applications ----

    /// Create an application endpoint on `node` (REST only).
    pub fn app(&mut self, node: NodeId) -> ServiceHandle<AppClient> {
        let addr = Addr::new(node, self.next_app_port);
        self.next_app_port = self.next_app_port.checked_add(1).expect("app port space exhausted");
        let client = AppClient::new(addr);
        self.sim.bind(addr, client.clone());
        client
    }

    /// Create an application endpoint with an MQTT session.
    pub fn app_with_mqtt(&mut self, node: NodeId, client_id: &str) -> ServiceHandle<AppClient> {
        let addr = Addr::new(node, self.next_app_port);
        self.next_app_port = self.next_app_port.checked_add(1).expect("app port space exhausted");
        let client = AppClient::with_mqtt(addr, self.broker_addr, client_id);
        self.sim.bind(addr, client.clone());
        client
    }

    /// Create an application endpoint with a durable MQTT session
    /// (`clean_session = false`): it survives broker restarts and redials
    /// automatically on `BrokerLost`.
    pub fn app_with_persistent_mqtt(
        &mut self,
        node: NodeId,
        client_id: &str,
    ) -> ServiceHandle<AppClient> {
        let addr = Addr::new(node, self.next_app_port);
        self.next_app_port = self.next_app_port.checked_add(1).expect("app port space exhausted");
        let client = AppClient::with_persistent_mqtt(addr, self.broker_addr, client_id);
        self.sim.bind(addr, client.clone());
        client
    }

    // ---- time ----

    /// Advance virtual time, then feed new model changes to the property
    /// checker. Pauses at restart and checkpoint marks along the way.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.sim.now() + span;
        loop {
            let next_restart = self.pending_restarts.iter().map(|r| r.due).min();
            let next_mark = [next_restart, self.next_checkpoint, self.pending_broker_restart]
                .into_iter()
                .flatten()
                .min();
            match next_mark {
                Some(t) if t <= deadline => {
                    self.sim.run_until(t);
                    self.apply_broker_restart();
                    self.apply_due_restarts();
                    self.take_due_checkpoints();
                }
                _ => {
                    self.sim.run_until(deadline);
                    break;
                }
            }
        }
        self.poll_storm();
        self.poll_properties();
    }

    /// Drain the event queue completely. NOTE: do not combine with
    /// `broker_session_timeout` — an armed keep-alive sweep re-arms
    /// forever, so the queue never drains; drive with `run_for` instead.
    pub fn run_to_quiescence(&mut self) {
        loop {
            self.sim.run_to_completion();
            if self.pending_restarts.is_empty() && self.pending_broker_restart.is_none() {
                break;
            }
            let t = self
                .pending_restarts
                .iter()
                .map(|r| r.due)
                .chain(self.pending_broker_restart)
                .min()
                .expect("nonempty");
            self.sim.run_until(t);
            self.apply_broker_restart();
            self.apply_due_restarts();
        }
        self.poll_storm();
        self.poll_properties();
    }

    fn apply_due_restarts(&mut self) {
        let now = self.sim.now();
        let due: Vec<PendingRestart> = {
            let (due, rest): (Vec<_>, Vec<_>) =
                std::mem::take(&mut self.pending_restarts).into_iter().partition(|r| r.due <= now);
            self.pending_restarts = rest;
            due
        };
        for r in due {
            let _span = obs::enter(self.obs.f_restart);
            match self.start_digi(&r.kind, &r.name, r.params.clone(), r.managed, r.checkpoint.clone(), true)
            {
                Ok(()) => {
                    obs::inc(self.obs.restarts);
                    let detail =
                        if r.checkpoint.is_some() { "from checkpoint" } else { "cold start" };
                    self.log.lifecycle(now, &r.name, "restarted", detail);
                    // Re-attach the digi's own children; their retained
                    // models re-mirror the scene on subscribe.
                    for child in &r.attach {
                        let _ = self.attach(child, &r.name);
                    }
                    // Re-attach to any parent scene that still references
                    // it (idempotent; refreshes the parent's mirror once
                    // the restarted digi republishes its model).
                    let parents: Vec<String> = self
                        .digis
                        .iter()
                        .filter(|(n, e)| {
                            n.as_str() != r.name
                                && e.handle.borrow().model().meta.attach.iter().any(|c| *c == r.name)
                        })
                        .map(|(n, _)| n.clone())
                        .collect();
                    for parent in parents {
                        let _ = self.attach(&r.name, &parent);
                    }
                }
                Err(_) if r.attempts < MAX_RESTART_ATTEMPTS => {
                    // Placement failed (node cordoned, cluster full…):
                    // retry on the pod's backoff schedule.
                    obs::inc(self.obs.restart_retries);
                    let pod = format!("digi-{}", r.name.to_lowercase());
                    let delay = self.control.borrow().restart_delay_for(&pod);
                    self.pending_restarts.push(PendingRestart {
                        due: now + delay,
                        attempts: r.attempts + 1,
                        ..r
                    });
                }
                Err(e) => {
                    obs::inc(self.obs.restart_abandoned);
                    self.log.lifecycle(now, &r.name, "restart-abandoned", &e.to_string());
                }
            }
        }
    }

    /// Snapshot every running digi's model into the checkpoint store now.
    ///
    /// Dedicated digis are read through their service handles; pooled
    /// digis are read from their pool's dense model columns (a columnar
    /// scan, not a walk of N separate field trees).
    pub fn checkpoint_all(&mut self) {
        let _span = obs::enter(self.obs.f_checkpoint);
        obs::inc(self.obs.checkpoint_passes);
        let now = self.sim.now();
        for (name, entry) in &self.digis {
            let service = entry.handle.borrow();
            let model = service.model();
            self.checkpoints.save(name, model.fields(), model.revision(), now);
            obs::inc(self.obs.checkpoint_snapshots);
        }
        let pools = self.pools.clone();
        for pool in &pools {
            let p = pool.borrow();
            for name in p.names() {
                let (Some(fields), Some(model)) = (p.snapshot_fields(name), p.model(name))
                else {
                    continue;
                };
                self.checkpoints.save(name, &fields, model.revision(), now);
                obs::inc(self.obs.checkpoint_snapshots);
            }
        }
    }

    /// Restore a pooled digi's fields from its last checkpoint (taken by
    /// [`Testbed::checkpoint_all`] out of the pool's model columns). The
    /// cell keeps its slab slot and tick group. Returns `false` when the
    /// digi has no checkpoint or is not hosted in any pool.
    pub fn restore_pooled(&mut self, name: &str) -> bool {
        let Some(fields) = self.checkpoints.restore(name) else {
            return false;
        };
        let pools = self.pools.clone();
        for pool in &pools {
            if pool.borrow().id_of(name).is_some() {
                return pool.borrow_mut().restore_fields(&mut self.sim, name, fields);
            }
        }
        false
    }

    fn take_due_checkpoints(&mut self) {
        let (Some(every), Some(due)) = (self.config.checkpoint_every, self.next_checkpoint) else {
            return;
        };
        let now = self.sim.now();
        if now < due {
            return;
        }
        self.checkpoint_all();
        let mut next = due;
        while next <= now {
            next = next + every;
        }
        self.next_checkpoint = Some(next);
    }

    // ---- properties ----

    /// Register a scene property, checked online.
    pub fn add_property(&mut self, property: SceneProperty) {
        self.checker.add(property);
    }

    /// All violations detected so far.
    pub fn violations(&self) -> Vec<digibox_trace::TraceRecord> {
        self.log.violations()
    }

    /// Whether the kernel's event-storm watchdog tripped — almost always a
    /// scene whose coordination never converges (see
    /// `digibox_net::SimConfig::storm_threshold`).
    pub fn storm_detected(&self) -> bool {
        self.sim.storm_detected()
    }

    fn poll_storm(&mut self) {
        if !self.storm_logged && self.sim.storm_detected() {
            self.storm_logged = true;
            self.log.violation(
                self.sim.now(),
                "testbed",
                "kernel/event-storm",
                "event storm detected: a coordination loop is not converging                  (check that scene handlers are pure functions of their model state)",
            );
        }
    }

    fn poll_properties(&mut self) {
        if self.checker.properties().is_empty() {
            return;
        }
        let records = self.log.since(self.checker_cursor);
        if let Some(last) = records.last() {
            self.checker_cursor = Some(last.seq);
        }
        for r in &records {
            if let digibox_trace::RecordKind::ModelChange { fields, .. } = &r.kind {
                self.checker.observe(r.ts, &r.source, fields.clone());
            }
        }
        self.checker.advance(self.sim.now());
        for v in self.checker.take_violations() {
            self.log.violation(v.at, "testbed", &v.property, &v.detail);
        }
    }

    // ---- commit / push / pull / recreate ----

    /// `dbox commit` — snapshot the current setup as a manifest plus the
    /// type packages it needs.
    pub fn snapshot(&self, setup_name: &str) -> crate::Result<SetupManifest> {
        let manifest = self.describe(setup_name);
        manifest.validate().map_err(TestbedError::Setup)?;
        Ok(manifest)
    }

    /// The current ensemble as a manifest, **without** validating it.
    /// `dbox lint` uses this: a lint pass must see a broken ensemble as-is
    /// and report every finding, not stop at the first validation error.
    pub fn describe(&self, setup_name: &str) -> SetupManifest {
        let mut manifest = SetupManifest::new(setup_name, self.config.seed);
        for (name, entry) in &self.digis {
            manifest.instances.push(InstanceDecl {
                name: name.clone(),
                kind: entry.kind.clone(),
                version: entry.version.clone(),
                managed: entry.managed,
                params: entry.params.clone(),
            });
            for child in &entry.handle.borrow().model().meta.attach {
                manifest.attachments.push((child.clone(), name.clone()));
            }
        }
        manifest.attachments.sort();
        manifest
    }

    /// Registered scene properties (for ensemble introspection / lint).
    pub fn properties(&self) -> &[crate::SceneProperty] {
        self.checker.properties()
    }

    /// `dbox commit <setup> <ref>` into a repository.
    pub fn commit(
        &self,
        repo: &mut Repository,
        ref_name: &str,
        message: &str,
        setup_name: &str,
    ) -> crate::Result<digibox_registry::Digest> {
        let manifest = self.snapshot(setup_name)?;
        let mut packages = Vec::new();
        let mut kinds: Vec<&String> = self.digis.values().map(|e| &e.kind).collect();
        kinds.sort();
        kinds.dedup();
        for kind in kinds {
            packages.push(self.catalog.package(kind)?);
        }
        Ok(repo.commit(ref_name, message, &manifest, &packages))
    }

    /// `dbox pull` + recreate: run every instance and attachment of a
    /// manifest on this (empty) testbed.
    pub fn recreate(&mut self, manifest: &SetupManifest) -> crate::Result<()> {
        manifest.validate().map_err(TestbedError::Setup)?;
        for inst in &manifest.instances {
            self.run_with(&inst.kind, &inst.name, inst.params.clone(), inst.managed)?;
        }
        // Let containers start before wiring attachments.
        self.run_for(SimDuration::from_millis(500));
        for (child, parent) in &manifest.attachments {
            self.attach(child, parent)?;
        }
        Ok(())
    }

    // ---- replay ----

    /// `dbox replay` — pause generation on the digis the schedule drives
    /// and force their recorded model states at the recorded (shifted)
    /// times. Equivalent to [`Testbed::replay_from`] with no resume
    /// states.
    pub fn replay(&mut self, schedule: &ReplaySchedule) -> crate::Result<()> {
        self.replay_from(&BTreeMap::new(), schedule)
    }

    /// Start a replay mid-trace: force every snapshot in `states` *now*
    /// (typically the nearest 5 s checkpoint's states, reconstructed with
    /// [`CheckpointStore::ingest_trace`] or
    /// [`ReplaySchedule::states_at`](digibox_trace::ReplaySchedule::states_at)),
    /// then schedule the remaining steps at their recorded offsets from
    /// the current virtual time. Generation is paused on every digi either
    /// argument drives, so live mocks cannot fight the recorded timeline.
    ///
    /// The caller still owns the clock: advance it past
    /// `schedule.duration()` (exact nanoseconds — millisecond truncation
    /// of the end bound is the classic way to lose final-instant steps)
    /// with [`Testbed::run_for`] to let every step apply and propagate.
    pub fn replay_from(
        &mut self,
        states: &BTreeMap<String, Value>,
        schedule: &ReplaySchedule,
    ) -> crate::Result<()> {
        obs::inc(self.obs.replay_schedules);
        let base = self.sim.now();
        for source in schedule.sources() {
            self.digi(&source)?.borrow_mut().set_generation_enabled(false);
        }
        for name in states.keys() {
            self.digi(name)?.borrow_mut().set_generation_enabled(false);
        }
        for (name, fields) in states {
            let handle = self.digi(name)?;
            handle.borrow_mut().force_fields(&mut self.sim, fields.clone());
            obs::inc(self.obs.replay_resumed);
        }
        let steps_counter = self.obs.replay_steps;
        for step in schedule.steps() {
            let handle = self.digi(&step.source)?;
            let fields = step.fields.clone();
            let at = base + SimDuration::from_nanos(step.ts.as_nanos());
            self.sim.call_at(at, move |sim| {
                handle.borrow_mut().force_fields(sim, fields);
                obs::inc(steps_counter);
            });
        }
        Ok(())
    }
}
