//! The scene's view of its attached digis.
//!
//! A scene controller coordinates the mocks (and nested scenes) attached to
//! it by reading and writing their model fields (paper, Fig. 5: the room
//! scene sets `triggered` on each attached occupancy sensor). At run time
//! each digi publishes its model on a retained MQTT topic; the parent scene
//! mirrors those here. Writes made by the scene's simulation handler are
//! buffered and sent back out as `set` patches — but only for values that
//! actually differ from the mirror, which is what makes scene/mock
//! coordination converge instead of ping-ponging.

use std::collections::BTreeMap;

use digibox_model::{diff, Patch, Path, Value};

use crate::footprint;

/// Mirror entry for one attached digi.
#[derive(Debug, Clone)]
struct AttEntry {
    kind: String,
    /// Last model fields seen from the digi (via its retained model topic).
    fields: Value,
    /// Fields as modified by the scene handler during the current pass.
    staged: Value,
}

/// The attachment view passed to scene simulation handlers.
#[derive(Debug, Clone, Default)]
pub struct Atts {
    entries: BTreeMap<String, AttEntry>,
}

impl Atts {
    /// An empty attachment view.
    pub fn new() -> Atts {
        Atts::default()
    }

    /// Register an attachment (runtime-internal; scenes receive a populated
    /// view).
    pub fn attach(&mut self, name: &str, kind: &str) {
        self.entries.insert(
            name.to_string(),
            AttEntry { kind: kind.to_string(), fields: Value::map(), staged: Value::map() },
        );
    }

    /// Remove an attachment (runtime-internal).
    pub fn detach(&mut self, name: &str) {
        self.entries.remove(name);
    }

    /// Whether a digi named `name` is attached.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Number of attached digis.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is attached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Update the mirror from a digi's published model (runtime-internal).
    /// Also resets the staged copy to match.
    pub fn observe(&mut self, name: &str, kind: &str, fields: Value) {
        let entry = self.entries.entry(name.to_string()).or_insert_with(|| AttEntry {
            kind: kind.to_string(),
            fields: Value::map(),
            staged: Value::map(),
        });
        entry.kind = kind.to_string();
        entry.fields = fields.clone();
        entry.staged = fields;
    }

    /// Names of attached digis, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Names of attached digis of one type, sorted (the paper's
    /// `atts.get("Occupancy")`).
    pub fn of_type(&self, kind: &str) -> Vec<&str> {
        let names: Vec<&str> = self
            .entries
            .iter()
            .filter(|(_, e)| e.kind == kind)
            .map(|(n, _)| n.as_str())
            .collect();
        if footprint::is_recording() {
            for n in &names {
                footprint::note_att_read(n, "*");
            }
        }
        names
    }

    /// The type of an attached digi.
    pub fn kind_of(&self, name: &str) -> Option<&str> {
        self.entries.get(name).map(|e| e.kind.as_str())
    }

    /// Read a field of an attached digi (staged view: reads see the scene's
    /// own writes within a pass).
    pub fn get(&self, name: &str, path: &str) -> Option<&Value> {
        footprint::note_att_read(name, path);
        let entry = self.entries.get(name)?;
        Path::parse(path).ok()?.lookup(&entry.staged)
    }

    /// Read the whole (staged) field tree of an attached digi.
    pub fn fields(&self, name: &str) -> Option<&Value> {
        footprint::note_att_read(name, "*");
        self.entries.get(name).map(|e| &e.staged)
    }

    /// Write a field of an attached digi. The write is staged; the runtime
    /// turns staged-vs-observed differences into `set` patches after the
    /// handler returns. Unknown names are ignored (the digi may have been
    /// detached concurrently).
    pub fn set(&mut self, name: &str, path: &str, value: impl Into<Value>) {
        footprint::note_att_write(name, path);
        if let Some(entry) = self.entries.get_mut(name) {
            if let Ok(p) = Path::parse(path) {
                let _ = p.set(&mut entry.staged, value.into());
            }
        }
    }

    /// Convenience: write `path.status` (scenes usually drive status).
    pub fn set_status(&mut self, name: &str, field: &str, value: impl Into<Value>) {
        self.set(name, &format!("{field}.status"), value);
    }

    /// Drain staged writes: per-digi patches for every attached digi whose
    /// staged tree differs from the observed one. Mirrors are advanced
    /// optimistically so the same write is not re-sent while the child's
    /// echo is in flight.
    pub fn take_patches(&mut self) -> Vec<(String, Patch)> {
        let mut out = Vec::new();
        for (name, entry) in &mut self.entries {
            let patch = diff(&entry.fields, &entry.staged);
            if !patch.is_empty() {
                entry.fields = entry.staged.clone();
                out.push((name.clone(), patch));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_model::vmap;

    fn room_atts() -> Atts {
        let mut atts = Atts::new();
        atts.attach("O1", "Occupancy");
        atts.attach("O2", "Occupancy");
        atts.attach("D1", "Underdesk");
        atts.observe("O1", "Occupancy", vmap! { "triggered" => false });
        atts.observe("O2", "Occupancy", vmap! { "triggered" => false });
        atts.observe("D1", "Underdesk", vmap! { "triggered" => true });
        atts
    }

    #[test]
    fn type_queries() {
        let atts = room_atts();
        assert_eq!(atts.of_type("Occupancy"), ["O1", "O2"]);
        assert_eq!(atts.of_type("Underdesk"), ["D1"]);
        assert!(atts.of_type("Lamp").is_empty());
        assert_eq!(atts.kind_of("D1"), Some("Underdesk"));
        assert_eq!(atts.len(), 3);
    }

    #[test]
    fn writes_become_patches_only_when_different() {
        let mut atts = room_atts();
        // the paper's room-scene logic: force all occupancy triggered=true
        for name in atts.of_type("Occupancy").into_iter().map(str::to_string).collect::<Vec<_>>() {
            atts.set(&name, "triggered", true);
        }
        // D1 already true → writing true produces no patch
        atts.set("D1", "triggered", true);
        let patches = atts.take_patches();
        assert_eq!(patches.len(), 2);
        let names: Vec<&str> = patches.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["O1", "O2"]);
    }

    #[test]
    fn patches_not_resent_while_echo_in_flight() {
        let mut atts = room_atts();
        atts.set("O1", "triggered", true);
        assert_eq!(atts.take_patches().len(), 1);
        // handler runs again with the same staged write before the child
        // echoed: no duplicate patch
        atts.set("O1", "triggered", true);
        assert!(atts.take_patches().is_empty());
        // child echoes the new model: mirror refreshed, still no patch
        atts.observe("O1", "Occupancy", vmap! { "triggered" => true });
        atts.set("O1", "triggered", true);
        assert!(atts.take_patches().is_empty());
    }

    #[test]
    fn staged_reads_see_own_writes() {
        let mut atts = room_atts();
        atts.set("O1", "triggered", true);
        assert_eq!(atts.get("O1", "triggered"), Some(&Value::Bool(true)));
        // observe() resets staging
        atts.observe("O1", "Occupancy", vmap! { "triggered" => false });
        assert_eq!(atts.get("O1", "triggered"), Some(&Value::Bool(false)));
    }

    #[test]
    fn unknown_names_ignored() {
        let mut atts = room_atts();
        atts.set("ghost", "triggered", true);
        assert!(atts.take_patches().is_empty());
        assert_eq!(atts.get("ghost", "triggered"), None);
    }

    #[test]
    fn detach_removes() {
        let mut atts = room_atts();
        atts.detach("O1");
        assert!(!atts.contains("O1"));
        assert_eq!(atts.of_type("Occupancy"), ["O2"]);
    }

    #[test]
    fn nested_path_writes() {
        let mut atts = Atts::new();
        atts.attach("L1", "Lamp");
        atts.observe(
            "L1",
            "Lamp",
            vmap! { "power" => vmap! { "intent" => "off", "status" => "off" } },
        );
        atts.set_status("L1", "power", "on");
        let patches = atts.take_patches();
        assert_eq!(patches.len(), 1);
        assert_eq!(patches[0].1.ops.len(), 1);
    }
}
