//! The application side: an endpoint that IoT applications (or test
//! drivers) use to talk to mocks exactly as they would talk to real
//! devices — REST requests to the device API and MQTT pub/sub through the
//! broker (paper, Fig. 2).
//!
//! `AppClient` also keeps a latency histogram of completed REST requests;
//! the §4 microbenchmarks read their numbers from here.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque}; // keyed lookup only; `dbox audit` (DH0002) checks every iteration site
use std::rc::Rc;

use bytes::Bytes;

use digibox_broker::{ClientEvent, MqttConn, QoS};
use digibox_net::httpx::{Method, Request, Response};
use digibox_net::stats::LatencyHistogram;
use digibox_net::transport::{ReliableEndpoint, TransportEvent};
use digibox_net::{Addr, Datagram, Service, ServiceHandle, Sim, SimDuration, SimTime, TimerToken};

const HTTP_TOKEN_SPACE: u16 = 2;

/// Events surfaced to application logic.
#[derive(Debug, Clone, PartialEq)]
pub enum AppEvent {
    /// A REST response arrived.
    Response {
        /// Id returned when the request was issued.
        request_id: u64,
        /// HTTP status code.
        status: u16,
        /// Response body bytes.
        body: Bytes,
        /// Request→response round-trip in virtual time.
        latency: SimDuration,
    },
    /// A REST request failed at the transport level.
    RequestFailed {
        /// Id returned when the request was issued.
        request_id: u64,
    },
    /// An MQTT message arrived on a subscribed topic.
    Message {
        /// Topic the message was published to.
        topic: String,
        /// Message bytes.
        payload: Bytes,
    },
    /// The MQTT session is live.
    MqttConnected,
    /// The MQTT transport gave up on the broker (crash or partition).
    /// Persistent clients ([`AppClient::with_persistent_mqtt`]) redial
    /// automatically; clean-session clients surface the event and stop.
    MqttBrokerLost,
}

struct PendingRequest {
    request_id: u64,
    sent_at: SimTime,
}

/// An application endpoint: REST client + MQTT client with latency
/// accounting.
pub struct AppClient {
    addr: Addr,
    conn: Option<MqttConn>,
    broker: Option<Addr>,
    /// Durable (clean_session = false) MQTT session: survives broker
    /// restarts and redials on `BrokerLost` until the broker answers.
    persistent: bool,
    http: ReliableEndpoint,
    /// In-flight REST requests per server, FIFO (responses are ordered by
    /// the reliable channel).
    pending: HashMap<Addr, VecDeque<PendingRequest>>,
    next_request_id: u64,
    latencies: LatencyHistogram,
    events: VecDeque<AppEvent>,
}

impl AppClient {
    /// A REST-only client.
    pub fn new(addr: Addr) -> ServiceHandle<AppClient> {
        Rc::new(RefCell::new(AppClient {
            addr,
            conn: None,
            broker: None,
            persistent: false,
            http: ReliableEndpoint::new(addr).with_space(HTTP_TOKEN_SPACE),
            pending: HashMap::new(),
            next_request_id: 0,
            latencies: LatencyHistogram::new(),
            events: VecDeque::new(),
        }))
    }

    /// A client that also opens an MQTT session to `broker` (call after
    /// binding; connection happens in `on_start`).
    pub fn with_mqtt(addr: Addr, broker: Addr, client_id: &str) -> ServiceHandle<AppClient> {
        let client = AppClient::new(addr);
        {
            let mut c = client.borrow_mut();
            c.conn = Some(MqttConn::new(addr, broker, client_id));
            c.broker = Some(broker);
        }
        client
    }

    /// Like [`AppClient::with_mqtt`] but with a *durable* session
    /// (`clean_session = false`): the broker stashes subscriptions and
    /// in-flight QoS 1/2 state across disconnects and its own restarts,
    /// and the client redials automatically whenever the transport
    /// reports `BrokerLost`, resuming the session where it left off.
    pub fn with_persistent_mqtt(
        addr: Addr,
        broker: Addr,
        client_id: &str,
    ) -> ServiceHandle<AppClient> {
        let client = AppClient::with_mqtt(addr, broker, client_id);
        client.borrow_mut().persistent = true;
        client
    }

    /// In-flight QoS 1/2 publishes awaiting their handshake.
    pub fn unacked_publishes(&self) -> usize {
        self.conn.as_ref().map_or(0, MqttConn::unacked_publishes)
    }

    /// The client's own address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Completed-request latency distribution.
    pub fn latencies(&self) -> &LatencyHistogram {
        &self.latencies
    }

    /// Discard accumulated latency samples (benchmark warm-up).
    pub fn reset_latencies(&mut self) {
        self.latencies = LatencyHistogram::new();
    }

    /// REST requests awaiting a response.
    pub fn in_flight(&self) -> usize {
        self.pending.values().map(VecDeque::len).sum()
    }

    /// Issue `GET <path>` against the digi at `server`. Returns a request
    /// id matched by the eventual [`AppEvent::Response`].
    pub fn get(&mut self, sim: &mut Sim, server: Addr, path: &str) -> u64 {
        self.request(sim, server, Request::new(Method::Get, path))
    }

    /// Issue `POST <path>` with a JSON body.
    pub fn post_json(&mut self, sim: &mut Sim, server: Addr, path: &str, body: &str) -> u64 {
        self.request(
            sim,
            server,
            Request::new(Method::Post, path).with_body("application/json", body.as_bytes().to_vec()),
        )
    }

    /// Issue an arbitrary request.
    pub fn request(&mut self, sim: &mut Sim, server: Addr, req: Request) -> u64 {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        self.pending
            .entry(server)
            .or_default()
            .push_back(PendingRequest { request_id, sent_at: sim.now() });
        self.http.send(sim, server, req.encode());
        request_id
    }

    /// Subscribe to MQTT topics (requires `with_mqtt`).
    pub fn subscribe(&mut self, sim: &mut Sim, filters: &[(&str, QoS)]) {
        if let Some(conn) = self.conn.as_mut() {
            conn.subscribe(sim, filters);
        }
    }

    /// Publish an MQTT message (requires `with_mqtt`).
    pub fn publish(&mut self, sim: &mut Sim, topic: &str, payload: impl Into<Bytes>, qos: QoS) {
        if let Some(conn) = self.conn.as_mut() {
            conn.publish(sim, topic, payload, qos, false);
        }
    }

    /// Pop the next application event.
    pub fn poll(&mut self) -> Option<AppEvent> {
        self.events.pop_front()
    }

    /// Drain every pending event.
    pub fn poll_all(&mut self) -> Vec<AppEvent> {
        self.events.drain(..).collect()
    }

    fn pump(&mut self, sim: &mut Sim) {
        while let Some(ev) = self.http.poll() {
            match ev {
                TransportEvent::Delivered { peer, payload } => {
                    let Some(pending) = self.pending.get_mut(&peer).and_then(|q| q.pop_front())
                    else {
                        continue; // unsolicited response; drop
                    };
                    let latency = sim.now() - pending.sent_at;
                    self.latencies.record(latency);
                    match Response::decode(&payload) {
                        Ok(resp) => self.events.push_back(AppEvent::Response {
                            request_id: pending.request_id,
                            status: resp.status,
                            body: resp.body,
                            latency,
                        }),
                        Err(_) => self
                            .events
                            .push_back(AppEvent::RequestFailed { request_id: pending.request_id }),
                    }
                }
                TransportEvent::PeerFailed { peer } => {
                    if let Some(q) = self.pending.remove(&peer) {
                        for p in q {
                            self.events.push_back(AppEvent::RequestFailed { request_id: p.request_id });
                        }
                    }
                }
            }
        }
        if let Some(conn) = self.conn.as_mut() {
            while let Some(ev) = conn.poll() {
                match ev {
                    ClientEvent::Message { topic, payload, .. } => {
                        self.events.push_back(AppEvent::Message { topic, payload });
                    }
                    ClientEvent::Connected { .. } => self.events.push_back(AppEvent::MqttConnected),
                    ClientEvent::BrokerLost => {
                        self.events.push_back(AppEvent::MqttBrokerLost);
                        if self.persistent {
                            // Redial on the spot: if the broker is still
                            // down the CONNECT's own retries exhaust into
                            // another BrokerLost and we land here again.
                            conn.connect_persistent(sim, None);
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

impl Service for AppClient {
    fn on_start(&mut self, sim: &mut Sim) {
        if let Some(conn) = self.conn.as_mut() {
            if self.persistent {
                conn.connect_persistent(sim, None);
            } else {
                conn.connect(sim, None);
            }
        }
    }

    fn on_datagram(&mut self, sim: &mut Sim, dg: Datagram) {
        if Some(dg.src) == self.broker {
            if let Some(conn) = self.conn.as_mut() {
                conn.on_datagram(sim, dg);
            }
        } else {
            self.http.on_datagram(sim, dg);
        }
        self.pump(sim);
    }

    fn on_timer(&mut self, sim: &mut Sim, token: TimerToken) {
        let mut handled = self.http.on_timer(sim, token);
        if !handled {
            if let Some(conn) = self.conn.as_mut() {
                handled = conn.on_timer(sim, token);
            }
        }
        if handled {
            self.pump(sim);
        }
    }
}
