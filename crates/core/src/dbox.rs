//! `Dbox` — the Table-1 command API as a façade over [`Testbed`] and a
//! [`Repository`].
//!
//! | API                        | Functionality                              |
//! |----------------------------|--------------------------------------------|
//! | `dbox run/stop type name`  | Run/stop a mock or scene                    |
//! | `dbox check/watch name`    | Display model changes in console            |
//! | `dbox attach name name`    | Attach a mock or scene to a scene           |
//! | `dbox commit type name`    | Update or create a mock or scene type       |
//! | `dbox pull/push type`      | Up/download a mock or scene                 |
//! | `dbox replay name`         | Replay the scene trace                      |
//!
//! The CLI binary (`digibox-cli`) parses argv and calls these; tests and
//! examples call them directly.

use digibox_model::{dml, Model, Value};
use digibox_net::SimDuration;
use digibox_registry::{Repository, SetupManifest};
use digibox_trace::{archive, ReplaySchedule, TraceRecord};

use crate::testbed::{Testbed, TestbedError};

/// A watch cursor handed back by [`Dbox::watch`].
#[derive(Debug, Clone, Copy, Default)]
pub struct WatchHandle {
    cursor: Option<u64>,
}

/// The developer-facing command surface.
pub struct Dbox {
    testbed: Testbed,
    repo: Repository,
}

impl Dbox {
    /// Wrap a testbed with a fresh, empty type repository.
    pub fn new(testbed: Testbed) -> Dbox {
        Dbox { testbed, repo: Repository::new() }
    }

    /// Wrap a testbed with an existing repository (pull/push flows).
    pub fn with_repo(testbed: Testbed, repo: Repository) -> Dbox {
        Dbox { testbed, repo }
    }

    /// The underlying testbed.
    pub fn testbed(&mut self) -> &mut Testbed {
        &mut self.testbed
    }

    /// The type repository used by push/pull.
    pub fn repo(&mut self) -> &mut Repository {
        &mut self.repo
    }

    /// Unwrap into the testbed and repository.
    pub fn into_parts(self) -> (Testbed, Repository) {
        (self.testbed, self.repo)
    }

    /// `dbox run <Type> <name>`.
    pub fn run(&mut self, kind: &str, name: &str) -> crate::Result<()> {
        self.testbed.run(kind, name)?;
        // Let the container start so subsequent commands see it live.
        self.testbed.run_for(SimDuration::from_millis(500));
        Ok(())
    }

    /// `dbox stop <name>`.
    pub fn stop(&mut self, name: &str) -> crate::Result<()> {
        self.testbed.stop(name)
    }

    /// `dbox check <name>` — the model, rendered as DML (what the console
    /// prints) plus the parsed form.
    pub fn check(&mut self, name: &str) -> crate::Result<(Model, String)> {
        let model = self.testbed.check(name)?;
        let meta_json = serde_json::to_value(&model.meta).expect("meta serializes");
        let doc = digibox_model::vmap! {
            "meta" => Value::from_json(&meta_json),
            "fields" => model.fields().clone(),
        };
        Ok((model.clone(), dml::to_string(&doc)))
    }

    /// `dbox watch <name>` — start a watch; poll with [`Dbox::watch_poll`].
    pub fn watch(&mut self, name: &str) -> crate::Result<WatchHandle> {
        self.testbed.digi_addr(name)?; // existence check
        let records = self.testbed.log().since(None);
        Ok(WatchHandle { cursor: records.last().map(|r| r.seq) })
    }

    /// Drain new trace records for `name` since the handle's cursor.
    pub fn watch_poll(&mut self, name: &str, handle: &mut WatchHandle) -> Vec<TraceRecord> {
        let records = self.testbed.log().since(handle.cursor);
        if let Some(last) = records.last() {
            handle.cursor = Some(last.seq);
        }
        records.into_iter().filter(|r| r.source == name).collect()
    }

    /// `dbox attach <child> <parent>` (and `-d` via [`Dbox::detach`]).
    /// `dbox attach <child> <parent>` (runs briefly so the mirror warms).
    pub fn attach(&mut self, child: &str, parent: &str) -> crate::Result<()> {
        self.testbed.attach(child, parent)?;
        self.testbed.run_for(SimDuration::from_millis(200));
        Ok(())
    }

    /// `dbox detach <child> <parent>`.
    pub fn detach(&mut self, child: &str, parent: &str) -> crate::Result<()> {
        self.testbed.detach(child, parent)
    }

    /// `dbox edit <name>` — set intents from a DML/JSON-ish map, e.g.
    /// `power: on`.
    pub fn edit(&mut self, name: &str, updates: Value) -> crate::Result<()> {
        self.testbed.edit(name, updates)?;
        self.testbed.run_for(SimDuration::from_millis(200));
        Ok(())
    }

    /// `dbox commit <setup> [ref]` — snapshot the setup into the repo.
    pub fn commit(&mut self, setup_name: &str, message: &str) -> crate::Result<String> {
        let digest = self.testbed.commit(&mut self.repo, setup_name, message, setup_name)?;
        Ok(digest.short())
    }

    /// `dbox push <setup>` into a remote repository.
    pub fn push(&mut self, remote: &mut Repository, setup_name: &str) -> crate::Result<usize> {
        self.repo.push(remote, setup_name).map_err(TestbedError::Registry)
    }

    /// `dbox pull <setup>` from a remote repository and recreate it on the
    /// (empty) testbed.
    pub fn pull(&mut self, remote: &Repository, setup_name: &str) -> crate::Result<SetupManifest> {
        self.repo.pull(remote, setup_name).map_err(TestbedError::Registry)?;
        let head = self.repo.resolve(setup_name).map_err(TestbedError::Registry)?;
        let commit = self.repo.load_commit(&head).map_err(TestbedError::Registry)?;
        let manifest = self.repo.load_setup(&commit).map_err(TestbedError::Registry)?;
        self.testbed.recreate(&manifest)?;
        Ok(manifest)
    }

    /// Export the current trace as a shareable archive (paper: "traces are
    /// shared as a zip file").
    pub fn export_trace(&mut self) -> Vec<u8> {
        archive::write(&self.testbed.log().records())
    }

    /// `dbox replay <trace>` — parse an archive and replay it on this
    /// testbed (the digis in the trace must be running).
    pub fn replay(&mut self, archive_bytes: &[u8]) -> crate::Result<ReplaySchedule> {
        let records = archive::read(archive_bytes)
            .map_err(|e| TestbedError::Setup(format!("bad trace archive: {e}")))?;
        let schedule = ReplaySchedule::from_records(&records);
        self.testbed.replay(&schedule)?;
        Ok(schedule)
    }
}
