//! `DigiCell` — the transport-independent core of one digi: model +
//! program + attachment mirror + logging, with all outbound messages
//! collected into an outbox instead of being sent directly.
//!
//! Two hosts embed cells:
//!
//! * [`crate::DigiService`] — one cell per microservice (the paper's
//!   deployment model: every mock/scene is its own pod);
//! * [`crate::DigiPool`] — many cells behind one service (the paper's §6
//!   "efficient simulation" question: FaaS-style consolidation, where
//!   idle digis cost no sessions or timers of their own).

use digibox_model::{diff, Model, Patch, Path, Value};
use digibox_net::httpx::{Method, Request, Response};
use digibox_net::{Prng, SimTime};
use digibox_obs as obs;
use digibox_trace::{Direction, TraceLog};

use crate::atts::Atts;
use crate::program::{DigiProgram, LoopCtx, SimCtx};
use crate::topics;

/// Messages a cell wants published, collected per call.
#[derive(Debug, Default)]
pub struct Outbox {
    /// `(topic, payload, retain)` MQTT publications.
    pub messages: Vec<(String, Vec<u8>, bool)>,
}

impl Outbox {
    /// An empty outbox.
    pub fn new() -> Outbox {
        Outbox::default()
    }

    fn publish(&mut self, topic: String, payload: Vec<u8>, retain: bool) {
        self.messages.push((topic, payload, retain));
    }
}

/// Per-cell counters (a subset of the service-level stats).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellStats {
    /// `on_loop` invocations.
    pub loops_run: u64,
    /// One-shot events emitted on the event channel.
    pub events_emitted: u64,
    /// Model publications (only changed models publish).
    pub model_publishes: u64,
    /// Intents applied to the model.
    pub intents_applied: u64,
    /// Set-channel patches applied to this digi.
    pub set_patches_applied: u64,
    /// Set-channel patches this digi sent to attachments.
    pub set_patches_sent: u64,
    /// Scene simulation handler (`on_model`) invocations.
    pub sim_handler_runs: u64,
}

/// Pre-interned observability handles for one cell's handlers: the shared
/// `digi.on_loop`/`digi.on_model` frames plus a per-digi identity frame
/// (`Kind:name`), so folded stacks aggregate by handler kind first and
/// fan out per digi below it.
struct CellObs {
    on_loop: obs::CounterId,
    on_model: obs::CounterId,
    f_on_loop: obs::FrameId,
    f_on_model: obs::FrameId,
    f_self: obs::FrameId,
}

impl CellObs {
    fn new(kind: &str, name: &str) -> CellObs {
        CellObs {
            on_loop: obs::counter("digi.on_loop"),
            on_model: obs::counter("digi.on_model"),
            f_on_loop: obs::frame("digi.on_loop"),
            f_on_model: obs::frame("digi.on_model"),
            f_self: obs::frame(&format!("{kind}:{name}")),
        }
    }
}

/// The core state machine of one digi.
pub struct DigiCell {
    name: String,
    model: Model,
    program: Box<dyn DigiProgram>,
    atts: Atts,
    rng: Prng,
    log: TraceLog,
    last_published: Value,
    last_published_rev: u64,
    scene_logic_enabled: bool,
    generation_enabled: bool,
    stats: CellStats,
    obs: CellObs,
    started: bool,
}

impl DigiCell {
    /// Wrap a program and its model into a runnable cell.
    pub fn new(
        model: Model,
        program: Box<dyn DigiProgram>,
        rng: Prng,
        log: TraceLog,
        scene_logic_enabled: bool,
    ) -> DigiCell {
        let name = model.meta.name.clone();
        let fields = model.fields().clone();
        // Warm the path-intern table with this program's declared fields so
        // handler literals resolve to pre-parsed segments from the very
        // first invocation (registration-time resolution).
        for field in program.schema().fields.keys() {
            let _ = Path::interned(field);
        }
        let cell_obs = CellObs::new(program.kind(), &name);
        DigiCell {
            name,
            model,
            program,
            atts: Atts::new(),
            rng,
            log,
            last_published: fields,
            last_published_rev: 0,
            scene_logic_enabled,
            generation_enabled: true,
            stats: CellStats::default(),
            obs: cell_obs,
            started: false,
        }
    }

    /// The digi's instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The digi's type name.
    pub fn kind(&self) -> &str {
        self.program.kind()
    }

    /// Whether the program declares itself a scene.
    pub fn is_scene(&self) -> bool {
        self.program.is_scene()
    }

    /// The current model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> &CellStats {
        &self.stats
    }

    /// Enable/disable random event generation (ticks become no-ops).
    pub fn set_generation_enabled(&mut self, enabled: bool) {
        self.generation_enabled = enabled;
    }

    /// Flip the model's managed-mode flag.
    pub fn set_managed(&mut self, managed: bool) {
        self.model.meta.managed = managed;
    }

    /// The event-generation interval from `meta`.
    pub fn interval_ms(&self) -> u64 {
        self.model.meta.interval_ms()
    }

    /// Configured actuation delay (ms; 0 = immediate).
    pub fn actuation_delay_ms(&self) -> u64 {
        self.model.meta.param_int("actuation_delay_ms").unwrap_or(0).max(0) as u64
    }

    /// Program init + initial retained model publication.
    pub fn start(&mut self, now: SimTime, out: &mut Outbox) {
        self.log.lifecycle(now, &self.name, "started", self.program.program_id());
        self.program.init(&mut self.model);
        self.started = false;
        self.publish_model(now, out);
        self.started = true;
    }

    /// The topics this cell must be subscribed to for inbound traffic.
    pub fn command_topics(&self) -> [String; 2] {
        [topics::intent(&self.name), topics::set(&self.name)]
    }

    /// Attach a child: mirror it; returns the child-model topic to
    /// subscribe to.
    pub fn attach_child(&mut self, now: SimTime, child: &str, kind: &str) -> String {
        if !self.model.meta.attach.iter().any(|c| c == child) {
            self.model.meta.attach.push(child.to_string());
        }
        self.atts.attach(child, kind);
        self.log.lifecycle(now, &self.name, "attach", child);
        topics::model(child)
    }

    /// Detach a child; returns the topic to unsubscribe from.
    pub fn detach_child(&mut self, now: SimTime, child: &str) -> String {
        self.model.meta.attach.retain(|c| c != child);
        self.atts.detach(child);
        self.log.lifecycle(now, &self.name, "detach", child);
        topics::model(child)
    }

    /// Whether `child` is currently attached.
    pub fn has_child(&self, child: &str) -> bool {
        self.atts.contains(child)
    }

    /// One event-generation tick.
    pub fn tick(&mut self, now: SimTime, out: &mut Outbox) {
        if !self.generation_enabled || self.model.meta.managed {
            return;
        }
        self.stats.loops_run += 1;
        obs::inc(self.obs.on_loop);
        let mut ctx = LoopCtx { model: &mut self.model, rng: &mut self.rng, now, emitted: Vec::new() };
        {
            let _handler = obs::enter(self.obs.f_on_loop);
            let _digi = obs::enter(self.obs.f_self);
            self.program.on_loop(&mut ctx);
        }
        let emitted = ctx.emitted;
        for data in emitted {
            self.publish_event(now, data, out);
        }
        self.process(now, out);
    }

    fn publish_event(&mut self, now: SimTime, data: Value, out: &mut Outbox) {
        self.stats.events_emitted += 1;
        self.log.event(now, &self.name, data.clone());
        let payload = serde_json::to_vec(&data.to_json()).expect("values serialize");
        out.publish(topics::event(&self.name), payload, false);
    }

    /// Parse an intent payload into `(path, value)` updates.
    pub fn parse_intents(payload: &[u8]) -> Vec<(Path, Value)> {
        let Ok(json) = serde_json::from_slice::<serde_json::Value>(payload) else {
            return Vec::new();
        };
        let value = Value::from_json(&json);
        let Some(map) = value.as_map() else {
            return Vec::new();
        };
        // Intent keys are device field literals (a small closed set), so
        // interning amortizes the split across every request.
        map.iter().filter_map(|(k, v)| Path::interned(k).ok().map(|p| (p, v.clone()))).collect()
    }

    /// Apply intent updates (after any actuation delay handled by the host).
    pub fn apply_intents(&mut self, now: SimTime, updates: Vec<(Path, Value)>, out: &mut Outbox) {
        for (path, value) in updates {
            // Single-segment field names hit the interned (base → intent)
            // triple; deeper paths fall back to an explicit child join.
            let intent_path = match path.segments() {
                [field] => Path::interned_intent(field).unwrap_or_else(|_| path.child("intent")),
                _ => path.child("intent"),
            };
            let _ = self.model.set(&intent_path, value);
            self.stats.intents_applied += 1;
        }
        self.process(now, out);
    }

    /// Handle an inbound `set` patch from a parent scene.
    pub fn handle_set(&mut self, now: SimTime, payload: &[u8], out: &mut Outbox) {
        let Ok(patch) = serde_json::from_slice::<Patch>(payload) else {
            return;
        };
        for op in &patch.ops {
            match op {
                digibox_model::PatchOp::Set { path, value } => {
                    let _ = self.model.set(path, value.clone());
                }
                digibox_model::PatchOp::Remove { path } => {
                    let _ = self.model.remove(path);
                }
            }
        }
        self.stats.set_patches_applied += 1;
        self.process(now, out);
    }

    /// Handle a child's published model (scenes only).
    pub fn observe_child(&mut self, now: SimTime, child: &str, payload: &[u8], out: &mut Outbox) {
        let Ok(child_model) = serde_json::from_slice::<Model>(payload) else {
            return;
        };
        self.atts.observe(child, &child_model.meta.kind, child_model.fields().clone());
        self.process(now, out);
    }

    /// Log an inbound message against this cell.
    pub fn log_message_in(&self, now: SimTime, topic: &str, payload: &[u8]) {
        let value = serde_json::from_slice::<serde_json::Value>(payload)
            .map(|j| Value::from_json(&j))
            .unwrap_or(Value::Null);
        self.log.message(now, &self.name, Direction::Received, topic, value);
    }

    /// Run the simulation handler to fixpoint, emit child patches, publish
    /// the model if changed.
    pub fn process(&mut self, now: SimTime, out: &mut Outbox) {
        let run_sim = !self.program.is_scene() || self.scene_logic_enabled;
        if run_sim {
            for _ in 0..4 {
                let before = self.model.revision();
                self.stats.sim_handler_runs += 1;
                obs::inc(self.obs.on_model);
                let mut ctx = SimCtx {
                    model: &mut self.model,
                    atts: &mut self.atts,
                    rng: &mut self.rng,
                    now,
                    emitted: Vec::new(),
                };
                {
                    let _handler = obs::enter(self.obs.f_on_model);
                    let _digi = obs::enter(self.obs.f_self);
                    self.program.on_model(&mut ctx);
                }
                let emitted = ctx.emitted;
                for data in emitted {
                    self.publish_event(now, data, out);
                }
                if self.model.revision() == before {
                    break;
                }
            }
            for (child, patch) in self.atts.take_patches() {
                self.stats.set_patches_sent += 1;
                let payload = serde_json::to_vec(&patch).expect("patches serialize");
                let topic = topics::set(&child);
                self.log.message(
                    now,
                    &self.name,
                    Direction::Sent,
                    &topic,
                    Value::from_json(&serde_json::to_value(&patch).expect("patches serialize")),
                );
                out.publish(topic, payload, false);
            }
        }
        self.publish_model(now, out);
    }

    fn publish_model(&mut self, now: SimTime, out: &mut Outbox) {
        if self.model.revision() == self.last_published_rev && self.started {
            return;
        }
        let patch = diff(&self.last_published, self.model.fields());
        if self.started && patch.is_empty() {
            self.last_published_rev = self.model.revision();
            return;
        }
        self.last_published = self.model.fields().clone();
        self.last_published_rev = self.model.revision();
        self.stats.model_publishes += 1;
        self.log.model_change(now, &self.name, patch, self.model.fields().clone());
        let payload = serde_json::to_vec(&self.model).expect("models serialize");
        out.publish(topics::model(&self.name), payload, true);
    }

    /// Unconditionally publish the current model, bypassing the diff
    /// gate — used after an MQTT session is re-established, when the
    /// broker's retained copy may predate changes made while the session
    /// was down.
    pub fn republish_model(&mut self, _now: SimTime, out: &mut Outbox) {
        self.last_published = self.model.fields().clone();
        self.last_published_rev = self.model.revision();
        self.stats.model_publishes += 1;
        let payload = serde_json::to_vec(&self.model).expect("models serialize");
        out.publish(topics::model(&self.name), payload, true);
    }

    /// Force the field tree (replay).
    pub fn force_fields(&mut self, now: SimTime, fields: Value, out: &mut Outbox) {
        let _ = self.model.set_fields(fields);
        self.process(now, out);
    }

    /// Serve one REST request against this cell (no timing — hosts add
    /// service overhead).
    pub fn route_http(&mut self, now: SimTime, req: &Request, out: &mut Outbox) -> Response {
        let segments = req.path_segments();
        // strip an optional `/digi/<name>` prefix (pool routing)
        let segments: Vec<&str> = match segments.as_slice() {
            ["digi", name, rest @ ..] if *name == self.name => rest.to_vec(),
            other => other.to_vec(),
        };
        match (req.method, segments.as_slice()) {
            (Method::Get, ["health"]) => Response::ok_json(r#"{"ok":true}"#.as_bytes().to_vec()),
            (Method::Get, ["model"]) => {
                let body = serde_json::to_vec(&self.model).expect("models serialize");
                Response::ok_json(body)
            }
            (Method::Get, ["model", rest @ ..]) => {
                let path_str = rest.join(".");
                match Path::parse(&path_str) {
                    Ok(p) => match p.lookup(self.model.fields()) {
                        Some(v) => Response::ok_json(
                            serde_json::to_vec(&v.to_json()).expect("values serialize"),
                        ),
                        None => Response::not_found(&format!("no field {path_str}")),
                    },
                    Err(e) => Response::bad_request(&e.to_string()),
                }
            }
            (Method::Post, ["intent"]) => {
                let updates = DigiCell::parse_intents(&req.body);
                self.apply_intents(now, updates, out);
                Response::new(204)
            }
            _ => Response::not_found("unknown route"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_model::{vmap, FieldKind, Schema};

    struct Toggle;
    impl DigiProgram for Toggle {
        fn kind(&self) -> &str {
            "Toggle"
        }
        fn version(&self) -> &str {
            "v1"
        }
        fn program_id(&self) -> &str {
            "test/toggle"
        }
        fn schema(&self) -> Schema {
            Schema::new("Toggle", "v1")
                .field("on", FieldKind::pair(FieldKind::Bool))
                .field("ticks", FieldKind::int())
        }
        fn on_loop(&mut self, ctx: &mut LoopCtx) {
            let n = ctx.model.lookup(&"ticks".into()).and_then(Value::as_int).unwrap_or(0);
            ctx.update(vmap! { "ticks" => n + 1 });
        }
        fn on_model(&mut self, ctx: &mut SimCtx) {
            if let Some(want) = ctx.intent("on").cloned() {
                ctx.set_status("on", want);
            }
        }
    }

    fn cell() -> DigiCell {
        let p = Toggle;
        let model = p.schema().instantiate("T1");
        DigiCell::new(model, Box::new(p), Prng::new(1), TraceLog::new(), true)
    }

    #[test]
    fn start_publishes_initial_model() {
        let mut c = cell();
        let mut out = Outbox::new();
        c.start(SimTime::ZERO, &mut out);
        assert_eq!(out.messages.len(), 1);
        let (topic, _, retain) = &out.messages[0];
        assert_eq!(topic, "digibox/digi/T1/model");
        assert!(*retain);
    }

    #[test]
    fn tick_emits_event_and_model() {
        let mut c = cell();
        let mut out = Outbox::new();
        c.start(SimTime::ZERO, &mut out);
        out.messages.clear();
        c.tick(SimTime::ZERO, &mut out);
        let topics: Vec<&str> = out.messages.iter().map(|(t, _, _)| t.as_str()).collect();
        assert!(topics.contains(&"digibox/digi/T1/event"));
        assert!(topics.contains(&"digibox/digi/T1/model"));
        assert_eq!(c.stats().loops_run, 1);
    }

    #[test]
    fn managed_cell_does_not_tick() {
        let mut c = cell();
        c.set_managed(true);
        let mut out = Outbox::new();
        c.start(SimTime::ZERO, &mut out);
        out.messages.clear();
        c.tick(SimTime::ZERO, &mut out);
        assert!(out.messages.is_empty());
        assert_eq!(c.stats().loops_run, 0);
    }

    #[test]
    fn intent_updates_status_through_sim() {
        let mut c = cell();
        let mut out = Outbox::new();
        c.start(SimTime::ZERO, &mut out);
        let updates = DigiCell::parse_intents(br#"{"on": true}"#);
        c.apply_intents(SimTime::ZERO, updates, &mut out);
        assert_eq!(c.model().status(&"on".into()).unwrap().as_bool(), Some(true));
    }

    #[test]
    fn http_routing_with_and_without_pool_prefix() {
        let mut c = cell();
        let mut out = Outbox::new();
        c.start(SimTime::ZERO, &mut out);
        let direct = Request::new(Method::Get, "/model");
        assert_eq!(c.route_http(SimTime::ZERO, &direct, &mut out).status, 200);
        let pooled = Request::new(Method::Get, "/digi/T1/model");
        assert_eq!(c.route_http(SimTime::ZERO, &pooled, &mut out).status, 200);
        let wrong = Request::new(Method::Get, "/digi/OTHER/model");
        assert_eq!(c.route_http(SimTime::ZERO, &wrong, &mut out).status, 404);
    }

    #[test]
    fn set_patch_applies() {
        let mut c = cell();
        let mut out = Outbox::new();
        c.start(SimTime::ZERO, &mut out);
        let patch = Patch::new().set("ticks", 42);
        let payload = serde_json::to_vec(&patch).unwrap();
        c.handle_set(SimTime::ZERO, &payload, &mut out);
        assert_eq!(c.model().lookup(&"ticks".into()).unwrap().as_int(), Some(42));
    }
}
