//! The digi programming model — the Rust counterpart of the paper's Python
//! `dbox` library (§3.2, Fig. 4/5).
//!
//! A digi program supplies:
//!
//! * a **schema** for its model;
//! * an **event-generation handler** ([`DigiProgram::on_loop`]) run
//!   periodically (the `@dbox.loop` decorator) while the digi is *not*
//!   `managed` — mocks generate sensor readings here, scenes generate
//!   scene-level events (human presence, arrivals, weather);
//! * a **simulation handler** ([`DigiProgram::on_model`]) run whenever the
//!   model changes (the `@on.model` decorator) — mocks implement device
//!   behaviour (intent → status), scenes coordinate their attached digis
//!   through [`Atts`].
//!
//! Example, the paper's mock lamp (Fig. 4, lines 14–26) ported 1:1:
//!
//! ```
//! use digibox_core::program::{DigiProgram, LoopCtx, SimCtx};
//! use digibox_model::{FieldKind, Schema};
//!
//! struct Lamp;
//!
//! impl DigiProgram for Lamp {
//!     fn kind(&self) -> &str { "Lamp" }
//!     fn version(&self) -> &str { "v1" }
//!     fn program_id(&self) -> &str { "example/lamp" }
//!     fn schema(&self) -> Schema {
//!         Schema::new("Lamp", "v1")
//!             .field("power", FieldKind::pair(FieldKind::enumeration(["off", "on"])))
//!             .field("intensity", FieldKind::pair(FieldKind::float_range(0.0, 1.0)))
//!     }
//!     fn on_loop(&mut self, _ctx: &mut LoopCtx) {} // actuators generate no events
//!     fn on_model(&mut self, ctx: &mut SimCtx) {
//!         let power = ctx.status_str("power").unwrap_or_default();
//!         if power == "off" {
//!             ctx.set_status("intensity", 0.0);
//!         } else {
//!             let want = ctx.intent("intensity").cloned().unwrap_or(0.0f64.into());
//!             ctx.set_status("intensity", want);
//!         }
//!         // power follows intent directly
//!         if let Some(want) = ctx.intent("power").cloned() {
//!             ctx.set_status("power", want);
//!         }
//!     }
//! }
//! ```

use digibox_model::{Model, Path, Schema, Value};
use digibox_net::{Prng, SimTime};

use crate::atts::Atts;
use crate::footprint;

/// Context for event-generation handlers (`@dbox.loop`).
pub struct LoopCtx<'a> {
    /// The digi's model (mutate status fields to emit an event).
    pub model: &'a mut Model,
    /// Per-digi reproducible random stream.
    pub rng: &'a mut Prng,
    /// Virtual time of this tick.
    pub now: SimTime,
    /// Event data recorded to the trace and published on the event topic;
    /// handlers fill this via [`LoopCtx::emit`].
    pub emitted: Vec<Value>,
}

impl LoopCtx<'_> {
    /// Record an event (it is logged and published on
    /// `digibox/digi/<name>/event`).
    pub fn emit(&mut self, data: Value) {
        footprint::note_emit();
        self.emitted.push(data);
    }

    /// Shorthand for `model.update` + `emit` — the idiom of the paper's
    /// `gen_event` handlers (`dbox.model.update({"triggered": motion})`).
    pub fn update(&mut self, data: Value) {
        if footprint::is_recording() {
            note_leaf_writes("", &data);
        }
        let _ = self.model.update(data.clone());
        self.emit(data);
    }

    /// Read a meta parameter (generation knobs live in `meta.params`).
    pub fn param_f64(&self, key: &str, default: f64) -> f64 {
        self.model.meta.param_float(key).unwrap_or(default)
    }

    /// Read an integer meta parameter.
    pub fn param_i64(&self, key: &str, default: i64) -> i64 {
        self.model.meta.param_int(key).unwrap_or(default)
    }
}

/// Context for simulation handlers (`@on.model`).
pub struct SimCtx<'a> {
    /// The digi's own model.
    pub model: &'a mut Model,
    /// Attached digis (scenes; empty for mocks).
    pub atts: &'a mut Atts,
    /// The digi's own deterministic random stream.
    pub rng: &'a mut Prng,
    /// Current virtual time.
    pub now: SimTime,
    /// Messages to publish on the digi's event topic.
    pub emitted: Vec<Value>,
}

/// Record the dotted path of every leaf in an update payload (tap feed for
/// [`LoopCtx::update`]; only called while a lint probe is recording).
fn note_leaf_writes(prefix: &str, v: &Value) {
    match v.as_map() {
        Some(m) if !m.is_empty() => {
            for (k, child) in m {
                let path =
                    if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                note_leaf_writes(&path, child);
            }
        }
        _ => {
            if !prefix.is_empty() {
                footprint::note_write(prefix);
            }
        }
    }
}

impl SimCtx<'_> {
    /// Queue a one-shot event for the digi's event topic.
    pub fn emit(&mut self, data: Value) {
        footprint::note_emit();
        self.emitted.push(data);
    }

    /// Read `field.intent`. Field literals are interned: the dotted string
    /// is split once per process, not once per handler invocation.
    pub fn intent(&self, field: &str) -> Option<&Value> {
        footprint::note_read_pair(field, "intent");
        Path::interned_intent(field).ok()?.lookup(self.model.fields())
    }

    /// Read `field.status`.
    pub fn status(&self, field: &str) -> Option<&Value> {
        footprint::note_read_pair(field, "status");
        Path::interned_status(field).ok()?.lookup(self.model.fields())
    }

    /// Read `field.status` as a string.
    pub fn status_str(&self, field: &str) -> Option<String> {
        self.status(field)?.as_str().map(str::to_string)
    }

    /// Read `field.status` as a float.
    pub fn status_f64(&self, field: &str) -> Option<f64> {
        self.status(field)?.as_float()
    }

    /// Read `field.status` as a bool.
    pub fn status_bool(&self, field: &str) -> Option<bool> {
        self.status(field)?.as_bool()
    }

    /// Read `field.intent` as a string.
    pub fn intent_str(&self, field: &str) -> Option<String> {
        self.intent(field)?.as_str().map(str::to_string)
    }

    /// Read `field.intent` as a float.
    pub fn intent_f64(&self, field: &str) -> Option<f64> {
        self.intent(field)?.as_float()
    }

    /// Write `field.status` (no-op if unchanged, so handlers can be written
    /// declaratively without causing change storms).
    pub fn set_status(&mut self, field: &str, value: impl Into<Value>) {
        footprint::note_write_pair(field, "status");
        let value = value.into();
        if self.status(field) == Some(&value) {
            return;
        }
        if let Ok(p) = Path::interned_status(field) {
            let _ = self.model.set(&p, value);
        }
    }

    /// Write a plain (non-pair) field, also change-guarded.
    pub fn set_field(&mut self, path: &str, value: impl Into<Value>) {
        footprint::note_write(path);
        let value = value.into();
        if let Ok(p) = Path::interned(path) {
            if p.lookup(self.model.fields()) == Some(&value) {
                return;
            }
            let _ = self.model.set(&p, value);
        }
    }

    /// Read a plain field.
    /// Read any dotted field path.
    pub fn field(&self, path: &str) -> Option<&Value> {
        footprint::note_read(path);
        Path::interned(path).ok()?.lookup(self.model.fields())
    }

    /// Read a field as a bool.
    pub fn field_bool(&self, path: &str) -> Option<bool> {
        self.field(path)?.as_bool()
    }

    /// Read a field as an integer.
    pub fn field_i64(&self, path: &str) -> Option<i64> {
        self.field(path)?.as_int()
    }

    /// Read a field as a float.
    pub fn field_f64(&self, path: &str) -> Option<f64> {
        self.field(path)?.as_float()
    }

    /// Read a field as a string.
    pub fn field_str(&self, path: &str) -> Option<String> {
        self.field(path)?.as_str().map(str::to_string)
    }

    /// Read a float meta parameter.
    pub fn param_f64(&self, key: &str, default: f64) -> f64 {
        self.model.meta.param_float(key).unwrap_or(default)
    }

    /// Read an integer meta parameter.
    pub fn param_i64(&self, key: &str, default: i64) -> i64 {
        self.model.meta.param_int(key).unwrap_or(default)
    }
}

/// A digi program: the device or scene logic for one type.
///
/// Programs must be deterministic functions of (model, atts, rng) — all
/// randomness through the provided [`Prng`], no wall clock, no global
/// state — so that seeded runs and replays are bit-identical (paper goal:
/// reproducibility).
pub trait DigiProgram {
    /// Type name (`Lamp`, `Room`, ...).
    fn kind(&self) -> &str;
    /// Type version (`v1`, ...).
    fn version(&self) -> &str;
    /// Program identifier used as the "container image" reference in
    /// shared setups (e.g. `builtin/lamp`).
    fn program_id(&self) -> &str;
    /// The model schema.
    fn schema(&self) -> Schema;

    /// Whether this is a scene controller (scenes accept attachments and
    /// their `on_model` coordinates `atts`).
    fn is_scene(&self) -> bool {
        false
    }

    /// Initialize a freshly-instantiated model (defaults beyond the
    /// schema's `default_value`s).
    fn init(&mut self, _model: &mut Model) {}

    /// Event generation, run every `meta.interval_ms` while the digi is not
    /// `managed`.
    fn on_loop(&mut self, _ctx: &mut LoopCtx) {}

    /// Simulation, run when the model (or, for scenes, an attached model)
    /// changes.
    fn on_model(&mut self, _ctx: &mut SimCtx) {}

    /// A one-line description for `dbox pull` listings.
    fn describe(&self) -> String {
        format!("{} {} ({})", self.kind(), self.version(), self.program_id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digibox_model::{vmap, FieldKind, Meta};

    struct Probe;

    impl DigiProgram for Probe {
        fn kind(&self) -> &str {
            "Probe"
        }
        fn version(&self) -> &str {
            "v1"
        }
        fn program_id(&self) -> &str {
            "test/probe"
        }
        fn schema(&self) -> Schema {
            Schema::new("Probe", "v1")
                .field("reading", FieldKind::pair(FieldKind::float()))
                .field("count", FieldKind::int())
        }
        fn on_loop(&mut self, ctx: &mut LoopCtx) {
            let n = ctx.model.lookup(&Path::from("count")).and_then(Value::as_int).unwrap_or(0);
            ctx.update(vmap! { "count" => n + 1 });
        }
        fn on_model(&mut self, ctx: &mut SimCtx) {
            let n = ctx.field_i64("count").unwrap_or(0);
            ctx.set_status("reading", n as f64 * 2.0);
        }
    }

    fn fresh_model() -> Model {
        let mut p = Probe;
        let mut m = p.schema().instantiate("probe-1");
        p.init(&mut m);
        m
    }

    #[test]
    fn loop_ctx_update_emits_and_mutates() {
        let mut model = fresh_model();
        let mut rng = Prng::new(1);
        let mut ctx = LoopCtx { model: &mut model, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
        Probe.on_loop(&mut ctx);
        assert_eq!(ctx.emitted.len(), 1);
        assert_eq!(model.lookup(&Path::from("count")), Some(&Value::Int(1)));
    }

    #[test]
    fn sim_ctx_accessors_and_change_guard() {
        let mut model = fresh_model();
        model.set(&Path::from("count"), 3).unwrap();
        let mut rng = Prng::new(1);
        let mut atts = Atts::new();
        let mut ctx = SimCtx {
            model: &mut model,
            atts: &mut atts,
            rng: &mut rng,
            now: SimTime::ZERO,
            emitted: vec![],
        };
        Probe.on_model(&mut ctx);
        assert_eq!(ctx.status_f64("reading"), Some(6.0));
        let rev = ctx.model.revision();
        // same write again: guarded, no revision bump
        Probe.on_model(&mut ctx);
        assert_eq!(ctx.model.revision(), rev);
    }

    #[test]
    fn params_fall_back_to_defaults() {
        let mut model = Model::new(Meta::new("Probe", "v1", "p").with_param("rate", 2.5));
        let mut rng = Prng::new(1);
        let ctx = LoopCtx { model: &mut model, rng: &mut rng, now: SimTime::ZERO, emitted: vec![] };
        assert_eq!(ctx.param_f64("rate", 1.0), 2.5);
        assert_eq!(ctx.param_f64("missing", 1.0), 1.0);
        assert_eq!(ctx.param_i64("missing", 9), 9);
    }
}
