//! `DigiPool` — many digis behind one service: the paper's §6 open
//! question made concrete.
//!
//! > "an open question is how to make these large-scale simulations more
//! > efficient, i.e., running a higher number of mocks/scenes with a fixed
//! > amount of compute resource budget. E.g., given the event-driven
//! > nature of IoT apps, whether/how we can leverage Function-as-a-Service
//! > (FaaS) to run the simulator logic of mocks and scenes."
//!
//! A pool is the FaaS executor: it hosts N [`DigiCell`]s behind **one**
//! network endpoint, **one** MQTT session and **one** timer wheel, invoking
//! each cell's handlers only when its events are due or its messages
//! arrive. Compared to one-microservice-per-mock this removes the per-digi
//! broker session, per-digi loop timer and per-digi endpoint — the
//! fixed-cost floor that dominates at thousands of mostly-idle mocks. The
//! `e9_faas_pooling` bench quantifies the difference.
//!
//! Semantics are unchanged: pooled digis publish/subscribe the same topics
//! and serve the same REST API (routed as `/digi/<name>/...`), so
//! applications and parent scenes cannot tell a pooled mock from a
//! dedicated one. Scenes can be pooled too, but the intended use is large
//! fleets of mocks (the paper's 1000-sensor experiment).

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use bytes::Bytes;

use digibox_broker::{ClientEvent, MqttConn, QoS};
use digibox_model::Model;
use digibox_net::httpx::{Request, Response};
use digibox_net::transport::{ReliableEndpoint, TransportEvent};
use digibox_net::{Addr, Datagram, Prng, Service, ServiceHandle, Sim, SimDuration, SimTime, TimerToken};
use digibox_trace::TraceLog;

use crate::cell::{DigiCell, Outbox};
use crate::program::DigiProgram;
use crate::topics;

/// Timer token for the shared wheel.
const TOKEN_WHEEL: TimerToken = 1;
/// Token space of the HTTP endpoint.
const HTTP_TOKEN_SPACE: u16 = 2;

/// Pool-level counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolStats {
    pub cells: usize,
    pub ticks_dispatched: u64,
    pub wheel_wakeups: u64,
    pub rest_requests: u64,
    pub messages_in: u64,
}

/// A FaaS-style executor hosting many digis behind one service.
pub struct DigiPool {
    addr: Addr,
    conn: MqttConn,
    http: ReliableEndpoint,
    cells: BTreeMap<String, DigiCell>,
    /// Next tick due-time per cell (the timer wheel's entries).
    next_tick: BTreeMap<String, SimTime>,
    /// Due-time the armed wheel timer fires at (None = not armed).
    armed_at: Option<SimTime>,
    service_overhead: SimDuration,
    overhead_rng: Prng,
    pending_responses: HashMap<TimerToken, (Addr, Bytes)>,
    next_response_token: u64,
    stats: PoolStats,
}

impl DigiPool {
    pub fn new(addr: Addr, broker: Addr, service_overhead: SimDuration) -> ServiceHandle<DigiPool> {
        Rc::new(RefCell::new(DigiPool {
            conn: MqttConn::new(addr, broker, &format!("pool/{addr}")),
            http: ReliableEndpoint::new(addr).with_space(HTTP_TOKEN_SPACE),
            addr,
            cells: BTreeMap::new(),
            next_tick: BTreeMap::new(),
            armed_at: None,
            service_overhead,
            overhead_rng: Prng::new(addr.port as u64 ^ 0xF445),
            pending_responses: HashMap::new(),
            next_response_token: 0,
            stats: PoolStats::default(),
        }))
    }

    pub fn addr(&self) -> Addr {
        self.addr
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    pub fn stats(&self) -> PoolStats {
        PoolStats { cells: self.cells.len(), ..self.stats.clone() }
    }

    pub fn names(&self) -> Vec<&str> {
        self.cells.keys().map(String::as_str).collect()
    }

    pub fn model(&self, name: &str) -> Option<&Model> {
        self.cells.get(name).map(DigiCell::model)
    }

    pub fn cell(&self, name: &str) -> Option<&DigiCell> {
        self.cells.get(name)
    }

    /// Host a digi in this pool. Must be called *after* the pool is bound
    /// (it subscribes and announces through the live session).
    pub fn host(
        &mut self,
        sim: &mut Sim,
        model: Model,
        program: Box<dyn DigiProgram>,
        rng: Prng,
        log: TraceLog,
        scene_logic_enabled: bool,
    ) {
        let mut cell = DigiCell::new(model, program, rng, log, scene_logic_enabled);
        let name = cell.name().to_string();
        let [intent_topic, set_topic] = cell.command_topics();
        self.conn.subscribe(
            sim,
            &[(&intent_topic, QoS::AtLeastOnce), (&set_topic, QoS::AtLeastOnce)],
        );
        let mut out = Outbox::new();
        cell.start(sim.now(), &mut out);
        self.flush(sim, out);
        let due = sim.now() + SimDuration::from_millis(cell.interval_ms());
        self.next_tick.insert(name.clone(), due);
        self.cells.insert(name, cell);
        self.rearm(sim);
    }

    /// Remove a hosted digi.
    pub fn evict(&mut self, sim: &mut Sim, name: &str) -> bool {
        let Some(cell) = self.cells.remove(name) else {
            return false;
        };
        self.next_tick.remove(name);
        let [intent_topic, set_topic] = cell.command_topics();
        self.conn.unsubscribe(sim, &[&intent_topic, &set_topic]);
        true
    }

    /// Attach `child` to the hosted scene `parent` (both may live in this
    /// pool or elsewhere; only the parent must be hosted here).
    pub fn attach_child(&mut self, sim: &mut Sim, parent: &str, child: &str, kind: &str) -> bool {
        let Some(cell) = self.cells.get_mut(parent) else {
            return false;
        };
        let topic = cell.attach_child(sim.now(), child, kind);
        self.conn.subscribe(sim, &[(&topic, QoS::AtMostOnce)]);
        true
    }

    fn flush(&mut self, sim: &mut Sim, out: Outbox) {
        for (topic, payload, retain) in out.messages {
            self.conn.publish(sim, &topic, payload, QoS::AtMostOnce, retain);
        }
    }

    /// Arm (or re-arm) the single wheel timer for the earliest due tick.
    fn rearm(&mut self, sim: &mut Sim) {
        let Some(&earliest) = self.next_tick.values().min() else {
            self.armed_at = None;
            return;
        };
        if self.armed_at.is_some_and(|at| at <= earliest) {
            return; // an earlier-or-equal wakeup is already scheduled
        }
        self.armed_at = Some(earliest);
        let delay = earliest.since(sim.now());
        sim.set_timer(self.addr, delay, TOKEN_WHEEL);
    }

    /// Run every cell whose tick is due; reschedule them.
    fn run_wheel(&mut self, sim: &mut Sim) {
        self.stats.wheel_wakeups += 1;
        self.armed_at = None;
        let now = sim.now();
        let due: Vec<String> = self
            .next_tick
            .iter()
            .filter(|(_, at)| **at <= now)
            .map(|(n, _)| n.clone())
            .collect();
        for name in due {
            if let Some(cell) = self.cells.get_mut(&name) {
                let mut out = Outbox::new();
                cell.tick(now, &mut out);
                self.stats.ticks_dispatched += 1;
                let next = now + SimDuration::from_millis(
                    self.cells.get(&name).expect("cell exists").interval_ms(),
                );
                self.next_tick.insert(name, next);
                self.flush(sim, out);
            }
        }
        self.rearm(sim);
    }

    fn handle_mqtt_message(&mut self, sim: &mut Sim, topic: &str, payload: &[u8]) {
        self.stats.messages_in += 1;
        let now = sim.now();
        let Some(digi) = topics::digi_of(topic) else {
            return;
        };
        let digi = digi.to_string();
        match topics::channel_of(topic) {
            Some("intent") => {
                if let Some(cell) = self.cells.get_mut(&digi) {
                    cell.log_message_in(now, topic, payload);
                    let updates = DigiCell::parse_intents(payload);
                    let mut out = Outbox::new();
                    // NOTE: pooled digis apply intents immediately; per-digi
                    // actuation delay is a dedicated-service feature.
                    cell.apply_intents(now, updates, &mut out);
                    self.flush(sim, out);
                }
            }
            Some("set") => {
                if let Some(cell) = self.cells.get_mut(&digi) {
                    cell.log_message_in(now, topic, payload);
                    let mut out = Outbox::new();
                    cell.handle_set(now, payload, &mut out);
                    self.flush(sim, out);
                }
            }
            Some("model") => {
                // fan the child model to every hosted scene mirroring it
                let parents: Vec<String> = self
                    .cells
                    .iter()
                    .filter(|(_, c)| c.has_child(&digi))
                    .map(|(n, _)| n.clone())
                    .collect();
                for parent in parents {
                    if let Some(cell) = self.cells.get_mut(&parent) {
                        let mut out = Outbox::new();
                        cell.observe_child(now, &digi, payload, &mut out);
                        self.flush(sim, out);
                    }
                }
            }
            _ => {}
        }
    }

    fn handle_http(&mut self, sim: &mut Sim, peer: Addr, payload: &Bytes) {
        self.stats.rest_requests += 1;
        let response = match Request::decode(payload) {
            Ok(req) => {
                // pooled routing: /digi/<name>/...
                let target = {
                    let segs = req.path_segments();
                    match segs.as_slice() {
                        ["digi", name, ..] => Some(name.to_string()),
                        _ => None,
                    }
                };
                match target.and_then(|t| self.cells.get_mut(&t).map(|c| (t, c))) {
                    Some((_, cell)) => {
                        let mut out = Outbox::new();
                        let resp = cell.route_http(sim.now(), &req, &mut out);
                        self.flush(sim, out);
                        resp
                    }
                    None => Response::not_found("no such digi in this pool"),
                }
            }
            Err(e) => Response::bad_request(&e.to_string()),
        };
        let bytes = response.encode();
        if self.service_overhead == SimDuration::ZERO {
            self.http.send(sim, peer, bytes);
        } else {
            let load = sim.node_load(self.addr.node) as f64;
            let factor = (1.0 + load / 64.0) * self.overhead_rng.range_f64(0.85, 1.25);
            let delay = SimDuration::from_nanos(
                (self.service_overhead.as_nanos() as f64 * factor) as u64,
            );
            let token = (1 << 60) | self.next_response_token;
            self.next_response_token += 1;
            self.pending_responses.insert(token, (peer, bytes));
            sim.set_timer(self.addr, delay, token);
        }
    }

    fn pump(&mut self, sim: &mut Sim) {
        while let Some(ev) = self.conn.poll() {
            if let ClientEvent::Message { topic, payload, .. } = ev {
                self.handle_mqtt_message(sim, &topic, &payload);
            }
        }
        while let Some(ev) = self.http.poll() {
            match ev {
                TransportEvent::Delivered { peer, payload } => {
                    self.handle_http(sim, peer, &payload)
                }
                TransportEvent::PeerFailed { .. } => {}
            }
        }
    }
}

impl Service for DigiPool {
    fn on_start(&mut self, sim: &mut Sim) {
        self.conn.connect(sim, None);
    }

    fn on_datagram(&mut self, sim: &mut Sim, dg: Datagram) {
        if dg.src == self.conn.broker() {
            self.conn.on_datagram(sim, dg);
        } else {
            self.http.on_datagram(sim, dg);
        }
        self.pump(sim);
    }

    fn on_timer(&mut self, sim: &mut Sim, token: TimerToken) {
        if self.conn.on_timer(sim, token) {
            self.pump(sim);
            return;
        }
        if self.http.on_timer(sim, token) {
            self.pump(sim);
            return;
        }
        if token == TOKEN_WHEEL {
            self.run_wheel(sim);
        } else if token & (1 << 60) != 0 {
            if let Some((peer, bytes)) = self.pending_responses.remove(&token) {
                self.http.send(sim, peer, bytes);
            }
        }
    }
}
