//! `DigiPool` — many digis behind one service: the paper's §6 open
//! question made concrete.
//!
//! > "an open question is how to make these large-scale simulations more
//! > efficient, i.e., running a higher number of mocks/scenes with a fixed
//! > amount of compute resource budget. E.g., given the event-driven
//! > nature of IoT apps, whether/how we can leverage Function-as-a-Service
//! > (FaaS) to run the simulator logic of mocks and scenes."
//!
//! A pool is the FaaS executor: it hosts N [`DigiCell`]s behind **one**
//! network endpoint and **one** MQTT session, invoking each cell's handlers
//! only when its events are due or its messages arrive. Compared to
//! one-microservice-per-mock this removes the per-digi broker session and
//! per-digi endpoint — the fixed-cost floor that dominates at thousands of
//! mostly-idle mocks. The `e9_faas_pooling` bench quantifies the
//! difference.
//!
//! Tick scheduling rides directly on the kernel's hierarchical timer wheel:
//! each hosted cell gets a tagged per-cell kernel timer instead of the pool
//! keeping its own due-time map and re-arming a single wakeup (double
//! bookkeeping of the same schedule). Stale tokens — from evicted cells —
//! are simply ignored when they fire.
//!
//! Semantics are unchanged: pooled digis publish/subscribe the same topics
//! and serve the same REST API (routed as `/digi/<name>/...`), so
//! applications and parent scenes cannot tell a pooled mock from a
//! dedicated one. Scenes can be pooled too, but the intended use is large
//! fleets of mocks (the paper's 1000-sensor experiment).

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap}; // det-ok: hash maps for keyed lookup; iteration is sorted first
use std::rc::Rc;

use bytes::Bytes;

use digibox_broker::{ClientEvent, MqttConn, QoS};
use digibox_model::Model;
use digibox_net::httpx::{Request, Response};
use digibox_net::transport::{ReliableEndpoint, TransportEvent};
use digibox_net::{Addr, Datagram, Prng, Service, ServiceHandle, Sim, SimDuration, TimerToken};
use digibox_trace::TraceLog;

use crate::cell::{DigiCell, Outbox};
use crate::program::DigiProgram;
use crate::topics;

/// Tag bit for per-cell tick timers. Disjoint from the reliable-transport
/// bit (1 << 63), the endpoint token spaces (bits 48..63) and the HTTP
/// response tag (1 << 60).
const TICK_TOKEN_TAG: TimerToken = 1 << 59;
/// Tag bit for delayed HTTP responses.
const RESPONSE_TOKEN_TAG: TimerToken = 1 << 60;
/// Token space of the HTTP endpoint.
const HTTP_TOKEN_SPACE: u16 = 2;

/// Pool-level counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolStats {
    /// Digis currently hosted.
    pub cells: usize,
    /// Event-generation ticks dispatched to cells.
    pub ticks_dispatched: u64,
    /// Kernel timer wakeups taken by the pool.
    pub wheel_wakeups: u64,
    /// REST requests served across all hosted digis.
    pub rest_requests: u64,
    /// MQTT messages routed into hosted cells.
    pub messages_in: u64,
}

/// A FaaS-style executor hosting many digis behind one service.
pub struct DigiPool {
    addr: Addr,
    conn: MqttConn,
    http: ReliableEndpoint,
    cells: BTreeMap<String, DigiCell>,
    /// Live tick-timer token → cell name (kernel-wheel entries we own).
    tick_tokens: HashMap<TimerToken, String>,
    /// Reverse map, so eviction/rescheduling can invalidate the old token.
    cell_tokens: HashMap<String, TimerToken>,
    next_tick_token: u64,
    service_overhead: SimDuration,
    overhead_rng: Prng,
    pending_responses: HashMap<TimerToken, (Addr, Bytes)>,
    next_response_token: u64,
    stats: PoolStats,
}

impl DigiPool {
    /// A pool at `addr` speaking MQTT to `broker`, with per-message
    /// service overhead applied to REST responses.
    pub fn new(addr: Addr, broker: Addr, service_overhead: SimDuration) -> ServiceHandle<DigiPool> {
        Rc::new(RefCell::new(DigiPool {
            conn: MqttConn::new(addr, broker, &format!("pool/{addr}")),
            http: ReliableEndpoint::new(addr).with_space(HTTP_TOKEN_SPACE),
            addr,
            cells: BTreeMap::new(),
            tick_tokens: HashMap::new(),
            cell_tokens: HashMap::new(),
            next_tick_token: 0,
            service_overhead,
            overhead_rng: Prng::new(addr.port as u64 ^ 0xF445),
            pending_responses: HashMap::new(),
            next_response_token: 0,
            stats: PoolStats::default(),
        }))
    }

    /// The pool's bound address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Digis currently hosted.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the pool hosts no digis.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Counters, with the live cell count filled in.
    pub fn stats(&self) -> PoolStats {
        PoolStats { cells: self.cells.len(), ..self.stats.clone() }
    }

    /// Hosted digi names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.cells.keys().map(String::as_str).collect()
    }

    /// A hosted digi's current model, if hosted here.
    pub fn model(&self, name: &str) -> Option<&Model> {
        self.cells.get(name).map(DigiCell::model)
    }

    /// A hosted digi's cell, if hosted here.
    pub fn cell(&self, name: &str) -> Option<&DigiCell> {
        self.cells.get(name)
    }

    /// Host a digi in this pool. Must be called *after* the pool is bound
    /// (it subscribes and announces through the live session).
    pub fn host(
        &mut self,
        sim: &mut Sim,
        model: Model,
        program: Box<dyn DigiProgram>,
        rng: Prng,
        log: TraceLog,
        scene_logic_enabled: bool,
    ) {
        let mut cell = DigiCell::new(model, program, rng, log, scene_logic_enabled);
        let name = cell.name().to_string();
        let [intent_topic, set_topic] = cell.command_topics();
        self.conn.subscribe(
            sim,
            &[(&intent_topic, QoS::AtLeastOnce), (&set_topic, QoS::AtLeastOnce)],
        );
        let mut out = Outbox::new();
        cell.start(sim.now(), &mut out);
        self.flush(sim, out);
        let interval = SimDuration::from_millis(cell.interval_ms());
        self.cells.insert(name.clone(), cell);
        self.schedule_tick(sim, &name, interval);
    }

    /// Remove a hosted digi.
    pub fn evict(&mut self, sim: &mut Sim, name: &str) -> bool {
        let Some(cell) = self.cells.remove(name) else {
            return false;
        };
        if let Some(token) = self.cell_tokens.remove(name) {
            self.tick_tokens.remove(&token);
        }
        let [intent_topic, set_topic] = cell.command_topics();
        self.conn.unsubscribe(sim, &[&intent_topic, &set_topic]);
        true
    }

    /// Attach `child` to the hosted scene `parent` (both may live in this
    /// pool or elsewhere; only the parent must be hosted here).
    pub fn attach_child(&mut self, sim: &mut Sim, parent: &str, child: &str, kind: &str) -> bool {
        let Some(cell) = self.cells.get_mut(parent) else {
            return false;
        };
        let topic = cell.attach_child(sim.now(), child, kind);
        self.conn.subscribe(sim, &[(&topic, QoS::AtMostOnce)]);
        true
    }

    fn flush(&mut self, sim: &mut Sim, out: Outbox) {
        for (topic, payload, retain) in out.messages {
            self.conn.publish(sim, &topic, payload, QoS::AtMostOnce, retain);
        }
    }

    /// Arm a fresh per-cell tick timer on the kernel wheel, invalidating
    /// any previous token the cell held.
    fn schedule_tick(&mut self, sim: &mut Sim, name: &str, delay: SimDuration) {
        let token = TICK_TOKEN_TAG | self.next_tick_token;
        self.next_tick_token += 1;
        if let Some(old) = self.cell_tokens.insert(name.to_string(), token) {
            self.tick_tokens.remove(&old);
        }
        self.tick_tokens.insert(token, name.to_string());
        sim.set_timer(self.addr, delay, token);
    }

    /// One cell's tick timer fired: run its loop handler and re-arm.
    fn run_tick(&mut self, sim: &mut Sim, token: TimerToken) {
        let Some(name) = self.tick_tokens.remove(&token) else {
            return; // stale token from an evicted or rescheduled cell
        };
        self.cell_tokens.remove(&name);
        self.stats.wheel_wakeups += 1;
        let now = sim.now();
        let Some(cell) = self.cells.get_mut(&name) else {
            return;
        };
        let mut out = Outbox::new();
        cell.tick(now, &mut out);
        self.stats.ticks_dispatched += 1;
        let interval = SimDuration::from_millis(cell.interval_ms());
        self.flush(sim, out);
        self.schedule_tick(sim, &name, interval);
    }

    fn handle_mqtt_message(&mut self, sim: &mut Sim, topic: &str, payload: &[u8]) {
        self.stats.messages_in += 1;
        let now = sim.now();
        let Some(digi) = topics::digi_of(topic) else {
            return;
        };
        let digi = digi.to_string();
        match topics::channel_of(topic) {
            Some("intent") => {
                if let Some(cell) = self.cells.get_mut(&digi) {
                    cell.log_message_in(now, topic, payload);
                    let updates = DigiCell::parse_intents(payload);
                    let mut out = Outbox::new();
                    // NOTE: pooled digis apply intents immediately; per-digi
                    // actuation delay is a dedicated-service feature.
                    cell.apply_intents(now, updates, &mut out);
                    self.flush(sim, out);
                }
            }
            Some("set") => {
                if let Some(cell) = self.cells.get_mut(&digi) {
                    cell.log_message_in(now, topic, payload);
                    let mut out = Outbox::new();
                    cell.handle_set(now, payload, &mut out);
                    self.flush(sim, out);
                }
            }
            Some("model") => {
                // fan the child model to every hosted scene mirroring it
                let parents: Vec<String> = self
                    .cells
                    .iter()
                    .filter(|(_, c)| c.has_child(&digi))
                    .map(|(n, _)| n.clone())
                    .collect();
                for parent in parents {
                    if let Some(cell) = self.cells.get_mut(&parent) {
                        let mut out = Outbox::new();
                        cell.observe_child(now, &digi, payload, &mut out);
                        self.flush(sim, out);
                    }
                }
            }
            _ => {}
        }
    }

    fn handle_http(&mut self, sim: &mut Sim, peer: Addr, payload: &Bytes) {
        self.stats.rest_requests += 1;
        let response = match Request::decode(payload) {
            Ok(req) => {
                // pooled routing: /digi/<name>/...
                let target = {
                    let segs = req.path_segments();
                    match segs.as_slice() {
                        ["digi", name, ..] => Some(name.to_string()),
                        _ => None,
                    }
                };
                match target.and_then(|t| self.cells.get_mut(&t).map(|c| (t, c))) {
                    Some((_, cell)) => {
                        let mut out = Outbox::new();
                        let resp = cell.route_http(sim.now(), &req, &mut out);
                        self.flush(sim, out);
                        resp
                    }
                    None => Response::not_found("no such digi in this pool"),
                }
            }
            Err(e) => Response::bad_request(&e.to_string()),
        };
        let bytes = response.encode();
        if self.service_overhead == SimDuration::ZERO {
            self.http.send(sim, peer, bytes);
        } else {
            let load = sim.node_load(self.addr.node) as f64;
            let factor = (1.0 + load / 64.0) * self.overhead_rng.range_f64(0.85, 1.25);
            let delay = SimDuration::from_nanos(
                (self.service_overhead.as_nanos() as f64 * factor) as u64,
            );
            let token = RESPONSE_TOKEN_TAG | self.next_response_token;
            self.next_response_token += 1;
            self.pending_responses.insert(token, (peer, bytes));
            sim.set_timer(self.addr, delay, token);
        }
    }

    fn pump(&mut self, sim: &mut Sim) {
        while let Some(ev) = self.conn.poll() {
            if let ClientEvent::Message { topic, payload, .. } = ev {
                self.handle_mqtt_message(sim, &topic, &payload);
            }
        }
        while let Some(ev) = self.http.poll() {
            match ev {
                TransportEvent::Delivered { peer, payload } => {
                    self.handle_http(sim, peer, &payload)
                }
                TransportEvent::PeerFailed { .. } => {}
            }
        }
    }
}

impl Service for DigiPool {
    fn on_start(&mut self, sim: &mut Sim) {
        self.conn.connect(sim, None);
    }

    fn on_datagram(&mut self, sim: &mut Sim, dg: Datagram) {
        if dg.src == self.conn.broker() {
            self.conn.on_datagram(sim, dg);
        } else {
            self.http.on_datagram(sim, dg);
        }
        self.pump(sim);
    }

    fn on_timer(&mut self, sim: &mut Sim, token: TimerToken) {
        if self.conn.on_timer(sim, token) {
            self.pump(sim);
            return;
        }
        if self.http.on_timer(sim, token) {
            self.pump(sim);
            return;
        }
        if token & RESPONSE_TOKEN_TAG != 0 {
            if let Some((peer, bytes)) = self.pending_responses.remove(&token) {
                self.http.send(sim, peer, bytes);
            }
        } else if token & TICK_TOKEN_TAG != 0 {
            self.run_tick(sim, token);
        }
    }
}
